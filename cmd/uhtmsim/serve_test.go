package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uhtm/internal/server"
)

// TestUsageListsAllSubcommands is the drift test for the subcommand
// registry: every registered subcommand must appear in the -h text
// (synopsis and description) and in the package doc comment, and every
// name the usage text advertises must dispatch — the bug this fixes is
// `serve`-style subcommands existing in the dispatcher while -h still
// showed only the hand-maintained pair.
func TestUsageListsAllSubcommands(t *testing.T) {
	var buf bytes.Buffer
	usage(flag.NewFlagSet("uhtmsim", flag.ContinueOnError), &buf)
	text := buf.String()

	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("main.go has no package clause")
	}

	if len(subcommands) < 4 {
		t.Fatalf("registry has %d subcommands, expected at least serve/loadgen/bench/trace-summary", len(subcommands))
	}
	seen := map[string]bool{}
	for _, sc := range subcommands {
		if seen[sc.name] {
			t.Errorf("subcommand %q registered twice", sc.name)
		}
		seen[sc.name] = true
		if sc.run == nil {
			t.Errorf("subcommand %q has no run function", sc.name)
		}
		if !strings.Contains(text, sc.synopsis) {
			t.Errorf("usage text omits synopsis for %q — it must come from the registry", sc.name)
		}
		if !strings.Contains(text, sc.desc) {
			t.Errorf("usage text omits description for %q", sc.name)
		}
		if !strings.Contains(doc, sc.name) {
			t.Errorf("package doc comment omits subcommand %q — update the Usage block", sc.name)
		}
	}
	for _, name := range []string{"serve", "loadgen", "bench", "trace-summary"} {
		if !seen[name] {
			t.Errorf("subcommand %q missing from the registry", name)
		}
	}
}

// TestSubcommandsDispatch: each registered name reaches its own flag
// parser through run(), not the experiment-lookup fallback.
func TestSubcommandsDispatch(t *testing.T) {
	for _, sc := range subcommands {
		var out, errOut bytes.Buffer
		code := run([]string{sc.name, "-definitely-not-a-flag"}, &out, &errOut)
		if code == 0 {
			t.Errorf("%s with a bad flag: exit 0, want nonzero", sc.name)
		}
		if strings.Contains(errOut.String(), "unknown experiment") {
			t.Errorf("%s fell through to experiment lookup:\n%s", sc.name, errOut.String())
		}
	}
}

// startServeCLI boots `uhtmsim serve` through run() on a random port
// using the test seams, returning the bound address and a shutdown
// function that waits for the exit code.
func startServeCLI(t *testing.T, extraArgs ...string) (addr string, stop func() (int, string)) {
	t.Helper()
	ready := make(chan string, 1)
	stopCh := make(chan struct{})
	serveReady, serveStop = ready, stopCh
	t.Cleanup(func() { serveReady, serveStop = nil, nil })

	var out, errOut bytes.Buffer
	codeCh := make(chan int, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-cores", "2", "-buckets", "256"}, extraArgs...)
	go func() { codeCh <- run(args, &out, &errOut) }()
	addr = <-ready
	stopped := false
	var code int
	stop = func() (int, string) {
		if !stopped {
			stopped = true
			close(stopCh)
			code = <-codeCh
		}
		return code, out.String() + errOut.String()
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

// TestServeLoadgenCLI is the CLI-level round trip: serve on a random
// port, loadgen against it writing JSON Lines, clean shutdown.
func TestServeLoadgenCLI(t *testing.T) {
	addr, stop := startServeCLI(t, "-prepopulate", "32")

	outPath := filepath.Join(t.TempDir(), "load.jsonl")
	var lgOut, lgErr bytes.Buffer
	code := run([]string{
		"loadgen", "-addr", addr, "-conns", "2", "-qps", "300",
		"-duration", "250ms", "-keyspace", "32", "-out", outPath,
	}, &lgOut, &lgErr)
	if code != 0 {
		t.Fatalf("loadgen exit %d\nstdout: %s\nstderr: %s", code, lgOut.String(), lgErr.String())
	}
	for _, want := range []string{"requests in", "p50=", "p99=", "p999=", "committed"} {
		if !strings.Contains(lgOut.String(), want) {
			t.Errorf("loadgen summary missing %q:\n%s", want, lgOut.String())
		}
	}

	// The -out file is valid JSON Lines with the loadgen schema.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var records int
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rep server.LoadReport
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("record %d corrupt: %v", records, err)
		}
		if rep.Kind != "loadgen" || rep.Requests == 0 {
			t.Errorf("record %d underspecified: %+v", records, rep)
		}
		records++
	}
	if records != 1 {
		t.Errorf("got %d JSONL records, want 1", records)
	}

	code2, serveLog := stop()
	if code2 != 0 {
		t.Fatalf("serve exit %d\n%s", code2, serveLog)
	}
	for _, want := range []string{"serving on", "shutdown complete"} {
		if !strings.Contains(serveLog, want) {
			t.Errorf("serve log missing %q:\n%s", want, serveLog)
		}
	}
}

// TestLoadgenRejectsBadDist: flag validation happens before any
// connection attempt.
func TestLoadgenRejectsBadDist(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"loadgen", "-dist", "pareto"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "pareto") {
		t.Errorf("stderr does not name the bad distribution: %q", errOut.String())
	}
}

// TestLoadgenUnreachableServer: a dead address is a clean error, not a
// hang or panic.
func TestLoadgenUnreachableServer(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"loadgen", "-addr", "127.0.0.1:1", "-duration", "50ms"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "not reachable") {
		t.Errorf("stderr: %q", errOut.String())
	}
}
