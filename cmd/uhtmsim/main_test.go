package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uhtm/internal/bench"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
	"uhtm/internal/workload"
)

// TestDocCommentListsAllExperiments guards the doc comment against
// drifting from the experiment registry (the bug this test was born
// from: `ablate` existed for a full release without being documented).
func TestDocCommentListsAllExperiments(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("main.go has no package clause")
	}
	names := []string{"table3", "all"}
	for _, e := range workload.Experiments() {
		names = append(names, e.Name)
	}
	for _, n := range names {
		if !strings.Contains(doc, n) {
			t.Errorf("doc comment omits experiment %q — regenerate it from the registry list", n)
		}
	}
	// Every registered flag must be documented — walking the actual
	// flag set means a knob added to experimentFlags cannot ship
	// undocumented (the way -shards could have, had this list stayed
	// hardcoded).
	fs, _ := experimentFlags(io.Discard)
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "-"+f.Name) {
			t.Errorf("doc comment omits flag %q", "-"+f.Name)
		}
	})
	for _, f := range []string{"trace-summary"} {
		if !strings.Contains(doc, f) {
			t.Errorf("doc comment omits %q", f)
		}
	}
}

// TestRunOneSmoke runs fig2 at tiny scale end to end through the CLI
// path: table shape, summary line, and one valid JSON record per run.
func TestRunOneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 smoke run skipped in -short mode")
	}
	var out, jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	if err := runOne(&out, "fig2", "smoke", workload.RunOptions{Scale: 0.02, Par: 4}, enc, nil); err != nil {
		t.Fatal(err)
	}

	text := out.String()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	// Banner, header, rule, 5 benchmark rows (4 PMDK + Echo), summary,
	// trailing blank collapsed by TrimRight.
	const wantRows = 5
	if len(lines) != 3+wantRows+1 {
		t.Fatalf("unexpected output shape (%d lines):\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[1], "benchmark") || !strings.Contains(lines[1], "Ideal/Bounded") {
		t.Errorf("missing table header: %q", lines[1])
	}
	summary := lines[len(lines)-1]
	if !strings.Contains(summary, "10 runs") || !strings.Contains(summary, "commits") || !strings.Contains(summary, "aborts") {
		t.Errorf("summary line missing runs/commits/aborts: %q", summary)
	}

	// One valid, self-describing JSON record per run.
	var records int
	sc := bufio.NewScanner(&jsonBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r workload.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		if r.Experiment != "fig2" || r.System == "" || r.Bench == "" {
			t.Errorf("record %d underspecified: %+v", records, r)
		}
		if r.Stats.Commits == 0 {
			t.Errorf("record %d: no commits", records)
		}
		records++
	}
	if records != 10 {
		t.Errorf("got %d JSON records, want 10 (2 systems × 5 benchmarks)", records)
	}
}

// TestRunCrashSmoke runs the fault-injection sweep at tiny scale
// through the CLI path: per-point table, zero failures, and one JSON
// record per injection carrying point/visit/verdict.
func TestRunCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep smoke run skipped in -short mode")
	}
	var out, jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	fails, err := runCrash(&out, workload.RunOptions{Scale: 0.05, Par: 4}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if fails != 0 {
		t.Errorf("%d recovery failures:\n%s", fails, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "TOTAL") || !strings.Contains(text, "Injection point") {
		t.Errorf("missing per-point table:\n%s", text)
	}
	if !strings.Contains(text, "0 failures") {
		t.Errorf("summary line missing failure count:\n%s", text)
	}

	var records int
	sc := bufio.NewScanner(&jsonBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r workload.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		if r.Experiment != "crash" || r.Point == "" || r.Visit == 0 || r.Verdict != "ok" {
			t.Errorf("record %d underspecified: %+v", records, r)
		}
		records++
	}
	if records == 0 || sc.Err() != nil {
		t.Errorf("got %d JSON records (err=%v), want one per injection", records, sc.Err())
	}
}

// TestUnknownExperiment: RunExperiment rejects unknown names with an
// error (the CLI turns this into exit code 2 via its own lookup).
func TestUnknownExperiment(t *testing.T) {
	if _, _, err := workload.RunExperiment("fig99", workload.RunOptions{}); err == nil {
		t.Error("RunExperiment(fig99) succeeded, want error")
	}
}

// stubExperiments swaps the experiment runner for the duration of a
// test.
func stubExperiments(t *testing.T, fn func(string, workload.RunOptions) (*stats.Table, []workload.Result, error)) {
	t.Helper()
	orig := runExperimentFn
	runExperimentFn = fn
	t.Cleanup(func() { runExperimentFn = orig })
}

func fakeResult(exp, system string) workload.Result {
	r := workload.Result{Experiment: exp, System: system, Bench: workload.BenchHashMap, Seed: 1}
	r.Stats.Commits = 3
	return r
}

// TestJSONRecordsSurviveErrorExit is the regression test for the
// record-loss bug: main() used to call os.Exit directly on experiment
// failure, skipping the deferred flush of the buffered -json writer, so
// an `all` run that died on a late experiment lost every record already
// produced. run() must leave the earlier experiments' records on disk.
func TestJSONRecordsSurviveErrorExit(t *testing.T) {
	calls := 0
	stubExperiments(t, func(name string, opt workload.RunOptions) (*stats.Table, []workload.Result, error) {
		calls++
		if calls >= 2 {
			return nil, nil, errors.New("injected failure")
		}
		tbl := &stats.Table{Header: []string{"x"}}
		return tbl, []workload.Result{fakeResult(name, "A"), fakeResult(name, "B")}, nil
	})

	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", path, "all"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "injected failure") {
		t.Errorf("stderr does not report the failure: %q", errOut.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no JSON file after error exit: %v", err)
	}
	var records int
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var r workload.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("record %d corrupt: %v", records, err)
		}
		records++
	}
	if records != 2 {
		t.Errorf("got %d records on disk after error exit, want 2 (the first experiment's)", records)
	}
}

// TestBenchOutSurvivesSuiteFailure is the bench-side regression test
// for the same sink-loss class: when a benchmark fails partway through
// the suite, the records already measured are in the partial File and
// must reach -out before the nonzero exit — a long suite dying on its
// last spec used to leave nothing on disk.
func TestBenchOutSurvivesSuiteFailure(t *testing.T) {
	orig := benchRunSuiteFn
	benchRunSuiteFn = func(logf func(string, ...any)) (bench.File, error) {
		f := bench.File{Schema: bench.Schema, Go: "gotest"}
		f.Suite = append(f.Suite, bench.Record{Name: "First", Iters: 3, NsPerOp: 10, Metrics: map[string]float64{"sched-handoffs/op": 0}})
		return f, errors.New("benchmark Second failed")
	}
	t.Cleanup(func() { benchRunSuiteFn = orig })

	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	var out, errOut bytes.Buffer
	code := run([]string{"bench", "-out", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "benchmark Second failed") {
		t.Errorf("stderr does not report the failure: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "wrote partial") {
		t.Errorf("stdout does not announce the partial file: %q", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no bench file after error exit: %v", err)
	}
	defer f.Close()
	doc, err := bench.Read(f)
	if err != nil {
		t.Fatalf("partial bench file unparseable: %v", err)
	}
	if len(doc.Suite) != 1 || doc.Suite[0].Name != "First" {
		t.Errorf("partial file carries %+v, want the First record", doc.Suite)
	}
}

// TestBenchEmptyFailureWritesNothing: when the very first benchmark
// fails there are no records to save; -out must not be clobbered with
// an empty document.
func TestBenchEmptyFailureWritesNothing(t *testing.T) {
	orig := benchRunSuiteFn
	benchRunSuiteFn = func(logf func(string, ...any)) (bench.File, error) {
		return bench.File{Schema: bench.Schema}, errors.New("benchmark First failed")
	}
	t.Cleanup(func() { benchRunSuiteFn = orig })

	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"bench", "-out", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("empty suite wrote %s (stat err=%v); want no file", path, err)
	}
}

// TestSeedZeroIsSelectable is the regression test for the -seed
// sentinel bug: 0 used to mean "no override", making seed 0 the one
// unselectable seed. An explicit `-seed 0` must reach the runs; an
// omitted flag must keep per-experiment defaults.
func TestSeedZeroIsSelectable(t *testing.T) {
	var got []workload.RunOptions
	stubExperiments(t, func(name string, opt workload.RunOptions) (*stats.Table, []workload.Result, error) {
		got = append(got, opt)
		return &stats.Table{Header: []string{"x"}}, nil, nil
	})

	var out, errOut bytes.Buffer
	if code := run([]string{"-seed", "0", "fig2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, errOut.String())
	}
	if code := run([]string{"fig2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, errOut.String())
	}
	if len(got) != 2 {
		t.Fatalf("runner called %d times, want 2", len(got))
	}
	if !got[0].SeedSet || got[0].Seed != 0 {
		t.Errorf("explicit -seed 0 not marked: %+v", got[0])
	}
	if got[1].SeedSet {
		t.Errorf("omitted -seed marked as explicit: %+v", got[1])
	}
}

// TestSeedZeroReachesConfig: an explicitly chosen seed 0 overrides the
// per-experiment default (42) in the actual run configs — the
// end-to-end half of the sentinel regression.
func TestSeedZeroReachesConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("real fig2 run skipped in -short mode")
	}
	_, rs, err := workload.RunExperiment("fig2", workload.RunOptions{Scale: 0.01, SeedSet: true, Seed: 0, Par: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Seed != 0 {
			t.Fatalf("run %s/%s seed = %d, want explicit 0", r.System, r.Bench, r.Seed)
		}
	}
}

// TestTraceFileWrittenAndLoadable: `-trace` produces a Chrome
// trace-event file that parses back into transaction slices, and
// `trace-summary` renders it.
func TestTraceFileWrittenAndLoadable(t *testing.T) {
	if testing.Short() {
		t.Skip("traced fig2 run skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "0.01", "-par", "4", "-trace", path, "fig2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, errOut.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	txs, err := trace.ReadChromeTxs(f)
	if err != nil {
		t.Fatalf("trace file unparseable: %v", err)
	}
	if len(txs) == 0 {
		t.Fatal("trace file has no transaction slices")
	}

	var sum, sumErr bytes.Buffer
	if code := run([]string{"trace-summary", path}, &sum, &sumErr); code != 0 {
		t.Fatalf("trace-summary exit code = %d (stderr: %s)", code, sumErr.String())
	}
	for _, want := range []string{"tx", "outcome", "commit", "attempts:"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("trace-summary output missing %q:\n%s", want, sum.String())
		}
	}
}
