package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"uhtm/internal/workload"
)

// TestDocCommentListsAllExperiments guards the doc comment against
// drifting from the experiment registry (the bug this test was born
// from: `ablate` existed for a full release without being documented).
func TestDocCommentListsAllExperiments(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("main.go has no package clause")
	}
	names := []string{"table3", "all"}
	for _, e := range workload.Experiments() {
		names = append(names, e.Name)
	}
	for _, n := range names {
		if !strings.Contains(doc, n) {
			t.Errorf("doc comment omits experiment %q — regenerate it from the registry list", n)
		}
	}
	for _, f := range []string{"-scale", "-seed", "-par", "-json", "-crash"} {
		if !strings.Contains(doc, f) {
			t.Errorf("doc comment omits flag %q", f)
		}
	}
}

// TestRunOneSmoke runs fig2 at tiny scale end to end through the CLI
// path: table shape, summary line, and one valid JSON record per run.
func TestRunOneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 smoke run skipped in -short mode")
	}
	var out, jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	if err := runOne(&out, "fig2", "smoke", workload.RunOptions{Scale: 0.02, Par: 4}, enc); err != nil {
		t.Fatal(err)
	}

	text := out.String()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	// Banner, header, rule, 5 benchmark rows (4 PMDK + Echo), summary,
	// trailing blank collapsed by TrimRight.
	const wantRows = 5
	if len(lines) != 3+wantRows+1 {
		t.Fatalf("unexpected output shape (%d lines):\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[1], "benchmark") || !strings.Contains(lines[1], "Ideal/Bounded") {
		t.Errorf("missing table header: %q", lines[1])
	}
	summary := lines[len(lines)-1]
	if !strings.Contains(summary, "10 runs") || !strings.Contains(summary, "commits") || !strings.Contains(summary, "aborts") {
		t.Errorf("summary line missing runs/commits/aborts: %q", summary)
	}

	// One valid, self-describing JSON record per run.
	var records int
	sc := bufio.NewScanner(&jsonBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r workload.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		if r.Experiment != "fig2" || r.System == "" || r.Bench == "" {
			t.Errorf("record %d underspecified: %+v", records, r)
		}
		if r.Stats.Commits == 0 {
			t.Errorf("record %d: no commits", records)
		}
		records++
	}
	if records != 10 {
		t.Errorf("got %d JSON records, want 10 (2 systems × 5 benchmarks)", records)
	}
}

// TestRunCrashSmoke runs the fault-injection sweep at tiny scale
// through the CLI path: per-point table, zero failures, and one JSON
// record per injection carrying point/visit/verdict.
func TestRunCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep smoke run skipped in -short mode")
	}
	var out, jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	fails, err := runCrash(&out, workload.RunOptions{Scale: 0.05, Par: 4}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if fails != 0 {
		t.Errorf("%d recovery failures:\n%s", fails, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "TOTAL") || !strings.Contains(text, "Injection point") {
		t.Errorf("missing per-point table:\n%s", text)
	}
	if !strings.Contains(text, "0 failures") {
		t.Errorf("summary line missing failure count:\n%s", text)
	}

	var records int
	sc := bufio.NewScanner(&jsonBuf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r workload.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		if r.Experiment != "crash" || r.Point == "" || r.Visit == 0 || r.Verdict != "ok" {
			t.Errorf("record %d underspecified: %+v", records, r)
		}
		records++
	}
	if records == 0 || sc.Err() != nil {
		t.Errorf("got %d JSON records (err=%v), want one per injection", records, sc.Err())
	}
}

// TestUnknownExperiment: RunExperiment rejects unknown names with an
// error (the CLI turns this into exit code 2 via its own lookup).
func TestUnknownExperiment(t *testing.T) {
	if _, _, err := workload.RunExperiment("fig99", workload.RunOptions{}); err == nil {
		t.Error("RunExperiment(fig99) succeeded, want error")
	}
}
