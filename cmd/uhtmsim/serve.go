package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uhtm/internal/server"
)

// subcommand is one named CLI mode. The registry below is the single
// source of truth for dispatch (run consults it before treating the
// first argument as an experiment name) and for the synopsis and
// subcommand blocks of the usage text — so a subcommand cannot exist
// in the dispatcher without appearing in -h, and vice versa. A drift
// test additionally pins the package doc comment to this table.
type subcommand struct {
	name     string
	synopsis string
	desc     string
	run      func(args []string, stdout, stderr io.Writer) int
}

// subcommands lists every uhtmsim subcommand.
var subcommands = []subcommand{
	{
		name:     "serve",
		synopsis: "uhtmsim serve [-addr host:port] [-shards n] [-cores n] [-prepopulate n] [-seed n]",
		desc:     "run the durable KV store as a long-lived network service (see SERVING.md)",
		run:      serveCmd,
	},
	{
		name:     "loadgen",
		synopsis: "uhtmsim loadgen [-addr host:port] [-qps f] [-conns n] [-duration d] [-out path]",
		desc:     "drive a running server with open-loop load; latency percentiles as JSON Lines",
		run:      loadgenCmd,
	},
	{
		name:     "bench",
		synopsis: "uhtmsim bench [-out path] [-compare baseline.json] [-tol f]",
		desc:     "run the shared benchmark suite, optionally gating against a baseline",
		run:      benchCmd,
	},
	{
		name:     "trace-summary",
		synopsis: "uhtmsim trace-summary <trace.json>",
		desc:     "print a per-transaction table from a -trace Chrome trace file",
		run:      traceSummaryCmd,
	},
}

// traceSummaryCmd adapts traceSummary to the subcommand signature.
func traceSummaryCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: uhtmsim trace-summary <trace.json>")
		return 2
	}
	return traceSummary(stdout, stderr, args[0])
}

// Test seams for serveCmd: serveReady (when non-nil) receives the bound
// address once the listener is live; serveStop (when non-nil) replaces
// OS signal delivery as the shutdown trigger.
var (
	serveReady chan<- string
	serveStop  <-chan struct{}
)

// serveCmd boots the long-lived server and blocks until SIGINT/SIGTERM,
// then drains and checkpoints (server.Close) before exiting.
func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uhtmsim serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:6421", "TCP listen address (port 0 picks a free port)")
	shards := fs.Int("shards", 1, "key-hashed shards; >1 runs cross-shard MULTI batches through 2PC")
	cores := fs.Int("cores", 4, "simulated cores per shard = requests executing concurrently")
	buckets := fs.Int("buckets", 1<<15, "NVM hash-table buckets")
	seed := fs.Int64("seed", 42, "engine RNG seed")
	prepop := fs.Int("prepopulate", 0, "insert keys 1..n before serving")
	valsize := fs.Int("valsize", 64, "prepopulated value size in bytes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	s := server.New(server.Config{
		Addr:            *addr,
		Shards:          *shards,
		Cores:           *cores,
		Buckets:         *buckets,
		Seed:            *seed,
		Prepopulate:     *prepop,
		PrepopValueSize: *valsize,
	})
	if err := s.Listen(); err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "uhtmsim: serving on %s (shards=%d, cores=%d, prepopulated=%d)\n", s.Addr(), *shards, *cores, *prepop)
	if serveReady != nil {
		serveReady <- s.Addr().String()
	}
	if serveStop != nil {
		<-serveStop
	} else {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		sig := <-sigCh
		signal.Stop(sigCh)
		fmt.Fprintf(stdout, "uhtmsim: received %v — draining connections, checkpointing WAL\n", sig)
	}
	if err := s.Close(); err != nil {
		fmt.Fprintf(stderr, "uhtmsim: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "uhtmsim: shutdown complete")
	return 0
}

// loadgenCmd runs the open-loop load generator against a live server
// and reports the latency/throughput summary (human-readable to stdout,
// one JSON line to -out).
func loadgenCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uhtmsim loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:6421", "server address")
	conns := fs.Int("conns", 4, "concurrent connections")
	qps := fs.Float64("qps", 2000, "total target request rate (open loop)")
	dur := fs.Duration("duration", 2*time.Second, "run duration")
	keyspace := fs.Uint64("keyspace", 10000, "keys drawn from [1, keyspace]")
	dist := fs.String("dist", server.DistZipf, "key distribution: zipf or uniform")
	zipfS := fs.Float64("zipf-s", 1.2, "Zipf skew parameter (>1)")
	readfrac := fs.Float64("readfrac", 0.8, "fraction of read requests (an explicit 0 means write-only)")
	scanfrac := fs.Float64("scanfrac", 0, "fraction of reads that are SCANs")
	crossfrac := fs.Float64("crossfrac", 0, "fraction of requests forced onto >=2 shards as MULTI..EXEC (sharded server only)")
	scancount := fs.Int("scancount", 10, "SCAN count argument")
	batch := fs.Int("batch", 1, "ops per request; >1 wraps them in MULTI..EXEC")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	outPath := fs.String("out", "", "append the JSON record to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	if *dist != server.DistZipf && *dist != server.DistUniform {
		fmt.Fprintf(stderr, "uhtmsim: unknown distribution %q (want zipf or uniform)\n", *dist)
		return 2
	}
	var out io.Writer
	if *outPath == "-" {
		out = stdout
	} else if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	readfracSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "readfrac" {
			readfracSet = true
		}
	})
	rep, err := server.RunLoad(server.LoadConfig{
		Addr:        *addr,
		Conns:       *conns,
		QPS:         *qps,
		Duration:    *dur,
		KeySpace:    *keyspace,
		Dist:        *dist,
		ZipfS:       *zipfS,
		ReadFrac:    *readfrac,
		ReadFracSet: readfracSet,
		ScanFrac:    *scanfrac,
		CrossFrac:   *crossfrac,
		ScanCount:   *scancount,
		BatchSize:   *batch,
		Seed:        *seed,
		Out:         out,
	})
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "loadgen: %d requests in %.2fs — %.0f req/s achieved (target %.0f), %d errors\n",
		rep.Requests, rep.DurationS, rep.AchievedQPS, rep.TargetQPS, rep.Errors)
	fmt.Fprintf(stdout, "loadgen: latency p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs\n",
		rep.P50us, rep.P99us, rep.P999us, rep.MaxUs)
	fmt.Fprintf(stdout, "loadgen: server committed %d txs, aborted %d (abort rate %.3f)\n",
		rep.Commits, rep.Aborts, rep.AbortRate)
	if rep.CrossFrac > 0 {
		fmt.Fprintf(stdout, "loadgen: cross-shard 2PC committed %d txs, aborted %d\n",
			rep.CrossCommits, rep.CrossAborts)
	}
	if rep.WorkersDied > 0 {
		fmt.Fprintf(stdout, "loadgen: %d worker(s) died mid-run (last error: %s) — run is invalid\n",
			rep.WorkersDied, rep.LastError)
	}
	if rep.Saturated {
		fmt.Fprintln(stdout, "loadgen: SATURATED — the server could not hold the target rate; achieved QPS is the saturation throughput")
	}
	return 0
}
