// Command uhtmsim regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	uhtmsim [-scale f] [-seed n] <experiment>
//
// where experiment is one of: table3, fig2, fig6, fig7, fig8, fig9a,
// fig9b, fig10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uhtm/internal/stats"
	"uhtm/internal/workload"
)

var experiments = []struct {
	name string
	desc string
	run  func(scale float64) (*stats.Table, []workload.Result)
}{
	{"fig2", "LLC-Bounded vs Ideal unbounded HTM (motivation, Fig. 2)", workload.Fig2},
	{"fig6", "PMDK + Echo throughput, normalized to LLC-Bounded (Fig. 6)", workload.Fig6},
	{"fig7", "Abort-rate decomposition vs footprint and signature size (Fig. 7)", workload.Fig7},
	{"fig8", "Echo with long-running read-only transactions (Fig. 8)", workload.Fig8},
	{"fig9a", "Hybrid-Index KV store vs footprint (Fig. 9a)", workload.Fig9a},
	{"fig9b", "Dual KV store vs footprint (Fig. 9b)", workload.Fig9b},
	{"fig10", "Volatile transactions: undo vs redo DRAM logging (Fig. 10)", workload.Fig10},
	{"ablate", "Design-choice ablations (resolution policy, DRAM cache, isolation, DRAM log)", workload.Ablations},
}

func main() {
	scale := flag.Float64("scale", 1.0, "op-count scale factor (1.0 = full-size runs)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	if name == "table3" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		return
	}
	if name == "all" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		fmt.Println()
		for _, e := range experiments {
			runOne(e.name, e.desc, e.run, *scale)
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			runOne(e.name, e.desc, e.run, *scale)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "uhtmsim: unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

func runOne(name, desc string, fn func(float64) (*stats.Table, []workload.Result), scale float64) {
	fmt.Printf("== %s — %s (scale=%.2f)\n", name, desc, scale)
	start := time.Now()
	tbl, _ := fn(scale)
	fmt.Print(tbl.Format())
	fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: uhtmsim [-scale f] <experiment>

experiments:
  table3   simulation configuration (Table III)
`)
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "  all      everything above\n")
	flag.PrintDefaults()
}
