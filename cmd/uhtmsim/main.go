// Command uhtmsim regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	uhtmsim [-scale f] [-seed n] [-par n] [-json path] <experiment>
//	uhtmsim -crash [-scale f] [-seed n] [-par n] [-json path]
//
// where experiment is one of: table3, fig2, fig6, fig7, fig8, fig9a,
// fig9b, fig10, ablate, all. (The authoritative list — including
// one-line descriptions — is printed by `uhtmsim -h` straight from the
// experiment registry; a test asserts this comment tracks it.)
//
// Independent simulation points of an experiment grid run concurrently,
// up to -par engines at a time (default GOMAXPROCS); results are
// reassembled in grid order, so the printed tables are byte-identical
// at every -par value. -json appends one machine-readable record per
// run (JSON Lines) with the full stats decomposition, throughput and
// host wall time.
//
// -crash runs the crash-point fault-injection sweep instead of an
// experiment (see RECOVERY.md): every injection point of a small
// workload exhaustively plus a seeded-random sample of a large one,
// killing the simulation mid-protocol, running recovery and verifying
// it against a committed-prefix oracle. One JSON record is emitted per
// injection (point, seed, verdict); the exit status is 1 if any
// injection's recovery violated an invariant.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"uhtm/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "op-count scale factor (1.0 = full-size runs)")
	seed := flag.Int64("seed", 0, "workload RNG seed override (0 = per-experiment default)")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write one JSON record per run to this file (\"-\" = stdout)")
	crashSweep := flag.Bool("crash", false, "run the crash-point fault-injection sweep instead of an experiment")
	flag.Usage = usage
	flag.Parse()
	if want := 1 - b2i(*crashSweep); flag.NArg() != want {
		usage()
		os.Exit(2)
	}
	opt := workload.RunOptions{Scale: *scale, Seed: *seed, Par: *par}

	enc, flush, err := jsonEmitter(*jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
		os.Exit(1)
	}
	defer flush()

	if *crashSweep {
		fails, err := runCrash(os.Stdout, opt, enc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
			os.Exit(1)
		}
		if fails > 0 {
			flush()
			os.Exit(1)
		}
		return
	}
	name := flag.Arg(0)

	if name == "table3" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		return
	}
	if name == "all" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		fmt.Println()
		for _, e := range workload.Experiments() {
			if err := runOne(os.Stdout, e.Name, e.Desc, opt, enc); err != nil {
				fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	for _, e := range workload.Experiments() {
		if e.Name == name {
			if err := runOne(os.Stdout, e.Name, e.Desc, opt, enc); err != nil {
				fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "uhtmsim: unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

// jsonEmitter opens the -json sink: nil when disabled, stdout for "-",
// else a freshly truncated file. flush finalizes the sink.
func jsonEmitter(path string) (enc *json.Encoder, flush func(), err error) {
	if path == "" {
		return nil, func() {}, nil
	}
	if path == "-" {
		return json.NewEncoder(os.Stdout), func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return json.NewEncoder(w), func() {
		w.Flush()
		f.Close()
	}, nil
}

// runOne executes one experiment, prints its table plus a per-experiment
// summary line, and emits every run's JSON record.
func runOne(out io.Writer, name, desc string, opt workload.RunOptions, enc *json.Encoder) error {
	fmt.Fprintf(out, "== %s — %s (scale=%.2f)\n", name, desc, opt.Scale)
	start := time.Now()
	tbl, results, err := workload.RunExperiment(name, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(out, tbl.Format())
	var commits, aborts uint64
	for _, r := range results {
		commits += r.Stats.Commits
		aborts += r.Stats.Aborts()
	}
	fmt.Fprintf(out, "(%s: %d runs, %d commits, %d aborts, in %v)\n\n",
		name, len(results), commits, aborts, time.Since(start).Round(time.Millisecond))
	if enc != nil {
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("encoding %s record: %w", name, err)
			}
		}
	}
	return nil
}

// runCrash executes the crash-point fault-injection sweep (see
// RECOVERY.md), prints the per-point table, emits every injection's
// JSON record and returns the number of recovery-invariant failures.
func runCrash(out io.Writer, opt workload.RunOptions, enc *json.Encoder) (int, error) {
	fmt.Fprintf(out, "== crash — fault-injection sweep with recovery verification (scale=%.2f)\n", opt.Scale)
	start := time.Now()
	tbl, results, err := workload.RunCrashSweep(opt)
	if err != nil {
		return 0, err
	}
	fmt.Fprint(out, tbl.Format())
	fails := workload.CrashFailures(results)
	fmt.Fprintf(out, "(crash: %d injections, %d failures, in %v)\n\n",
		len(results), fails, time.Since(start).Round(time.Millisecond))
	if enc != nil {
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return fails, fmt.Errorf("encoding crash record: %w", err)
			}
		}
	}
	for _, r := range results {
		if r.Verdict != "ok" {
			fmt.Fprintf(out, "FAIL %s visit %d: %s\n", r.Point, r.Visit, r.Verdict)
		}
	}
	return fails, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: uhtmsim [-scale f] [-seed n] [-par n] [-json path] <experiment>
       uhtmsim -crash [-scale f] [-seed n] [-par n] [-json path]

experiments:
  table3   simulation configuration (Table III)
`)
	for _, e := range workload.Experiments() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(os.Stderr, "  all      everything above\n")
	flag.PrintDefaults()
}
