// Command uhtmsim regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	uhtmsim [-scale f] [-seed n] [-par n] [-json path] <experiment>
//
// where experiment is one of: table3, fig2, fig6, fig7, fig8, fig9a,
// fig9b, fig10, ablate, all. (The authoritative list — including
// one-line descriptions — is printed by `uhtmsim -h` straight from the
// experiment registry; a test asserts this comment tracks it.)
//
// Independent simulation points of an experiment grid run concurrently,
// up to -par engines at a time (default GOMAXPROCS); results are
// reassembled in grid order, so the printed tables are byte-identical
// at every -par value. -json appends one machine-readable record per
// run (JSON Lines) with the full stats decomposition, throughput and
// host wall time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"uhtm/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "op-count scale factor (1.0 = full-size runs)")
	seed := flag.Int64("seed", 0, "workload RNG seed override (0 = per-experiment default)")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write one JSON record per run to this file (\"-\" = stdout)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	opt := workload.RunOptions{Scale: *scale, Seed: *seed, Par: *par}

	enc, flush, err := jsonEmitter(*jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
		os.Exit(1)
	}
	defer flush()

	if name == "table3" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		return
	}
	if name == "all" {
		fmt.Println("Table III — simulation configuration")
		fmt.Print(workload.TableIII().Format())
		fmt.Println()
		for _, e := range workload.Experiments() {
			if err := runOne(os.Stdout, e.Name, e.Desc, opt, enc); err != nil {
				fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	for _, e := range workload.Experiments() {
		if e.Name == name {
			if err := runOne(os.Stdout, e.Name, e.Desc, opt, enc); err != nil {
				fmt.Fprintf(os.Stderr, "uhtmsim: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "uhtmsim: unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

// jsonEmitter opens the -json sink: nil when disabled, stdout for "-",
// else a freshly truncated file. flush finalizes the sink.
func jsonEmitter(path string) (enc *json.Encoder, flush func(), err error) {
	if path == "" {
		return nil, func() {}, nil
	}
	if path == "-" {
		return json.NewEncoder(os.Stdout), func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return json.NewEncoder(w), func() {
		w.Flush()
		f.Close()
	}, nil
}

// runOne executes one experiment, prints its table plus a per-experiment
// summary line, and emits every run's JSON record.
func runOne(out io.Writer, name, desc string, opt workload.RunOptions, enc *json.Encoder) error {
	fmt.Fprintf(out, "== %s — %s (scale=%.2f)\n", name, desc, opt.Scale)
	start := time.Now()
	tbl, results, err := workload.RunExperiment(name, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(out, tbl.Format())
	var commits, aborts uint64
	for _, r := range results {
		commits += r.Stats.Commits
		aborts += r.Stats.Aborts()
	}
	fmt.Fprintf(out, "(%s: %d runs, %d commits, %d aborts, in %v)\n\n",
		name, len(results), commits, aborts, time.Since(start).Round(time.Millisecond))
	if enc != nil {
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("encoding %s record: %w", name, err)
			}
		}
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: uhtmsim [-scale f] [-seed n] [-par n] [-json path] <experiment>

experiments:
  table3   simulation configuration (Table III)
`)
	for _, e := range workload.Experiments() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(os.Stderr, "  all      everything above\n")
	flag.PrintDefaults()
}
