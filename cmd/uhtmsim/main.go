// Command uhtmsim regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	uhtmsim [-scale f] [-seed n] [-par n] [-shards n] [-json path] [-trace path] <experiment>
//	uhtmsim -crash [-scale f] [-seed n] [-par n] [-json path]
//	uhtmsim serve [-addr host:port] [-shards n] [-cores n] [-prepopulate n] [-seed n]
//	uhtmsim loadgen [-addr host:port] [-qps f] [-conns n] [-duration d] [-out path]
//	uhtmsim bench [-out path] [-compare baseline.json] [-tol f]
//	uhtmsim trace-summary <trace.json>
//
// where experiment is one of: table3, fig2, fig6, fig7, fig8, fig9a,
// fig9b, fig10, ablate, scale, recovery, all. (The authoritative list — including
// one-line descriptions — is printed by `uhtmsim -h` straight from the
// experiment registry; a test asserts this comment tracks it, and walks
// the flag set asserting every flag appears above.)
//
// Independent simulation points of an experiment grid run concurrently,
// up to -par engines at a time (default GOMAXPROCS); results are
// reassembled in grid order, so the printed tables are byte-identical
// at every -par value. -json appends one machine-readable record per
// run (JSON Lines) with the full stats decomposition, throughput and
// host wall time. Records accumulated before a failure are flushed on
// every exit path, so a grid that dies halfway still leaves its
// completed runs on disk.
//
// -seed overrides every run's workload RNG seed; passing it explicitly
// selects that exact seed, including 0 (omitting the flag keeps each
// experiment's default).
//
// -trace records every transaction-lifecycle, cache, signature and log
// event of every run and writes one Chrome trace-event JSON file
// (loadable in Perfetto or chrome://tracing): one process per grid
// cell, one track per core plus a "machine" track, one slice per
// transaction attempt, and flow arrows from each abort's enemy to its
// victim. The file is byte-identical at every -par value. `uhtmsim
// trace-summary <file>` prints a per-transaction table from such a
// file without a browser. See EXPERIMENTS.md for the schema and a
// worked diagnosis.
//
// The scale experiment is the sharded scale-out axis (see
// ARCHITECTURE.md §8): the line-address space is partitioned across N
// independent engine shards running on real OS threads, with
// cross-shard transactions committed by a WAL-backed two-phase
// protocol. Its grid is total cores × shard count × conflict domains
// (64–1024 simulated cores); -shards restricts the shard-count axis to
// one value (the one-shard baseline always runs too, so the printed
// speedup column stays meaningful). Scale records extend the JSON
// schema with shards, cross_commits and cross_aborts.
//
// -crash runs the crash-point fault-injection sweep instead of an
// experiment (see RECOVERY.md): every injection point of a small
// workload exhaustively plus a seeded-random sample of a large one,
// killing the simulation mid-protocol, running recovery and verifying
// it against a committed-prefix oracle. The sweep also covers the
// sharded cluster: every cross-shard 2PC point (prepare logged,
// decision logged, apply mark, per-line apply, resolution-cell
// persist) exhaustively, plus a sample of the machine-level points
// underneath it, verified against the same oracle extended with
// cluster-wide atomicity. One JSON record is emitted per injection
// (point, seed, verdict); the exit status is 1 if any injection's
// recovery violated an invariant.
//
// The recovery experiment measures crash recovery itself: each grid
// cell commits a known volume of redo log (checkpointing every so many
// commits — interval 0 never checkpoints), pulls the plug, and times
// the recovery pass. Its records extend the JSON schema with
// recovery_scanned, recovery_applied and the modeled per-phase
// latencies recovery_scan_ps, recovery_replay_ps and
// recovery_persist_ps; EXPERIMENTS.md explains how to read the
// latency-vs-log-size curve.
//
// `uhtmsim serve` runs the durable KV store as a long-lived TCP
// service speaking a RESP-subset protocol, and `uhtmsim loadgen`
// drives such a server with open-loop traffic, reporting latency
// percentiles, saturation throughput and the induced abort rate as
// JSON Lines. Both are documented in SERVING.md; the full subcommand
// registry (serve, loadgen, bench, trace-summary) is printed by
// `uhtmsim -h`, and a drift test pins this comment to it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"uhtm/internal/bench"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
	"uhtm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runExperimentFn indirects workload.RunExperiment so tests can inject
// failing experiments.
var runExperimentFn = workload.RunExperiment

// benchRunSuiteFn indirects bench.RunSuite so tests can inject a suite
// that fails partway through.
var benchRunSuiteFn = bench.RunSuite

// run is the entire CLI behind a testable seam: parse, execute, return
// the exit code. Output sinks (-json, -trace) are finalized by defers,
// which run on every return path — the earlier main() called os.Exit
// directly, skipping the deferred flush and losing all buffered JSON
// records whenever a late experiment failed.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs, fv := experimentFlags(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Subcommand dispatch comes straight from the registry in serve.go,
	// so the dispatcher and the usage text cannot drift apart.
	if fs.NArg() > 0 {
		for _, sc := range subcommands {
			if fs.Arg(0) == sc.name {
				return sc.run(fs.Args()[1:], stdout, stderr)
			}
		}
	}

	if want := 1 - b2i(*fv.crashSweep); fs.NArg() != want {
		fs.Usage()
		return 2
	}

	// flag.Visit distinguishes an explicit `-seed 0` from an omitted
	// flag: 0 is a legitimate seed, not a sentinel.
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	opt := workload.RunOptions{
		Scale:   *fv.scale,
		Seed:    *fv.seed,
		SeedSet: seedSet,
		Par:     *fv.par,
		Trace:   *fv.tracePath != "",
		Shards:  *fv.shards,
	}

	enc, flush, err := jsonEmitter(*fv.jsonPath, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	defer flush()

	sink := newTraceSink(*fv.tracePath)
	defer func() {
		if err := sink.write(); err != nil {
			fmt.Fprintf(stderr, "uhtmsim: writing trace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *fv.crashSweep {
		fails, err := runCrash(stdout, opt, enc)
		if err != nil {
			fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
			return 1
		}
		if fails > 0 {
			return 1
		}
		return 0
	}
	name := fs.Arg(0)

	if name == "table3" {
		fmt.Fprintln(stdout, "Table III — simulation configuration")
		fmt.Fprint(stdout, workload.TableIII().Format())
		return 0
	}
	if name == "all" {
		fmt.Fprintln(stdout, "Table III — simulation configuration")
		fmt.Fprint(stdout, workload.TableIII().Format())
		fmt.Fprintln(stdout)
		for _, e := range workload.Experiments() {
			if err := runOne(stdout, e.Name, e.Desc, opt, enc, sink); err != nil {
				fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
				return 1
			}
		}
		return 0
	}
	for _, e := range workload.Experiments() {
		if e.Name == name {
			if err := runOne(stdout, e.Name, e.Desc, opt, enc, sink); err != nil {
				fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
				return 1
			}
			return 0
		}
	}
	fmt.Fprintf(stderr, "uhtmsim: unknown experiment %q\n", name)
	fs.Usage()
	return 2
}

// expFlags holds the top-level flag values parsed by experimentFlags.
type expFlags struct {
	scale      *float64
	seed       *int64
	par        *int
	shards     *int
	jsonPath   *string
	tracePath  *string
	crashSweep *bool
}

// experimentFlags builds the top-level flag set. Every experiment knob
// registers here and nowhere else: the doc-drift test walks the
// returned set and asserts the package comment documents each flag, so
// an undocumented knob fails CI.
func experimentFlags(stderr io.Writer) (*flag.FlagSet, *expFlags) {
	fs := flag.NewFlagSet("uhtmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fv := &expFlags{
		scale:      fs.Float64("scale", 1.0, "op-count scale factor (1.0 = full-size runs)"),
		seed:       fs.Int64("seed", 0, "workload RNG seed override (omit to keep per-experiment defaults)"),
		par:        fs.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)"),
		shards:     fs.Int("shards", 0, "restrict the scale experiment's shard axis to this count (0 = full axis)"),
		jsonPath:   fs.String("json", "", "write one JSON record per run to this file (\"-\" = stdout)"),
		tracePath:  fs.String("trace", "", "write a Chrome trace-event file of every run to this path"),
		crashSweep: fs.Bool("crash", false, "run the crash-point fault-injection sweep instead of an experiment"),
	}
	fs.Usage = func() { usage(fs, stderr) }
	return fs, fv
}

// jsonEmitter opens the -json sink: nil when disabled, stdout for "-",
// else a freshly truncated file. flush finalizes the sink and is safe
// to call more than once.
func jsonEmitter(path string, stdout io.Writer) (enc *json.Encoder, flush func(), err error) {
	if path == "" {
		return nil, func() {}, nil
	}
	if path == "-" {
		return json.NewEncoder(stdout), func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	done := false
	return json.NewEncoder(w), func() {
		if done {
			return
		}
		done = true
		w.Flush()
		f.Close()
	}, nil
}

// traceSink accumulates each grid cell's event stream in spec order and
// writes the combined Chrome trace file once, when the CLI finishes
// (including error exits, so completed runs are never lost).
type traceSink struct {
	path string
	runs []trace.Run
}

// newTraceSink returns nil when tracing is disabled; all methods are
// nil-safe.
func newTraceSink(path string) *traceSink {
	if path == "" {
		return nil
	}
	return &traceSink{path: path}
}

// add appends one result's events under its grid-cell label.
func (s *traceSink) add(r workload.Result) {
	if s == nil || len(r.TraceEvents) == 0 {
		return
	}
	label := fmt.Sprintf("%s/%s/%s/%dKB/seed%d",
		r.Experiment, r.System, r.Bench, r.FootprintKB, r.Seed)
	s.runs = append(s.runs, trace.Run{Label: label, Events: r.TraceEvents})
}

// write renders the accumulated runs as one Chrome trace-event file.
func (s *traceSink) write() error {
	if s == nil {
		return nil
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, s.runs, causeName); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// causeName resolves numeric abort-cause codes for trace rendering —
// injected here because internal/trace sits below internal/stats.
func causeName(c uint64) string { return stats.AbortCause(c).String() }

// traceSummary prints a per-transaction table from a Chrome trace file
// written by -trace.
func traceSummary(stdout, stderr io.Writer, path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	defer f.Close()
	txs, err := trace.ReadChromeTxs(f)
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	// Stable run order for the per-run sections: first appearance.
	order := []string{}
	byRun := map[string][]trace.ChromeTx{}
	for _, tx := range txs {
		if _, ok := byRun[tx.Run]; !ok {
			order = append(order, tx.Run)
		}
		byRun[tx.Run] = append(byRun[tx.Run], tx)
	}
	for _, run := range order {
		fmt.Fprintf(stdout, "== %s\n", run)
		tbl := &stats.Table{Header: []string{
			"tx", "core", "attempt", "slow", "start_us", "dur_us",
			"reads", "writes", "wal", "outcome",
		}}
		rows := byRun[run]
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].StartUS < rows[j].StartUS })
		var commits, aborts int
		for _, tx := range rows {
			switch {
			case tx.Outcome == "commit":
				commits++
			case tx.Outcome != "in-flight":
				aborts++
			}
			outcome := tx.Outcome
			if tx.Enemy != 0 {
				outcome = fmt.Sprintf("%s (enemy tx%d)", outcome, tx.Enemy)
			}
			tbl.AddRow(tx.Name, fmt.Sprint(tx.Core), fmt.Sprint(tx.Attempt),
				fmt.Sprint(tx.Slow), fmt.Sprintf("%.3f", tx.StartUS),
				fmt.Sprintf("%.3f", tx.DurUS), fmt.Sprint(tx.Reads),
				fmt.Sprint(tx.Writes), fmt.Sprint(tx.WAL), outcome)
		}
		fmt.Fprint(stdout, tbl.Format())
		fmt.Fprintf(stdout, "(%d attempts: %d commits, %d aborts)\n\n", len(rows), commits, aborts)
	}
	if len(order) == 0 {
		fmt.Fprintln(stdout, "(no transaction slices in trace)")
	}
	return 0
}

// runOne executes one experiment, prints its table plus a per-experiment
// summary line, and emits every run's JSON record and trace events.
func runOne(out io.Writer, name, desc string, opt workload.RunOptions, enc *json.Encoder, sink *traceSink) error {
	fmt.Fprintf(out, "== %s — %s (scale=%.2f)\n", name, desc, opt.Scale)
	start := time.Now()
	tbl, results, err := runExperimentFn(name, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(out, tbl.Format())
	var commits, aborts uint64
	for _, r := range results {
		commits += r.Stats.Commits
		aborts += r.Stats.Aborts()
	}
	fmt.Fprintf(out, "(%s: %d runs, %d commits, %d aborts, in %v)\n\n",
		name, len(results), commits, aborts, time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		sink.add(r)
	}
	if enc != nil {
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("encoding %s record: %w", name, err)
			}
		}
	}
	return nil
}

// runCrash executes the crash-point fault-injection sweep (see
// RECOVERY.md), prints the per-point table, emits every injection's
// JSON record and returns the number of recovery-invariant failures.
func runCrash(out io.Writer, opt workload.RunOptions, enc *json.Encoder) (int, error) {
	fmt.Fprintf(out, "== crash — fault-injection sweep with recovery verification (scale=%.2f)\n", opt.Scale)
	start := time.Now()
	tbl, results, err := workload.RunCrashSweep(opt)
	if err != nil {
		return 0, err
	}
	fmt.Fprint(out, tbl.Format())
	fails := workload.CrashFailures(results)
	fmt.Fprintf(out, "(crash: %d injections, %d failures, in %v)\n\n",
		len(results), fails, time.Since(start).Round(time.Millisecond))
	if enc != nil {
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return fails, fmt.Errorf("encoding crash record: %w", err)
			}
		}
	}
	for _, r := range results {
		if r.Verdict != "ok" {
			fmt.Fprintf(out, "FAIL %s visit %d: %s\n", r.Point, r.Visit, r.Verdict)
		}
	}
	return fails, nil
}

// benchCmd runs the shared benchmark suite (internal/bench) and writes
// one machine-readable BENCH_<n>.json document: per-benchmark ns/op,
// allocs/op, bytes/op and the headline custom metrics. With -compare it
// additionally gates allocs/op against a committed baseline (exit 1 on
// regression beyond -tol); ns/op drift is reported but never fails,
// because wall-clock on shared runners is machine-dependent.
func benchCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uhtmsim bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default: first free BENCH_<n>.json in the current directory)")
	baseline := fs.String("compare", "", "baseline BENCH_<n>.json to gate allocs/op against")
	tol := fs.Float64("tol", 0.25, "relative regression tolerance for -compare")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: uhtmsim bench [-out path] [-compare baseline.json] [-tol f]")
		return 2
	}

	path := *out
	if path == "" {
		for n := 0; ; n++ {
			path = fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				break
			}
		}
	}

	f, err := benchRunSuiteFn(func(format string, a ...any) {
		fmt.Fprintf(stdout, format+"\n", a...)
	})
	if err != nil {
		// Same sink-loss class as the -json flush bug: the records
		// collected before the failing benchmark are in f and must reach
		// disk before the nonzero exit, or a long suite that dies on its
		// last spec leaves nothing behind.
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		if len(f.Suite) > 0 {
			if werr := writeBenchFile(path, f); werr != nil {
				fmt.Fprintf(stderr, "uhtmsim: writing %s: %v\n", path, werr)
			} else {
				fmt.Fprintf(stdout, "wrote partial %s (%d benchmarks before the failure)\n", path, len(f.Suite))
			}
		}
		return 1
	}
	if err := writeBenchFile(path, f); err != nil {
		fmt.Fprintf(stderr, "uhtmsim: writing %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(f.Suite))

	if *baseline == "" {
		return 0
	}
	bf, err := os.Open(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: %v\n", err)
		return 1
	}
	base, err := bench.Read(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintf(stderr, "uhtmsim: reading baseline %s: %v\n", *baseline, err)
		return 1
	}
	failures, notes := bench.Compare(base, f, *tol)
	for _, n := range notes {
		fmt.Fprintf(stdout, "note: %s\n", n)
	}
	for _, fl := range failures {
		fmt.Fprintf(stderr, "FAIL %s\n", fl)
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "uhtmsim: %d benchmark regression(s) vs %s\n", len(failures), *baseline)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions vs %s (tol %.0f%%)\n", *baseline, 100**tol)
	return 0
}

// writeBenchFile creates path and writes the bench document, closing
// the file on every path.
func writeBenchFile(path string, f bench.File) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, `usage: uhtmsim [-scale f] [-seed n] [-par n] [-shards n] [-json path] [-trace path] <experiment>
       uhtmsim -crash [-scale f] [-seed n] [-par n] [-json path]
`)
	for _, sc := range subcommands {
		fmt.Fprintf(w, "       %s\n", sc.synopsis)
	}
	fmt.Fprintf(w, "\nsubcommands:\n")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  %-14s %s\n", sc.name, sc.desc)
	}
	fmt.Fprintf(w, "\nexperiments:\n  table3   simulation configuration (Table III)\n")
	for _, e := range workload.Experiments() {
		fmt.Fprintf(w, "  %-8s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(w, "  all      everything above\n")
	fs.PrintDefaults()
}
