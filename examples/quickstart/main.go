// Quickstart: build a simulated 16-core hybrid DRAM/NVM machine, run
// durable transactions that touch both memories atomically, and show
// the throughput/abort statistics UHTM reports.
package main

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

func main() {
	// A deterministic engine: same seed, same run.
	eng := sim.NewEngine(1)

	// The machine of Table III running UHTM (staged detection, 4k-bit
	// signatures, signature isolation, hybrid undo/redo logging).
	m := core.NewMachine(eng, mem.DefaultConfig(), core.DefaultOptions())

	// Allocate one counter in DRAM (volatile) and one in NVM (durable).
	dram := mem.NewAllocator(mem.DRAM)
	nvm := mem.NewAllocator(mem.NVM)
	volatileCtr := dram.AllocLines(1)
	durableCtr := nvm.AllocLines(1)

	// Four threads increment both counters atomically: if a transaction
	// aborts, neither counter moves — the paper's DRAM+NVM consistency
	// guarantee.
	const perThread = 250
	for i := 0; i < 4; i++ {
		eng.Spawn("worker", func(th *sim.Thread) {
			c := m.NewCtx(th, 0) // conflict domain 0
			for k := 0; k < perThread; k++ {
				c.Run(func(tx *core.Tx) {
					tx.WriteU64(volatileCtr, tx.ReadU64(volatileCtr)+1)
					tx.WriteU64(durableCtr, tx.ReadU64(durableCtr)+1)
				})
			}
		})
	}
	elapsed := eng.Run()

	fmt.Printf("simulated time: %v\n", elapsed)
	fmt.Printf("volatile counter: %d\n", m.Store().ReadU64(volatileCtr))
	fmt.Printf("durable counter:  %d\n", m.Store().ReadU64(durableCtr))
	fmt.Printf("stats: %v\n", m.Stats())

	// Power failure: DRAM is lost, the redo log replays committed NVM
	// transactions.
	m.Crash()
	st := m.Recover()
	fmt.Printf("after crash+recovery: volatile=%d durable=%d (replayed %d tx)\n",
		m.Store().ReadU64(volatileCtr), m.Store().ReadU64(durableCtr), st.CommittedTx)
}
