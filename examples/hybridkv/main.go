// Hybridkv: the paper's Figure 1 scenario — a key-value store with a
// volatile B-Tree index (DRAM, fast scans) and a persistent HashMap
// (NVM, durable point ops), updated together in single transactions so
// the two indexes can never diverge, even across aborts and crashes.
package main

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/kv"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

func main() {
	eng := sim.NewEngine(7)
	m := core.NewMachine(eng, mem.DefaultConfig(), core.DefaultOptions())

	dal := mem.NewAllocator(mem.DRAM)
	nal := mem.NewAllocator(mem.NVM)
	store := kv.NewHybridIndex(m.Store(), dal, nal, 1024, 4)

	// Four serving threads, each owning one partition (the HiKV design),
	// inserting batches.
	for part := 0; part < 4; part++ {
		part := part
		eng.Spawn("server", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			rng := eng.Rand()
			for b := 0; b < 25; b++ {
				batch := make([]kv.KV, 8)
				for i := range batch {
					k := uint64(rng.Intn(500)) + 1
					batch[i] = kv.KV{Key: k, Val: []byte(fmt.Sprintf("part%d-val%d", part, k))}
				}
				store.PutBatch(c, part, batch)
			}
			// An ordered scan through the DRAM index (the operation the
			// B-Tree exists for).
			keys := store.Scan(c, part, 100, 10)
			fmt.Printf("partition %d: scan from key 100 → %v\n", part, keys)
		})
	}
	eng.Run()

	// Consistency check: every partition's DRAM index and NVM table
	// agree exactly.
	st := m.Store()
	for i, p := range store.Parts {
		idx := 0
		p.Index.Scan(st, 0, func(k uint64, _ mem.Addr) bool { idx++; return true })
		tbl := p.Table.Len(st)
		fmt.Printf("partition %d: index=%d entries, table=%d entries, consistent=%v\n",
			i, idx, tbl, idx == tbl)
	}
	fmt.Printf("stats: %v\n", m.Stats())
}
