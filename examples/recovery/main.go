// Recovery: inject a power failure in the middle of a transactional
// workload and show that redo-log replay restores exactly the committed
// prefix — every committed bank transfer preserved, every in-flight one
// discarded, and the invariant (total balance) intact.
package main

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

const (
	accounts       = 64
	initialBalance = 1000
)

func main() {
	eng := sim.NewEngine(23)
	mc := mem.DefaultConfig()
	mc.Cores = 4
	m := core.NewMachine(eng, mc, core.DefaultOptions())

	// A persistent "bank": one NVM line per account.
	nal := mem.NewAllocator(mem.NVM)
	base := nal.AllocLines(accounts)
	acct := func(i int) mem.Addr { return base + mem.Addr(i)*mem.LineSize }
	for i := 0; i < accounts; i++ {
		m.Store().WriteU64(acct(i), initialBalance)
	}
	// Setup must be durable before the crash window (initial state).
	m.Store().PersistLiveNVM()

	// Four threads move money between random accounts, transactionally.
	for t := 0; t < 4; t++ {
		eng.Spawn("teller", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			rng := eng.Rand()
			for k := 0; k < 500; k++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				c.Run(func(tx *core.Tx) {
					f := tx.ReadU64(acct(from))
					if f == 0 {
						return
					}
					tx.WriteU64(acct(from), f-1)
					tx.WriteU64(acct(to), tx.ReadU64(acct(to))+1)
				})
			}
		})
	}

	// Pull the plug mid-run.
	eng.HaltAt(300 * sim.Microsecond)
	eng.Run()
	fmt.Printf("power failure at 300µs after %d commits\n", m.Stats().Commits)

	m.Crash()
	st := m.Recover()
	fmt.Printf("recovery replayed %d committed transactions (%d lines)\n", st.CommittedTx, st.AppliedLines)

	total := uint64(0)
	for i := 0; i < accounts; i++ {
		total += m.Store().ReadU64(acct(i))
	}
	fmt.Printf("total balance after recovery: %d (expected %d) — invariant %s\n",
		total, accounts*initialBalance,
		map[bool]string{true: "HOLDS", false: "VIOLATED"}[total == accounts*initialBalance])
}
