// Longrunning: the Section VI-B scenario — an Echo key-value store where
// rare, multi-megabyte read-only transactions coexist with a stream of
// small puts. On a bounded HTM every giant read aborts with a capacity
// overflow and serializes the store; UHTM runs it on the fast path.
package main

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/kv"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

func run(name string, opts core.Options) {
	eng := sim.NewEngine(11)
	mc := mem.DefaultConfig()
	mc.Cores = 4
	m := core.NewMachine(eng, mc, opts)

	dal := mem.NewAllocator(mem.DRAM)
	nal := mem.NewAllocator(mem.NVM)
	store := kv.NewEcho(m.Store(), dal, nal, 1<<14, 1, 8, 1024)

	// Preload 24 MB of pairs — a full scan dwarfs the 16 MB LLC.
	const resident = 24 << 10
	for k := 1; k <= resident; k++ {
		store.Table.Put(m.Store(), uint64(k), make([]byte, 1024))
	}

	for t := 0; t < 4; t++ {
		t := t
		eng.Spawn("thread", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			rng := eng.Rand()
			for op := 0; op < 60; op++ {
				if t == 0 && op%30 == 29 {
					// The rare long-running read-only transaction: a
					// contiguous 18 MB slice of the keyspace.
					keys := make([]uint64, 18<<10)
					for i := range keys {
						keys[i] = uint64((op+i)%resident) + 1
					}
					store.ReadOnlyBatch(c, keys)
					continue
				}
				k := uint64(rng.Intn(resident)) + 1
				v := make([]byte, 1024)
				c.Run(func(tx *core.Tx) { store.Table.Put(tx, k, v) })
			}
		})
	}
	elapsed := eng.Run()
	s := m.Stats()
	fmt.Printf("%-12s: %6.0f tx/s  %v\n", name, float64(s.Commits)/elapsed.Seconds(), s)
}

func main() {
	bounded := core.DefaultOptions()
	bounded.Detect = core.DetectLLCBounded
	bounded.Paranoid = false
	uhtm := core.DefaultOptions()
	uhtm.Paranoid = false

	run("LLC-Bounded", bounded)
	run("UHTM", uhtm)
}
