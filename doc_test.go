package uhtm_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestInternalPackagesDocumented fails when any internal/* package lacks
// a package doc comment. ARCHITECTURE.md's package map assumes every
// package states its own role in the design; an undocumented package is
// doc drift, caught here rather than in review.
func TestInternalPackagesDocumented(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found — run from the repo root")
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment", name, dir)
			}
		}
	}
}

// TestExportedIdentifiersDocumented requires a doc comment on every
// exported top-level identifier of every internal package — added with
// internal/server (a network-facing API whose docs SERVING.md links
// into), and enforced repo-wide so no package regresses below it.
//
// A constant or variable inside a grouped declaration also counts as
// documented when the group itself has a doc comment (the standard Go
// idiom, e.g. "Common durations." over sim's time units) or when a
// sibling spec's doc comment in the same group mentions it by name
// (the idiom used for families like "EvTxRead / EvTxWrite: ..." in
// internal/trace, whose const block has no group doc).
func TestExportedIdentifiersDocumented(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for _, pkg := range pkgs {
			for fname, f := range pkg.Files {
				for _, decl := range f.Decls {
					checkDeclDocumented(t, fset, fname, decl)
				}
			}
		}
	}
}

// checkDeclDocumented reports undocumented exported identifiers in one
// top-level declaration.
func checkDeclDocumented(t *testing.T, fset *token.FileSet, fname string, decl ast.Decl) {
	t.Helper()
	undocumented := func(pos token.Pos, what, name string) {
		t.Errorf("%s:%d: exported %s %s has no doc comment",
			fname, fset.Position(pos).Line, what, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			undocumented(d.Pos(), what, d.Name.Name)
		}
	case *ast.GenDecl:
		// Gather every comment in the group so "documented by mention"
		// can be resolved against siblings.
		var groupDocs []string
		if d.Doc != nil {
			groupDocs = append(groupDocs, d.Doc.Text())
		}
		for _, spec := range d.Specs {
			if s, ok := spec.(*ast.ValueSpec); ok {
				if s.Doc != nil {
					groupDocs = append(groupDocs, s.Doc.Text())
				}
				if s.Comment != nil {
					groupDocs = append(groupDocs, s.Comment.Text())
				}
			}
		}
		mentioned := func(name string) bool {
			re := regexp.MustCompile(fmt.Sprintf(`\b%s\b`, regexp.QuoteMeta(name)))
			for _, doc := range groupDocs {
				if re.MatchString(doc) {
					return true
				}
			}
			return false
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					undocumented(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil && s.Comment == nil && !mentioned(n.Name) {
						undocumented(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
}
