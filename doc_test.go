package uhtm_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackagesDocumented fails when any internal/* package lacks
// a package doc comment. ARCHITECTURE.md's package map assumes every
// package states its own role in the design; an undocumented package is
// doc drift, caught here rather than in review.
func TestInternalPackagesDocumented(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found — run from the repo root")
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment", name, dir)
			}
		}
	}
}
