package uhtm_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"uhtm/internal/server"
)

// TestServingDocCoversCommands pins SERVING.md's command table to
// server.Commands() — the registry the dispatcher actually executes —
// in both directions: a command the server implements but the doc
// omits fails, and a command the doc's table lists but the server
// doesn't implement fails. The description cells must match the
// registry verbatim so the two cannot drift apart silently.
func TestServingDocCoversCommands(t *testing.T) {
	data, err := os.ReadFile("SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	// Collect the documented command names: table rows of the form
	// "| `NAME` | ... |" anywhere in the file.
	rowRe := regexp.MustCompile("(?m)^\\| `([A-Z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}

	implemented := map[string]bool{}
	for _, c := range server.Commands() {
		implemented[c.Name] = true
		if !documented[c.Name] {
			t.Errorf("SERVING.md command table omits %s — add a row for it", c.Name)
			continue
		}
		// The row's description cell must be the registry's Desc.
		row := fmt.Sprintf("| `%s` |", c.Name)
		i := strings.Index(doc, row)
		line := doc[i:]
		if j := strings.IndexByte(line, '\n'); j >= 0 {
			line = line[:j]
		}
		if !strings.Contains(line, "| "+c.Desc+" |") {
			t.Errorf("SERVING.md row for %s does not carry the registry description %q:\n%s",
				c.Name, c.Desc, line)
		}
		wantMulti := "no"
		if c.InMulti {
			wantMulti = "yes"
		}
		if !strings.Contains(line, "| "+wantMulti+" |") {
			t.Errorf("SERVING.md row for %s: In-MULTI column should be %q:\n%s",
				c.Name, wantMulti, line)
		}
	}
	for name := range documented {
		if !implemented[name] {
			t.Errorf("SERVING.md documents %s but the server does not implement it", name)
		}
	}

	// The operational error strings clients must handle are documented.
	for _, want := range []string{
		"EXECABORT",
		"lost power",
		"shutting down",
		"protocol error",
		"is not allowed inside MULTI on a sharded server",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("SERVING.md no longer mentions the %q error", want)
		}
	}

	// The sharded-serving surface stays documented: the CLI knobs and
	// the report/STATS fields the load generator exposes for the 2PC
	// path.
	for _, want := range []string{
		"-shards",
		"-crossfrac",
		"cross_frac",
		"cross_commits",
		"cross_aborts",
		"ShardOf",
		"RecoverServing",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("SERVING.md no longer documents %q (sharded serving section)", want)
		}
	}
}
