// Package uhtm_test exposes the shared benchmark suite
// (internal/bench) to `go test -bench`: one testing.B benchmark per
// table/figure of the paper (regenerating its rows at a reduced scale
// and reporting headline numbers as custom metrics), plus
// micro-benchmarks of the core machinery. The same specs back the
// `uhtmsim bench` subcommand, which emits the machine-readable
// BENCH_<n>.json baseline that CI gates on.
//
// Full-size figure runs are produced by `go run ./cmd/uhtmsim all`; the
// benchmarks here use reduced scales so `go test -bench=.` finishes in
// minutes while still exercising every experiment end to end. Figure
// benchmarks fail loudly when a grid cell they report on is missing,
// and report their metrics on every iteration.
package uhtm_test

import (
	"testing"

	"uhtm/internal/bench"
)

// TestSuiteCoversWrappers pins the wrapper list below to the shared
// suite: a spec added to internal/bench without a Benchmark wrapper
// here would run under `uhtmsim bench` but be invisible to
// `go test -bench`, and CI would gate on a benchmark nobody can
// reproduce with the standard tooling.
func TestSuiteCoversWrappers(t *testing.T) {
	wrapped := map[string]bool{
		"Fig2": true, "Fig6": true, "Fig7": true, "Fig8": true,
		"Fig9a": true, "Fig9b": true, "Fig10": true, "Ablations": true,
		"ShardCross": true, "TxSmallCommit": true, "SignatureInsert": true,
		"SignatureCheck": true, "RedoLogAppend": true, "LogReplay": true,
		"RecoveryReplay": true, "SimEngineYield": true,
	}
	for _, s := range bench.Specs() {
		if !wrapped[s.Name] {
			t.Errorf("suite spec %q has no Benchmark wrapper in bench_test.go", s.Name)
		}
		delete(wrapped, s.Name)
	}
	for name := range wrapped {
		t.Errorf("wrapper %q has no suite spec in internal/bench", name)
	}
}

func BenchmarkFig2(b *testing.B)            { bench.Fig2(b) }
func BenchmarkFig6(b *testing.B)            { bench.Fig6(b) }
func BenchmarkFig7(b *testing.B)            { bench.Fig7(b) }
func BenchmarkFig8(b *testing.B)            { bench.Fig8(b) }
func BenchmarkFig9a(b *testing.B)           { bench.Fig9a(b) }
func BenchmarkFig9b(b *testing.B)           { bench.Fig9b(b) }
func BenchmarkFig10(b *testing.B)           { bench.Fig10(b) }
func BenchmarkAblations(b *testing.B)       { bench.Ablations(b) }
func BenchmarkShardCross(b *testing.B)      { bench.ShardCross(b) }
func BenchmarkTxSmallCommit(b *testing.B)   { bench.TxSmallCommit(b) }
func BenchmarkSignatureInsert(b *testing.B) { bench.SignatureInsert(b) }
func BenchmarkSignatureCheck(b *testing.B)  { bench.SignatureCheck(b) }
func BenchmarkRedoLogAppend(b *testing.B)   { bench.RedoLogAppend(b) }
func BenchmarkLogReplay(b *testing.B)       { bench.LogReplay(b) }
func BenchmarkRecoveryReplay(b *testing.B)  { bench.RecoveryReplay(b) }
func BenchmarkSimEngineYield(b *testing.B)  { bench.SimEngineYield(b) }
