// Package uhtm_test holds the benchmark harness: one testing.B benchmark
// per table/figure of the paper (regenerating its rows at a reduced
// scale and reporting headline numbers as custom metrics), plus
// micro-benchmarks of the core machinery.
//
// Full-size figure runs are produced by `go run ./cmd/uhtmsim all`; the
// benchmarks here use reduced scales so `go test -bench=.` finishes in
// minutes while still exercising every experiment end to end.
package uhtm_test

import (
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/wal"
	"uhtm/internal/workload"
)

// findResult picks the first result matching system and bench.
func findResult(rs []workload.Result, system string, b workload.Bench) *workload.Result {
	for i := range rs {
		if rs[i].System == system && rs[i].Bench == b {
			return &rs[i]
		}
	}
	return nil
}

// BenchmarkFig2 regenerates Figure 2 (LLC-Bounded vs Ideal) and reports
// the B-Tree and SkipList slowdown ratios.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig2(0.25)
		if i == 0 {
			bounded := findResult(rs, "LLC-Bounded", workload.BenchSkipList)
			ideal := findResult(rs, "Ideal", workload.BenchSkipList)
			if bounded != nil && ideal != nil && bounded.Throughput() > 0 {
				b.ReportMetric(ideal.Throughput()/bounded.Throughput(), "skiplist-slowdown-x")
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (all systems, PMDK + Echo) and
// reports UHTM 4k_opt's normalized throughput on SkipList.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig6(0.125)
		if i == 0 {
			base := findResult(rs, "LLC-Bounded", workload.BenchSkipList)
			uhtm := findResult(rs, "4k_opt", workload.BenchSkipList)
			if base != nil && uhtm != nil && base.Throughput() > 0 {
				b.ReportMetric(uhtm.Throughput()/base.Throughput(), "skiplist-4kopt-norm")
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (abort-rate decomposition) and
// reports the 4k_opt abort rate at the 100 KB footprint.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig7(0.125)
		if i == 0 {
			for _, r := range rs {
				if r.System == "4k_opt" {
					b.ReportMetric(100*r.Stats.AbortRate(), "4kopt-abort-%")
					break
				}
			}
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (long-running read-only
// transactions) and reports UHTM's speedup over the bounded baseline at
// the 0.5% fraction.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig8(0.125)
		if i == 0 && len(rs) >= 2 && rs[0].Throughput() > 0 {
			b.ReportMetric(rs[1].Throughput()/rs[0].Throughput(), "uhtm-speedup-x")
		}
	}
}

// BenchmarkFig9a regenerates Figure 9a (Hybrid-Index store).
func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig9a(0.25)
		if i == 0 {
			var sig, opt float64
			for _, r := range rs {
				if r.System == "512_sig" && sig == 0 {
					sig = r.Throughput()
				}
				if r.System == "512_opt" && opt == 0 {
					opt = r.Throughput()
				}
			}
			if sig > 0 {
				b.ReportMetric(100*(opt-sig)/sig, "opt-gain-%")
			}
		}
	}
}

// BenchmarkFig9b regenerates Figure 9b (Dual store).
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Fig9b(0.25)
	}
}

// BenchmarkFig10 regenerates Figure 10 (undo vs redo DRAM logging) and
// reports the undo/redo throughput ratio at the largest footprint.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, _ := workload.Fig10(0.25)
		if i == 0 && len(tbl.Rows) > 0 {
			_ = tbl // ratios are in the printed table; see uhtmsim fig10
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation table
// (resolution policy, DRAM cache, isolation, DRAM logging).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Ablations(0.25)
	}
}

// --- Micro-benchmarks of the substrate ---

// BenchmarkTxSmallCommit measures a minimal durable transaction (one
// NVM line) end to end through the machine.
func BenchmarkTxSmallCommit(b *testing.B) {
	eng := sim.NewEngine(1)
	opts := core.DefaultOptions()
	opts.Paranoid = false
	mc := mem.DefaultConfig()
	mc.Cores = 1
	m := core.NewMachine(eng, mc, opts)
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	b.ResetTimer()
	eng.Spawn("bench", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for i := 0; i < b.N; i++ {
			c.Run(func(tx *core.Tx) {
				tx.WriteU64(a, uint64(i))
			})
		}
	})
	eng.Run()
}

// BenchmarkSignatureInsert measures Bloom-filter insertion.
func BenchmarkSignatureInsert(b *testing.B) {
	f := signature.NewFilter(signature.Bits4K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(mem.Addr(i) * mem.LineSize)
	}
}

// BenchmarkSignatureCheck measures a signature probe against a
// half-full filter.
func BenchmarkSignatureCheck(b *testing.B) {
	p := signature.NewPair(signature.Bits4K)
	for i := 0; i < 400; i++ {
		p.AddWrite(mem.Addr(i) * mem.LineSize)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CheckWrite(mem.Addr(i) * mem.LineSize)
	}
}

// BenchmarkRedoLogAppend measures hardware redo-log appends into
// simulated NVM.
func BenchmarkRedoLogAppend(b *testing.B) {
	s := mem.NewStore(mem.DefaultConfig())
	l := wal.NewLog(s, mem.NVMLogBase, 32<<20, true)
	var data mem.Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(wal.Record{Type: wal.RecWrite, TxID: 1, Addr: mem.NVMBase, Data: data})
		if l.Len() > l.Slots()/2 {
			l.Reclaim(l.Head())
		}
	}
}

// BenchmarkLogReplay measures crash recovery over a populated log.
func BenchmarkLogReplay(b *testing.B) {
	s := mem.NewStore(mem.DefaultConfig())
	l := wal.NewLog(s, mem.NVMLogBase, 32<<20, true)
	var data mem.Line
	for tx := uint64(1); tx <= 100; tx++ {
		for j := 0; j < 16; j++ {
			l.Append(wal.Record{Type: wal.RecWrite, TxID: tx, Addr: mem.NVMBase + mem.Addr(j)*64, Data: data})
		}
		l.Append(wal.Record{Type: wal.RecCommit, TxID: tx, LSN: tx})
	}
	s.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Replay()
	}
}

// BenchmarkSimEngineYield measures the scheduler handoff cost — the
// simulator's fundamental overhead per memory access.
func BenchmarkSimEngineYield(b *testing.B) {
	eng := sim.NewEngine(1)
	eng.Spawn("spin", func(th *sim.Thread) {
		for i := 0; i < b.N; i++ {
			th.Sync()
			th.Advance(sim.Nanosecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}

var _ = stats.CauseCapacity // keep import stable if metrics change
