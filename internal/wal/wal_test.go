package wal

import (
	"testing"
	"testing/quick"

	"uhtm/internal/mem"
)

func newStore() *mem.Store { return mem.NewStore(mem.DefaultConfig()) }

func lineWith(b byte) mem.Line {
	var l mem.Line
	for i := range l {
		l[i] = b
	}
	return l
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(typ uint8, txID uint64, addr uint64, fill byte, lsn uint64) bool {
		r := Record{
			Type: RecordType(typ%3 + 1),
			TxID: txID,
			Addr: mem.Addr(addr &^ 63),
			Data: lineWith(fill),
			LSN:  lsn,
		}
		var buf [RecordSize]byte
		encode(r, &buf)
		got, ok := decode(&buf)
		return ok && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	var buf [RecordSize]byte
	if _, ok := decode(&buf); ok {
		t.Error("decoded zero buffer")
	}
}

func TestAppendRead(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	r := Record{Type: RecWrite, TxID: 7, Addr: mem.NVMBase + 128, Data: lineWith(0x5A)}
	seq := l.Append(r)
	got, ok := l.Read(seq)
	if !ok || got != r {
		t.Fatalf("Read(%d) = %+v ok=%v", seq, got, ok)
	}
	if l.Len() != 1 || l.Appends != 1 {
		t.Errorf("Len=%d Appends=%d", l.Len(), l.Appends)
	}
}

func TestReadOutOfWindow(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.DRAMLogBase, 1<<20, false)
	if _, ok := l.Read(0); ok {
		t.Error("read from empty log")
	}
	l.Append(Record{Type: RecCommit, TxID: 1})
	l.Reclaim(1)
	if _, ok := l.Read(0); ok {
		t.Error("read of reclaimed record")
	}
}

func TestReclaimPastHeadPanics(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.DRAMLogBase, 1<<20, false)
	defer func() {
		if recover() == nil {
			t.Error("reclaim past head did not panic")
		}
	}()
	l.Reclaim(5)
}

func TestRingWrapAround(t *testing.T) {
	s := newStore()
	// Small ring: a handful of slots.
	size := mem.Addr(mem.LineSize + 4*RecordSize)
	l := NewLog(s, mem.DRAMLogBase, size, false)
	if l.Slots() != 4 {
		t.Fatalf("Slots = %d, want 4", l.Slots())
	}
	for i := uint64(0); i < 10; i++ {
		l.Append(Record{Type: RecWrite, TxID: i, Addr: mem.DRAMBase, Data: lineWith(byte(i))})
		l.Reclaim(i) // keep ≤2 live
		if r, ok := l.Read(i); !ok || r.TxID != i {
			t.Fatalf("after wrap, Read(%d) = %+v ok=%v", i, r, ok)
		}
	}
}

func TestFullRingPanics(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.DRAMLogBase, mem.Addr(mem.LineSize+2*RecordSize), false)
	l.Append(Record{Type: RecCommit})
	l.Append(Record{Type: RecCommit})
	defer func() {
		if recover() == nil {
			t.Error("full ring did not panic")
		}
	}()
	l.Append(Record{Type: RecCommit})
}

// TestReplayAppliesOnlyCommitted is the crash-recovery core: write
// records for two transactions, commit only one, crash, replay, and
// check the durable outcome.
func TestReplayAppliesOnlyCommitted(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	a1, a2 := mem.NVMBase+0x100*64, mem.NVMBase+0x200*64

	l.Append(Record{Type: RecWrite, TxID: 1, Addr: a1, Data: lineWith(0x11)})
	l.Append(Record{Type: RecCommit, TxID: 1})
	l.Append(Record{Type: RecWrite, TxID: 2, Addr: a2, Data: lineWith(0x22)})
	// no commit for tx 2 — crash now
	s.Crash()

	st := l.Replay()
	if st.CommittedTx != 1 || st.AppliedLines != 1 {
		t.Errorf("replay stats = %+v", st)
	}
	if st.DiscardedTx != 1 || st.DiscardedRecs != 1 {
		t.Errorf("discard stats = %+v", st)
	}
	want := lineWith(0x11)
	if got := s.PeekLine(a1); got != want {
		t.Error("committed line not recovered")
	}
	if got := s.PeekLine(a2); got != (mem.Line{}) {
		t.Error("uncommitted line leaked into recovered state")
	}
	// Recovery must itself be durable (replay persists).
	if got := s.DurableLine(a1); got != want {
		t.Error("recovered line not persisted")
	}
}

func TestReplayDiscardsAborted(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	a := mem.NVMBase + 64
	l.Append(Record{Type: RecWrite, TxID: 3, Addr: a, Data: lineWith(0x33)})
	l.Append(Record{Type: RecCommit, TxID: 3})
	l.Append(Record{Type: RecAbort, TxID: 3}) // abort wins (deferred log deletion)
	s.Crash()
	st := l.Replay()
	if st.AppliedLines != 0 {
		t.Errorf("aborted tx applied: %+v", st)
	}
	if got := s.PeekLine(a); got != (mem.Line{}) {
		t.Error("aborted write recovered")
	}
}

// corruptDurable flips one durable byte at a — the footprint of a torn
// write where one of a record's cache lines holds stale data.
func corruptDurable(s *mem.Store, a mem.Addr) {
	la := mem.LineOf(a)
	line := s.DurableLine(la)
	line[mem.LineOffset(a)] ^= 0xFF
	s.PersistLine(la, &line)
}

// TestReplaySkipsCorruptRecord: a record whose durable bytes were torn
// must fail its checksum and be skipped (counted in TornRecs), while
// intact records on the same ring still replay. Without the checksum,
// replay would write tx 2's corrupted line image straight into data
// NVM.
func TestReplaySkipsCorruptRecord(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	a1, a2 := mem.NVMBase+0x100*64, mem.NVMBase+0x200*64
	l.Append(Record{Type: RecWrite, TxID: 1, Addr: a1, Data: lineWith(0x11)})
	l.Append(Record{Type: RecCommit, TxID: 1, LSN: 1})
	seq := l.Append(Record{Type: RecWrite, TxID: 2, Addr: a2, Data: lineWith(0x22)})
	l.Append(Record{Type: RecCommit, TxID: 2, LSN: 2})
	corruptDurable(s, l.slotAddr(seq)+24) // inside tx 2's line image
	s.Crash()

	st := l.Replay()
	if st.TornRecs != 1 {
		t.Errorf("TornRecs = %d, want 1", st.TornRecs)
	}
	if st.CommittedTx != 1 || st.AppliedLines != 1 {
		t.Errorf("replay stats = %+v", st)
	}
	if got := s.DurableLine(a1); got != lineWith(0x11) {
		t.Error("intact committed record not recovered")
	}
	if got := s.DurableLine(a2); got != (mem.Line{}) {
		t.Error("torn record's line image leaked into recovered state")
	}
}

// TestReplaySkipsTruncatedTrailingRecord: appends persist a record line
// by line, so a power cut mid-append can leave a prefix of the record
// durable. Model the cut after the first line: the truncated trailing
// record must fail validation and be skipped, with no effect on earlier
// records.
func TestReplaySkipsTruncatedTrailingRecord(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	a1, a2 := mem.NVMBase+0x100*64, mem.NVMBase+0x200*64
	l.Append(Record{Type: RecWrite, TxID: 1, Addr: a1, Data: lineWith(0x11)})
	l.Append(Record{Type: RecCommit, TxID: 1, LSN: 1})
	seq := l.Append(Record{Type: RecWrite, TxID: 2, Addr: a2, Data: lineWith(0x22)})
	start := l.slotAddr(seq)
	// Zero every durable line of the record after its first — those
	// writes "never reached" NVM. (Later slots are unwritten, so the
	// zeroed lines hold only this record's bytes.)
	var zero mem.Line
	for a := mem.LineOf(start) + mem.LineSize; a < start+RecordSize; a += mem.LineSize {
		s.PersistLine(a, &zero)
	}
	s.Crash()

	st := l.Replay()
	if st.TornRecs != 1 {
		t.Errorf("TornRecs = %d, want 1", st.TornRecs)
	}
	if st.CommittedTx != 1 || st.AppliedLines != 1 || st.DiscardedRecs != 0 {
		t.Errorf("replay stats = %+v", st)
	}
	if got := s.DurableLine(a2); got != (mem.Line{}) {
		t.Error("truncated record's line image leaked into recovered state")
	}
}

// TestReplayAllCountsTorn: the cross-ring replay path reports torn
// slots too, and a torn commit mark demotes its transaction to
// uncommitted (its writes are discarded, not applied).
func TestReplayAllCountsTorn(t *testing.T) {
	s := newStore()
	rs := NewRings(s, mem.NVMLogBase, mem.LogAreaSize, 2, true)
	a := mem.NVMBase + 64
	rs.ForCore(0).Append(Record{Type: RecWrite, TxID: 1, Addr: a, Data: lineWith(0x11)})
	seq := rs.ForCore(0).Append(Record{Type: RecCommit, TxID: 1, LSN: 1})
	corruptDurable(s, rs.ForCore(0).slotAddr(seq))
	s.Crash()

	st := rs.ReplayAll(0)
	if st.TornRecs != 1 {
		t.Errorf("TornRecs = %d, want 1", st.TornRecs)
	}
	if st.CommittedTx != 0 || st.DiscardedTx != 1 {
		t.Errorf("replay stats = %+v", st)
	}
	if got := s.DurableLine(a); got != (mem.Line{}) {
		t.Error("write with torn commit mark was applied")
	}
}

// TestUndoRingNotDurable checks DRAM undo-log records do not survive a
// crash — the durable window after crash must be empty or garbage.
func TestUndoRingNotDurable(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.DRAMLogBase, 1<<20, false)
	l.Append(Record{Type: RecWrite, TxID: 9, Addr: mem.DRAMBase, Data: lineWith(0x99)})
	s.Crash()
	if recs := l.Records(true); len(recs) != 0 {
		t.Errorf("DRAM log yielded %d records after crash", len(recs))
	}
}

func TestRecoverWindowSurvivesCrash(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	for i := 0; i < 5; i++ {
		l.Append(Record{Type: RecCommit, TxID: uint64(i)})
	}
	l.Reclaim(2)
	s.Crash()
	head, tail := l.RecoverWindow()
	if head != 5 || tail != 2 {
		t.Errorf("RecoverWindow = (%d,%d), want (5,2)", head, tail)
	}
}

func TestRings(t *testing.T) {
	s := newStore()
	rs := NewRings(s, mem.NVMLogBase, mem.LogAreaSize, 16, true)
	if rs.Count() != 16 {
		t.Fatalf("Count = %d", rs.Count())
	}
	for i := 0; i < 16; i++ {
		rs.ForCore(i).Append(Record{Type: RecWrite, TxID: uint64(i), Addr: mem.NVMBase + mem.Addr(i*64), Data: lineWith(byte(i))})
		// LSNs start at 1: LSN 0 would sit at the initial checkpoint and
		// be skipped as a stale truncation leftover.
		rs.ForCore(i).Append(Record{Type: RecCommit, TxID: uint64(i), LSN: uint64(i + 1)})
	}
	if rs.Appends() != 32 {
		t.Errorf("Appends = %d", rs.Appends())
	}
	s.Crash()
	st := rs.ReplayAll(0)
	if st.CommittedTx != 16 || st.AppliedLines != 16 {
		t.Errorf("ReplayAll = %+v", st)
	}
}

// TestReplayAllCrossRingOrder is the regression test for the recovery
// ordering bug: two committed transactions on different cores' rings
// write the same line; replay must apply them in global commit (LSN)
// order, not ring order.
func TestReplayAllCrossRingOrder(t *testing.T) {
	s := newStore()
	rs := NewRings(s, mem.NVMLogBase, mem.LogAreaSize, 2, true)
	a := mem.NVMBase + 64
	// Tx 1 on core 1 commits FIRST (LSN 1) writing 0x11; tx 2 on core 0
	// commits SECOND (LSN 2) writing 0x22. Naive ring-order replay
	// (core 0 then core 1) would leave 0x11.
	rs.ForCore(1).Append(Record{Type: RecWrite, TxID: 1, Addr: a, Data: lineWith(0x11)})
	rs.ForCore(1).Append(Record{Type: RecCommit, TxID: 1, LSN: 1})
	rs.ForCore(0).Append(Record{Type: RecWrite, TxID: 2, Addr: a, Data: lineWith(0x22)})
	rs.ForCore(0).Append(Record{Type: RecCommit, TxID: 2, LSN: 2})
	s.Crash()
	st := rs.ReplayAll(0)
	if st.CommittedTx != 2 {
		t.Fatalf("replay stats = %+v", st)
	}
	if got := s.PeekLine(a); got != lineWith(0x22) {
		t.Errorf("line = %#x..., want the later commit (0x22)", got[0])
	}
}

// Property: replay is idempotent — replaying twice leaves the same
// durable state.
func TestQuickReplayIdempotent(t *testing.T) {
	f := func(ops []uint16, commitMask uint8) bool {
		s := newStore()
		l := NewLog(s, mem.NVMLogBase, 1<<20, true)
		for i, op := range ops {
			if i >= 16 {
				break
			}
			tx := uint64(op%4) + 1
			a := mem.NVMBase + mem.Addr(op%64)*64
			l.Append(Record{Type: RecWrite, TxID: tx, Addr: a, Data: lineWith(byte(op))})
		}
		for tx := uint64(1); tx <= 4; tx++ {
			if commitMask&(1<<tx) != 0 {
				l.Append(Record{Type: RecCommit, TxID: tx})
			}
		}
		s.Crash()
		l.Replay()
		snap1 := s.SnapshotLive()
		l.Replay()
		snap2 := s.SnapshotLive()
		if len(snap1) != len(snap2) {
			return false
		}
		for a, v := range snap1 {
			if snap2[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
