package wal

import (
	"testing"

	"uhtm/internal/mem"
)

// ckpt builds a small fuzzy checkpoint for the tests below.
func ckpt(seq, low uint64, active ...CkptActive) Checkpoint {
	return Checkpoint{Seq: seq, LowWater: low, DirtyLines: int(seq * 3), Active: active}
}

// sameCkpt compares everything but BeginSeq (assigned at append time).
func sameCkpt(a, b Checkpoint) bool {
	if a.Seq != b.Seq || a.LowWater != b.LowWater || a.DirtyLines != b.DirtyLines || len(a.Active) != len(b.Active) {
		return false
	}
	for i := range a.Active {
		if a.Active[i] != b.Active[i] {
			return false
		}
	}
	return true
}

// TestCheckpointRoundTrip: a checkpoint group decodes back exactly, from
// both the live and the durable image, via the cell-style direct lookup
// and the scanning fallback.
func TestCheckpointRoundTrip(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	want := ckpt(1, 42, CkptActive{TxID: 7, CommitLSN: 43}, CkptActive{TxID: 9})
	begin := l.AppendCheckpoint(want)

	for _, durable := range []bool{false, true} {
		got, ok := l.CheckpointAt(begin, durable)
		if !ok || !sameCkpt(got, want) || got.BeginSeq != begin {
			t.Errorf("CheckpointAt(durable=%v) = %+v, %v; want %+v", durable, got, ok, want)
		}
		got, ok = l.LatestCheckpoint(durable)
		if !ok || !sameCkpt(got, want) {
			t.Errorf("LatestCheckpoint(durable=%v) = %+v, %v; want %+v", durable, got, ok, want)
		}
	}

	// CheckpointAt on a non-begin record must fail, not mis-decode.
	if _, ok := l.CheckpointAt(begin+1, false); ok {
		t.Error("CheckpointAt on a RecCkptActive record succeeded")
	}
}

// TestLatestCheckpointPicksNewest: with two complete groups on the ring
// the newest wins, and truncating the older one keeps the answer.
func TestLatestCheckpointPicksNewest(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	b1 := l.AppendCheckpoint(ckpt(1, 10))
	want := ckpt(2, 20, CkptActive{TxID: 5, CommitLSN: 21})
	l.AppendCheckpoint(want)

	got, ok := l.LatestCheckpoint(true)
	if !ok || !sameCkpt(got, want) {
		t.Fatalf("LatestCheckpoint = %+v, %v; want %+v", got, ok, want)
	}
	l.Reclaim(b1 + 2) // drop group 1 (begin + end, no actives)
	if got, ok := l.LatestCheckpoint(true); !ok || !sameCkpt(got, want) {
		t.Errorf("after truncating group 1: LatestCheckpoint = %+v, %v", got, ok)
	}
}

// TestTornCheckpointFallsBack: a power failure can persist only some
// cache lines of a multi-record checkpoint group. Whatever part of the
// newest group is torn — begin, an active entry, or the end record —
// recovery must fall back to the previous complete checkpoint, and a
// direct cell-style lookup of the torn group must fail.
func TestTornCheckpointFallsBack(t *testing.T) {
	for _, tc := range []struct {
		name   string
		record uint64 // offset from the newest group's begin seq to corrupt
	}{
		{"torn-begin", 0},
		{"torn-active", 1},
		{"torn-end", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newStore()
			l := NewLog(s, mem.NVMLogBase, 1<<20, true)
			prev := ckpt(1, 10, CkptActive{TxID: 3, CommitLSN: 11})
			l.AppendCheckpoint(prev)
			b2 := l.AppendCheckpoint(ckpt(2, 20, CkptActive{TxID: 8}))
			corruptDurable(s, l.slotAddr(b2+tc.record)+16)
			s.Crash()

			if _, ok := l.CheckpointAt(b2, true); ok {
				t.Error("CheckpointAt on the torn group succeeded")
			}
			got, ok := l.LatestCheckpoint(true)
			if !ok || !sameCkpt(got, prev) {
				t.Errorf("LatestCheckpoint = %+v, %v; want fallback to %+v", got, ok, prev)
			}
		})
	}
}

// TestTruncatedCheckpointFallsBack: the tail of a checkpoint group never
// reached durability at all — the control block advanced only past the
// begin record (crash between per-record appends). The durable window
// then ends mid-group; the previous complete checkpoint must win.
func TestTruncatedCheckpointFallsBack(t *testing.T) {
	s := newStore()
	l := NewLog(s, mem.NVMLogBase, 1<<20, true)
	prev := ckpt(1, 10)
	l.AppendCheckpoint(prev)
	// Hand-append only the begin record of checkpoint 2, exactly as a
	// crash after the first append of AppendCheckpoint would leave it.
	var data mem.Line
	data[0] = 2 // two active entries that will never arrive
	b2 := l.Append(Record{Type: RecCkptBegin, TxID: 2, LSN: 20, Data: data})
	s.Crash()

	if _, ok := l.CheckpointAt(b2, true); ok {
		t.Error("CheckpointAt on the truncated group succeeded")
	}
	got, ok := l.LatestCheckpoint(true)
	if !ok || !sameCkpt(got, prev) {
		t.Errorf("LatestCheckpoint = %+v, %v; want fallback to %+v", got, ok, prev)
	}
}
