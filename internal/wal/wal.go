// Package wal implements the hardware logs of the paper's hybrid
// version management: an undo log in the reserved DRAM log area (old
// values of LLC-evicted DRAM lines, Section IV-B "DRAM Data") and a redo
// log in the reserved NVM log area (new values of transactional NVM
// lines, following the hardware-assisted logging design of [28]).
//
// Logs are rings of fixed-size records living *inside the simulated
// address space*, one ring per core (per-core logs, as in ATOM/DHTM
// [31], [30], keep reclamation a prefix operation). NVM log appends are
// persisted to the durable image line by line — the write-pending queue
// plus ADR makes an accepted log write durable, which is exactly the
// paper's durability point — so crash recovery reads real bytes back out
// of the durable image.
package wal

import (
	"fmt"
	"sort"

	"uhtm/internal/mem"
	"uhtm/internal/trace"
)

// RecordType tags a log record.
type RecordType uint8

const (
	// RecWrite carries a line image: the old value (undo log) or the
	// new value (redo log) of Addr.
	RecWrite RecordType = 1
	// RecCommit is the commit mark for TxID: all preceding RecWrite
	// records of that transaction are committed.
	RecCommit RecordType = 2
	// RecAbort marks TxID aborted; its RecWrite records are dead (redo)
	// or must be applied to roll back (undo).
	RecAbort RecordType = 3
	// RecPrepare is the 2PC prepare mark for a cross-shard transaction
	// (internal/shard): all preceding RecWrite records of TxID on this
	// ring are a durable prepared write set, but the transaction's fate
	// rests with the coordinator's decision record. Local replay ignores
	// it — a prepared-but-undecided group has no RecCommit and is
	// discarded like any uncommitted transaction.
	RecPrepare RecordType = 4
	// RecCkptBegin opens a fuzzy checkpoint record group (ARIES-style
	// begin_chkpt): TxID carries the checkpoint sequence number, LSN the
	// low-water commit LSN, Addr the dirty-line count, and Data[0:8] the
	// number of RecCkptActive records that follow.
	RecCkptBegin RecordType = 5
	// RecCkptActive is one active-transaction-table entry of a fuzzy
	// checkpoint: TxID is the in-flight transaction, LSN its commit-mark
	// LSN (0 when the mark is not yet logged).
	RecCkptActive RecordType = 6
	// RecCkptEnd closes a checkpoint group (end_chkpt), echoing the
	// begin record's sequence number and low-water LSN. A group without
	// a matching end record is torn and must be ignored in favor of the
	// previous complete one.
	RecCkptEnd RecordType = 7
)

// String names the record type for logs and dumps.
func (t RecordType) String() string {
	switch t {
	case RecWrite:
		return "write"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecPrepare:
		return "prepare"
	case RecCkptBegin:
		return "ckpt.begin"
	case RecCkptActive:
		return "ckpt.active"
	case RecCkptEnd:
		return "ckpt.end"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one log entry.
type Record struct {
	Type RecordType
	TxID uint64
	Addr mem.Addr // line address (RecWrite only)
	Data mem.Line // line image (RecWrite only)
	// LSN is the global commit sequence number stamped on RecCommit
	// records. The paper's memory controllers serialize concurrent log
	// appends into one log area, giving commits a total order; with
	// per-core rings the LSN preserves that order so cross-core writes
	// to the same line replay correctly.
	LSN uint64
}

// RecordSize is the on-"disk" footprint of an encoded record:
// 8 (type+magic) + 8 (txID) + 8 (addr) + 64 (data) + 8 (LSN) +
// 8 (checksum) = 104. Records span cache-line boundaries, so a power
// failure can persist some of a record's lines and not others; the
// trailing checksum makes every such torn write detectable at replay.
const RecordSize = 104

// payloadSize is the checksummed prefix of a record.
const payloadSize = RecordSize - 8

// recMagic guards against replaying garbage after a torn ring wrap.
const recMagic uint32 = 0x55AA17C3

// checksum is FNV-1a over the record payload. A memory controller would
// use ECC-grade CRC; any whole-buffer hash gives the property recovery
// needs — a record assembled from lines of two different writes (torn)
// or never fully written (truncated) fails verification.
func checksum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// encode serializes r into a RecordSize-byte buffer.
func encode(r Record, buf *[RecordSize]byte) {
	putU32(buf[0:], recMagic)
	buf[4] = byte(r.Type)
	putU64(buf[8:], r.TxID)
	putU64(buf[16:], uint64(r.Addr))
	copy(buf[24:24+mem.LineSize], r.Data[:])
	putU64(buf[24+mem.LineSize:], r.LSN)
	putU64(buf[payloadSize:], checksum(buf[:payloadSize]))
}

// decode parses a RecordSize-byte buffer; ok is false when the magic is
// absent (unwritten space) or the checksum does not match the payload
// (a torn or truncated write — some but not all of the record's cache
// lines reached durability, or the slot holds a stale mix of two ring
// generations).
func decode(buf *[RecordSize]byte) (r Record, ok bool) {
	if getU32(buf[0:]) != recMagic {
		return Record{}, false
	}
	if getU64(buf[payloadSize:]) != checksum(buf[:payloadSize]) {
		return Record{}, false
	}
	r.Type = RecordType(buf[4])
	r.TxID = getU64(buf[8:])
	r.Addr = mem.Addr(getU64(buf[16:]))
	copy(r.Data[:], buf[24:24+mem.LineSize])
	r.LSN = getU64(buf[24+mem.LineSize:])
	return r, true
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// ctrlSize is the control block at the base of each ring: head and tail
// (monotonic record sequence numbers), persisted alongside the data so
// recovery can find the live window.
const ctrlSize = mem.LineSize

// Log is one per-core log ring.
type Log struct {
	store   *mem.Store
	base    mem.Addr // control block address
	data    mem.Addr // first record slot
	slots   uint64   // capacity in records
	head    uint64   // next sequence number to write
	tail    uint64   // oldest live sequence number
	persist bool     // NVM ring: mirror every write to the durable image

	// hook, when set, fires at the ring's named injection points (see
	// the Point* constants); the crash framework uses it to kill the
	// simulation between any two protocol steps.
	hook func(point string)

	// pointPrefix, when non-empty, overrides the default
	// "wal.redo."/"wal.undo." injection-point prefix — used by logs that
	// are neither (the shard coordinator's decision log) so their crash
	// points get their own namespace.
	pointPrefix string

	// tracer, when set, receives append/truncate events; traceNow
	// supplies virtual timestamps and ringCore identifies the ring.
	tracer   *trace.Recorder
	traceNow func() int64
	ringCore int

	// Appends counts records written since creation (statistics).
	Appends uint64
}

// Injection-point suffixes fired by a Log. The full point name is the
// suffix prefixed with "wal.redo." (persistent/NVM ring) or "wal.undo."
// (volatile/DRAM ring), so a crash sweep distinguishes failures in the
// durability-critical redo path from harmless volatile-ring ones.
const (
	// PointAppendRecord fires before the record's bytes are written
	// (crash here: the append never happened).
	PointAppendRecord = "append.record"
	// PointAppendCtrl fires after the record's bytes are written but
	// before the control block advances head (crash here: the record is
	// durable but outside the recovery window — invisible, which is safe
	// because the commit is not yet acknowledged).
	PointAppendCtrl = "append.ctrl"
	// PointReclaimCtrl fires before the control block advances tail
	// (crash here: reclaimed records are still inside the window and
	// will be re-applied — replay must be idempotent).
	PointReclaimCtrl = "reclaim.ctrl"
)

func (l *Log) kind() string {
	if l.pointPrefix != "" {
		return l.pointPrefix
	}
	if l.persist {
		return "wal.redo."
	}
	return "wal.undo."
}

// SetPointPrefix overrides the ring's injection-point prefix (default
// "wal.redo."/"wal.undo." by durability). The prefix should end in ".".
func (l *Log) SetPointPrefix(p string) { l.pointPrefix = p }

func (l *Log) hit(suffix string) {
	if l.hook != nil {
		l.hook(l.kind() + suffix)
	}
}

// SetCrashpoint installs (or removes) the ring's crash-injection hook.
func (l *Log) SetCrashpoint(f func(point string)) { l.hook = f }

// SetTracer installs (or, with nil, removes) the ring's event recorder.
// now supplies virtual timestamps; core is the ring's index, stamped on
// every event.
func (l *Log) SetTracer(r *trace.Recorder, now func() int64, core int) {
	l.tracer, l.traceNow, l.ringCore = r, now, core
}

// redoBit encodes the ring kind into trace-event Arg payloads (bit 8:
// set for the durable NVM redo ring).
func (l *Log) redoBit() uint64 {
	if l.persist {
		return 1 << 8
	}
	return 0
}

// NewLog returns a ring over [base, base+size) of the given store.
// persist selects NVM durability semantics.
func NewLog(store *mem.Store, base mem.Addr, size mem.Addr, persist bool) *Log {
	if size <= ctrlSize+RecordSize {
		panic("wal: log region too small")
	}
	l := &Log{
		store:   store,
		base:    base,
		data:    base + ctrlSize,
		slots:   (uint64(size) - ctrlSize) / RecordSize,
		persist: persist,
	}
	l.writeCtrl()
	return l
}

// Slots returns the ring capacity in records.
func (l *Log) Slots() uint64 { return l.slots }

// Len returns the number of live records.
func (l *Log) Len() uint64 { return l.head - l.tail }

// Head returns the next sequence number to be written.
func (l *Log) Head() uint64 { return l.head }

// Tail returns the oldest live sequence number.
func (l *Log) Tail() uint64 { return l.tail }

func (l *Log) slotAddr(seq uint64) mem.Addr {
	return l.data + mem.Addr((seq%l.slots)*RecordSize)
}

// writeBytes copies b into simulated memory at a, persisting touched
// lines when the ring is durable.
func (l *Log) writeBytes(a mem.Addr, b []byte) {
	for len(b) > 0 {
		la := mem.LineOf(a)
		off := mem.LineOffset(a)
		n := mem.LineSize - off
		if n > len(b) {
			n = len(b)
		}
		line := l.store.PeekLine(la)
		copy(line[off:off+n], b[:n])
		l.store.WriteLine(la, &line)
		if l.persist {
			l.store.PersistLine(la, &line)
		}
		a += mem.Addr(n)
		b = b[n:]
	}
}

// readBytes fills b from simulated memory at a. When durable is set it
// reads the durable image (crash recovery); otherwise the live image.
func (l *Log) readBytes(a mem.Addr, b []byte, durable bool) {
	for len(b) > 0 {
		la := mem.LineOf(a)
		off := mem.LineOffset(a)
		n := mem.LineSize - off
		if n > len(b) {
			n = len(b)
		}
		var line mem.Line
		if durable {
			line = l.store.DurableLine(la)
		} else {
			line = l.store.PeekLine(la)
		}
		copy(b[:n], line[off:off+n])
		a += mem.Addr(n)
		b = b[n:]
	}
}

func (l *Log) writeCtrl() {
	var buf [16]byte
	putU64(buf[0:], l.head)
	putU64(buf[8:], l.tail)
	l.writeBytes(l.base, buf[:])
}

// Append adds a record to the ring and returns its sequence number. It
// panics when the ring is full — the paper traps to the OS to grow the
// log area; workloads here reclaim aggressively instead, so a full ring
// is a harness bug.
func (l *Log) Append(r Record) uint64 {
	if l.head-l.tail >= l.slots {
		panic(fmt.Sprintf("wal: log ring at %#x full (%d records); reclamation fell behind", uint64(l.base), l.slots))
	}
	var buf [RecordSize]byte
	encode(r, &buf)
	seq := l.head
	l.hit(PointAppendRecord)
	l.writeBytes(l.slotAddr(seq), buf[:])
	l.head++
	l.Appends++
	l.hit(PointAppendCtrl)
	l.writeCtrl()
	if l.tracer != nil {
		l.tracer.Emit(l.traceNow(), l.ringCore, trace.EvWALAppend,
			r.TxID, uint64(r.Addr), uint64(r.Type)|l.redoBit(), seq)
	}
	return seq
}

// Reclaim advances the tail to seq (exclusive of live data at seq and
// later), freeing ring space. Reclaiming past the head panics.
func (l *Log) Reclaim(seq uint64) {
	if seq > l.head {
		panic("wal: reclaim past head")
	}
	if seq > l.tail {
		l.hit(PointReclaimCtrl)
		l.tail = seq
		l.writeCtrl()
		if l.tracer != nil {
			l.tracer.Emit(l.traceNow(), l.ringCore, trace.EvWALTruncate,
				0, 0, l.redoBit(), seq)
		}
	}
}

// Read returns the record at sequence number seq from the live image.
func (l *Log) Read(seq uint64) (Record, bool) {
	if seq < l.tail || seq >= l.head {
		return Record{}, false
	}
	return l.readRecord(seq, false)
}

// readRecord decodes the slot at seq without bounds checks; callers
// supply the window.
func (l *Log) readRecord(seq uint64, durable bool) (Record, bool) {
	var buf [RecordSize]byte
	l.readBytes(l.slotAddr(seq), buf[:], durable)
	return decode(&buf)
}

// CkptActive is one active-transaction-table entry of a fuzzy
// checkpoint (see Checkpoint).
type CkptActive struct {
	TxID      uint64
	CommitLSN uint64 // 0 when the commit mark is not yet logged
}

// Checkpoint is a decoded fuzzy checkpoint record group: the ARIES-style
// begin_chkpt / active-transaction table / end_chkpt triple written by
// incremental log reclamation (internal/core.ReclaimLogs) without
// waiting for quiescence. LowWater is the commit LSN at or below which
// every committed transaction's data is persisted in place — the replay
// filter. DirtyLines summarizes the pendingNVM set drained just before
// the checkpoint was cut.
type Checkpoint struct {
	Seq        uint64 // monotonically increasing checkpoint number
	LowWater   uint64 // replay filter: commits at or below are in place
	DirtyLines int    // dirty-line summary at checkpoint time
	Active     []CkptActive
	BeginSeq   uint64 // ring sequence of the RecCkptBegin record
}

// AppendCheckpoint writes ck as a record group (begin, one active entry
// per in-flight transaction, end) and returns the begin record's ring
// sequence number. The group spans multiple records, so a power failure
// can persist a prefix of it; CheckpointAt and LatestCheckpoint treat
// any group without a validated end record as torn.
func (l *Log) AppendCheckpoint(ck Checkpoint) uint64 {
	var data mem.Line
	putU64(data[0:8], uint64(len(ck.Active)))
	begin := l.Append(Record{Type: RecCkptBegin, TxID: ck.Seq, Addr: mem.Addr(ck.DirtyLines), Data: data, LSN: ck.LowWater})
	for _, a := range ck.Active {
		l.Append(Record{Type: RecCkptActive, TxID: a.TxID, LSN: a.CommitLSN})
	}
	l.Append(Record{Type: RecCkptEnd, TxID: ck.Seq, LSN: ck.LowWater})
	return begin
}

// CheckpointAt decodes the checkpoint group whose begin record sits at
// ring sequence seq, from the durable image when durable is set. It
// fails (ok=false) when seq is outside the window, any record of the
// group is torn or of the wrong type, or the end record does not echo
// the begin — exactly the cases where recovery must fall back to the
// previous complete checkpoint.
func (l *Log) CheckpointAt(seq uint64, durable bool) (Checkpoint, bool) {
	head, tail := l.head, l.tail
	if durable {
		head, tail = l.RecoverWindow()
	}
	if seq < tail || seq >= head {
		return Checkpoint{}, false
	}
	begin, ok := l.readRecord(seq, durable)
	if !ok || begin.Type != RecCkptBegin {
		return Checkpoint{}, false
	}
	n := getU64(begin.Data[0:8])
	if n > head-seq || seq+n+2 > head {
		return Checkpoint{}, false
	}
	ck := Checkpoint{
		Seq:        begin.TxID,
		LowWater:   begin.LSN,
		DirtyLines: int(begin.Addr),
		BeginSeq:   seq,
	}
	for i := uint64(0); i < n; i++ {
		r, ok := l.readRecord(seq+1+i, durable)
		if !ok || r.Type != RecCkptActive {
			return Checkpoint{}, false
		}
		ck.Active = append(ck.Active, CkptActive{TxID: r.TxID, CommitLSN: r.LSN})
	}
	end, ok := l.readRecord(seq+1+n, durable)
	if !ok || end.Type != RecCkptEnd || end.TxID != begin.TxID || end.LSN != begin.LSN {
		return Checkpoint{}, false
	}
	return ck, true
}

// LatestCheckpoint scans the ring's window and returns the newest
// complete checkpoint group (highest Seq), if any. Recovery uses it as
// the fallback when the checkpoint cell points at a torn group.
func (l *Log) LatestCheckpoint(durable bool) (Checkpoint, bool) {
	head, tail := l.head, l.tail
	if durable {
		head, tail = l.RecoverWindow()
	}
	var best Checkpoint
	found := false
	for seq := tail; seq < head; seq++ {
		if ck, ok := l.CheckpointAt(seq, durable); ok && (!found || ck.Seq >= best.Seq) {
			best, found = ck, true
		}
	}
	return best, found
}

// Records returns all live records in order, reading from the durable
// image when durable is set (post-crash recovery) or the live image
// otherwise. After a crash the control block itself must be read from
// the durable image, which RecoverWindow does. Torn or corrupt records
// are skipped; use records to also learn how many.
func (l *Log) Records(durable bool) []Record {
	out, _ := l.records(durable)
	return out
}

// records is Records plus a count of slots inside the window whose
// contents failed validation (torn/truncated/corrupt writes).
func (l *Log) records(durable bool) (out []Record, torn int) {
	head, tail := l.head, l.tail
	if durable {
		head, tail = l.RecoverWindow()
	}
	out = make([]Record, 0, head-tail)
	for seq := tail; seq < head; seq++ {
		var buf [RecordSize]byte
		l.readBytes(l.slotAddr(seq), buf[:], durable)
		if r, ok := decode(&buf); ok {
			out = append(out, r)
		} else {
			torn++
		}
	}
	return out, torn
}

// RecoverWindow reads the durable control block and returns the live
// window (tail, head) as of the crash. Only meaningful for persistent
// rings.
func (l *Log) RecoverWindow() (head, tail uint64) {
	var buf [16]byte
	l.readBytes(l.base, buf[:], true)
	return getU64(buf[0:]), getU64(buf[8:])
}

// ReplayStats reports what a redo-log replay did.
type ReplayStats struct {
	CommittedTx   int // distinct committed transactions applied
	AppliedLines  int // RecWrite records applied
	DiscardedTx   int // distinct uncommitted/aborted transactions discarded
	DiscardedRecs int // their RecWrite records
	TornRecs      int // in-window slots skipped (torn/corrupt writes)
	StaleTx       int // committed transactions below the checkpoint, skipped
	StaleRecs     int // their RecWrite records
	ScannedRecs   int // in-window slots examined, including torn ones
}

// Replay performs redo-log crash recovery against the store's durable
// image: every RecWrite whose transaction has a later RecCommit mark is
// applied (written to the live image and persisted); records of
// transactions without a commit mark — or with an abort mark — are
// discarded, exactly as Section IV-C describes.
func (l *Log) Replay() ReplayStats {
	recs, torn := l.records(true)
	committed := map[uint64]bool{}
	aborted := map[uint64]bool{}
	for _, r := range recs {
		switch r.Type {
		case RecCommit:
			committed[r.TxID] = true
		case RecAbort:
			aborted[r.TxID] = true
		}
	}
	var st ReplayStats
	st.TornRecs = torn
	st.ScannedRecs = len(recs) + torn
	seenDiscard := map[uint64]bool{}
	seenApply := map[uint64]bool{}
	for _, r := range recs {
		if r.Type != RecWrite {
			continue
		}
		if committed[r.TxID] && !aborted[r.TxID] {
			l.store.WriteLine(r.Addr, &r.Data)
			l.store.PersistLine(r.Addr, &r.Data)
			st.AppliedLines++
			if !seenApply[r.TxID] {
				seenApply[r.TxID] = true
				st.CommittedTx++
			}
		} else {
			st.DiscardedRecs++
			if !seenDiscard[r.TxID] {
				seenDiscard[r.TxID] = true
				st.DiscardedTx++
			}
		}
	}
	return st
}

// Rings partitions a log area into per-core rings.
type Rings struct {
	logs []*Log
}

// NewRings carves count equal rings out of [areaBase, areaBase+areaSize).
func NewRings(store *mem.Store, areaBase, areaSize mem.Addr, count int, persist bool) *Rings {
	per := areaSize / mem.Addr(count)
	per &^= mem.LineSize - 1 // line-align each ring
	rs := &Rings{}
	for i := 0; i < count; i++ {
		rs.logs = append(rs.logs, NewLog(store, areaBase+mem.Addr(i)*per, per, persist))
	}
	return rs
}

// ForCore returns core i's ring.
func (r *Rings) ForCore(i int) *Log { return r.logs[i] }

// SetCrashpoint installs (or removes) the crash-injection hook on every
// ring.
func (r *Rings) SetCrashpoint(f func(point string)) {
	for _, l := range r.logs {
		l.SetCrashpoint(f)
	}
}

// SetTracer installs (or removes) the event recorder on every ring,
// stamped with its core index.
func (r *Rings) SetTracer(rec *trace.Recorder, now func() int64) {
	for i, l := range r.logs {
		l.SetTracer(rec, now, i)
	}
}

// Count returns the number of rings.
func (r *Rings) Count() int { return len(r.logs) }

// Appends totals record appends across rings.
func (r *Rings) Appends() uint64 {
	var n uint64
	for _, l := range r.logs {
		n += l.Appends
	}
	return n
}

// ReplayAll performs crash recovery across all cores' rings. Committed
// transactions are applied in global commit order (the LSN on their
// commit marks), so cross-core writes to the same line resolve to the
// newest committed value — as they would with the paper's single
// serialized log area.
//
// Commit records with LSN at or below ckpt are stale truncation
// leftovers: their data is already persisted in place, and ring
// truncation is not atomic across cores, so a crash mid-truncation can
// leave them on some rings while newer commits' records are gone.
// Applying one would regress its lines, so they are skipped (counted as
// StaleTx/StaleRecs).
func (r *Rings) ReplayAll(ckpt uint64) ReplayStats {
	type txGroup struct {
		writes    []Record
		commitLSN uint64
		committed bool
		aborted   bool
	}
	var store *mem.Store
	groups := map[uint64]*txGroup{}
	order := []uint64{} // txIDs with commit marks, to sort by LSN
	torn, scanned := 0, 0
	for _, l := range r.logs {
		store = l.store
		recs, t := l.records(true)
		torn += t
		scanned += len(recs) + t
		for _, rec := range recs {
			g := groups[rec.TxID]
			if g == nil {
				g = &txGroup{}
				groups[rec.TxID] = g
			}
			switch rec.Type {
			case RecWrite:
				g.writes = append(g.writes, rec)
			case RecCommit:
				if !g.committed {
					g.committed = true
					g.commitLSN = rec.LSN
					order = append(order, rec.TxID)
				}
			case RecAbort:
				g.aborted = true
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].commitLSN < groups[order[j]].commitLSN
	})
	var st ReplayStats
	st.TornRecs = torn
	st.ScannedRecs = scanned
	for _, id := range order {
		g := groups[id]
		if g.committed && g.commitLSN <= ckpt {
			st.StaleTx++
			st.StaleRecs += len(g.writes)
			continue
		}
		if g.aborted || len(g.writes) == 0 {
			continue
		}
		st.CommittedTx++
		for _, w := range g.writes {
			store.WriteLine(w.Addr, &w.Data)
			store.PersistLine(w.Addr, &w.Data)
			st.AppliedLines++
		}
	}
	for id, g := range groups {
		if (!g.committed || g.aborted) && len(g.writes) > 0 {
			_ = id
			st.DiscardedTx++
			st.DiscardedRecs += len(g.writes)
		}
	}
	return st
}
