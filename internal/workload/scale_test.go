package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

// shrinkScaleGrid swaps the scale-experiment grid for a tiny one for
// the duration of a test (the package-level axes describe full-size
// runs: up to 1024 simulated cores per cell).
func shrinkScaleGrid(t *testing.T, cores, shards, domains []int) {
	t.Helper()
	c, s, d := scaleCores, scaleShards, scaleDomains
	scaleCores, scaleShards, scaleDomains = cores, shards, domains
	t.Cleanup(func() { scaleCores, scaleShards, scaleDomains = c, s, d })
}

// TestScaleExperimentDeterministicAcrossPar runs the sharded scale
// experiment through the ordinary registry path at two parallelism
// levels: tables and records (minus host wall time) must match.
func TestScaleExperimentDeterministicAcrossPar(t *testing.T) {
	shrinkScaleGrid(t, []int{8}, []int{1, 2, 4}, []int{1})
	opt := RunOptions{Scale: 0.5, Par: 1}
	tbl1, rs1, err := RunExperiment("scale", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Par = 8
	tbl8, rs8, err := RunExperiment("scale", opt)
	if err != nil {
		t.Fatal(err)
	}
	if tbl1.Format() != tbl8.Format() {
		t.Fatalf("scale table differs across par:\n-- par1\n%s\n-- par8\n%s", tbl1.Format(), tbl8.Format())
	}
	if len(rs1) != len(rs8) || len(rs1) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(rs1), len(rs8))
	}
	for i := range rs1 {
		a, b := rs1[i], rs8[i]
		a.Wall, b.Wall = 0, 0
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("record %d differs across par:\n par1: %s\n par8: %s", i, ja, jb)
		}
	}
}

// TestScalePlanShardRestriction: opt.Shards pins the shard axis to one
// count plus the one-shard baseline the speedup column needs.
func TestScalePlanShardRestriction(t *testing.T) {
	shrinkScaleGrid(t, []int{8}, []int{1, 2, 4, 8}, []int{1})
	specs, _ := scalePlan(RunOptions{Shards: 4})
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2 (shards 1 and 4)", len(specs))
	}
	full, _ := scalePlan(RunOptions{})
	if len(full) != 4 {
		t.Fatalf("got %d specs on the full axis, want 4", len(full))
	}
}

// TestScaleRecordsCarryShardFields: the scale experiment's JSON records
// round-trip the shard extension fields, commit cross-shard work, and
// the fold reports a speedup column against the one-shard baseline.
func TestScaleRecordsCarryShardFields(t *testing.T) {
	shrinkScaleGrid(t, []int{8}, []int{1, 4}, []int{1})
	tbl, rs, err := RunExperiment("scale", RunOptions{Scale: 0.5, Par: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sawCross bool
	for _, r := range rs {
		if r.Shards == 0 {
			t.Fatalf("record %s/%s has no shard count", r.System, r.Bench)
		}
		if r.Stats.Commits == 0 {
			t.Fatalf("record %s/%s shards=%d has no local commits", r.System, r.Bench, r.Shards)
		}
		if r.Shards > 1 && r.CrossCommits > 0 {
			sawCross = true
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Result
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Shards != r.Shards || back.CrossCommits != r.CrossCommits || back.CrossAborts != r.CrossAborts {
			t.Errorf("shard fields lost in JSON round-trip: %+v vs %+v", back, r)
		}
	}
	if !sawCross {
		t.Error("no multi-shard record committed cross-shard transactions")
	}
	if !strings.Contains(tbl.Format(), "Speedup") || !strings.Contains(tbl.Format(), "1.00x") {
		t.Errorf("fold table lacks the speedup baseline:\n%s", tbl.Format())
	}
}
