// Package workload builds the paper's evaluation (Section V/VI): the
// compared systems, the consolidated benchmark drivers (PMDK structures,
// Echo, the hybrid key-value stores, LLC-hungry background apps), and
// one experiment function per figure that regenerates its rows.
package workload

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/signature"
)

// SystemSpec names one evaluated HTM configuration.
type SystemSpec struct {
	Name string
	Opts core.Options
}

func baseOpts() core.Options {
	o := core.DefaultOptions()
	o.Paranoid = false // ground-truth validation is for unit tests
	o.SyncEvery = 8    // coarser yields for full-size runs
	return o
}

// LLCBounded returns the DHTM-like baseline: coherence-only detection,
// capacity aborts at the LLC boundary, slow-path serialization.
func LLCBounded() SystemSpec {
	o := baseOpts()
	o.Detect = core.DetectLLCBounded
	return SystemSpec{Name: "LLC-Bounded", Opts: o}
}

// SignatureOnly returns the Bulk/LogTM-SE-style design: signatures
// checked on all coherence traffic.
func SignatureOnly(bits int) SystemSpec {
	o := baseOpts()
	o.Detect = core.DetectSignatureOnly
	o.SigBits = bits
	return SystemSpec{Name: fmt.Sprintf("SigOnly-%s", sigName(bits)), Opts: o}
}

// UHTM returns the staged design; isolation selects the conflict-domain
// confinement optimization (the paper's xxx_sig vs xxx_opt labels).
func UHTM(bits int, isolation bool) SystemSpec {
	o := baseOpts()
	o.Detect = core.DetectStaged
	o.SigBits = bits
	o.Isolation = isolation
	suffix := "sig"
	if isolation {
		suffix = "opt"
	}
	return SystemSpec{Name: fmt.Sprintf("%s_%s", sigName(bits), suffix), Opts: o}
}

// Ideal returns the perfect unbounded detector (zero false positives).
func Ideal() SystemSpec {
	o := baseOpts()
	o.Detect = core.DetectIdeal
	return SystemSpec{Name: "Ideal", Opts: o}
}

func sigName(bits int) string {
	switch bits {
	case signature.Bits512:
		return "512"
	case signature.Bits1K:
		return "1k"
	case signature.Bits4K:
		return "4k"
	case signature.Bits16K:
		return "16k"
	default:
		return fmt.Sprintf("%db", bits)
	}
}

// Fig6Systems is the lineup of Figure 6: baseline, naive signatures, the
// UHTM variants, and the ideal bound.
func Fig6Systems() []SystemSpec {
	return []SystemSpec{
		LLCBounded(),
		SignatureOnly(signature.Bits4K),
		UHTM(signature.Bits512, false),
		UHTM(signature.Bits512, true),
		UHTM(signature.Bits1K, false),
		UHTM(signature.Bits1K, true),
		UHTM(signature.Bits4K, false),
		UHTM(signature.Bits4K, true),
		Ideal(),
	}
}

// Fig7Systems is the signature-size sweep of Figure 7.
func Fig7Systems() []SystemSpec {
	return []SystemSpec{
		UHTM(signature.Bits512, false),
		UHTM(signature.Bits512, true),
		UHTM(signature.Bits1K, false),
		UHTM(signature.Bits1K, true),
		UHTM(signature.Bits4K, false),
		UHTM(signature.Bits4K, true),
	}
}

// Fig9Systems is the lineup of Figure 9.
func Fig9Systems() []SystemSpec {
	return []SystemSpec{
		LLCBounded(),
		UHTM(signature.Bits512, false),
		UHTM(signature.Bits512, true),
		UHTM(signature.Bits4K, false),
		UHTM(signature.Bits4K, true),
		Ideal(),
	}
}
