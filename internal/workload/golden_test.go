package workload

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uhtm/internal/harness"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// -update regenerates the committed scheduler-equivalence goldens under
// testdata/ from the current engine. The files were captured from the
// goroutine-handoff scheduler that predates the flat run-queue, so a
// plain `go test` run asserts the refactored engine reproduces the old
// engine's output byte for byte.
var updateGoldens = flag.Bool("update", false, "rewrite testdata goldens from the current engine")

// goldenSnapshot is everything an experiment grid externalizes: the
// rendered stats table, the JSON Lines records (Wall zeroed — host time
// is the one non-deterministic field) and the rendered Chrome trace.
type goldenSnapshot struct {
	table, records, chrome []byte
}

// snapshotResults renders a result slice exactly the way the CLI does.
func snapshotResults(t *testing.T, tbl *stats.Table, rs []Result) goldenSnapshot {
	t.Helper()
	var recs bytes.Buffer
	var runs []trace.Run
	for _, r := range rs {
		r.Wall = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		recs.Write(b)
		recs.WriteByte('\n')
		if len(r.TraceEvents) == 0 {
			t.Fatalf("run %s/%s carries no trace events", r.System, r.Bench)
		}
		runs = append(runs, trace.Run{Label: r.System + "/" + string(r.Bench), Events: r.TraceEvents})
	}
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, runs, nil); err != nil {
		t.Fatal(err)
	}
	return goldenSnapshot{table: []byte(tbl.Format()), records: recs.Bytes(), chrome: chrome.Bytes()}
}

// checkGolden compares (or with -update, rewrites) one golden file.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from pre-refactor golden (%d vs %d bytes); run with -update only if the simulated behaviour is meant to change", name, len(got), len(want))
	}
}

// TestSchedulerGoldenFig2 pins a reduced fig2 grid — every system and
// benchmark of the motivation figure — to the goldens captured from the
// pre-run-queue scheduler, at -par 1 and -par 8. A scheduler change
// that perturbs dispatch order (rather than only host-side cost) shows
// up here as a table, record or trace diff before it can reach a
// committed results file.
func TestSchedulerGoldenFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced fig2 grid skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("grid too slow under the race detector (see race_on_test.go)")
	}
	for _, par := range []int{1, 8} {
		opt := RunOptions{Scale: 0.02, Seed: 7, SeedSet: true, Par: par, Trace: true}
		tbl, rs, err := RunExperiment("fig2", opt)
		if err != nil {
			t.Fatal(err)
		}
		snap := snapshotResults(t, tbl, rs)
		checkGolden(t, "golden_fig2.table", snap.table)
		checkGolden(t, "golden_fig2.jsonl", snap.records)
		checkGolden(t, "golden_fig2.trace", snap.chrome)
	}
}

// TestSchedulerGoldenFig7 pins the reduced fig7 row (100 KB footprint,
// every system — the same shrunken grid TestFig7GoldenParDeterminism
// uses) to pre-refactor goldens at -par 1 and -par 8.
func TestSchedulerGoldenFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced fig7 grid skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("grid too slow under the race detector (see race_on_test.go)")
	}
	cfg := pmdkConfig(100)
	cfg.Instances = 2
	cfg.ThreadsPerInstance = 2
	cfg.KeySpace = 512
	cfg.Prepopulate = 512
	cfg.BatchesPerThread = 2
	cfg.MemApps = 0
	cfg.Seed = 7
	cfg.Trace = true
	for _, par := range []int{1, 8} {
		var specs []harness.Spec[Result]
		for _, s := range Fig7Systems() {
			specs = append(specs, spec("fig7", s, BenchMixed, cfg))
		}
		rs := harness.Execute(specs, par)
		tbl := &stats.Table{Header: []string{"footprintKB", "system", "abort-rate", "overflowedTx"}}
		for _, r := range rs {
			tbl.AddRow(fmt.Sprintf("%d", r.FootprintKB), r.System,
				pct(r.Stats.AbortRate()), fmt.Sprintf("%d", r.Stats.Overflows))
		}
		snap := snapshotResults(t, tbl, rs)
		checkGolden(t, "golden_fig7.table", snap.table)
		checkGolden(t, "golden_fig7.jsonl", snap.records)
		checkGolden(t, "golden_fig7.trace", snap.chrome)
	}
}
