package workload

import (
	"math"
	"testing"
)

// TestRatio pins the shared throughput-ratio guard every fold uses: a
// zero (or degenerate negative/NaN-producing) baseline must fold to 0,
// never to Inf/NaN in a rendered table.
func TestRatio(t *testing.T) {
	cases := []struct {
		num, den, want float64
	}{
		{10, 5, 2},
		{0, 5, 0},
		{10, 0, 0},  // zero-throughput baseline: no division by zero
		{0, 0, 0},   // both sides dead
		{10, -1, 0}, // defensive: never negative baselines
	}
	for _, c := range cases {
		got := ratio(c.num, c.den)
		if got != c.want {
			t.Errorf("ratio(%v, %v) = %v, want %v", c.num, c.den, got, c.want)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("ratio(%v, %v) = %v, not finite", c.num, c.den, got)
		}
	}
}

// TestFoldZeroThroughput runs the fig2 fold over all-zero results —
// the shape a run produces when no batch commits — and checks the
// table renders finite ratios.
func TestFoldZeroThroughput(t *testing.T) {
	specs, fold := fig2Plan(RunOptions{Scale: 0.05, Seed: 1})
	rs := make([]Result, len(specs))
	for i := range rs {
		rs[i] = Result{Experiment: "fig2", System: specs[i].System}
	}
	tbl := fold(rs)
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if cell == "+Inf" || cell == "-Inf" || cell == "NaN" {
				t.Fatalf("fold produced non-finite cell %q in row %v", cell, row)
			}
		}
	}
}
