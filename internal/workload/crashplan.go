package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"uhtm/internal/crash"
	"uhtm/internal/harness"
	"uhtm/internal/shard"
	"uhtm/internal/stats"
)

// crashSamplesFullScale is the seeded-random sample size drawn from the
// large workload's injection list at Scale = 1.0 (scaled linearly, with
// a small floor so even smoke runs inject a few large-workload crashes).
const crashSamplesFullScale = 96

// shardSamplesFullScale is the matching sample size for non-2PC points
// of the sharded cluster (the core/wal/mem protocol steps running under
// a sharded run); the 2PC points themselves (shard.*) are always swept
// exhaustively.
const shardSamplesFullScale = 32

// RunCrashSweep executes the crash-point fault-injection sweep: every
// (point, visit) pair of the small workload exhaustively, plus a
// seeded-random sample of the large workload's pairs, plus the sharded
// cluster — every 2PC protocol point (prepare logged, decision logged,
// apply mark, per-line apply, resolution-cell persist) exhaustively and
// a sample of the machine-level points underneath it — each as an
// independent deterministic simulation fanned out across the harness
// worker pool. The returned results carry one record per injection
// (Point/Visit/Verdict populated) in a stable order; the table folds
// them per injection point.
func RunCrashSweep(opt RunOptions) (*stats.Table, []Result, error) {
	type job struct {
		w   crash.Workload
		inj crash.Injection
	}
	var jobs []job

	small := crash.SmallWorkload()
	large := crash.LargeWorkload()
	if opt.seedOverride() {
		small.Seed = opt.Seed
		large.Seed = opt.Seed
	}

	smallInjs, _, err := crash.Enumerate(small)
	if err != nil {
		return nil, nil, err
	}
	for _, inj := range smallInjs {
		jobs = append(jobs, job{small, inj})
	}

	largeInjs, _, err := crash.Enumerate(large)
	if err != nil {
		return nil, nil, err
	}
	scale := opt.Scale
	if scale <= 0 {
		scale = 1.0
	}
	n := int(math.Ceil(crashSamplesFullScale * scale))
	if n < 4 {
		n = 4
	}
	for _, inj := range crash.Sample(largeInjs, n, large.Seed) {
		jobs = append(jobs, job{large, inj})
	}

	scfg := shard.SweepConfig()
	if opt.seedOverride() {
		scfg.Seed = opt.Seed
	}
	shardInjs, _, err := shard.Enumerate(scfg)
	if err != nil {
		return nil, nil, err
	}
	var twoPC, machine []crash.Injection
	for _, inj := range shardInjs {
		if strings.Contains(inj.Point, "shard.") {
			twoPC = append(twoPC, inj)
		} else {
			machine = append(machine, inj)
		}
	}
	nShard := int(math.Ceil(shardSamplesFullScale * scale))
	if nShard < 4 {
		nShard = 4
	}
	shardJobs := append(twoPC, crash.Sample(machine, nShard, scfg.Seed)...)

	specs := make([]harness.Spec[Result], len(jobs), len(jobs)+len(shardJobs))
	for i, j := range jobs {
		j := j
		specs[i] = harness.Spec[Result]{
			Experiment: "crash",
			System:     j.w.Name,
			Bench:      j.inj.Point,
			Seed:       j.w.Seed,
			Run: func() Result {
				start := time.Now()
				o := crash.RunInjection(j.w, j.inj)
				return Result{
					Experiment: "crash",
					System:     o.Workload,
					Bench:      Bench(o.Point),
					Seed:       o.Seed,
					Stats:      o.Stats,
					Elapsed:    o.Elapsed,
					Wall:       time.Since(start),
					Point:      o.Point,
					Visit:      o.Visit,
					Verdict:    o.Verdict,
				}
			},
		}
	}
	for _, inj := range shardJobs {
		inj := inj
		specs = append(specs, harness.Spec[Result]{
			Experiment: "crash",
			System:     fmt.Sprintf("shard-%dx%d", scfg.Shards, scfg.CoresPerShard),
			Bench:      inj.Point,
			Seed:       scfg.Seed,
			Run: func() Result {
				start := time.Now()
				o := shard.RunInjection(scfg, inj)
				return Result{
					Experiment: "crash",
					System:     o.Workload,
					Bench:      Bench(o.Point),
					Seed:       o.Seed,
					Stats:      o.Stats,
					Elapsed:    o.Elapsed,
					Wall:       time.Since(start),
					Point:      o.Point,
					Visit:      o.Visit,
					Verdict:    o.Verdict,
					Shards:     scfg.Shards,
				}
			},
		})
	}
	results := harness.Execute(specs, opt.Par)
	return foldCrash(results), results, nil
}

// foldCrash tabulates injections and failures per point.
func foldCrash(rs []Result) *stats.Table {
	type agg struct{ n, fail int }
	per := map[string]*agg{}
	for _, r := range rs {
		a := per[r.Point]
		if a == nil {
			a = &agg{}
			per[r.Point] = a
		}
		a.n++
		if r.Verdict != "ok" {
			a.fail++
		}
	}
	points := make([]string, 0, len(per))
	for p := range per {
		points = append(points, p)
	}
	sort.Strings(points)
	tbl := &stats.Table{Header: []string{"Injection point", "Injections", "Failures"}}
	total, fails := 0, 0
	for _, p := range points {
		a := per[p]
		tbl.AddRow(p, fmt.Sprintf("%d", a.n), fmt.Sprintf("%d", a.fail))
		total += a.n
		fails += a.fail
	}
	tbl.AddRow("TOTAL", fmt.Sprintf("%d", total), fmt.Sprintf("%d", fails))
	return tbl
}

// CrashFailures counts results whose recovery verdict is not "ok".
func CrashFailures(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Verdict != "ok" {
			n++
		}
	}
	return n
}
