package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"uhtm/internal/harness"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// tracedConfig is a contended tiny config: small keyspace so aborts
// (and their trace arrows) actually occur.
func tracedConfig(seed int64) Config {
	c := tinyConfig()
	c.Seed = seed
	c.KeySpace = 64
	c.Trace = true
	return c
}

// TestTraceRecordsLifecycle: a traced run produces a structurally sound
// event stream — begins/commits/aborts match the run's stats, every
// transaction's span is well-formed, and an untraced run carries no
// events. (The raw stream is NOT globally time-sorted: threads run
// optimistically ahead of the global clock between sync points.)
func TestTraceRecordsLifecycle(t *testing.T) {
	r := Run(UHTM(signature.Bits512, true), BenchBTree, tracedConfig(3))
	if len(r.TraceEvents) == 0 {
		t.Fatal("traced run recorded no events")
	}
	var begins, commits, aborts uint64
	for _, e := range r.TraceEvents {
		if e.TS < 0 {
			t.Fatalf("negative timestamp on %v", e.Kind)
		}
		switch e.Kind {
		case trace.EvTxBegin:
			begins++
		case trace.EvTxCommitDone:
			commits++
		case trace.EvTxAbort:
			aborts++
		}
	}
	for _, s := range trace.Summarize(r.TraceEvents) {
		if s.End < s.Start {
			t.Errorf("tx%d span [%d,%d] is inverted", s.ID, s.Start, s.End)
		}
		if !s.Committed && s.CauseCode == 0 && s.EnemyCore < 0 && s.Enemy == 0 {
			t.Errorf("tx%d finished the run in flight", s.ID)
		}
	}
	if commits != r.Stats.Commits {
		t.Errorf("trace has %d commit-done events, stats say %d commits", commits, r.Stats.Commits)
	}
	if aborts != r.Stats.Aborts() {
		t.Errorf("trace has %d abort events, stats say %d aborts", aborts, r.Stats.Aborts())
	}
	if begins != commits+aborts {
		t.Errorf("begins (%d) != commits (%d) + aborts (%d)", begins, commits, aborts)
	}

	cfg := tracedConfig(3)
	cfg.Trace = false
	plain := Run(UHTM(signature.Bits512, true), BenchBTree, cfg)
	if plain.TraceEvents != nil {
		t.Errorf("untraced run carries %d events", len(plain.TraceEvents))
	}
}

// TestTracingIsObservationOnly: attaching a recorder must not perturb
// the simulation — stats and simulated time are identical with tracing
// on and off.
func TestTracingIsObservationOnly(t *testing.T) {
	on := Run(UHTM(signature.Bits512, true), BenchBTree, tracedConfig(5))
	cfg := tracedConfig(5)
	cfg.Trace = false
	off := Run(UHTM(signature.Bits512, true), BenchBTree, cfg)
	if on.Stats != off.Stats {
		t.Errorf("tracing changed stats:\n on  %v\n off %v", on.Stats, off.Stats)
	}
	if on.Elapsed != off.Elapsed {
		t.Errorf("tracing changed simulated time: %v vs %v", on.Elapsed, off.Elapsed)
	}
}

// TestTraceParDeterminism: the rendered Chrome trace of a real
// experiment grid is byte-identical at -par 1 and -par 8 — the
// acceptance bar for trusting traces from parallel harness runs.
func TestTraceParDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-scale fig2 pair skipped in -short mode")
	}
	render := func(par int) []byte {
		opt := RunOptions{Scale: 0.02, Seed: 7, Par: par, Trace: true}
		_, rs, err := RunExperiment("fig2", opt)
		if err != nil {
			t.Fatal(err)
		}
		var runs []trace.Run
		for _, r := range rs {
			if len(r.TraceEvents) == 0 {
				t.Fatalf("run %s/%s carries no trace events", r.System, r.Bench)
			}
			runs = append(runs, trace.Run{Label: r.System + "/" + string(r.Bench), Events: r.TraceEvents})
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, runs, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(1), render(8)) {
		t.Error("Chrome traces differ between -par 1 and -par 8")
	}
}

// TestFig7GoldenParDeterminism is the golden-output guard for the
// performance work on the simulator core: a reduced fig7 grid (the
// 100 KB footprint row, every system) must produce byte-identical
// stats tables, JSON records and rendered Chrome traces at -par 1 and
// -par 8. Any hot-path change that perturbs simulated behaviour —
// rather than only host-side cost — trips this before it can reach a
// committed results file. wall_ms is the single non-deterministic
// field, so records are compared with Wall zeroed.
func TestFig7GoldenParDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced fig7 grid skipped in -short mode")
	}
	type snapshot struct {
		table, records, chrome []byte
	}
	// One fig7 row — the 100 KB footprint against every fig7 system —
	// shrunk to test size: fewer threads, a smaller tree and no
	// memory-intensive apps, but the same benchmark, value sizes and
	// abort decomposition as the real grid.
	cfg := pmdkConfig(100)
	cfg.Instances = 2
	cfg.ThreadsPerInstance = 2
	cfg.KeySpace = 512
	cfg.Prepopulate = 512
	cfg.BatchesPerThread = 2
	cfg.MemApps = 0
	cfg.Seed = 7
	cfg.Trace = true
	take := func(par int) snapshot {
		var specs []harness.Spec[Result]
		for _, s := range Fig7Systems() {
			specs = append(specs, spec("fig7", s, BenchMixed, cfg))
		}
		rs := harness.Execute(specs, par)

		tbl := &stats.Table{Header: []string{"footprintKB", "system", "abort-rate", "overflowedTx"}}
		var recs bytes.Buffer
		var runs []trace.Run
		for _, r := range rs {
			tbl.AddRow(fmt.Sprintf("%d", r.FootprintKB), r.System,
				pct(r.Stats.AbortRate()), fmt.Sprintf("%d", r.Stats.Overflows))
			r.Wall = 0 // host time: the only non-deterministic field
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			recs.Write(b)
			recs.WriteByte('\n')
			if len(r.TraceEvents) == 0 {
				t.Fatalf("run %s/%s carries no trace events", r.System, r.Bench)
			}
			runs = append(runs, trace.Run{Label: r.System + "/" + string(r.Bench), Events: r.TraceEvents})
		}
		var chrome bytes.Buffer
		if err := trace.WriteChrome(&chrome, runs, nil); err != nil {
			t.Fatal(err)
		}
		return snapshot{table: []byte(tbl.Format()), records: recs.Bytes(), chrome: chrome.Bytes()}
	}
	s1, s8 := take(1), take(8)
	if !bytes.Equal(s1.table, s8.table) {
		t.Errorf("stats tables differ between -par 1 and -par 8:\npar1:\n%s\npar8:\n%s", s1.table, s8.table)
	}
	if !bytes.Equal(s1.records, s8.records) {
		t.Error("JSON records differ between -par 1 and -par 8")
	}
	if !bytes.Equal(s1.chrome, s8.chrome) {
		t.Error("Chrome traces differ between -par 1 and -par 8")
	}
}

// TestTraceMetricsPopulated: the derived metrics fed by the trace layer
// (signature occupancy, abort chains, slow-path wait) reach the stats
// on a contended overflowing workload.
func TestTraceMetricsPopulated(t *testing.T) {
	c := tinyConfig()
	c.Seed = 11
	c.KeySpace = 64
	c.FootprintKB = 64 // force LLC overflow at test geometry
	r := Run(UHTM(signature.Bits512, true), BenchBTree, c)
	var occ uint64
	for _, n := range r.Stats.SigOccupancy {
		occ += n
	}
	if r.Stats.Overflows > 0 && occ == 0 {
		t.Errorf("overflows=%d but signature-occupancy histogram is empty", r.Stats.Overflows)
	}
	var chain uint64
	for _, n := range r.Stats.AbortChain {
		chain += n
	}
	if chain != r.Stats.Commits {
		t.Errorf("abort-chain histogram sums to %d, want one bucket per commit (%d)", chain, r.Stats.Commits)
	}
	if r.Stats.Aborts() > 0 && r.Stats.AbortChainMax == 0 {
		t.Errorf("aborts=%d but max abort-chain depth is 0", r.Stats.Aborts())
	}
}

// TestTraceOverflowKinds: the overflow-only event kinds — the ones a
// tiny default-geometry run never exercises — fire once the LLC is
// shrunk below the read set. This is what keeps
// TestTraceMetricsPopulated's occupancy branch from being vacuously
// green.
func TestTraceOverflowKinds(t *testing.T) {
	geo := mem.DefaultConfig()
	geo.LLCSize = 1 << 20 // shrink the LLC so overflow happens at test scale
	cfg := tracedConfig(9)
	cfg.Geometry = &geo
	cfg.Instances = 1
	cfg.ThreadsPerInstance = 4
	cfg.BatchesPerThread = 6
	cfg.ValueSize = 1024
	cfg.Prepopulate = 4096
	cfg.KeySpace = 2048
	cfg.LongROEvery = 3
	cfg.LongROBytes = 2 << 20 // 2 MB read-set ≫ the 1 MB LLC
	r := Run(UHTM(signature.Bits4K, true), BenchEcho, cfg)
	if r.Stats.Overflows == 0 {
		t.Fatalf("workload never overflowed the shrunken LLC: %v", r.Stats)
	}
	seen := map[trace.Kind]int{}
	for _, e := range r.TraceEvents {
		seen[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.EvTxOverflow, trace.EvSigOccupancy, trace.EvLLCEvict} {
		if seen[k] == 0 {
			t.Errorf("overflowing run emitted no %v events (kinds seen: %v)", k, seen)
		}
	}
	var occ uint64
	for _, n := range r.Stats.SigOccupancy {
		occ += n
	}
	if occ == 0 {
		t.Errorf("overflows=%d but signature-occupancy histogram is empty", r.Stats.Overflows)
	}
}

// BenchmarkFig2Untraced / BenchmarkFig2Traced bound the overhead of the
// disabled recorder on a real experiment cell (compare ns/op; the
// budget is <3%).
func BenchmarkFig2Untraced(b *testing.B) {
	cfg := tinyConfig()
	for i := 0; i < b.N; i++ {
		Run(UHTM(signature.Bits1K, true), BenchHashMap, cfg)
	}
}

func BenchmarkFig2Traced(b *testing.B) {
	cfg := tinyConfig()
	cfg.Trace = true
	for i := 0; i < b.N; i++ {
		Run(UHTM(signature.Bits1K, true), BenchHashMap, cfg)
	}
}
