package workload

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"uhtm/internal/harness"
	"uhtm/internal/signature"
)

// tinyGrid enumerates a small (system × bench) grid at unit-test scale —
// the cheap stand-in for a figure plan.
func tinyGrid(seed int64) []harness.Spec[Result] {
	cfg := tinyConfig()
	cfg.Seed = seed
	var specs []harness.Spec[Result]
	for _, b := range []Bench{BenchHashMap, BenchBTree, BenchEcho} {
		for _, s := range []SystemSpec{LLCBounded(), UHTM(signature.Bits1K, true), Ideal()} {
			specs = append(specs, spec("tiny", s, b, cfg))
		}
	}
	return specs
}

// stripWall zeroes the only non-deterministic Result field (host wall
// time) so runs can be compared for simulation equality.
func stripWall(rs []Result) []Result {
	out := make([]Result, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestHarnessParallelismIsInvisible: executing the same grid serially
// and with 8 workers yields identical results — stats, simulated time
// and JSON records — because every engine is a self-contained world and
// the harness reassembles results in spec order.
func TestHarnessParallelismIsInvisible(t *testing.T) {
	serial := stripWall(harness.Execute(tinyGrid(7), 1))
	parallel := stripWall(harness.Execute(tinyGrid(7), 8))
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Stats != parallel[i].Stats || serial[i].Elapsed != parallel[i].Elapsed {
			t.Errorf("run %d (%s/%s) differs:\n serial   %v elapsed=%v\n parallel %v elapsed=%v",
				i, serial[i].System, serial[i].Bench,
				serial[i].Stats, serial[i].Elapsed, parallel[i].Stats, parallel[i].Elapsed)
		}
	}
	js, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Errorf("JSON differs between -par 1 and -par 8:\n%s\n%s", js, jp)
	}
}

// TestRunExperimentParDeterminism: a real registered experiment (fig2,
// reduced scale) produces a byte-identical table and identical JSON at
// -par 1 and -par 8.
func TestRunExperimentParDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-scale fig2 pair skipped in -short mode")
	}
	opt := RunOptions{Scale: 0.02, Seed: 7}
	opt.Par = 1
	tbl1, rs1, err := RunExperiment("fig2", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Par = 8
	tbl8, rs8, err := RunExperiment("fig2", opt)
	if err != nil {
		t.Fatal(err)
	}
	if tbl1.Format() != tbl8.Format() {
		t.Errorf("tables differ between -par 1 and -par 8:\n%s\n%s", tbl1.Format(), tbl8.Format())
	}
	j1, _ := json.Marshal(stripWall(rs1))
	j8, _ := json.Marshal(stripWall(rs8))
	if !bytes.Equal(j1, j8) {
		t.Errorf("JSON records differ between -par 1 and -par 8")
	}
	for _, r := range rs1 {
		if r.Experiment != "fig2" {
			t.Errorf("result experiment = %q, want fig2", r.Experiment)
		}
		if r.Seed != 7 {
			t.Errorf("seed override not threaded: result seed = %d, want 7", r.Seed)
		}
	}
}

// TestSeedChangesResults: the -seed override must actually reach the
// simulation — different seeds give different schedules.
func TestSeedChangesResults(t *testing.T) {
	cfg := tinyConfig()
	cfg.KeySpace = 64 // contended, schedule-sensitive
	a := Run(UHTM(signature.Bits512, true), BenchBTree, withSeed(cfg, 3))
	b := Run(UHTM(signature.Bits512, true), BenchBTree, withSeed(cfg, 4))
	if a.Seed != 3 || b.Seed != 4 {
		t.Fatalf("result seeds = %d/%d, want 3/4", a.Seed, b.Seed)
	}
	if a.Stats == b.Stats && a.Elapsed == b.Elapsed {
		t.Errorf("seeds 3 and 4 produced identical runs: %v", a.Stats)
	}
}

func withSeed(c Config, seed int64) Config {
	c.Seed = seed
	return c
}

// TestResultJSONRoundTrip: the emitted record decodes back to the same
// Result (modulo float rounding of wall time).
func TestResultJSONRoundTrip(t *testing.T) {
	r := Run(Ideal(), BenchHashMap, tinyConfig())
	r.Experiment = "roundtrip"
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	back.Wall = r.Wall // wall_ms round-trips at ms resolution only
	if !reflect.DeepEqual(back, r) {
		t.Errorf("round-trip mismatch:\n in  %+v\n out %+v", r, back)
	}
}
