package workload

import (
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
)

// tinyConfig keeps unit-test runs fast: small footprints, few batches,
// no memory apps unless a test adds them.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Instances = 2
	c.ThreadsPerInstance = 2
	c.ValueSize = 256
	c.FootprintKB = 8
	c.BatchesPerThread = 3
	c.KeySpace = 256
	c.Prepopulate = 64
	c.MemApps = 0
	return c
}

// paranoid turns ground-truth conflict validation back on for a spec.
func paranoid(s SystemSpec) SystemSpec {
	s.Opts.Paranoid = true
	s.Opts.SyncEvery = 1
	return s
}

func TestRunAllBenchesAllSystems(t *testing.T) {
	cfg := tinyConfig()
	benches := []Bench{BenchHashMap, BenchBTree, BenchRBTree, BenchSkipList, BenchMixed, BenchEcho, BenchHybridIndex, BenchDual}
	systems := []SystemSpec{paranoid(LLCBounded()), paranoid(UHTM(signature.Bits4K, true)), paranoid(Ideal())}
	for _, b := range benches {
		for _, s := range systems {
			r := Run(s, b, cfg)
			if r.Stats.Commits == 0 {
				t.Errorf("%s/%s: no commits (%v)", s.Name, b, r.Stats)
			}
			if r.Elapsed <= 0 {
				t.Errorf("%s/%s: elapsed = %v", s.Name, b, r.Elapsed)
			}
		}
	}
}

// TestSignatureOnlyRuns exercises the naive design on a small mix; it
// completes (possibly via serialization) and commits everything.
func TestSignatureOnlyRuns(t *testing.T) {
	cfg := tinyConfig()
	r := Run(paranoid(SignatureOnly(signature.Bits512)), BenchMixed, cfg)
	wantTx := uint64(cfg.Instances * cfg.ThreadsPerInstance * cfg.BatchesPerThread)
	if r.Stats.Commits != wantTx {
		t.Errorf("commits = %d, want %d", r.Stats.Commits, wantTx)
	}
}

// TestDeterministicResults: same spec+config ⇒ identical stats and
// elapsed time.
func TestDeterministicResults(t *testing.T) {
	cfg := tinyConfig()
	a := Run(UHTM(signature.Bits1K, true), BenchBTree, cfg)
	b := Run(UHTM(signature.Bits1K, true), BenchBTree, cfg)
	if a.Stats != b.Stats || a.Elapsed != b.Elapsed {
		t.Errorf("non-deterministic run:\n a=%v elapsed=%v\n b=%v elapsed=%v",
			a.Stats, a.Elapsed, b.Stats, b.Elapsed)
	}
}

// TestMemAppsIncreasePressure: adding LLC-hungry apps must not break
// anything and should not increase throughput.
func TestMemAppsIncreasePressure(t *testing.T) {
	quiet := tinyConfig()
	noisy := quiet
	noisy.MemApps = 1
	noisy.MemAppWindow = 4 << 20
	a := Run(UHTM(signature.Bits4K, true), BenchHashMap, quiet)
	b := Run(UHTM(signature.Bits4K, true), BenchHashMap, noisy)
	if b.Stats.Commits != a.Stats.Commits {
		t.Errorf("commit counts differ: %d vs %d", a.Stats.Commits, b.Stats.Commits)
	}
	if b.Throughput() > a.Throughput()*1.05 {
		t.Errorf("memory apps increased throughput: %.0f → %.0f", a.Throughput(), b.Throughput())
	}
}

// TestCommittedDataSurvives: after a Run the structures hold committed
// data — sanity that drivers actually write through the machine.
func TestLongRODrivesOverflow(t *testing.T) {
	geo := mem.DefaultConfig()
	geo.LLCSize = 1 << 20 // shrink the LLC so the test stays fast
	cfg := tinyConfig()
	cfg.Geometry = &geo
	cfg.Instances = 1
	cfg.ThreadsPerInstance = 4
	cfg.BatchesPerThread = 6
	cfg.ValueSize = 1024
	cfg.Prepopulate = 4096
	cfg.KeySpace = 2048
	cfg.LongROEvery = 3
	cfg.LongROBytes = 2 << 20 // 2 MB read-set ≫ the 1 MB LLC
	spec := UHTM(signature.Bits4K, true)
	r := Run(spec, BenchEcho, cfg)
	if r.Stats.Overflows == 0 {
		t.Errorf("2MB read-only batches never overflowed a 1MB LLC: %v", r.Stats)
	}
	if r.Stats.Commits == 0 {
		t.Error("no commits")
	}
}

func TestOpsPerBatch(t *testing.T) {
	c := Config{FootprintKB: 100, ValueSize: 1024}
	if got := c.opsPerBatch(); got != 100 {
		t.Errorf("opsPerBatch = %d", got)
	}
	c = Config{FootprintKB: 0, ValueSize: 1024}
	if got := c.opsPerBatch(); got != 1 {
		t.Errorf("opsPerBatch floor = %d", got)
	}
}

func TestSystemNames(t *testing.T) {
	cases := map[string]SystemSpec{
		"LLC-Bounded": LLCBounded(),
		"SigOnly-4k":  SignatureOnly(signature.Bits4K),
		"512_sig":     UHTM(signature.Bits512, false),
		"1k_opt":      UHTM(signature.Bits1K, true),
		"Ideal":       Ideal(),
	}
	for want, spec := range cases {
		if spec.Name != want {
			t.Errorf("name = %q, want %q", spec.Name, want)
		}
	}
	if len(Fig6Systems()) != 9 || len(Fig7Systems()) != 6 || len(Fig9Systems()) != 6 {
		t.Error("system lineups changed size")
	}
}

// TestParanoidStagedUnderContention cranks contention with paranoid
// ground-truth checking on: any missed conflict in the staged scheme
// panics the run.
func TestParanoidStagedUnderContention(t *testing.T) {
	cfg := tinyConfig()
	cfg.Instances = 1
	cfg.ThreadsPerInstance = 4
	cfg.KeySpace = 32 // heavy key contention
	cfg.BatchesPerThread = 5
	for _, bits := range []int{signature.Bits512, signature.Bits4K} {
		r := Run(paranoid(UHTM(bits, true)), BenchSkipList, cfg)
		if r.Stats.Commits == 0 {
			t.Errorf("bits=%d: no commits", bits)
		}
	}
}

var _ = core.DefaultOptions // keep the import if assertions above change
