package workload

import (
	"fmt"
	"math"
	"time"

	"uhtm/internal/harness"
	"uhtm/internal/shard"
	"uhtm/internal/stats"
)

// The scale experiment grid: total simulated cores × shard counts ×
// conflict-domain counts per shard. Shard counts that exceed the core
// count are skipped; RunOptions.Shards restricts the shard axis.
var (
	scaleCores   = []int{64, 256, 1024}
	scaleShards  = []int{1, 4, 16, 64}
	scaleDomains = []int{1, 4}
)

// scaleConfig maps one grid cell to a cluster configuration. Work is
// sized per core (so total work is constant across the shard axis and
// elapsed time measures scaling), the line pool is sized per core (so
// per-shard contention stays comparable), and cross-shard traffic grows
// with the cluster.
func scaleConfig(cores, shards, domains int, opt RunOptions) shard.Config {
	scale := opt.Scale
	if scale <= 0 {
		scale = 1.0
	}
	sc := func(n int) int {
		v := int(math.Ceil(float64(n) * scale))
		if v < 1 {
			v = 1
		}
		return v
	}
	cfg := shard.Config{
		Shards:        shards,
		CoresPerShard: cores / shards,
		Domains:       domains,
		Rounds:        3,
		TxPerCore:     sc(4),
		WritesPerTx:   4,
		ReadsPerTx:    2,
		CrossPerRound: sc(cores / 8),
		CrossShards:   2,
		LinesPerShard: 64 * (cores / shards),
		Seed:          42,
		Par:           opt.Par,
		Trace:         opt.Trace,
		Opts:          baseOpts(),
	}
	if opt.seedOverride() {
		cfg.Seed = opt.Seed
	}
	return cfg
}

// scalePlan enumerates the scale grid. Each cell is one sharded cluster
// run; the fold reports throughput, speedup over the cell's one-shard
// baseline, abort rate and cross-shard commit fraction — the scaling
// curves of the sharded evaluation.
func scalePlan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	var specs []harness.Spec[Result]
	for _, cores := range scaleCores {
		for _, shards := range scaleShards {
			if shards > cores {
				continue
			}
			if opt.Shards > 0 && shards != opt.Shards && shards != 1 {
				// Keep the one-shard cell so the fold can still compute
				// speedup against it.
				continue
			}
			for _, dom := range scaleDomains {
				specs = append(specs, scaleSpec(cores, shards, dom, scaleConfig(cores, shards, dom, opt)))
			}
		}
	}
	return specs, foldScale
}

// scaleSpec builds the harness spec for one scale-grid cell.
func scaleSpec(cores, shards, dom int, cfg shard.Config) harness.Spec[Result] {
	system := fmt.Sprintf("cores=%d", cores)
	bench := Bench(fmt.Sprintf("domains=%d", dom))
	return harness.Spec[Result]{
		Experiment: "scale",
		System:     system,
		Bench:      string(bench),
		Seed:       cfg.Seed,
		Run: func() Result {
			start := time.Now()
			c := shard.New(cfg)
			res := c.Run()
			r := Result{
				Experiment:   "scale",
				System:       system,
				Bench:        bench,
				Seed:         cfg.Seed,
				Stats:        res.Stats,
				Elapsed:      res.Elapsed,
				Wall:         time.Since(start),
				Shards:       shards,
				CrossCommits: res.CrossCommits,
				CrossAborts:  res.CrossAborts,
			}
			if cfg.Trace {
				r.TraceEvents = c.MergedTrace()
			}
			return r
		},
	}
}

// TotalThroughput returns committed transactions — local plus
// cross-shard — per simulated second.
func (r Result) TotalThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Commits+r.CrossCommits) / r.Elapsed.Seconds()
}

// CrossFraction returns the cross-shard share of committed
// transactions.
func (r Result) CrossFraction() float64 {
	total := r.Stats.Commits + r.CrossCommits
	if total == 0 {
		return 0
	}
	return float64(r.CrossCommits) / float64(total)
}

// foldScale tabulates the scaling curves: one row per grid cell, with
// speedup computed against the one-shard cell of the same (cores,
// domains) pair.
func foldScale(rs []Result) *stats.Table {
	base := map[string]float64{} // "system/bench" → 1-shard total throughput
	for _, r := range rs {
		if r.Shards == 1 {
			base[r.System+"/"+string(r.Bench)] = r.TotalThroughput()
		}
	}
	tbl := &stats.Table{Header: []string{
		"Cell", "Shards", "Commits", "Cross", "CrossAborts", "Tx/s", "Speedup", "AbortRate", "CrossFrac",
	}}
	for _, r := range rs {
		speedup := "-"
		if b := base[r.System+"/"+string(r.Bench)]; b > 0 {
			speedup = fmt.Sprintf("%.2fx", r.TotalThroughput()/b)
		}
		tbl.AddRow(
			r.System+" "+string(r.Bench),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Stats.Commits),
			fmt.Sprintf("%d", r.CrossCommits),
			fmt.Sprintf("%d", r.CrossAborts),
			fmt.Sprintf("%.3g", r.TotalThroughput()),
			speedup,
			fmt.Sprintf("%.1f%%", 100*r.Stats.AbortRate()),
			fmt.Sprintf("%.1f%%", 100*r.CrossFraction()),
		)
	}
	return tbl
}
