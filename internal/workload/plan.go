package workload

import (
	"encoding/json"
	"fmt"
	"time"

	"uhtm/internal/harness"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// RunOptions parameterizes one experiment invocation.
type RunOptions struct {
	// Scale multiplies per-thread op counts (1.0 = full-size run).
	Scale float64
	// Seed overrides every run's Config.Seed (the per-experiment default
	// is 42) when it is non-zero or SeedSet is true.
	Seed int64
	// SeedSet marks Seed as explicitly chosen, so that seed 0 — a
	// perfectly good seed — is distinguishable from "no override".
	SeedSet bool
	// Par bounds how many simulations run concurrently; 0 = GOMAXPROCS.
	Par int
	// Trace attaches a trace.Recorder to every run's engine; each
	// Result then carries the run's full event stream in TraceEvents.
	Trace bool
	// Shards restricts the scale experiment's shard axis to one shard
	// count (plus the one-shard baseline the speedup column needs);
	// 0 runs the full axis. Other experiments ignore it.
	Shards int
}

// seedOverride reports whether the options carry an explicit seed.
func (o RunOptions) seedOverride() bool { return o.SeedSet || o.Seed != 0 }

// seeded applies the seed override and trace flag to a run config.
func (o RunOptions) seeded(c Config) Config {
	if o.seedOverride() {
		c.Seed = o.Seed
	}
	c.Trace = o.Trace
	return c
}

// A plan enumerates an experiment as a flat spec list plus a fold that
// rebuilds the experiment's table from the results (which arrive in
// spec order — the harness guarantees it regardless of parallelism).
type foldFunc func([]Result) *stats.Table
type planFunc func(RunOptions) ([]harness.Spec[Result], foldFunc)

// Experiment is one entry of the experiment registry.
type Experiment struct {
	Name string
	Desc string
	plan planFunc
}

// registry is the single source of truth for the experiment set: the
// CLI's dispatch, usage text and doc-drift test all derive from it.
var registry = []Experiment{
	{"fig2", "LLC-Bounded vs Ideal unbounded HTM (motivation, Fig. 2)", fig2Plan},
	{"fig6", "PMDK + Echo throughput, normalized to LLC-Bounded (Fig. 6)", fig6Plan},
	{"fig7", "Abort-rate decomposition vs footprint and signature size (Fig. 7)", fig7Plan},
	{"fig8", "Echo with long-running read-only transactions (Fig. 8)", fig8Plan},
	{"fig9a", "Hybrid-Index KV store vs footprint (Fig. 9a)", fig9aPlan},
	{"fig9b", "Dual KV store vs footprint (Fig. 9b)", fig9bPlan},
	{"fig10", "Volatile transactions: undo vs redo DRAM logging (Fig. 10)", fig10Plan},
	{"ablate", "Design-choice ablations (resolution policy, DRAM cache, isolation, DRAM log)", ablationPlan},
	{"scale", "Sharded scale-out: throughput and abort rate vs cores × shards × domains", scalePlan},
	{"recovery", "Measured crash recovery: latency vs log size × checkpoint interval", recoveryPlan},
}

// Experiments lists the registry (name and description only).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// RunExperiment enumerates, executes (in parallel up to opt.Par) and
// folds one registered experiment. The returned table and results are
// identical for every parallelism level.
func RunExperiment(name string, opt RunOptions) (*stats.Table, []Result, error) {
	for _, e := range registry {
		if e.Name != name {
			continue
		}
		specs, fold := e.plan(opt)
		results := harness.Execute(specs, opt.Par)
		return fold(results), results, nil
	}
	return nil, nil, fmt.Errorf("workload: unknown experiment %q", name)
}

// mustRun backs the fixed-signature experiment wrappers.
func mustRun(name string, scale float64) (*stats.Table, []Result) {
	tbl, rs, err := RunExperiment(name, RunOptions{Scale: scale})
	if err != nil {
		panic(err) // unreachable: wrappers use registered names
	}
	return tbl, rs
}

// spec builds one harness spec: a fresh engine per Run, identity
// metadata mirrored into the result.
func spec(exp string, s SystemSpec, b Bench, cfg Config) harness.Spec[Result] {
	return harness.Spec[Result]{
		Experiment:  exp,
		System:      s.Name,
		Bench:       string(b),
		FootprintKB: cfg.FootprintKB,
		Seed:        cfg.Seed,
		Run: func() Result {
			start := time.Now()
			r := Run(s, b, cfg)
			r.Experiment = exp
			r.Wall = time.Since(start)
			return r
		},
	}
}

// resultJSON is the wire form of Result: one self-describing record per
// run, with derived throughput included so downstream tooling needs no
// simulator knowledge. wall_ms is host time and is the only
// non-deterministic field.
type resultJSON struct {
	Experiment   string      `json:"experiment"`
	System       string      `json:"system"`
	Bench        string      `json:"bench"`
	FootprintKB  int         `json:"footprint_kb"`
	Seed         int64       `json:"seed"`
	Stats        stats.Stats `json:"stats"`
	SimElapsedPS int64       `json:"sim_elapsed_ps"`
	Throughput   float64     `json:"throughput_tx_s"`
	WallMS       float64     `json:"wall_ms"`

	// Crash-sweep records only.
	Point   string `json:"point,omitempty"`
	Visit   int    `json:"visit,omitempty"`
	Verdict string `json:"verdict,omitempty"`

	// Sharded scale-out records only (experiment "scale").
	Shards       int    `json:"shards,omitempty"`
	CrossCommits uint64 `json:"cross_commits,omitempty"`
	CrossAborts  uint64 `json:"cross_aborts,omitempty"`

	// Recovery records only (experiment "recovery"). Phase latencies are
	// simulated picoseconds.
	RecoveryScanned   int   `json:"recovery_scanned,omitempty"`
	RecoveryApplied   int   `json:"recovery_applied,omitempty"`
	RecoveryScanPS    int64 `json:"recovery_scan_ps,omitempty"`
	RecoveryReplayPS  int64 `json:"recovery_replay_ps,omitempty"`
	RecoveryPersistPS int64 `json:"recovery_persist_ps,omitempty"`
}

// MarshalJSON emits the flat per-run record (see resultJSON).
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Experiment:   r.Experiment,
		System:       r.System,
		Bench:        string(r.Bench),
		FootprintKB:  r.FootprintKB,
		Seed:         r.Seed,
		Stats:        r.Stats,
		SimElapsedPS: int64(r.Elapsed),
		Throughput:   r.Throughput(),
		WallMS:       float64(r.Wall) / float64(time.Millisecond),
		Point:        r.Point,
		Visit:        r.Visit,
		Verdict:      r.Verdict,
		Shards:       r.Shards,
		CrossCommits: r.CrossCommits,
		CrossAborts:  r.CrossAborts,

		RecoveryScanned:   r.RecoveryScanned,
		RecoveryApplied:   r.RecoveryApplied,
		RecoveryScanPS:    int64(r.RecoveryScanPS),
		RecoveryReplayPS:  int64(r.RecoveryReplayPS),
		RecoveryPersistPS: int64(r.RecoveryPersistPS),
	})
}

// UnmarshalJSON reverses MarshalJSON (derived throughput is dropped —
// it is recomputed from commits and elapsed time).
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Result{
		Experiment:   w.Experiment,
		System:       w.System,
		Bench:        Bench(w.Bench),
		FootprintKB:  w.FootprintKB,
		Seed:         w.Seed,
		Stats:        w.Stats,
		Elapsed:      sim.Time(w.SimElapsedPS),
		Wall:         time.Duration(w.WallMS * float64(time.Millisecond)),
		Point:        w.Point,
		Visit:        w.Visit,
		Verdict:      w.Verdict,
		Shards:       w.Shards,
		CrossCommits: w.CrossCommits,
		CrossAborts:  w.CrossAborts,

		RecoveryScanned:   w.RecoveryScanned,
		RecoveryApplied:   w.RecoveryApplied,
		RecoveryScanPS:    sim.Time(w.RecoveryScanPS),
		RecoveryReplayPS:  sim.Time(w.RecoveryReplayPS),
		RecoveryPersistPS: sim.Time(w.RecoveryPersistPS),
	}
	return nil
}
