//go:build race

package workload

// raceEnabled reports whether this binary was built with the race
// detector. The scheduler-equivalence goldens re-run full (reduced)
// experiment grids; under the detector's ~10× slowdown they push the
// package past the default test timeout, so they only assert in normal
// builds — byte-identity is a determinism property the race detector
// adds nothing to, and the scheduler's race coverage lives in
// internal/sim's stress tests.
const raceEnabled = true
