package workload

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/harness"
	"uhtm/internal/signature"
	"uhtm/internal/stats"
)

// Each experiment is expressed as a *plan*: a pure enumeration of the
// (system × benchmark × footprint × seed) grid into harness specs, plus
// a fold that rebuilds the figure's table from the results. Enumeration
// order is the fold's contract — the harness returns results in spec
// order no matter how many ran concurrently — so tables are identical
// at every parallelism level. The fixed-signature FigN wrappers remain
// for callers (benchmarks, tests) that only sweep the scale knob.

// scaleN shrinks a count by the experiment scale factor (minimum 1).
// scale=1 reproduces the full-size run; CI and -short runs pass less.
func scaleN(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ratio returns num/den, or 0 when den is not positive. Every fold that
// normalizes a throughput against a baseline uses it so a zero-throughput
// run (e.g. a scale so small no batch commits) folds to 0.00 instead of
// dividing by zero.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// pmdkConfig is the PMDK/Echo figure shape: each transaction is a
// single insert/update with a value of footprintKB ("with the value size
// of 100KB", Section VI-A), over a keyspace small enough to prepopulate
// but large enough that same-key collisions are rare.
func pmdkConfig(footprintKB int) Config {
	c := DefaultConfig()
	c.FootprintKB = footprintKB
	c.ValueSize = footprintKB << 10 // one put per transaction
	// Update-dominated (the tree is prepopulated; "insert/update"
	// benchmarks in steady state): structural rebalancing near the root
	// is rare, so aborts come from capacity and signatures, as in the
	// paper's decomposition.
	c.KeySpace = 16384
	c.Prepopulate = 16384
	c.PrepopValueSize = 64 // values grow to footprintKB on first update
	c.BatchesPerThread = 8
	return c
}

// Fig2 reproduces Figure 2: throughput of the LLC-Bounded HTM against
// the Ideal unbounded HTM, 16 threads, 100 KB transactions, consolidated
// with memory-intensive applications. The paper reports slowdowns up to
// 6.2×.
func Fig2(scale float64) (*stats.Table, []Result) { return mustRun("fig2", scale) }

func fig2Plan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	cfg := pmdkConfig(100)
	cfg.BatchesPerThread = scaleN(cfg.BatchesPerThread, opt.Scale)
	cfg = opt.seeded(cfg)
	systems := []SystemSpec{LLCBounded(), Ideal()}
	benches := append(PMDKBenches(), BenchEcho)

	var specs []harness.Spec[Result]
	for _, b := range benches {
		for _, s := range systems {
			specs = append(specs, spec("fig2", s, b, cfg))
		}
	}
	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"benchmark", "LLC-Bounded tx/s", "Ideal tx/s", "Ideal/Bounded"}}
		for i, b := range benches {
			bounded, ideal := rs[2*i], rs[2*i+1]
			tbl.AddRow(string(b), f2(bounded.Throughput()), f2(ideal.Throughput()),
				f2(ratio(ideal.Throughput(), bounded.Throughput())))
		}
		return tbl
	}
	return specs, fold
}

// Fig6 reproduces Figure 6: throughput of the PMDK benchmarks and Echo
// (100 KB durable transactions, NVM data only, consolidated with two
// memory-intensive apps), normalized to the LLC-Bounded baseline.
func Fig6(scale float64) (*stats.Table, []Result) { return mustRun("fig6", scale) }

func fig6Plan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	cfg := pmdkConfig(100)
	cfg.BatchesPerThread = scaleN(cfg.BatchesPerThread, opt.Scale)
	cfg = opt.seeded(cfg)
	systems := Fig6Systems()
	benches := append(PMDKBenches(), BenchEcho)

	var specs []harness.Spec[Result]
	for _, b := range benches {
		for _, s := range systems {
			specs = append(specs, spec("fig6", s, b, cfg))
		}
	}
	fold := func(rs []Result) *stats.Table {
		header := []string{"benchmark"}
		for _, s := range systems {
			header = append(header, s.Name)
		}
		tbl := &stats.Table{Header: header}
		i := 0
		for _, b := range benches {
			row := []string{string(b)}
			var base float64
			for range systems {
				r := rs[i]
				i++
				if len(row) == 1 {
					base = r.Throughput()
				}
				row = append(row, f2(ratio(r.Throughput(), base)))
			}
			tbl.AddRow(row...)
		}
		return tbl
	}
	return specs, fold
}

// Fig7 reproduces Figure 7: abort rates of UHTM (decomposed into true
// conflicts, signature false positives and overflows) while sweeping
// transaction footprint (100–500 KB) and signature size (512/1k/4k bits,
// with and without the conflict-domain isolation), on the consolidated
// PMDK mix.
func Fig7(scale float64) (*stats.Table, []Result) { return mustRun("fig7", scale) }

func fig7Plan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	footprints := []int{100, 200, 300, 400, 500}
	systems := Fig7Systems()

	var specs []harness.Spec[Result]
	for _, fp := range footprints {
		c := pmdkConfig(fp)
		c.BatchesPerThread = scaleN(c.BatchesPerThread, opt.Scale)
		c = opt.seeded(c)
		for _, s := range systems {
			specs = append(specs, spec("fig7", s, BenchMixed, c))
		}
	}
	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"footprintKB", "system", "abort-rate", "true", "false-pos", "lock", "overflowedTx"}}
		i := 0
		for _, fp := range footprints {
			for _, s := range systems {
				r := rs[i]
				i++
				tbl.AddRow(fmt.Sprintf("%d", fp), s.Name,
					pct(r.Stats.AbortRate()),
					pct(r.Stats.CauseShare(stats.CauseTrueConflict)),
					pct(r.Stats.CauseShare(stats.CauseFalsePositive)),
					pct(r.Stats.CauseShare(stats.CauseLock)),
					fmt.Sprintf("%d", r.Stats.Overflows))
			}
		}
		return tbl
	}
	return specs, fold
}

// Fig8 reproduces Figure 8: Echo throughput with 0.5 %–2 % long-running
// read-only transactions (multi-MB get batches) among single-put (1 KB)
// transactions, no memory-intensive apps. The paper reports UHTM at 4.2×
// the bounded system's throughput at 0.5 %.
func Fig8(scale float64) (*stats.Table, []Result) { return mustRun("fig8", scale) }

func fig8Plan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	cfg := Config{
		Seed:               42,
		Instances:          1,
		ThreadsPerInstance: 16,
		ValueSize:          1024,
		FootprintKB:        1, // single 1 KB put per transaction
		BatchesPerThread:   scaleN(400, opt.Scale),
		KeySpace:           1 << 15,
		Prepopulate:        40960, // 40 MB of resident pairs to scan
		Persistent:         true,
		LongROBytes:        20 << 20, // within the paper's 8–32 MB band
	}
	cfg = opt.seeded(cfg)
	fracs := []struct {
		label string
		every int
	}{
		{"0.5%", 200},
		{"1.0%", 100},
		{"2.0%", 50},
	}
	if opt.Scale < 0.5 {
		// Reduced-scale runs: the sweep's cost is dominated by the
		// multi-MB read-only transactions, so shrink the thread count
		// and drop the middle fraction rather than the RO size (which
		// must exceed the LLC to mean anything).
		cfg.ThreadsPerInstance = 8
		fracs = []struct {
			label string
			every int
		}{{"0.5%", 200}, {"2.0%", 50}}
	}
	systems := []SystemSpec{LLCBounded(), UHTM(signature.Bits4K, true), Ideal()}

	var specs []harness.Spec[Result]
	for _, fr := range fracs {
		c := cfg
		c.LongROEvery = fr.every
		if c.BatchesPerThread < fr.every {
			// Preserve the RO fraction at reduced scales: every thread
			// must reach at least one read-only batch.
			c.BatchesPerThread = fr.every
		}
		for _, s := range systems {
			specs = append(specs, spec("fig8", s, BenchEcho, c))
		}
	}
	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"long-RO fraction", "system", "tx/s", "vs LLC-Bounded"}}
		i := 0
		for _, fr := range fracs {
			var base float64
			for si, s := range systems {
				r := rs[i]
				i++
				if si == 0 {
					base = r.Throughput()
				}
				tbl.AddRow(fr.label, s.Name, f2(r.Throughput()), f2(ratio(r.Throughput(), base)))
			}
		}
		return tbl
	}
	return specs, fold
}

// fig9Plan enumerates one hybrid store across footprints and systems.
func fig9Plan(exp string, b Bench, footprints []int, opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	cfg := DefaultConfig()
	cfg.MemApps = 0 // "we did not run LLC-hungry applications"
	cfg.BatchesPerThread = scaleN(4, opt.Scale)
	cfg = opt.seeded(cfg)
	systems := Fig9Systems()

	var specs []harness.Spec[Result]
	for _, fp := range footprints {
		c := cfg
		c.FootprintKB = fp
		for _, s := range systems {
			specs = append(specs, spec(exp, s, b, c))
		}
	}
	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"footprintKB", "system", "tx/s", "vs LLC-Bounded", "abort-rate"}}
		i := 0
		for _, fp := range footprints {
			var base float64
			for si, s := range systems {
				r := rs[i]
				i++
				if si == 0 {
					base = r.Throughput()
				}
				tbl.AddRow(fmt.Sprintf("%d", fp), s.Name, f2(r.Throughput()),
					f2(ratio(r.Throughput(), base)), pct(r.Stats.AbortRate()))
			}
		}
		return tbl
	}
	return specs, fold
}

// Fig9a reproduces Figure 9a: the Hybrid-Index key-value store (DRAM
// B-Tree + NVM HashMap in one transaction) across 600 KB–1.5 MB
// footprints and signature configurations.
func Fig9a(scale float64) (*stats.Table, []Result) { return mustRun("fig9a", scale) }

func fig9aPlan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	return fig9Plan("fig9a", BenchHybridIndex, []int{600, 900, 1200, 1500}, opt)
}

// Fig9b reproduces Figure 9b: the Dual key-value store (foreground DRAM
// map + background NVM map via the cross-referencing log).
func Fig9b(scale float64) (*stats.Table, []Result) { return mustRun("fig9b", scale) }

func fig9bPlan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	return fig9Plan("fig9b", BenchDual, []int{600, 900, 1200, 1500}, opt)
}

// Fig10 reproduces Figure 10: volatile (all-DRAM) transactions, undo vs
// redo logging for LLC-overflowed DRAM lines, averaged over the 512/1k/
// 4k-bit isolated configurations, as footprint (and thus overflow rate)
// grows. The paper reports undo ahead by 7.5 % at 300 KB rising to
// 44.7 % at high overflow rates.
func Fig10(scale float64) (*stats.Table, []Result) { return mustRun("fig10", scale) }

func fig10Plan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	footprints := []int{100, 200, 300, 400}
	sigs := []int{signature.Bits512, signature.Bits1K, signature.Bits4K}
	logKinds := []core.DRAMLogKind{core.DRAMUndo, core.DRAMRedo}

	var specs []harness.Spec[Result]
	for _, fp := range footprints {
		c := pmdkConfig(fp)
		c.Persistent = false // volatile transactions: all data in DRAM
		c.BatchesPerThread = scaleN(c.BatchesPerThread, opt.Scale)
		c = opt.seeded(c)
		for _, bits := range sigs {
			for _, logKind := range logKinds {
				s := UHTM(bits, true)
				s.Opts.DRAMLog = logKind
				s.Name = fmt.Sprintf("%s_%v", s.Name, logKind)
				specs = append(specs, spec("fig10", s, BenchMixed, c))
			}
		}
	}
	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"footprintKB", "undo tx/s", "redo tx/s", "undo/redo", "overflowedTx"}}
		i := 0
		for _, fp := range footprints {
			var undoSum, redoSum float64
			var ovf uint64
			for range sigs {
				undoR, redoR := rs[i], rs[i+1]
				i += 2
				undoSum += undoR.Throughput()
				ovf += undoR.Stats.Overflows
				redoSum += redoR.Throughput()
			}
			undo, redo := undoSum/float64(len(sigs)), redoSum/float64(len(sigs))
			tbl.AddRow(fmt.Sprintf("%d", fp), f2(undo), f2(redo), f2(ratio(undo, redo)),
				fmt.Sprintf("%d", ovf))
		}
		return tbl
	}
	return specs, fold
}

// TableIII returns the simulation configuration table.
func TableIII() *stats.Table {
	c := DefaultConfig()
	_ = c
	mc := defaultGeometry()
	tbl := &stats.Table{Header: []string{"parameter", "value"}}
	tbl.AddRow("Processor", fmt.Sprintf("%d-core, in-order (event-driven model)", mc.Cores))
	tbl.AddRow("L1 I/D Cache", fmt.Sprintf("Private %dKB, %d-way", mc.L1Size>>10, mc.L1Ways))
	tbl.AddRow("L1 Latency", mc.L1Latency.String())
	tbl.AddRow("L2 (LLC) Cache", fmt.Sprintf("Shared %dMB, %d-way", mc.LLCSize>>20, mc.LLCWays))
	tbl.AddRow("L2 Latency", mc.LLCLatency.String())
	tbl.AddRow("DRAM Latency", fmt.Sprintf("Read/Write = %s", mc.DRAMLatency))
	tbl.AddRow("NVM Latency", fmt.Sprintf("Read = %s, Write = %s", mc.NVMReadLatency, mc.NVMWriteLatency))
	tbl.AddRow("DRAM cache", fmt.Sprintf("%dMB, %d-way (substrate [28])", mc.DRAMCacheSize>>20, mc.DRAMCacheWays))
	return tbl
}
