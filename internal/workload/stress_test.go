package workload

import (
	"testing"

	"uhtm/internal/signature"
)

// TestSeedSweepParanoid runs the consolidated mix under several seeds
// with ground-truth conflict validation on: any schedule-dependent
// missed conflict or rollback bug panics the run. This is the
// randomized-schedule stress companion to the fixed-seed unit tests.
func TestSeedSweepParanoid(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	cfg := tinyConfig()
	cfg.Instances = 2
	cfg.ThreadsPerInstance = 3
	cfg.KeySpace = 64 // contended
	cfg.BatchesPerThread = 4
	for _, seed := range []int64{1, 7, 1234, 98765} {
		c := cfg
		c.Seed = seed
		for _, spec := range []SystemSpec{
			paranoid(LLCBounded()),
			paranoid(UHTM(signature.Bits512, true)),
			paranoid(SignatureOnly(signature.Bits1K)),
			paranoid(Ideal()),
		} {
			r := Run(spec, BenchMixed, c)
			want := uint64(c.Instances * c.ThreadsPerInstance * c.BatchesPerThread)
			if r.Stats.Commits != want {
				t.Errorf("seed=%d %s: commits=%d want %d", seed, spec.Name, r.Stats.Commits, want)
			}
		}
	}
}

// TestAblationsSmoke runs the ablation suite at tiny scale end to end.
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	tbl, rs := Ablations(0.02)
	if len(rs) != 8 {
		t.Fatalf("ablations produced %d runs, want 8", len(rs))
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
	for _, r := range rs {
		if r.Stats.Commits == 0 {
			t.Errorf("%s: no commits", r.System)
		}
	}
}
