package workload

import (
	"fmt"
	"math"
	"time"

	"uhtm/internal/core"
	"uhtm/internal/harness"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// The recovery experiment grid: committed redo-log volume at crash time
// (transactions) × background checkpoint interval (commits between
// ReclaimLogs passes; 0 = no background reclamation, the whole log
// replays). Each cell runs the load, pulls the plug, recovers, and
// reports the measured recovery pass — the curve the checkpoint
// interval is meant to flatten.
// The intervals deliberately do not divide the transaction counts, so
// the crash lands mid-interval and recovery always has a residual log
// tail to replay — a crash exactly on a checkpoint boundary would make
// the frequent-checkpoint cells degenerately free.
var (
	recoveryLogTxs = []int{64, 256, 1024}
	recoveryCkpt   = []int{0, 48, 192}
)

// The recovery machine is deliberately small and conflict-free: four
// cores writing disjoint NVM lines. Contention is other experiments'
// subject; here every committed transaction must land in the log so the
// log-size axis means what it says.
const (
	recoveryCores       = 4
	recoveryWritesPerTx = 4
	recoveryPoolLines   = 16 // per-core private line pool, written cyclically
)

// recoveryPlan enumerates the recovery grid. Scale shrinks the
// transaction counts (the labels keep the full-scale axis value, like
// the scale experiment's core counts).
func recoveryPlan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	scale := opt.Scale
	if scale <= 0 {
		scale = 1.0
	}
	seed := int64(42)
	if opt.seedOverride() {
		seed = opt.Seed
	}
	var specs []harness.Spec[Result]
	for _, logTxs := range recoveryLogTxs {
		n := int(math.Ceil(float64(logTxs) * scale))
		if n < recoveryCores {
			n = recoveryCores
		}
		for _, every := range recoveryCkpt {
			// The interval scales with the transaction counts so reduced
			// runs keep the same checkpoints-per-run shape (0 stays 0).
			e := int(math.Ceil(float64(every) * scale))
			if every > 0 && e < 1 {
				e = 1
			}
			specs = append(specs, recoverySpec(logTxs, n, every, e, seed, opt.Trace))
		}
	}
	return specs, foldRecovery
}

// recoverySpec builds one recovery-grid cell: commit txs transactions
// across the cores (checkpointing every ckptEvery commits when
// non-zero), crash, and time the recovery pass. Labels carry the
// full-scale axis values.
func recoverySpec(labelTxs, txs, labelEvery, ckptEvery int, seed int64, traced bool) harness.Spec[Result] {
	system := fmt.Sprintf("logtxs=%d", labelTxs)
	bench := Bench(fmt.Sprintf("ckpt=%d", labelEvery))
	return harness.Spec[Result]{
		Experiment: "recovery",
		System:     system,
		Bench:      string(bench),
		Seed:       seed,
		Run: func() Result {
			start := time.Now()
			eng := sim.NewEngine(seed)
			if traced {
				eng.SetTracer(trace.NewRecorder())
			}
			mc := mem.DefaultConfig()
			mc.Cores = recoveryCores
			m := core.NewMachine(eng, mc, core.DefaultOptions())

			al := mem.NewAllocator(mem.NVM)
			pools := make([]mem.Addr, recoveryCores)
			for i := range pools {
				pools[i] = al.AllocLines(recoveryPoolLines)
			}
			commits := 0
			for c := 0; c < recoveryCores; c++ {
				c := c
				per := txs / recoveryCores
				if c < txs%recoveryCores {
					per++
				}
				eng.Spawn(fmt.Sprintf("rec%d", c), func(th *sim.Thread) {
					ctx := m.NewCtx(th, 0)
					for k := 0; k < per; k++ {
						k := k
						ctx.Run(func(tx *core.Tx) {
							for w := 0; w < recoveryWritesPerTx; w++ {
								line := pools[c] + mem.Addr((k*recoveryWritesPerTx+w)%recoveryPoolLines)*mem.LineSize
								tx.WriteU64(line, uint64(c)<<32|uint64(k))
							}
						})
						commits++
						if ckptEvery > 0 && commits%ckptEvery == 0 {
							m.ReclaimLogs()
						}
					}
				})
			}
			eng.Run()

			m.Crash()
			rst := m.Recover()
			r := Result{
				Experiment:        "recovery",
				System:            system,
				Bench:             bench,
				Seed:              seed,
				Stats:             *m.Stats(),
				Elapsed:           eng.Now(),
				Wall:              time.Since(start),
				RecoveryScanned:   rst.ScannedRecs,
				RecoveryApplied:   rst.AppliedLines,
				RecoveryScanPS:    rst.ScanPS,
				RecoveryReplayPS:  rst.ReplayPS,
				RecoveryPersistPS: rst.PersistPS,
			}
			if traced {
				r.TraceEvents = m.TraceEvents()
			}
			return r
		},
	}
}

// RecoveryPS returns the modeled end-to-end recovery latency: log scan
// plus redo apply plus in-place persistence.
func (r Result) RecoveryPS() sim.Time {
	return r.RecoveryScanPS + r.RecoveryReplayPS + r.RecoveryPersistPS
}

// foldRecovery tabulates the recovery curves: one row per grid cell,
// with records examined vs applied and the modeled phase breakdown in
// nanoseconds. Reading a column downward at a fixed checkpoint interval
// gives recovery latency vs log size; reading a row group across gives
// the payoff of checkpointing more often.
func foldRecovery(rs []Result) *stats.Table {
	tbl := &stats.Table{Header: []string{
		"Cell", "Commits", "Scanned", "Applied", "ScanNS", "ReplayNS", "PersistNS", "RecoveryNS",
	}}
	ns := func(t sim.Time) string { return fmt.Sprintf("%.4g", float64(t)/1000) }
	for _, r := range rs {
		tbl.AddRow(
			r.System+" "+string(r.Bench),
			fmt.Sprintf("%d", r.Stats.Commits),
			fmt.Sprintf("%d", r.RecoveryScanned),
			fmt.Sprintf("%d", r.RecoveryApplied),
			ns(r.RecoveryScanPS),
			ns(r.RecoveryReplayPS),
			ns(r.RecoveryPersistPS),
			ns(r.RecoveryPS()),
		)
	}
	return tbl
}
