package workload

import (
	"uhtm/internal/core"
	"uhtm/internal/harness"
	"uhtm/internal/signature"
	"uhtm/internal/stats"
)

// Ablations exercises the design choices DESIGN.md calls out, each as a
// paired run on the same workload:
//
//   - requester-wins/-loses (Table II) vs age-based resolution — the
//     livelock remedy the paper defers to future work;
//   - the DRAM cache of the [28] substrate vs direct NVM re-reads for
//     early-evicted persistent lines;
//   - signature isolation on vs off at a fixed signature size (the
//     optimization quantified standalone rather than via Fig. 6's grid);
//   - the undo-vs-redo DRAM logging choice at one footprint (Fig. 10's
//     mechanism in one row).
func Ablations(scale float64) (*stats.Table, []Result) { return mustRun("ablate", scale) }

func ablationPlan(opt RunOptions) ([]harness.Spec[Result], foldFunc) {
	type row struct{ name, variant, note string }
	var rows []row
	var specs []harness.Spec[Result]
	add := func(name, variant, note string, s SystemSpec, b Bench, cfg Config) {
		rows = append(rows, row{name, variant, note})
		specs = append(specs, spec("ablate", s, b, opt.seeded(cfg)))
	}

	// 1. Conflict resolution policy under contention: a hot-key PMDK
	// workload where requester policies can ping-pong.
	contended := pmdkConfig(100)
	contended.KeySpace = 64 // heavy same-key collisions
	contended.Prepopulate = 64
	contended.BatchesPerThread = scaleN(8, opt.Scale)
	base := UHTM(signature.Bits4K, true)
	add("resolution", "requester-wins/loses", "Table II", base, BenchBTree, contended)
	aged := base
	aged.Name = "4k_opt+aging"
	aged.Opts.Aging = true
	add("resolution", "age-based (youngest aborts)", "future-work remedy", aged, BenchBTree, contended)

	// 2. DRAM cache vs direct NVM for early-evicted lines: an
	// overflow-heavy durable workload re-reading its own spilled data.
	spill := pmdkConfig(300)
	spill.BatchesPerThread = scaleN(8, opt.Scale)
	add("dram-cache", "enabled ([28] substrate)", "early-evicted @ DRAM speed", base, BenchSkipList, spill)
	noCache := base
	noCache.Name = "4k_opt-nodram$"
	noCache.Opts.NoDRAMCache = true
	add("dram-cache", "disabled", "early-evicted @ NVM speed", noCache, BenchSkipList, spill)

	// 3. Signature isolation at fixed size (1k bits).
	iso := pmdkConfig(200)
	iso.BatchesPerThread = scaleN(8, opt.Scale)
	add("isolation", "off (1k_sig)", "cross-domain FPs", UHTM(signature.Bits1K, false), BenchBTree, iso)
	add("isolation", "on (1k_opt)", "domain-confined", UHTM(signature.Bits1K, true), BenchBTree, iso)

	// 4. DRAM logging for overflowed volatile lines at one footprint.
	vol := pmdkConfig(200)
	vol.Persistent = false
	vol.BatchesPerThread = scaleN(8, opt.Scale)
	undo := UHTM(signature.Bits4K, true)
	add("dram-log", "undo (eager)", "fast commit", undo, BenchRBTree, vol)
	redo := undo
	redo.Name = "4k_opt_redo"
	redo.Opts.DRAMLog = core.DRAMRedo
	add("dram-log", "redo (lazy)", "copy-back commit", redo, BenchRBTree, vol)

	fold := func(rs []Result) *stats.Table {
		tbl := &stats.Table{Header: []string{"ablation", "variant", "tx/s", "abort-rate", "note"}}
		for i, r := range rs {
			tbl.AddRow(rows[i].name, rows[i].variant, f2(r.Throughput()), pct(r.Stats.AbortRate()), rows[i].note)
		}
		return tbl
	}
	return specs, fold
}
