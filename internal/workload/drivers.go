package workload

import (
	"fmt"
	"math/rand"
	"time"

	"uhtm/internal/core"
	"uhtm/internal/kv"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
	"uhtm/internal/txds"
)

// Bench names a benchmark family from Table IV.
type Bench string

// The benchmark families of Table IV.
const (
	BenchHashMap     Bench = "HashMap"
	BenchBTree       Bench = "B-Tree"
	BenchRBTree      Bench = "RB-Tree"
	BenchSkipList    Bench = "SkipList"
	BenchEcho        Bench = "Echo"
	BenchHybridIndex Bench = "Hybrid-Index"
	BenchDual        Bench = "Dual"
)

// PMDKBenches lists the four micro-benchmark structures.
func PMDKBenches() []Bench {
	return []Bench{BenchHashMap, BenchBTree, BenchRBTree, BenchSkipList}
}

// Config parameterizes one run.
type Config struct {
	Seed int64

	Instances          int // consolidated benchmark copies (one domain each)
	ThreadsPerInstance int

	ValueSize        int // bytes per value
	FootprintKB      int // per-transaction write footprint
	BatchesPerThread int // transactions per thread
	KeySpace         int // keys per instance
	Prepopulate      int // keys inserted before measurement
	PrepopValueSize  int // value size used during prepopulation (0 = ValueSize)

	Persistent bool // data in NVM (durable txs) vs DRAM (volatile txs)

	MemApps      int      // LLC-hungry background threads (own domains)
	MemAppWindow int      // bytes each sweeps over
	MemAppCost   sim.Time // per-line streaming cost (bandwidth model)

	// Long-running read-only transactions (Fig. 8): every LongROEvery-th
	// operation on a thread is a read-only batch of LongROBytes instead
	// of a put batch. Zero disables.
	LongROEvery int
	LongROBytes int

	// Geometry overrides the Table III machine configuration when
	// non-nil (tests use a shrunken hierarchy). Cores is always derived
	// from the thread count.
	Geometry *mem.Config

	// Trace attaches an event recorder to the run's engine; the full
	// stream comes back in Result.TraceEvents.
	Trace bool
}

// DefaultConfig is the Figure 6 shape: four instances of four threads,
// 1 KB values, 100 KB transactions, two memory-intensive apps.
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		Instances:          4,
		ThreadsPerInstance: 4,
		ValueSize:          1024,
		FootprintKB:        100,
		BatchesPerThread:   8,
		KeySpace:           32 << 10, // large enough that true conflicts are rare
		Prepopulate:        4 << 10,
		Persistent:         true,
		MemApps:            2,
		MemAppWindow:       32 << 20,
		MemAppCost:         120 * sim.Picosecond,
	}
}

// Result carries one (system, benchmark) measurement. Experiment and
// Wall are filled in by the harness plan layer (see plan.go); the rest
// by the benchmark drivers.
type Result struct {
	Experiment  string
	System      string
	Bench       Bench
	FootprintKB int
	Seed        int64
	Stats       stats.Stats
	Elapsed     sim.Time      // simulated wall-clock of the run
	Wall        time.Duration // host wall-clock spent simulating

	// TraceEvents is the run's full event stream when Config.Trace was
	// set, nil otherwise. It is deliberately absent from the JSON record
	// (see resultJSON): traces go to their own file in Chrome format.
	TraceEvents []trace.Event

	// Crash-sweep runs only (see RunCrashSweep): the injected crash
	// point, its 1-based visit index, and the recovery verdict ("ok" or
	// "fail: <violated invariant>"). Empty for experiment runs.
	Point   string
	Visit   int
	Verdict string

	// Sharded scale-out runs only (experiment "scale"): the shard count
	// of the cluster and its cross-shard 2PC commit/abort totals. Stats
	// counts local (single-shard) transactions.
	Shards       int
	CrossCommits uint64
	CrossAborts  uint64

	// Recovery runs only (experiment "recovery"): what the post-crash
	// recovery pass examined and applied, and its modeled per-phase
	// simulated latencies (see core.RecoveryStats). All deterministic;
	// the host time of the pass folds into Wall.
	RecoveryScanned   int
	RecoveryApplied   int
	RecoveryScanPS    sim.Time
	RecoveryReplayPS  sim.Time
	RecoveryPersistPS sim.Time
}

// Throughput returns committed transactions per simulated second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Commits) / r.Elapsed.Seconds()
}

// opsPerBatch converts the footprint knob into puts per transaction.
func (c Config) opsPerBatch() int {
	n := c.FootprintKB * 1024 / c.ValueSize
	if n < 1 {
		n = 1
	}
	return n
}

// arenasFor carves per-instance memory arenas: consolidated benchmarks
// model separate processes, so their heaps must not share cache lines
// (false line sharing across conflict domains would be both unrealistic
// and — for two serialized slow-path transactions — unresolvable). The
// DRAM split leaves room at the top for the memory-app sweep windows.
func arenasFor(cfg Config) (dram, nvm []*mem.Allocator) {
	reserve := mem.Addr(cfg.MemApps*cfg.MemAppWindow) + (64 << 20)
	return mem.SplitRegion(mem.DRAM, cfg.Instances, reserve),
		mem.SplitRegion(mem.NVM, cfg.Instances, 0)
}

// dataArenas returns the arena set matching cfg.Persistent.
func dataArenas(cfg Config) []*mem.Allocator {
	d, n := arenasFor(cfg)
	if cfg.Persistent {
		return n
	}
	return d
}

// dsKV is the common surface of the four PMDK structures.
type dsKV interface {
	Put(m txds.Mem, k uint64, v []byte)
	Get(m txds.Mem, k uint64) ([]byte, bool)
}

// hashBuckets sizes a hash table so chains stay at one or two nodes —
// the short-latency point lookup that keeps the PMDK hashmap benchmark
// out of capacity trouble in the paper.
func hashBuckets(keySpace int) int {
	n := 1
	for n < keySpace/2 {
		n <<= 1
	}
	if n < 64 {
		n = 64
	}
	return n
}

func makeDS(b Bench, setup txds.Mem, al *mem.Allocator, keySpace int) dsKV {
	switch b {
	case BenchHashMap:
		return txds.NewHashMap(setup, al, hashBuckets(keySpace))
	case BenchBTree:
		return txds.NewBTree(setup, al)
	case BenchRBTree:
		return txds.NewRBTree(setup, al)
	case BenchSkipList:
		return txds.NewSkipList(setup, al)
	default:
		panic(fmt.Sprintf("workload: %s is not a PMDK structure", b))
	}
}

// defaultGeometry returns the Table III machine configuration.
func defaultGeometry() mem.Config { return mem.DefaultConfig() }

// machineFor builds the engine+machine pair with enough cores for the
// run.
func machineFor(spec SystemSpec, cfg Config, extraThreads int) (*sim.Engine, *core.Machine) {
	mc := defaultGeometry()
	if cfg.Geometry != nil {
		mc = *cfg.Geometry
	}
	mc.Cores = cfg.Instances*cfg.ThreadsPerInstance + cfg.MemApps + extraThreads
	eng := sim.NewEngine(cfg.Seed)
	if cfg.Trace {
		eng.SetTracer(trace.NewRecorder())
	}
	return eng, core.NewMachine(eng, mc, spec.Opts)
}

// valueFor builds a deterministic value payload.
func valueFor(size int, k uint64) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(k + uint64(i))
	}
	return v
}

// spawnMemApps launches the LLC-hungry background applications: each
// sweeps random lines of a private DRAM window non-transactionally until
// done reports true, evicting everyone else's LLC lines along the way
// (Section III-C's graph500 observation).
func spawnMemApps(eng *sim.Engine, m *core.Machine, cfg Config, domainBase int, done *bool) {
	// Windows are carved from the top of usable DRAM (just below the log
	// area), far above the arenas the benchmarks draw from.
	cost := cfg.MemAppCost
	if cost <= 0 {
		cost = 1500 * sim.Picosecond
	}
	for i := 0; i < cfg.MemApps; i++ {
		app := i
		eng.Spawn(fmt.Sprintf("memapp%d", app), func(th *sim.Thread) {
			c := m.NewCtx(th, domainBase+app)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+app)))
			base := mem.DRAMLogBase - mem.Addr((app+1)*cfg.MemAppWindow)
			for !*done {
				c.PolluteLLC(base, cfg.MemAppWindow, 4096, cost, rng)
			}
		})
	}
}

// prepopValue returns the value size used for prepopulation.
func (c Config) prepopValue() int {
	if c.PrepopValueSize > 0 {
		return c.PrepopValueSize
	}
	return c.ValueSize
}

// putBatch performs one transaction of puts. HashMaps take the
// copy-on-write path of PMDK's hashmap example: values materialize
// outside the transaction (private until published) and only the
// pointer splice is transactional, so hashmap transactions stay small.
// The tree structures keep data inline (PMDK's btree/rbtree examples
// store items in nodes), so the whole value is transactional state.
func putBatch(c *core.Ctx, ds dsKV, keys []uint64, valueSize int) {
	if h, ok := ds.(*txds.HashMap); ok {
		refs := make([]mem.Addr, len(keys))
		nt := c.NT()
		for i, k := range keys {
			refs[i] = txds.BuildValue(nt, h.Allocator(), valueFor(valueSize, k))
		}
		c.Run(func(tx *core.Tx) {
			for i, k := range keys {
				h.PutRef(tx, k, refs[i])
			}
		})
		return
	}
	c.Run(func(tx *core.Tx) {
		for _, k := range keys {
			ds.Put(tx, k, valueFor(valueSize, k))
		}
	})
}

// runPMDK runs the consolidated PMDK micro-benchmark: cfg.Instances
// copies of structure b (each its own conflict domain and key space),
// cfg.ThreadsPerInstance threads per copy doing batched puts of
// cfg.FootprintKB per transaction, plus memory-intensive apps.
func runPMDK(spec SystemSpec, b Bench, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	arenas := dataArenas(cfg)

	// Per-instance structures, prepopulated outside the measured run.
	dss := make([]dsKV, cfg.Instances)
	for i := range dss {
		dss[i] = makeDS(b, st, arenas[i], cfg.KeySpace)
		for k := 1; k <= cfg.Prepopulate; k++ {
			dss[i].Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
		}
	}

	ops := cfg.opsPerBatch()
	remaining := cfg.Instances * cfg.ThreadsPerInstance
	done := false
	var benchThreads []*sim.Thread
	for inst := 0; inst < cfg.Instances; inst++ {
		for t := 0; t < cfg.ThreadsPerInstance; t++ {
			inst, t := inst, t
			th := eng.Spawn(fmt.Sprintf("%s%d.%d", b, inst, t), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(inst*100+t)))
				ds := dss[inst]
				for batch := 0; batch < cfg.BatchesPerThread; batch++ {
					keys := make([]uint64, ops)
					for i := range keys {
						keys[i] = uint64(rng.Intn(cfg.KeySpace)) + 1
					}
					putBatch(c, ds, keys, cfg.ValueSize)
				}
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
	}
	spawnMemApps(eng, m, cfg, cfg.Instances, &done)
	eng.Run()
	return collect(spec, b, m, cfg, benchThreads)
}

// collect aggregates per-domain stats over the benchmark instances and
// measures elapsed time as the slowest benchmark thread.
func collect(spec SystemSpec, b Bench, m *core.Machine, cfg Config, threads []*sim.Thread) Result {
	var agg stats.Stats
	for d := 0; d < cfg.Instances; d++ {
		agg.Add(m.DomainStats(d))
	}
	var elapsed sim.Time
	for _, th := range threads {
		if th.Clock() > elapsed {
			elapsed = th.Clock()
		}
	}
	agg.Elapsed = elapsed
	return Result{
		System:      spec.Name,
		Bench:       b,
		FootprintKB: cfg.FootprintKB,
		Seed:        cfg.Seed,
		Stats:       agg,
		Elapsed:     elapsed,
		TraceEvents: m.TraceEvents(),
	}
}

// runEcho runs consolidated Echo instances: one master + N-1 clients per
// instance; clients batch updates through rings, the master applies each
// drained batch in one durable transaction.
func runEcho(spec SystemSpec, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	dArenas, nArenas := arenasFor(cfg)

	ops := cfg.opsPerBatch()
	clients := cfg.ThreadsPerInstance - 1
	stores := make([]*kv.Echo, cfg.Instances)
	for i := range stores {
		stores[i] = kv.NewEcho(st, dArenas[i], nArenas[i], hashBuckets(cfg.KeySpace), clients, 4*ops, cfg.ValueSize)
		for k := 1; k <= cfg.Prepopulate; k++ {
			stores[i].Table.Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
		}
	}

	remaining := cfg.Instances * cfg.ThreadsPerInstance
	done := false
	var benchThreads []*sim.Thread
	for inst := 0; inst < cfg.Instances; inst++ {
		inst := inst
		clientsLeft := clients
		// Clients.
		for cl := 0; cl < clients; cl++ {
			cl := cl
			th := eng.Spawn(fmt.Sprintf("echo%d.c%d", inst, cl), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(inst*100+cl)))
				nt := c.NT()
				for batch := 0; batch < cfg.BatchesPerThread; batch++ {
					for i := 0; i < ops; i++ {
						k := uint64(rng.Intn(cfg.KeySpace)) + 1
						p := kv.KV{Key: k, Val: valueFor(cfg.ValueSize, k)}
						for !stores[inst].Rings[cl].TryPush(nt, p) {
							th.Advance(5 * sim.Microsecond)
							th.Sync()
						}
					}
				}
				clientsLeft--
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
		// Master.
		th := eng.Spawn(fmt.Sprintf("echo%d.m", inst), func(th *sim.Thread) {
			c := m.NewCtx(th, inst)
			for {
				total := 0
				for cl := 0; cl < clients; cl++ {
					total += stores[inst].MasterStep(c, cl, ops)
				}
				if total == 0 {
					if clientsLeft == 0 && ringsEmpty(stores[inst], c) {
						break
					}
					th.Advance(5 * sim.Microsecond)
					th.Sync()
				}
			}
			remaining--
			if remaining == 0 {
				done = true
			}
		})
		benchThreads = append(benchThreads, th)
	}
	spawnMemApps(eng, m, cfg, cfg.Instances, &done)
	eng.Run()
	return collect(spec, BenchEcho, m, cfg, benchThreads)
}

func ringsEmpty(e *kv.Echo, c *core.Ctx) bool {
	nt := c.NT()
	for _, r := range e.Rings {
		if r.Len(nt) > 0 {
			return false
		}
	}
	return true
}

// runEchoLongRO is the Figure 8 workload: one Echo table, every thread
// issuing single-put transactions (1 KB values), with every
// LongROEvery-th operation replaced by a long-running read-only get
// batch of LongROBytes.
func runEchoLongRO(spec SystemSpec, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	store := kv.NewEcho(st, dal, nal, 1<<15, 1, 8, cfg.ValueSize)
	for k := 1; k <= cfg.Prepopulate; k++ {
		store.Table.Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
	}
	roKeys := cfg.LongROBytes / cfg.ValueSize

	threads := cfg.Instances * cfg.ThreadsPerInstance
	var benchThreads []*sim.Thread
	for t := 0; t < threads; t++ {
		t := t
		th := eng.Spawn(fmt.Sprintf("echoLR.%d", t), func(th *sim.Thread) {
			c := m.NewCtx(th, 0) // one application, one domain
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
			for op := 0; op < cfg.BatchesPerThread; op++ {
				if cfg.LongROEvery > 0 && op%cfg.LongROEvery == cfg.LongROEvery-1 {
					// A contiguous slice of the keyspace at a random
					// offset: the read-set is exactly LongROBytes of
					// distinct values.
					start := rng.Intn(cfg.Prepopulate)
					keys := make([]uint64, roKeys)
					for i := range keys {
						keys[i] = uint64((start+i)%cfg.Prepopulate) + 1
					}
					store.ReadOnlyBatch(c, keys)
					continue
				}
				k := uint64(rng.Intn(cfg.KeySpace)) + 1
				v := valueFor(cfg.ValueSize, k)
				c.Run(func(tx *core.Tx) {
					store.Table.Put(tx, k, v)
				})
			}
		})
		benchThreads = append(benchThreads, th)
	}
	eng.Run()
	ccfg := cfg
	ccfg.Instances = 1 // one application, one conflict domain
	return collect(spec, BenchEcho, m, ccfg, benchThreads)
}

// runHybridIndex is the Figure 9a workload: consolidated Hybrid-Index
// stores, threads inserting batches that touch the DRAM B-Tree and the
// NVM HashMap in one transaction.
func runHybridIndex(spec SystemSpec, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	dArenas, nArenas := arenasFor(cfg)
	stores := make([]*kv.HybridIndex, cfg.Instances)
	for i := range stores {
		stores[i] = kv.NewHybridIndex(st, dArenas[i], nArenas[i], hashBuckets(cfg.KeySpace), cfg.ThreadsPerInstance)
		for _, p := range stores[i].Parts {
			for k := 1; k <= cfg.Prepopulate; k++ {
				p.Table.Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
				p.Index.Put(st, uint64(k), nil)
			}
		}
	}
	ops := cfg.opsPerBatch()
	remaining := cfg.Instances * cfg.ThreadsPerInstance
	done := false
	var benchThreads []*sim.Thread
	for inst := 0; inst < cfg.Instances; inst++ {
		for t := 0; t < cfg.ThreadsPerInstance; t++ {
			inst, t := inst, t
			th := eng.Spawn(fmt.Sprintf("hikv%d.%d", inst, t), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(inst*100+t)))
				for batch := 0; batch < cfg.BatchesPerThread; batch++ {
					pairs := make([]kv.KV, ops)
					for i := range pairs {
						k := uint64(rng.Intn(cfg.KeySpace)) + 1
						pairs[i] = kv.KV{Key: k, Val: valueFor(cfg.ValueSize, k)}
					}
					stores[inst].PutBatch(c, t, pairs)
				}
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
	}
	spawnMemApps(eng, m, cfg, cfg.Instances, &done)
	eng.Run()
	return collect(spec, BenchHybridIndex, m, cfg, benchThreads)
}

// runDual is the Figure 9b workload: consolidated Dual stores, half the
// threads serving foreground puts on the DRAM map, half draining the
// cross-referencing log into the NVM map.
func runDual(spec SystemSpec, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	dArenas, nArenas := arenasFor(cfg)
	ops := cfg.opsPerBatch()
	stores := make([]*kv.Dual, cfg.Instances)
	for i := range stores {
		fgParts := cfg.ThreadsPerInstance / 2
		if fgParts == 0 {
			fgParts = 1
		}
		stores[i] = kv.NewDual(st, dArenas[i], nArenas[i], hashBuckets(cfg.KeySpace), fgParts, 8*ops, cfg.ValueSize)
		for _, p := range stores[i].Parts {
			for k := 1; k <= cfg.Prepopulate; k++ {
				p.Front.Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
				p.Back.Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
			}
		}
	}
	fg := cfg.ThreadsPerInstance / 2
	if fg == 0 {
		fg = 1
	}
	bg := cfg.ThreadsPerInstance - fg
	remaining := cfg.Instances * cfg.ThreadsPerInstance
	done := false
	var benchThreads []*sim.Thread
	for inst := 0; inst < cfg.Instances; inst++ {
		inst := inst
		fgLeft := fg
		for t := 0; t < fg; t++ {
			t := t
			th := eng.Spawn(fmt.Sprintf("dual%d.f%d", inst, t), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(inst*100+t)))
				for batch := 0; batch < cfg.BatchesPerThread; batch++ {
					pairs := make([]kv.KV, ops)
					for i := range pairs {
						k := uint64(rng.Intn(cfg.KeySpace)) + 1
						pairs[i] = kv.KV{Key: k, Val: valueFor(cfg.ValueSize, k)}
					}
					stores[inst].FrontPut(c, t, pairs)
				}
				fgLeft--
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
		for t := 0; t < bg; t++ {
			t := t
			th := eng.Spawn(fmt.Sprintf("dual%d.b%d", inst, t), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				for {
					n := stores[inst].BackendStep(c, t%fg, ops)
					if n == 0 {
						if fgLeft == 0 && stores[inst].Parts[t%fg].XLog.Len(c.NT()) == 0 {
							break
						}
						th.Advance(5 * sim.Microsecond)
						th.Sync()
					}
				}
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
	}
	spawnMemApps(eng, m, cfg, cfg.Instances, &done)
	eng.Run()
	return collect(spec, BenchDual, m, cfg, benchThreads)
}

// BenchMixed consolidates one instance of each PMDK structure — the
// Figure 7 configuration ("we consolidated four benchmarks with four
// threads").
const BenchMixed Bench = "Mixed"

// runMixed runs the consolidated mix: instance i hosts PMDK structure
// i mod 4.
func runMixed(spec SystemSpec, cfg Config) Result {
	eng, m := machineFor(spec, cfg, 0)
	st := m.Store()
	arenas := dataArenas(cfg)
	benches := PMDKBenches()
	dss := make([]dsKV, cfg.Instances)
	for i := range dss {
		dss[i] = makeDS(benches[i%len(benches)], st, arenas[i], cfg.KeySpace)
		for k := 1; k <= cfg.Prepopulate; k++ {
			dss[i].Put(st, uint64(k), valueFor(cfg.prepopValue(), uint64(k)))
		}
	}
	ops := cfg.opsPerBatch()
	remaining := cfg.Instances * cfg.ThreadsPerInstance
	done := false
	var benchThreads []*sim.Thread
	for inst := 0; inst < cfg.Instances; inst++ {
		for t := 0; t < cfg.ThreadsPerInstance; t++ {
			inst, t := inst, t
			th := eng.Spawn(fmt.Sprintf("mix%d.%d", inst, t), func(th *sim.Thread) {
				c := m.NewCtx(th, inst)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(inst*100+t)))
				ds := dss[inst]
				for batch := 0; batch < cfg.BatchesPerThread; batch++ {
					keys := make([]uint64, ops)
					for i := range keys {
						keys[i] = uint64(rng.Intn(cfg.KeySpace)) + 1
					}
					putBatch(c, ds, keys, cfg.ValueSize)
				}
				remaining--
				if remaining == 0 {
					done = true
				}
			})
			benchThreads = append(benchThreads, th)
		}
	}
	spawnMemApps(eng, m, cfg, cfg.Instances, &done)
	eng.Run()
	return collect(spec, BenchMixed, m, cfg, benchThreads)
}

// Run dispatches a benchmark family.
func Run(spec SystemSpec, b Bench, cfg Config) Result {
	switch b {
	case BenchHashMap, BenchBTree, BenchRBTree, BenchSkipList:
		return runPMDK(spec, b, cfg)
	case BenchMixed:
		return runMixed(spec, cfg)
	case BenchEcho:
		if cfg.LongROEvery > 0 {
			return runEchoLongRO(spec, cfg)
		}
		return runEcho(spec, cfg)
	case BenchHybridIndex:
		return runHybridIndex(spec, cfg)
	case BenchDual:
		return runDual(spec, cfg)
	default:
		panic(fmt.Sprintf("workload: unknown benchmark %q", b))
	}
}
