// Package dramcache models the DRAM cache that the hardware-logging
// substrate [28] places between the LLC and NVM. LLC-evicted
// transactional NVM lines ("early-evicted blocks") land here instead of
// stalling on slow NVM, so reads of them hit at DRAM latency, and abort
// invalidation happens here via the invalidate bit (Section IV-C "NVM").
//
// The structure is a presence/metadata model: data bytes live in the
// mem.Store live image, and the *durable* in-place NVM update is driven
// by the machine's commit-image bookkeeping (committed line images are
// persisted before redo-log reclamation), never by this cache. That
// keeps eager in-place writes by later transactions from leaking
// uncommitted bytes to durable NVM through a drain.
package dramcache

import (
	"sort"

	"uhtm/internal/cache"
	"uhtm/internal/mem"
	"uhtm/internal/trace"
)

type lineMeta struct {
	tx        uint64 // owning transaction; 0 = non-transactional/none
	committed bool
}

// Cache is the DRAM cache.
type Cache struct {
	tags *cache.Cache
	meta map[mem.Addr]*lineMeta
	byTx map[uint64]map[mem.Addr]struct{}

	// Drains counts committed lines displaced (their lazy in-place
	// update is due); Drops counts uncommitted lines discarded (the redo
	// log is their durability backstop).
	Drains uint64
	Drops  uint64

	// tracer, when set, receives fill/drain/drop events; traceNow
	// supplies the engine world's virtual time.
	tracer   *trace.Recorder
	traceNow func() int64
}

// New builds a DRAM cache of the given geometry.
func New(size, ways int) *Cache {
	c := &Cache{
		meta: make(map[mem.Addr]*lineMeta),
		byTx: make(map[uint64]map[mem.Addr]struct{}),
	}
	c.tags = cache.New("dram$", size, ways, c.onEvict)
	return c
}

// SetTracer installs (or, with nil, removes) the event recorder. now
// supplies virtual timestamps. While tracing, map-order-sensitive bulk
// operations iterate in sorted address order so event sequences are
// deterministic (the cache state itself is order-independent).
func (c *Cache) SetTracer(r *trace.Recorder, now func() int64) {
	c.tracer, c.traceNow = r, now
}

func (c *Cache) emit(k trace.Kind, tx uint64, la mem.Addr) {
	if c.tracer != nil {
		c.tracer.Emit(c.traceNow(), -1, k, tx, uint64(la), 0, 0)
	}
}

func (c *Cache) onEvict(e cache.Eviction) {
	la := e.Addr
	m := c.meta[la]
	if m == nil {
		return
	}
	if m.committed {
		c.Drains++
		c.emit(trace.EvDCDrain, m.tx, la)
	} else {
		c.Drops++
		c.emit(trace.EvDCDrop, m.tx, la)
	}
	c.unindex(m.tx, la)
	delete(c.meta, la)
}

func (c *Cache) index(tx uint64, la mem.Addr) {
	if tx == 0 {
		return
	}
	s := c.byTx[tx]
	if s == nil {
		s = make(map[mem.Addr]struct{})
		c.byTx[tx] = s
	}
	s[la] = struct{}{}
}

func (c *Cache) unindex(tx uint64, la mem.Addr) {
	if tx == 0 {
		return
	}
	if s := c.byTx[tx]; s != nil {
		delete(s, la)
		if len(s) == 0 {
			delete(c.byTx, tx)
		}
	}
}

// Insert records the line containing a as buffered, owned by transaction
// tx (0 for non-transactional data, which is immediately committed).
func (c *Cache) Insert(a mem.Addr, tx uint64) {
	la := mem.LineOf(a)
	c.emit(trace.EvDCFill, tx, la)
	if m := c.meta[la]; m != nil {
		// Re-inserted (the line bounced LLC→DRAM$ again): adopt the
		// newest owner.
		c.unindex(m.tx, la)
		m.tx = tx
		m.committed = tx == 0
		c.index(tx, la)
		c.tags.Insert(la)
		return
	}
	c.meta[la] = &lineMeta{tx: tx, committed: tx == 0}
	c.index(tx, la)
	c.tags.Insert(la)
}

// Lookup reports whether a's line is buffered, refreshing LRU.
func (c *Cache) Lookup(a mem.Addr) bool { return c.tags.Lookup(a) }

// Contains reports presence without LRU effects.
func (c *Cache) Contains(a mem.Addr) bool { return c.tags.Contains(a) }

// CommitTx marks every buffered line of tx committed. It returns the
// number of lines marked.
func (c *Cache) CommitTx(tx uint64) int {
	n := 0
	for la := range c.byTx[tx] {
		if m := c.meta[la]; m != nil && m.tx == tx {
			m.committed = true
			n++
		}
	}
	return n
}

// InvalidateTx sets the invalidate bit on every buffered line of tx —
// the abort path — and drops them. It returns the number invalidated.
func (c *Cache) InvalidateTx(tx uint64) int {
	lines := c.byTx[tx]
	n := 0
	for _, la := range c.iterOrder(lines) {
		if m := c.meta[la]; m != nil && m.tx == tx {
			c.tags.Invalidate(la)
			delete(c.meta, la)
			c.emit(trace.EvDCDrop, tx, la)
			n++
		}
	}
	delete(c.byTx, tx)
	return n
}

// DrainAll displaces every committed buffered line (their in-place
// updates are handled by the machine's commit-image bookkeeping).
// Uncommitted lines stay.
func (c *Cache) DrainAll() {
	for _, la := range c.iterOrder(c.metaKeys()) {
		m := c.meta[la]
		if m == nil || !m.committed {
			continue
		}
		c.Drains++
		c.emit(trace.EvDCDrain, m.tx, la)
		c.tags.Invalidate(la)
		c.unindex(m.tx, la)
		delete(c.meta, la)
	}
}

// metaKeys returns the buffered line set as a key map for iterOrder.
func (c *Cache) metaKeys() map[mem.Addr]struct{} {
	ks := make(map[mem.Addr]struct{}, len(c.meta))
	for la := range c.meta {
		ks[la] = struct{}{}
	}
	return ks
}

// iterOrder returns the keys of s, sorted when tracing (so bulk
// operations emit events deterministically) and in map order otherwise
// (cheaper; the resulting state is identical either way).
func (c *Cache) iterOrder(s map[mem.Addr]struct{}) []mem.Addr {
	out := make([]mem.Addr, 0, len(s))
	for la := range s {
		out = append(out, la)
	}
	if c.tracer != nil {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// Len returns the number of buffered lines.
func (c *Cache) Len() int { return len(c.meta) }
