// Package dramcache models the DRAM cache that the hardware-logging
// substrate [28] places between the LLC and NVM. LLC-evicted
// transactional NVM lines ("early-evicted blocks") land here instead of
// stalling on slow NVM, so reads of them hit at DRAM latency, and abort
// invalidation happens here via the invalidate bit (Section IV-C "NVM").
//
// The structure is a presence/metadata model: data bytes live in the
// mem.Store live image, and the *durable* in-place NVM update is driven
// by the machine's commit-image bookkeeping (committed line images are
// persisted before redo-log reclamation), never by this cache. That
// keeps eager in-place writes by later transactions from leaking
// uncommitted bytes to durable NVM through a drain.
package dramcache

import (
	"slices"

	"uhtm/internal/cache"
	"uhtm/internal/mem"
	"uhtm/internal/trace"
)

// Cache is the DRAM cache. Per-line metadata (owning transaction and
// commit state) lives in arrays parallel to the tag cache's ways, and
// the per-transaction line index is an append-only slice validated
// lazily against the current way owner — a stale entry (line evicted or
// re-adopted by a newer transaction) is simply skipped when the list is
// consumed.
type Cache struct {
	tags      *cache.Cache
	txOf      []uint64 // owning transaction per way; meaningful while the way is valid
	committed []bool
	byTx      map[uint64][]mem.Addr
	freeLists [][]mem.Addr // recycled byTx slices
	scratch   []mem.Addr   // DrainAll victim collection

	// Drains counts committed lines displaced (their lazy in-place
	// update is due); Drops counts uncommitted lines discarded (the redo
	// log is their durability backstop).
	Drains uint64
	Drops  uint64

	// tracer, when set, receives fill/drain/drop events; traceNow
	// supplies the engine world's virtual time.
	tracer   *trace.Recorder
	traceNow func() int64
}

// New builds a DRAM cache of the given geometry.
func New(size, ways int) *Cache {
	c := &Cache{byTx: make(map[uint64][]mem.Addr)}
	c.tags = cache.New("dram$", size, ways, c.onEvict)
	n := c.tags.Sets() * c.tags.Ways()
	c.txOf = make([]uint64, n)
	c.committed = make([]bool, n)
	return c
}

// SetTracer installs (or, with nil, removes) the event recorder. now
// supplies virtual timestamps. While tracing, map-order-sensitive bulk
// operations iterate in sorted address order so event sequences are
// deterministic (the cache state itself is order-independent).
func (c *Cache) SetTracer(r *trace.Recorder, now func() int64) {
	c.tracer, c.traceNow = r, now
}

func (c *Cache) emit(k trace.Kind, tx uint64, la mem.Addr) {
	if c.tracer != nil {
		c.tracer.Emit(c.traceNow(), -1, k, tx, uint64(la), 0, 0)
	}
}

func (c *Cache) onEvict(e cache.Eviction) {
	// The victim way is still findable during the callback.
	i := c.tags.FindWay(e.Addr)
	if i < 0 {
		return
	}
	if c.committed[i] {
		c.Drains++
		c.emit(trace.EvDCDrain, c.txOf[i], e.Addr)
	} else {
		c.Drops++
		c.emit(trace.EvDCDrop, c.txOf[i], e.Addr)
	}
}

func (c *Cache) index(tx uint64, la mem.Addr) {
	if tx == 0 {
		return
	}
	s, ok := c.byTx[tx]
	if !ok && len(c.freeLists) > 0 {
		s = c.freeLists[len(c.freeLists)-1]
		c.freeLists = c.freeLists[:len(c.freeLists)-1]
	}
	c.byTx[tx] = append(s, la)
}

// release returns tx's line list to the free pool. A transaction's list
// is consumed exactly once (commit or abort), so it can be recycled
// immediately afterwards.
func (c *Cache) release(tx uint64) {
	if s, ok := c.byTx[tx]; ok {
		delete(c.byTx, tx)
		c.freeLists = append(c.freeLists, s[:0])
	}
}

// Insert records the line containing a as buffered, owned by transaction
// tx (0 for non-transactional data, which is immediately committed).
func (c *Cache) Insert(a mem.Addr, tx uint64) {
	la := mem.LineOf(a)
	c.emit(trace.EvDCFill, tx, la)
	c.tags.Insert(la) // refresh on re-insert, may evict a victim otherwise
	i := c.tags.FindWay(la)
	// Re-inserted lines (the line bounced LLC→DRAM$ again) adopt the
	// newest owner; the old owner's index entry goes stale and is
	// skipped on consumption.
	c.txOf[i] = tx
	c.committed[i] = tx == 0
	c.index(tx, la)
}

// Lookup reports whether a's line is buffered, refreshing LRU.
func (c *Cache) Lookup(a mem.Addr) bool { return c.tags.Lookup(a) }

// Contains reports presence without LRU effects.
func (c *Cache) Contains(a mem.Addr) bool { return c.tags.Contains(a) }

// CommitTx marks every buffered line of tx committed. It returns the
// number of lines marked.
func (c *Cache) CommitTx(tx uint64) int {
	n := 0
	for _, la := range c.byTx[tx] {
		if i := c.tags.FindWay(la); i >= 0 && c.txOf[i] == tx && !c.committed[i] {
			c.committed[i] = true
			n++
		}
	}
	c.release(tx)
	return n
}

// InvalidateTx sets the invalidate bit on every buffered line of tx —
// the abort path — and drops them. It returns the number invalidated.
func (c *Cache) InvalidateTx(tx uint64) int {
	lines := c.byTx[tx]
	if c.tracer != nil {
		slices.Sort(lines)
	}
	n := 0
	for _, la := range lines {
		if i := c.tags.FindWay(la); i >= 0 && c.txOf[i] == tx {
			c.tags.Invalidate(la)
			c.emit(trace.EvDCDrop, tx, la)
			n++
		}
	}
	c.release(tx)
	return n
}

// DrainAll displaces every committed buffered line (their in-place
// updates are handled by the machine's commit-image bookkeeping).
// Uncommitted lines stay.
func (c *Cache) DrainAll() {
	vs := c.scratch[:0]
	for i := range c.txOf {
		if la, ok := c.tags.WayLine(i); ok && c.committed[i] {
			vs = append(vs, la)
		}
	}
	if c.tracer != nil {
		slices.Sort(vs)
	}
	for _, la := range vs {
		i := c.tags.FindWay(la)
		c.Drains++
		c.emit(trace.EvDCDrain, c.txOf[i], la)
		c.tags.Invalidate(la)
	}
	c.scratch = vs[:0]
}

// Len returns the number of buffered lines.
func (c *Cache) Len() int { return c.tags.Len() }
