package dramcache

import (
	"testing"

	"uhtm/internal/mem"
)

// tiny returns a 2-set, 2-way DRAM cache.
func tiny() *Cache { return New(2*2*mem.LineSize, 2) }

func nvmLine(i int) mem.Addr { return mem.NVMBase + mem.Addr(i)*mem.LineSize }

func TestInsertLookup(t *testing.T) {
	c := tiny()
	a := nvmLine(0)
	c.Insert(a, 1)
	if !c.Lookup(a) || !c.Contains(a) {
		t.Error("inserted line not found")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCommittedEvictionCountsAsDrain(t *testing.T) {
	c := tiny()
	a := nvmLine(0) // set 0
	c.Insert(a, 1)
	c.CommitTx(1)
	// Fill set 0 (lines 0, 2, 4 map to set 0) to force eviction.
	c.Insert(nvmLine(2), 0)
	c.Insert(nvmLine(4), 0)
	if c.Drains != 1 {
		t.Fatalf("Drains = %d, want 1", c.Drains)
	}
	if c.Contains(a) {
		t.Error("evicted line still present")
	}
}

func TestUncommittedEvictionCountsAsDrop(t *testing.T) {
	c := tiny()
	a := nvmLine(0)
	c.Insert(a, 1) // never committed
	c.Insert(nvmLine(2), 0)
	c.Insert(nvmLine(4), 0)
	if c.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", c.Drops)
	}
}

func TestInvalidateTx(t *testing.T) {
	c := tiny()
	a, b := nvmLine(0), nvmLine(1)
	c.Insert(a, 7)
	c.Insert(b, 7)
	if n := c.InvalidateTx(7); n != 2 {
		t.Fatalf("InvalidateTx = %d, want 2", n)
	}
	if c.Contains(a) || c.Contains(b) || c.Len() != 0 {
		t.Error("lines survive invalidation")
	}
	// Invalidation is not a drain.
	if c.Drains != 0 {
		t.Errorf("Drains = %d after invalidate", c.Drains)
	}
}

func TestCommitTxCount(t *testing.T) {
	c := tiny()
	c.Insert(nvmLine(0), 3)
	c.Insert(nvmLine(1), 3)
	c.Insert(nvmLine(2), 4)
	if n := c.CommitTx(3); n != 2 {
		t.Errorf("CommitTx(3) = %d, want 2", n)
	}
	if n := c.CommitTx(99); n != 0 {
		t.Errorf("CommitTx(99) = %d, want 0", n)
	}
}

func TestDrainAllKeepsUncommitted(t *testing.T) {
	c := tiny()
	a, b := nvmLine(0), nvmLine(1)
	c.Insert(a, 1)
	c.Insert(b, 2)
	c.CommitTx(1)
	c.DrainAll()
	if c.Contains(a) {
		t.Error("committed line not drained")
	}
	if !c.Contains(b) {
		t.Error("uncommitted line drained")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after DrainAll, want 1", c.Len())
	}
}

func TestReinsertAdoptsNewOwner(t *testing.T) {
	c := tiny()
	a := nvmLine(0)
	c.Insert(a, 1)
	c.Insert(a, 2) // bounced back under a new transaction
	if n := c.InvalidateTx(1); n != 0 {
		t.Errorf("old owner still indexed: %d", n)
	}
	if n := c.CommitTx(2); n != 1 {
		t.Errorf("new owner not indexed: %d", n)
	}
}

func TestNonTransactionalInsertCommitted(t *testing.T) {
	c := tiny()
	a := nvmLine(1)
	c.Insert(a, 0)
	c.DrainAll()
	if c.Contains(a) {
		t.Error("non-transactional line should be drain-eligible immediately")
	}
}
