package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uhtm/internal/mem"
)

func TestBadFilterSizePanics(t *testing.T) {
	for _, n := range []int{0, -64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFilter(%d) did not panic", n)
				}
			}()
			NewFilter(n)
		}()
	}
}

func TestInsertContain(t *testing.T) {
	f := NewFilter(Bits1K)
	a := mem.Addr(0x4240)
	if f.MayContain(a) {
		t.Error("empty filter matched")
	}
	f.Insert(a)
	if !f.MayContain(a) {
		t.Error("inserted address not matched")
	}
	// Sub-line addresses alias to the same line.
	if !f.MayContain(a + 63) {
		t.Error("sub-line alias not matched")
	}
	if f.Count() != 1 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestClear(t *testing.T) {
	f := NewFilter(Bits512)
	for i := 0; i < 100; i++ {
		f.Insert(mem.Addr(i * mem.LineSize))
	}
	f.Clear()
	if !f.Empty() || f.Count() != 0 || f.FillRatio() != 0 {
		t.Error("Clear left state")
	}
}

// TestNoFalseNegatives is the safety-critical property: a Bloom filter
// may over-report but must never miss an inserted line.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bitsz := range []int{Bits512, Bits1K, Bits4K, Bits16K} {
		f := NewFilter(bitsz)
		var addrs []mem.Addr
		for i := 0; i < 5000; i++ {
			a := mem.Addr(rng.Uint64() % (1 << 30))
			f.Insert(a)
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			if !f.MayContain(a) {
				t.Fatalf("%d-bit filter false negative for %#x", bitsz, uint64(a))
			}
		}
	}
}

// TestFalsePositiveRateOrdering verifies the core premise of Figure 7:
// larger signatures produce fewer false positives at durable-transaction
// footprints (hundreds of lines).
func TestFalsePositiveRateOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const inserted = 1600 // ~100 KB of lines, the paper's footprint
	fpRate := func(bitsz int) float64 {
		f := NewFilter(bitsz)
		in := map[mem.Addr]bool{}
		for i := 0; i < inserted; i++ {
			a := mem.LineOf(mem.Addr(rng.Uint64() % (1 << 28)))
			f.Insert(a)
			in[a] = true
		}
		fp, probes := 0, 0
		for i := 0; i < 20000; i++ {
			a := mem.LineOf(mem.Addr(rng.Uint64() % (1 << 28)))
			if in[a] {
				continue
			}
			probes++
			if f.MayContain(a) {
				fp++
			}
		}
		return float64(fp) / float64(probes)
	}
	r512, r4k, r16k := fpRate(Bits512), fpRate(Bits4K), fpRate(Bits16K)
	if !(r512 >= r4k && r4k >= r16k) {
		t.Errorf("false-positive rates not monotone: 512=%.3f 4k=%.3f 16k=%.3f", r512, r4k, r16k)
	}
	// At this footprint a 512-bit filter is saturated — the paper's
	// "more than 99% of transactions experience a false conflict".
	if r512 < 0.9 {
		t.Errorf("512-bit filter fp rate %.3f; expected near-saturation at %d lines", r512, inserted)
	}
}

func TestFillRatio(t *testing.T) {
	f := NewFilter(Bits512)
	if f.FillRatio() != 0 {
		t.Error("fresh filter not empty")
	}
	f.Insert(0)
	r := f.FillRatio()
	if r <= 0 || r > float64(numHashes)/float64(Bits512) {
		t.Errorf("FillRatio after one insert = %v", r)
	}
}

func TestPreciseSet(t *testing.T) {
	s := NewSet()
	s.Insert(0x1001) // line 0x1000
	if !s.Contains(0x103F) {
		t.Error("same line not contained")
	}
	if s.Contains(0x1040) {
		t.Error("next line contained")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestPairChecks(t *testing.T) {
	p := NewPair(Bits16K) // large: negligible false positives here
	rd, wr := mem.Addr(0x10000), mem.Addr(0x20000)
	p.AddRead(rd)
	p.AddWrite(wr)

	// Incoming write vs our read => conflict; vs our write => conflict.
	if k := p.CheckWrite(rd); k != TrueConflict {
		t.Errorf("write vs read-set = %v", k)
	}
	if k := p.CheckWrite(wr); k != TrueConflict {
		t.Errorf("write vs write-set = %v", k)
	}
	// Incoming read vs our read => no conflict; vs our write => conflict.
	if k := p.CheckRead(rd); k != NoConflict {
		t.Errorf("read vs read-set = %v", k)
	}
	if k := p.CheckRead(wr); k != TrueConflict {
		t.Errorf("read vs write-set = %v", k)
	}
	// Unrelated address: no conflict.
	if k := p.CheckWrite(0x900000); k != NoConflict {
		t.Errorf("unrelated = %v", k)
	}
}

// TestPairFalsePositiveClassification drives a small filter to
// saturation and confirms matches without precise membership classify as
// FalsePositive, never as NoConflict (behaviour must follow hardware).
func TestPairFalsePositiveClassification(t *testing.T) {
	p := NewPair(Bits512)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p.AddWrite(mem.Addr(rng.Uint64() % (1 << 28)))
	}
	sawFP := false
	for i := 0; i < 1000 && !sawFP; i++ {
		a := mem.Addr(rng.Uint64()%(1<<28)) | (1 << 35) // disjoint range
		switch p.CheckRead(a) {
		case TrueConflict:
			t.Fatalf("true conflict reported for never-inserted %#x", uint64(a))
		case FalsePositive:
			sawFP = true
		}
	}
	if !sawFP {
		t.Error("saturated 512-bit filter produced no false positives in 1000 probes")
	}
	p.Clear()
	if !p.Read.Empty() || !p.Write.Empty() || p.PreciseRead.Len() != 0 || p.PreciseWrite.Len() != 0 {
		t.Error("Pair.Clear incomplete")
	}
}

func TestCheckKindString(t *testing.T) {
	if NoConflict.String() != "none" || TrueConflict.String() != "true" || FalsePositive.String() != "false-positive" {
		t.Error("CheckKind strings wrong")
	}
}

// Property: classification never contradicts ground truth — an inserted
// line is always reported as a conflict of the right kind.
func TestQuickCheckAgreesWithShadow(t *testing.T) {
	f := func(seeds []uint32, probe uint32) bool {
		p := NewPair(Bits512)
		for i, s := range seeds {
			a := mem.Addr(s) * mem.LineSize
			if i%2 == 0 {
				p.AddWrite(a)
			} else {
				p.AddRead(a)
			}
		}
		a := mem.Addr(probe) * mem.LineSize
		kw, kr := p.CheckWrite(a), p.CheckRead(a)
		inW := p.PreciseWrite.Contains(a)
		inR := p.PreciseRead.Contains(a)
		if (inW || inR) && kw != TrueConflict {
			return false // false negative on write check
		}
		if inW && kr != TrueConflict {
			return false // false negative on read check
		}
		if !inW && !inR && kw == TrueConflict {
			return false // fabricated true conflict
		}
		if !inW && kr == TrueConflict {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
