// Package signature implements the per-transaction hardware address
// signatures of the paper: Bloom filters over cache-line addresses that
// encode the read- and write-sets of LLC-overflowed blocks. Filters are
// bit-exact models of the hardware (512-bit to 16k-bit arrays, H3-style
// hashing), so their false-positive behaviour — the phenomenon Figures
// 6–9 revolve around — is reproduced rather than approximated.
//
// The package also provides precise shadow sets. The simulated hardware
// *behaves* according to the filters; the shadow sets supply ground
// truth so the statistics layer can classify each signature-detected
// conflict as true or false-positive, and so tests can verify that
// filters never produce false negatives.
package signature

import (
	"math/bits"

	"uhtm/internal/mem"
)

// Standard signature sizes evaluated in the paper.
const (
	Bits512 = 512
	Bits1K  = 1024
	Bits4K  = 4096
	Bits16K = 16384
)

// numHashes is the number of H3 hash functions per filter; four is the
// usual choice for LogTM-SE-style signatures.
const numHashes = 4

// splitmix64 seeds, one per hash function, fixed so signatures are
// deterministic across runs.
var hashSeeds = [numHashes]uint64{
	0x9E3779B97F4A7C15,
	0xBF58476D1CE4E5B9,
	0x94D049BB133111EB,
	0xD6E8FEB86659FD93,
}

// hash returns the idx-th hash of a line address.
func hash(a mem.Addr, idx int) uint64 {
	x := uint64(a) >> 6 // line-granular
	x += hashSeeds[idx]
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Filter is one hardware Bloom filter.
type Filter struct {
	words []uint64
	nbits int
	count int // insertions since last Clear (including duplicates)
}

// NewFilter returns an empty filter with nbits bits. nbits must be a
// positive multiple of 64.
func NewFilter(nbits int) *Filter {
	if nbits <= 0 || nbits%64 != 0 {
		panic("signature: filter size must be a positive multiple of 64")
	}
	return &Filter{words: make([]uint64, nbits/64), nbits: nbits}
}

// Bits returns the filter's size in bits.
func (f *Filter) Bits() int { return f.nbits }

// Insert encodes the line containing a into the filter.
func (f *Filter) Insert(a mem.Addr) {
	for i := 0; i < numHashes; i++ {
		b := hash(a, i) % uint64(f.nbits)
		f.words[b/64] |= 1 << (b % 64)
	}
	f.count++
}

// MayContain reports whether a's line may have been inserted. False
// means definitely not inserted (no false negatives).
func (f *Filter) MayContain(a mem.Addr) bool {
	for i := 0; i < numHashes; i++ {
		b := hash(a, i) % uint64(f.nbits)
		if f.words[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter (done when a transaction commits or aborts).
func (f *Filter) Clear() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.count = 0
}

// Count returns the number of Insert calls since the last Clear.
func (f *Filter) Count() int { return f.count }

// Empty reports whether no bits are set.
func (f *Filter) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// FillRatio reports the fraction of set bits — a direct proxy for the
// false-positive rate the evaluation section discusses.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.nbits)
}

// Set is a precise shadow set of line addresses: what an ideal
// (false-positive-free) conflict detector would track.
type Set map[mem.Addr]struct{}

// NewSet returns an empty precise set.
func NewSet() Set { return make(Set) }

// Insert adds the line containing a.
func (s Set) Insert(a mem.Addr) { s[mem.LineOf(a)] = struct{}{} }

// Contains reports whether a's line is in the set.
func (s Set) Contains(a mem.Addr) bool {
	_, ok := s[mem.LineOf(a)]
	return ok
}

// Clear empties the set in place.
func (s Set) Clear() {
	for k := range s {
		delete(s, k)
	}
}

// Len returns the number of distinct lines.
func (s Set) Len() int { return len(s) }

// Pair bundles the read and write signatures of one transaction, each
// with its precise shadow.
type Pair struct {
	Read, Write               *Filter
	PreciseRead, PreciseWrite Set
}

// NewPair returns empty read/write signatures of nbits bits each.
func NewPair(nbits int) *Pair {
	return &Pair{
		Read:         NewFilter(nbits),
		Write:        NewFilter(nbits),
		PreciseRead:  NewSet(),
		PreciseWrite: NewSet(),
	}
}

// AddRead records an overflowed transactional read of a.
func (p *Pair) AddRead(a mem.Addr) {
	p.Read.Insert(a)
	p.PreciseRead.Insert(a)
}

// AddWrite records an overflowed transactional write of a.
func (p *Pair) AddWrite(a mem.Addr) {
	p.Write.Insert(a)
	p.PreciseWrite.Insert(a)
}

// Clear empties both filters and shadows (transaction end).
func (p *Pair) Clear() {
	p.Read.Clear()
	p.Write.Clear()
	p.PreciseRead.Clear()
	p.PreciseWrite.Clear()
}

// CheckKind classifies the outcome of checking an address against a
// signature.
type CheckKind int

const (
	// NoConflict: the filter rules the address out.
	NoConflict CheckKind = iota
	// TrueConflict: the filter matches and the precise shadow confirms.
	TrueConflict
	// FalsePositive: the filter matches but the precise shadow refutes —
	// the transaction will still be aborted (hardware cannot tell), but
	// statistics record the abort as false.
	FalsePositive
)

// String names the signature-check outcome for stats and logs.
func (k CheckKind) String() string {
	switch k {
	case NoConflict:
		return "none"
	case TrueConflict:
		return "true"
	default:
		return "false-positive"
	}
}

// CheckWrite classifies an incoming *write* (exclusive) request against
// this transaction's signatures: it conflicts if the line may be in
// either the read or the write set.
func (p *Pair) CheckWrite(a mem.Addr) CheckKind {
	if !p.Read.MayContain(a) && !p.Write.MayContain(a) {
		return NoConflict
	}
	if p.PreciseRead.Contains(a) || p.PreciseWrite.Contains(a) {
		return TrueConflict
	}
	return FalsePositive
}

// CheckRead classifies an incoming *read* (shared) request: it conflicts
// only if the line may be in the write set.
func (p *Pair) CheckRead(a mem.Addr) CheckKind {
	if !p.Write.MayContain(a) {
		return NoConflict
	}
	if p.PreciseWrite.Contains(a) {
		return TrueConflict
	}
	return FalsePositive
}
