// Package cache models set-associative write-back caches (the per-core
// L1s and the shared LLC of Table III, and the geometry of the DRAM
// cache). Caches here track *presence*: which lines are on chip, which
// are dirty, and LRU order. Data itself lives in the mem.Store live
// image (the machine uses eager, in-place version management — Section
// IV-B), and transactional read/write ownership lives in the coherence
// directory; the HTM layer consults the directory when this package
// reports an eviction.
package cache

import (
	"fmt"

	"uhtm/internal/mem"
)

// Eviction describes a victim line leaving the cache.
type Eviction struct {
	Addr  mem.Addr // line address
	Dirty bool
}

// EvictFunc is called for each line displaced by an Insert.
type EvictFunc func(Eviction)

type line struct {
	addr  mem.Addr
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is one level of the hierarchy.
type Cache struct {
	name    string
	sets    [][]line
	numSets int
	ways    int
	tick    uint64
	onEvict EvictFunc

	// Hits and Misses count Lookup results, for statistics.
	Hits, Misses uint64

	// onLookup, when set, observes every Lookup outcome (the tracing
	// layer's hit/miss event source). It must not mutate the cache.
	onLookup func(addr mem.Addr, hit bool)
}

// New builds a cache of the given total size in bytes and associativity.
// size must be a multiple of ways*LineSize and the resulting set count a
// power of two. onEvict may be nil.
func New(name string, size, ways int, onEvict EvictFunc) *Cache {
	if size <= 0 || ways <= 0 || size%(ways*mem.LineSize) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, size, ways))
	}
	numSets := size / (ways * mem.LineSize)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, numSets))
	}
	sets := make([][]line, numSets)
	backing := make([]line, numSets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways]
	}
	return &Cache{name: name, sets: sets, numSets: numSets, ways: ways, onEvict: onEvict}
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

func (c *Cache) set(a mem.Addr) []line {
	idx := int((a / mem.LineSize)) & (c.numSets - 1)
	return c.sets[idx]
}

func (c *Cache) find(a mem.Addr) *line {
	la := mem.LineOf(a)
	s := c.set(la)
	for i := range s {
		if s[i].valid && s[i].addr == la {
			return &s[i]
		}
	}
	return nil
}

// SetLookupHook installs (or, with nil, removes) an observer for Lookup
// outcomes.
func (c *Cache) SetLookupHook(f func(addr mem.Addr, hit bool)) { c.onLookup = f }

// Lookup reports whether the line containing a is present, refreshing
// its LRU position on a hit and updating hit/miss counters.
func (c *Cache) Lookup(a mem.Addr) bool {
	if l := c.find(a); l != nil {
		c.tick++
		l.used = c.tick
		c.Hits++
		if c.onLookup != nil {
			c.onLookup(mem.LineOf(a), true)
		}
		return true
	}
	c.Misses++
	if c.onLookup != nil {
		c.onLookup(mem.LineOf(a), false)
	}
	return false
}

// Contains reports presence without touching LRU state or counters.
func (c *Cache) Contains(a mem.Addr) bool { return c.find(a) != nil }

// Dirty reports whether the line containing a is present and dirty.
func (c *Cache) Dirty(a mem.Addr) bool {
	l := c.find(a)
	return l != nil && l.dirty
}

// Insert brings the line containing a into the cache (most recently
// used), evicting the LRU way of its set if full. Inserting a present
// line just refreshes LRU. The victim, if any, is reported to onEvict.
func (c *Cache) Insert(a mem.Addr) {
	la := mem.LineOf(a)
	if l := c.find(la); l != nil {
		c.tick++
		l.used = c.tick
		return
	}
	s := c.set(la)
	victim := &s[0]
	for i := range s {
		if !s[i].valid {
			victim = &s[i]
			break
		}
		if s[i].used < victim.used {
			victim = &s[i]
		}
	}
	if victim.valid && c.onEvict != nil {
		c.onEvict(Eviction{Addr: victim.addr, Dirty: victim.dirty})
	}
	c.tick++
	*victim = line{addr: la, valid: true, used: c.tick}
}

// MarkDirty sets the dirty bit of a present line; it reports whether the
// line was present.
func (c *Cache) MarkDirty(a mem.Addr) bool {
	if l := c.find(a); l != nil {
		l.dirty = true
		return true
	}
	return false
}

// CleanLine clears the dirty bit (after a write-back) of a present line.
func (c *Cache) CleanLine(a mem.Addr) {
	if l := c.find(a); l != nil {
		l.dirty = false
	}
}

// Invalidate drops the line containing a without invoking onEvict (the
// caller decides what to do with its contents). It reports whether the
// line was present and whether it was dirty.
func (c *Cache) Invalidate(a mem.Addr) (present, dirty bool) {
	if l := c.find(a); l != nil {
		present, dirty = true, l.dirty
		*l = line{}
	}
	return
}

// ForEach visits every valid line (set order, way order). The callback
// must not mutate the cache.
func (c *Cache) ForEach(fn func(addr mem.Addr, dirty bool)) {
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid {
				fn(s[i].addr, s[i].dirty)
			}
		}
	}
}

// Len returns the number of valid lines.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid {
				n++
			}
		}
	}
	return n
}

// Reset empties the cache and clears counters.
func (c *Cache) Reset() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = line{}
		}
	}
	c.tick, c.Hits, c.Misses = 0, 0, 0
}
