// Package cache models set-associative write-back caches (the per-core
// L1s and the shared LLC of Table III, and the geometry of the DRAM
// cache). Caches here track *presence*: which lines are on chip, which
// are dirty, and LRU order. Data itself lives in the mem.Store live
// image (the machine uses eager, in-place version management — Section
// IV-B), and transactional read/write ownership lives in the coherence
// directory; the HTM layer consults the directory when this package
// reports an eviction.
package cache

import (
	"fmt"

	"uhtm/internal/mem"
)

// Eviction describes a victim line leaving the cache.
type Eviction struct {
	Addr  mem.Addr // line address
	Dirty bool
}

// EvictFunc is called for each line displaced by an Insert.
type EvictFunc func(Eviction)

// Cache is one level of the hierarchy. Ways are stored as parallel flat
// arrays indexed set*ways+way: tags holds the line address with bit 0
// set as a validity marker (line addresses are 64-byte aligned, so bit
// 0 is free; tag 0 means invalid — this also disambiguates line
// address 0, which is a real DRAM line). used holds LRU stamps and
// dirty the write-back bits.
type Cache struct {
	name    string
	tags    []uint64
	used    []uint64
	dirty   []bool
	numSets int
	ways    int
	tick    uint64
	onEvict EvictFunc

	// presence, when enabled, is a counting filter over line-number
	// hashes: a zero counter proves the line is absent, so bulk
	// snoop-style probes (MaybeContains) can skip the way scan. It has
	// no false negatives; collisions only cost a redundant scan.
	presence []uint16

	// Hits and Misses count Lookup results, for statistics.
	Hits, Misses uint64

	// onLookup, when set, observes every Lookup outcome (the tracing
	// layer's hit/miss event source). It must not mutate the cache.
	onLookup func(addr mem.Addr, hit bool)
}

// New builds a cache of the given total size in bytes and associativity.
// size must be a multiple of ways*LineSize and the resulting set count a
// power of two. onEvict may be nil.
func New(name string, size, ways int, onEvict EvictFunc) *Cache {
	if size <= 0 || ways <= 0 || size%(ways*mem.LineSize) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, size, ways))
	}
	numSets := size / (ways * mem.LineSize)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, numSets))
	}
	n := numSets * ways
	return &Cache{
		name:    name,
		tags:    make([]uint64, n),
		used:    make([]uint64, n),
		dirty:   make([]bool, n),
		numSets: numSets,
		ways:    ways,
		onEvict: onEvict,
	}
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

// base returns the first way index of a's set.
func (c *Cache) base(a mem.Addr) int {
	return (int(a/mem.LineSize) & (c.numSets - 1)) * c.ways
}

// find returns the way index holding a's line, or -1.
func (c *Cache) find(a mem.Addr) int {
	tag := uint64(mem.LineOf(a)) | 1
	b := c.base(a)
	for i := b; i < b+c.ways; i++ {
		if c.tags[i] == tag {
			return i
		}
	}
	return -1
}

// FindWay returns the flat way index (set*ways + way) holding a's line,
// or -1. It lets callers keep per-line metadata in arrays parallel to
// the cache's ways instead of in side maps. During an onEvict callback
// the victim is still findable — it is overwritten only after the
// callback returns.
func (c *Cache) FindWay(a mem.Addr) int { return c.find(a) }

// EnableFilter attaches the counting presence filter, sized at 8×
// line capacity (power of two). It must be called on an empty cache —
// typically right after New — because the counters track insertions
// from then on.
func (c *Cache) EnableFilter() {
	if c.Len() != 0 {
		panic(fmt.Sprintf("cache %s: EnableFilter on a non-empty cache", c.name))
	}
	n := 1
	for n < 8*c.numSets*c.ways {
		n <<= 1
	}
	c.presence = make([]uint16, n)
}

// phash maps a line address to its presence-filter bucket.
func (c *Cache) phash(la mem.Addr) int {
	return int(uint64(la)/mem.LineSize) & (len(c.presence) - 1)
}

// MaybeContains reports whether the line containing a could be present:
// false is definitive (the line is absent), true means "scan to know".
// Without an enabled filter it always reports true. It never touches
// LRU state or counters, so callers can use it as a cheap pre-filter
// for bulk probes like inclusive-invalidation snoops.
func (c *Cache) MaybeContains(a mem.Addr) bool {
	if c.presence == nil {
		return true
	}
	return c.presence[c.phash(mem.LineOf(a))] != 0
}

// WayLine reports the line address held by flat way index i and whether
// that way is valid.
func (c *Cache) WayLine(i int) (mem.Addr, bool) {
	t := c.tags[i]
	return mem.Addr(t &^ 1), t != 0
}

// SetLookupHook installs (or, with nil, removes) an observer for Lookup
// outcomes.
func (c *Cache) SetLookupHook(f func(addr mem.Addr, hit bool)) { c.onLookup = f }

// Lookup reports whether the line containing a is present, refreshing
// its LRU position on a hit and updating hit/miss counters.
func (c *Cache) Lookup(a mem.Addr) bool {
	if i := c.find(a); i >= 0 {
		c.tick++
		c.used[i] = c.tick
		c.Hits++
		if c.onLookup != nil {
			c.onLookup(mem.LineOf(a), true)
		}
		return true
	}
	c.Misses++
	if c.onLookup != nil {
		c.onLookup(mem.LineOf(a), false)
	}
	return false
}

// Contains reports presence without touching LRU state or counters.
func (c *Cache) Contains(a mem.Addr) bool { return c.find(a) >= 0 }

// Dirty reports whether the line containing a is present and dirty.
func (c *Cache) Dirty(a mem.Addr) bool {
	i := c.find(a)
	return i >= 0 && c.dirty[i]
}

// Touch refreshes the LRU position of a present line — exactly what
// Insert does on a hit — and reports whether the line was present. On a
// miss it changes nothing. Hot paths that need "refresh if present,
// otherwise act before filling" (e.g. the LLC pollution stream) use it
// to resolve presence and recency in one way scan instead of a
// Contains/Insert pair.
func (c *Cache) Touch(a mem.Addr) bool {
	if i := c.find(a); i >= 0 {
		c.tick++
		c.used[i] = c.tick
		return true
	}
	return false
}

// Insert brings the line containing a into the cache (most recently
// used), evicting the LRU way of its set if full. Inserting a present
// line just refreshes LRU. The victim, if any, is reported to onEvict.
// Hit check, free-way search and LRU victim selection share one pass
// over the set.
func (c *Cache) Insert(a mem.Addr) {
	la := mem.LineOf(a)
	tag := uint64(la) | 1
	b := c.base(la)
	free, victim := -1, -1
	for i := b; i < b+c.ways; i++ {
		switch t := c.tags[i]; {
		case t == tag:
			c.tick++
			c.used[i] = c.tick
			return
		case t == 0:
			if free < 0 {
				free = i
			}
		case free < 0 && (victim < 0 || c.used[i] < c.used[victim]):
			victim = i
		}
	}
	if free >= 0 {
		victim = free
	} else if c.onEvict != nil {
		c.onEvict(Eviction{Addr: mem.Addr(c.tags[victim] &^ 1), Dirty: c.dirty[victim]})
	}
	if c.presence != nil {
		if free < 0 {
			c.presence[c.phash(mem.Addr(c.tags[victim]&^1))]--
		}
		c.presence[c.phash(la)]++
	}
	c.tick++
	c.tags[victim] = tag
	c.used[victim] = c.tick
	c.dirty[victim] = false
}

// MarkDirty sets the dirty bit of a present line; it reports whether the
// line was present.
func (c *Cache) MarkDirty(a mem.Addr) bool {
	if i := c.find(a); i >= 0 {
		c.dirty[i] = true
		return true
	}
	return false
}

// CleanLine clears the dirty bit (after a write-back) of a present line.
func (c *Cache) CleanLine(a mem.Addr) {
	if i := c.find(a); i >= 0 {
		c.dirty[i] = false
	}
}

// Invalidate drops the line containing a without invoking onEvict (the
// caller decides what to do with its contents). It reports whether the
// line was present and whether it was dirty.
func (c *Cache) Invalidate(a mem.Addr) (present, dirty bool) {
	if i := c.find(a); i >= 0 {
		present, dirty = true, c.dirty[i]
		c.tags[i] = 0
		c.used[i] = 0
		c.dirty[i] = false
		if c.presence != nil {
			c.presence[c.phash(mem.LineOf(a))]--
		}
	}
	return
}

// ForEach visits every valid line (set order, way order). The callback
// must not mutate the cache.
func (c *Cache) ForEach(fn func(addr mem.Addr, dirty bool)) {
	for i, tag := range c.tags {
		if tag != 0 {
			fn(mem.Addr(tag&^1), c.dirty[i])
		}
	}
}

// Len returns the number of valid lines.
func (c *Cache) Len() int {
	n := 0
	for _, tag := range c.tags {
		if tag != 0 {
			n++
		}
	}
	return n
}

// Reset empties the cache and clears counters.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.used)
	clear(c.dirty)
	clear(c.presence)
	c.tick, c.Hits, c.Misses = 0, 0, 0
}
