package cache

import (
	"testing"
	"testing/quick"

	"uhtm/internal/mem"
)

// tiny returns a 4-set, 2-way cache (512 B) and a pointer to its
// eviction log.
func tiny() (*Cache, *[]Eviction) {
	var evs []Eviction
	c := New("tiny", 4*2*mem.LineSize, 2, func(e Eviction) { evs = append(evs, e) })
	return c, &evs
}

// addrInSet returns the i-th distinct line address mapping to set s of a
// 4-set cache.
func addrInSet(s, i int) mem.Addr {
	return mem.Addr((i*4 + s) * mem.LineSize)
}

func TestBadGeometryPanics(t *testing.T) {
	for _, c := range []struct{ size, ways int }{{100, 2}, {0, 1}, {3 * 64 * 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(size=%d, ways=%d) did not panic", c.size, c.ways)
				}
			}()
			New("bad", c.size, c.ways, nil)
		}()
	}
}

func TestHitMiss(t *testing.T) {
	c, _ := tiny()
	a := addrInSet(1, 0)
	if c.Lookup(a) {
		t.Error("hit in empty cache")
	}
	c.Insert(a)
	if !c.Lookup(a) {
		t.Error("miss after insert")
	}
	// Sub-line address hits the same line.
	if !c.Lookup(a + 17) {
		t.Error("sub-line address missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c, evs := tiny()
	a0, a1, a2 := addrInSet(2, 0), addrInSet(2, 1), addrInSet(2, 2)
	c.Insert(a0)
	c.Insert(a1)
	c.Lookup(a0) // a0 now MRU; a1 is LRU
	c.Insert(a2) // evicts a1
	if len(*evs) != 1 || (*evs)[0].Addr != a1 {
		t.Fatalf("evictions = %v, want [a1=%#x]", *evs, uint64(a1))
	}
	if !c.Contains(a0) || !c.Contains(a2) || c.Contains(a1) {
		t.Error("wrong residency after eviction")
	}
}

func TestDirtyEviction(t *testing.T) {
	c, evs := tiny()
	a0, a1, a2 := addrInSet(0, 0), addrInSet(0, 1), addrInSet(0, 2)
	c.Insert(a0)
	if !c.MarkDirty(a0) {
		t.Fatal("MarkDirty missed present line")
	}
	c.Insert(a1)
	c.Insert(a2) // evicts dirty a0
	if len(*evs) != 1 || !(*evs)[0].Dirty || (*evs)[0].Addr != a0 {
		t.Fatalf("evictions = %v, want dirty a0", *evs)
	}
}

func TestInsertPresentRefreshesLRU(t *testing.T) {
	c, evs := tiny()
	a0, a1, a2 := addrInSet(3, 0), addrInSet(3, 1), addrInSet(3, 2)
	c.Insert(a0)
	c.Insert(a1)
	c.Insert(a0) // refresh, no eviction
	if len(*evs) != 0 {
		t.Fatal("re-insert evicted")
	}
	c.Insert(a2) // a1 is LRU now
	if (*evs)[0].Addr != a1 {
		t.Errorf("evicted %#x, want a1", uint64((*evs)[0].Addr))
	}
}

func TestInvalidate(t *testing.T) {
	c, evs := tiny()
	a := addrInSet(1, 3)
	c.Insert(a)
	c.MarkDirty(a)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(a) {
		t.Error("line present after invalidate")
	}
	if len(*evs) != 0 {
		t.Error("Invalidate invoked onEvict")
	}
	present, _ = c.Invalidate(a)
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestCleanLine(t *testing.T) {
	c, _ := tiny()
	a := addrInSet(0, 5)
	c.Insert(a)
	c.MarkDirty(a)
	c.CleanLine(a)
	if c.Dirty(a) {
		t.Error("line dirty after CleanLine")
	}
}

func TestMarkDirtyAbsent(t *testing.T) {
	c, _ := tiny()
	if c.MarkDirty(addrInSet(0, 0)) {
		t.Error("MarkDirty on absent line reported present")
	}
}

func TestForEachAndLen(t *testing.T) {
	c, _ := tiny()
	want := map[mem.Addr]bool{}
	for i := 0; i < 4; i++ {
		a := addrInSet(i, 0)
		c.Insert(a)
		want[a] = true
	}
	got := map[mem.Addr]bool{}
	c.ForEach(func(a mem.Addr, dirty bool) { got[a] = true })
	if len(got) != len(want) || c.Len() != len(want) {
		t.Errorf("ForEach saw %d lines, Len=%d, want %d", len(got), c.Len(), len(want))
	}
	for a := range want {
		if !got[a] {
			t.Errorf("line %#x missing from ForEach", uint64(a))
		}
	}
}

func TestReset(t *testing.T) {
	c, _ := tiny()
	c.Insert(addrInSet(0, 0))
	c.Lookup(addrInSet(0, 0))
	c.Reset()
	if c.Len() != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Error("Reset left state behind")
	}
}

// Property: a cache never holds more lines per set than its
// associativity, never holds duplicates, and evictions + residents ==
// distinct inserts.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		evicted := 0
		c := New("q", 8*4*mem.LineSize, 4, func(Eviction) { evicted++ })
		insertMisses := 0
		for _, op := range ops {
			a := mem.Addr(op) * mem.LineSize
			if !c.Contains(a) {
				insertMisses++
			}
			c.Insert(a)
		}
		// No duplicate residents.
		resident := map[mem.Addr]int{}
		c.ForEach(func(a mem.Addr, _ bool) { resident[a]++ })
		for _, n := range resident {
			if n != 1 {
				return false
			}
		}
		// Conservation: every insert-miss adds one resident, every
		// eviction removes one.
		return c.Len() <= 8*4 && insertMisses == c.Len()+evicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
