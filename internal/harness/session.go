package harness

import (
	"fmt"

	"uhtm/internal/sim"
)

// Session decouples engine lifetime from the one-shot run: where
// Execute builds a fresh engine per spec and runs it to completion
// exactly once, a Session keeps one engine (and whatever machine and
// durable state hang off it) alive across an unbounded stream of work
// batches. Each Do call spawns short-lived thread bodies into recycled
// core slots, starts them at the engine's current virtual time, and
// drives the engine until the batch finishes — so a network server can
// map arriving requests onto simulated transactions without rebuilding
// the world per request. A Session is single-goroutine like the engine
// it wraps: callers serialize Do/Restart themselves (the server funnels
// all batches through one engine-loop goroutine).
type Session struct {
	eng     *sim.Engine
	batches uint64
}

// NewSession wraps a long-lived engine. The engine may already have
// history (completed runs, advanced virtual time); it must not be
// mid-Run.
func NewSession(eng *sim.Engine) *Session {
	return &Session{eng: eng}
}

// Engine returns the wrapped engine.
func (s *Session) Engine() *sim.Engine { return s.eng }

// Do runs one batch of simulated work to completion: finished thread
// slots are recycled, one fresh thread per body is spawned (named
// "name.i") with its clock advanced to the engine's current virtual
// time — new work arrives "now", never in the simulated past — and the
// engine runs until every body returns or a halt stops it.
//
// It returns the virtual time the batch ended at, and whether the
// engine halted mid-batch (an injected power failure). After a halt the
// batch's never-started bodies are cancelled — their work is lost,
// exactly like requests in flight at a real power failure — and the
// caller must Restart (typically after crash recovery) before the next
// Do.
func (s *Session) Do(name string, bodies ...func(*sim.Thread)) (end sim.Time, halted bool) {
	if s.eng.Halted() {
		panic("harness: Session.Do on a halted engine — Restart first")
	}
	s.eng.Recycle()
	s.batches++
	now := s.eng.Now()
	threads := make([]*sim.Thread, len(bodies))
	for i, body := range bodies {
		th := s.eng.Spawn(fmt.Sprintf("%s.%d", name, i), body)
		th.Bump(now - th.Clock())
		threads[i] = th
	}
	end = s.eng.Run()
	if s.eng.Halted() {
		for _, th := range threads {
			th.Cancel()
		}
		return end, true
	}
	return end, false
}

// Batches returns how many Do batches the session has run.
func (s *Session) Batches() uint64 { return s.batches }

// Restart reboots a halted engine (sim.Engine.Restart) so the session
// can accept batches again. The caller is responsible for recovering
// whatever machine state the halt corrupted (core.Machine.Crash +
// Recover) before submitting new work.
func (s *Session) Restart() {
	s.eng.Restart()
	s.eng.Recycle()
}
