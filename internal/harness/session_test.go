package harness

import (
	"testing"

	"uhtm/internal/sim"
)

// TestSessionBatches drives many batches through one engine and checks
// the core count stays bounded and virtual time is monotone.
func TestSessionBatches(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSession(eng)
	var last sim.Time
	for b := 0; b < 50; b++ {
		ran := 0
		end, halted := s.Do("batch",
			func(th *sim.Thread) { th.Advance(10); th.Sync(); ran++ },
			func(th *sim.Thread) { th.Advance(20); th.Sync(); ran++ },
		)
		if halted {
			t.Fatalf("batch %d halted", b)
		}
		if ran != 2 {
			t.Fatalf("batch %d ran %d bodies, want 2", b, ran)
		}
		if end < last {
			t.Fatalf("batch %d: virtual time went backwards (%v < %v)", b, end, last)
		}
		last = end
		if n := len(eng.Threads()); n > 2 {
			t.Fatalf("batch %d: %d thread slots, want <= 2", b, n)
		}
	}
	if s.Batches() != 50 {
		t.Fatalf("Batches() = %d, want 50", s.Batches())
	}
}

// TestSessionBatchStartsAtNow checks new work arrives at the engine's
// current virtual time, not in the simulated past.
func TestSessionBatchStartsAtNow(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSession(eng)
	s.Do("warm", func(th *sim.Thread) { th.Advance(1000) })
	var startClock sim.Time
	s.Do("next", func(th *sim.Thread) { startClock = th.Clock() })
	if startClock != 1000 {
		t.Fatalf("second batch started at %v, want 1000ps", startClock)
	}
}

// TestSessionHaltAndRestart injects a power failure mid-batch and
// checks: the batch reports halted, never-started bodies are cancelled
// (they do not leak into the next run), and after Restart the session
// serves batches again.
func TestSessionHaltAndRestart(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSession(eng)
	leaked := false
	// The first body halts before its first Sync, so the second is never
	// dispatched — the case Cancel exists for.
	_, halted := s.Do("crash",
		func(th *sim.Thread) { eng.HaltNow() },
		func(th *sim.Thread) { leaked = true },
	)
	if !halted {
		t.Fatal("batch did not report halt")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Do on a halted engine did not panic")
			}
		}()
		s.Do("after-halt", func(th *sim.Thread) {})
	}()
	s.Restart()
	ran := false
	_, halted = s.Do("reboot", func(th *sim.Thread) { th.Advance(5); ran = true })
	if halted || !ran {
		t.Fatalf("post-restart batch: halted=%v ran=%v", halted, ran)
	}
	if leaked {
		t.Fatal("cancelled body from the halted batch ran after restart")
	}
}
