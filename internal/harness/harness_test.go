package harness

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func intSpecs(n int, run func(i int) int) []Spec[int] {
	specs := make([]Spec[int], n)
	for i := range specs {
		i := i
		specs[i] = Spec[int]{Experiment: "test", Run: func() int { return run(i) }}
	}
	return specs
}

// TestOrderPreserved: results come back in spec order even when later
// specs finish first.
func TestOrderPreserved(t *testing.T) {
	specs := intSpecs(16, func(i int) int {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
		return i * i
	})
	got := Execute(specs, 8)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestSerialAndParallelAgree: the same pure specs yield identical
// result slices at every parallelism level.
func TestSerialAndParallelAgree(t *testing.T) {
	mk := func() []Spec[int] { return intSpecs(10, func(i int) int { return 3*i + 1 }) }
	want := Execute(mk(), 1)
	for _, par := range []int{0, 2, 4, 100} {
		got := Execute(mk(), par)
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d results, want %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("par=%d: results[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrencyBound: no more than par specs are ever in flight.
func TestConcurrencyBound(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	specs := intSpecs(20, func(i int) int {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	Execute(specs, par)
	if p := peak.Load(); p > par {
		t.Errorf("peak in-flight = %d, want <= %d", p, par)
	}
}

// catchPanic runs fn and returns the recovered panic value as a string
// ("" if fn returned normally).
func catchPanic(fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	fn()
	return ""
}

// TestPanicCarriesSpecIdentity: a panicking spec must surface which
// grid cell died — a raw panic from one of dozens of identical-looking
// simulations is undebuggable. Both the serial and parallel paths wrap.
func TestPanicCarriesSpecIdentity(t *testing.T) {
	mk := func() []Spec[int] {
		specs := intSpecs(6, func(i int) int { return i })
		specs[3] = Spec[int]{
			Experiment: "fig6", System: "UHTM", Bench: "Echo", FootprintKB: 100, Seed: 7,
			Run: func() int { panic("store exhausted") },
		}
		return specs
	}
	for _, par := range []int{1, 4} {
		msg := catchPanic(func() { Execute(mk(), par) })
		if msg == "" {
			t.Fatalf("par=%d: panic did not propagate", par)
		}
		for _, want := range []string{"spec 3", "fig6", "UHTM", "Echo", "100", "seed=7", "store exhausted"} {
			if !strings.Contains(msg, want) {
				t.Errorf("par=%d: panic message missing %q:\n%s", par, want, msg)
			}
		}
	}
}

// TestParallelPanicIsDeterministic: when several specs die, the
// lowest-index failure is the one reported, regardless of which worker
// hit it first.
func TestParallelPanicIsDeterministic(t *testing.T) {
	mk := func() []Spec[int] {
		specs := intSpecs(8, func(i int) int { return i })
		for _, i := range []int{2, 5, 6} {
			i := i
			specs[i].Run = func() int { panic(fmt.Sprintf("boom-%d", i)) }
		}
		return specs
	}
	for trial := 0; trial < 10; trial++ {
		msg := catchPanic(func() { Execute(mk(), 4) })
		if !strings.Contains(msg, "boom-2") || !strings.Contains(msg, "spec 2") {
			t.Fatalf("trial %d: reported panic is not the lowest-index one:\n%s", trial, msg)
		}
	}
}

// TestEmptyAndSingle: degenerate sizes.
func TestEmptyAndSingle(t *testing.T) {
	if got := Execute[int](nil, 4); len(got) != 0 {
		t.Errorf("empty specs returned %d results", len(got))
	}
	one := intSpecs(1, func(i int) int { return 7 })
	if got := Execute(one, 4); len(got) != 1 || got[0] != 7 {
		t.Errorf("single spec returned %v", got)
	}
}
