package harness

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func intSpecs(n int, run func(i int) int) []Spec[int] {
	specs := make([]Spec[int], n)
	for i := range specs {
		i := i
		specs[i] = Spec[int]{Experiment: "test", Run: func() int { return run(i) }}
	}
	return specs
}

// TestOrderPreserved: results come back in spec order even when later
// specs finish first.
func TestOrderPreserved(t *testing.T) {
	specs := intSpecs(16, func(i int) int {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
		return i * i
	})
	got := Execute(specs, 8)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestSerialAndParallelAgree: the same pure specs yield identical
// result slices at every parallelism level.
func TestSerialAndParallelAgree(t *testing.T) {
	mk := func() []Spec[int] { return intSpecs(10, func(i int) int { return 3*i + 1 }) }
	want := Execute(mk(), 1)
	for _, par := range []int{0, 2, 4, 100} {
		got := Execute(mk(), par)
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d results, want %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("par=%d: results[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrencyBound: no more than par specs are ever in flight.
func TestConcurrencyBound(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	specs := intSpecs(20, func(i int) int {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	Execute(specs, par)
	if p := peak.Load(); p > par {
		t.Errorf("peak in-flight = %d, want <= %d", p, par)
	}
}

// TestEmptyAndSingle: degenerate sizes.
func TestEmptyAndSingle(t *testing.T) {
	if got := Execute[int](nil, 4); len(got) != 0 {
		t.Errorf("empty specs returned %d results", len(got))
	}
	one := intSpecs(1, func(i int) int { return 7 })
	if got := Execute(one, 4); len(got) != 1 || got[0] != 7 {
		t.Errorf("single spec returned %v", got)
	}
}
