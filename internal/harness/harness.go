// Package harness fans independent simulation runs out across OS
// threads. Each sim.Engine is a self-contained deterministic world — a
// private virtual-time scheduler, store, caches, allocators and RNG with
// no package-global mutable state — so distinct engines may run
// concurrently without any synchronization beyond collecting their
// results. The harness exploits that: it executes a flat list of
// run specifications on a bounded worker pool and reassembles the
// results in spec order, so the output of an experiment is byte-
// identical regardless of the degree of parallelism.
package harness

import (
	"fmt"
	"runtime"
	"sync"
)

// Spec describes one simulation point of an experiment grid. The
// identifying fields are plain data (they name the point in logs and
// JSON records); Run performs the actual simulation in a freshly
// constructed engine and returns its result. Run must be self-contained:
// it must not share mutable state with any other spec's Run.
type Spec[R any] struct {
	Experiment  string
	System      string
	Bench       string
	FootprintKB int
	Seed        int64

	Run func() R
}

// Execute runs every spec and returns the results in spec order.
// At most par specs run concurrently; par <= 0 selects GOMAXPROCS.
// Because each spec is deterministic and results are reassembled by
// index, Execute(specs, 1) and Execute(specs, n) return identical
// values for any n (only wall-clock time differs).
func Execute[R any](specs []Spec[R], par int) []R {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(specs) {
		par = len(specs)
	}
	results := make([]R, len(specs))
	if par <= 1 {
		for i := range specs {
			results[i] = runSpec(specs, i)
		}
		return results
	}
	idx := make(chan int)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// First panic by spec index: with several workers dying at once,
		// re-panicking the lowest-index failure keeps the report as
		// deterministic as the failure allows.
		panicIdx = -1
		panicVal any
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					results[i] = runSpec(specs, i)
				}()
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicIdx >= 0 {
		// Re-panic on the caller's goroutine so the failure carries a
		// useful stack and does not kill the process from a bare worker.
		panic(panicVal)
	}
	return results
}

// runSpec executes one spec, wrapping any panic with the grid cell's
// identity — a raw panic from deep inside a simulation otherwise gives
// no clue which of dozens of identical-looking runs died.
func runSpec[R any](specs []Spec[R], i int) R {
	defer func() {
		if r := recover(); r != nil {
			s := specs[i]
			panic(fmt.Sprintf("harness: spec %d (experiment=%q system=%q bench=%q footprint=%d seed=%d) panicked: %v",
				i, s.Experiment, s.System, s.Bench, s.FootprintKB, s.Seed, r))
		}
	}()
	return specs[i].Run()
}
