// Package harness fans independent simulation runs out across OS
// threads. Each sim.Engine is a self-contained deterministic world — a
// private virtual-time scheduler, store, caches, allocators and RNG with
// no package-global mutable state — so distinct engines may run
// concurrently without any synchronization beyond collecting their
// results. The harness exploits that: it executes a flat list of
// run specifications on a bounded worker pool and reassembles the
// results in spec order, so the output of an experiment is byte-
// identical regardless of the degree of parallelism.
package harness

import (
	"runtime"
	"sync"
)

// Spec describes one simulation point of an experiment grid. The
// identifying fields are plain data (they name the point in logs and
// JSON records); Run performs the actual simulation in a freshly
// constructed engine and returns its result. Run must be self-contained:
// it must not share mutable state with any other spec's Run.
type Spec[R any] struct {
	Experiment  string
	System      string
	Bench       string
	FootprintKB int
	Seed        int64

	Run func() R
}

// Execute runs every spec and returns the results in spec order.
// At most par specs run concurrently; par <= 0 selects GOMAXPROCS.
// Because each spec is deterministic and results are reassembled by
// index, Execute(specs, 1) and Execute(specs, n) return identical
// values for any n (only wall-clock time differs).
func Execute[R any](specs []Spec[R], par int) []R {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(specs) {
		par = len(specs)
	}
	results := make([]R, len(specs))
	if par <= 1 {
		for i := range specs {
			results[i] = specs[i].Run()
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = specs[i].Run()
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
