package trace

// TxSummary condenses one transaction attempt's events into a row:
// lifetime, access counts, overflow point and outcome. Each attempt has
// a distinct TxID (the machine allocates a fresh ID per begin), so an
// abort-retry chain appears as several summaries sharing a core with
// increasing Attempt numbers.
type TxSummary struct {
	ID       uint64
	Core     int
	Domain   int
	Attempt  int
	SlowPath bool

	Start int64 // ps
	End   int64 // ps; Start when the trace ended mid-flight

	Reads      int
	Writes     int
	WALAppends int

	Overflowed bool
	OverflowTS int64

	Committed bool
	// CauseCode is the numeric abort cause (stats.AbortCause) when the
	// attempt aborted; callers map it to a name.
	CauseCode uint64
	Enemy     uint64 // aborting transaction's ID, 0 if none
	EnemyCore int    // -1 if none
}

// Summarize folds an event log into per-transaction summaries, in
// transaction begin order. Transactions still in flight when the log
// ends (e.g. at an injected crash) are reported with End = Start of
// their latest event and neither Committed nor CauseCode set.
func Summarize(events []Event) []TxSummary {
	byID := make(map[uint64]*TxSummary)
	var order []uint64
	for i := range events {
		e := &events[i]
		if e.Kind == EvTxBegin {
			byID[e.TxID] = &TxSummary{
				ID:        e.TxID,
				Core:      int(e.Core),
				Domain:    int(e.Arg2 >> 1),
				Attempt:   int(e.Arg),
				SlowPath:  e.Arg2&1 != 0,
				Start:     e.TS,
				End:       e.TS,
				EnemyCore: -1,
			}
			order = append(order, e.TxID)
			continue
		}
		s := byID[e.TxID]
		if s == nil {
			continue // event outside any traced transaction
		}
		if e.TS > s.End {
			s.End = e.TS
		}
		switch e.Kind {
		case EvTxRead:
			s.Reads++
		case EvTxWrite:
			s.Writes++
		case EvTxOverflow:
			if !s.Overflowed {
				s.Overflowed = true
				s.OverflowTS = e.TS
			}
		case EvWALAppend:
			s.WALAppends++
		case EvTxAbort:
			s.CauseCode = e.Arg
			s.Enemy = e.Arg2
			s.EnemyCore = int(e.Addr) - 1
		case EvTxCommitDone:
			s.Committed = true
		}
	}
	out := make([]TxSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
