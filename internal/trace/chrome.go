package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Run is one engine world's trace plus the label identifying which grid
// cell produced it (experiment/system/bench/footprint/seed). WriteChrome
// maps each Run to one Chrome trace "process".
type Run struct {
	Label  string
	Events []Event
}

// machineTID is the synthetic Chrome thread ID hosting machine-level
// events (Core == -1): LLC, DRAM cache, NVM and checkpoint activity.
const machineTID = 1000

// chromeEvent is the Chrome trace-event wire format (the subset we
// emit). Field order here fixes the byte layout of the output.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(ps int64) float64 { return float64(ps) / 1e6 }

// WriteChrome renders runs as a Chrome trace-event JSON object that
// loads in Perfetto or chrome://tracing: one process per run, one track
// per core (plus a "machine" track for shared structures), an "X" slice
// per transaction attempt, and flow arrows from each abort's enemy to
// its victim. Per-access events (reads, cache lookups, fills) are
// aggregated into the slice args rather than emitted individually, to
// keep files loadable; the full event stream remains available via
// Events/Summarize.
//
// causeName maps numeric abort-cause codes to names (pass
// stats.AbortCause semantics from the caller; nil falls back to the
// numeric code). Output is deterministic: a fixed seed and scale
// produce identical bytes at any harness parallelism.
func WriteChrome(w io.Writer, runs []Run, causeName func(uint64) string) error {
	if causeName == nil {
		causeName = func(c uint64) string { return fmt.Sprintf("cause-%d", c) }
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	for pid, run := range runs {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": run.Label},
		}); err != nil {
			return err
		}
		// Name every track seen in this run, in ascending tid order.
		seen := map[int]bool{}
		var tids []int
		for i := range run.Events {
			tid := trackOf(run.Events[i].Core)
			if !seen[tid] {
				seen[tid] = true
				tids = append(tids, tid)
			}
		}
		sortInts(tids)
		for _, tid := range tids {
			name := "machine"
			if tid != machineTID {
				name = fmt.Sprintf("core %d", tid)
			}
			if err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": name},
			}); err != nil {
				return err
			}
		}

		// One slice per transaction attempt, carrying its summary.
		for _, s := range Summarize(run.Events) {
			dur := usec(s.End - s.Start)
			outcome := "in-flight"
			switch {
			case s.Committed:
				outcome = "commit"
			case s.Enemy != 0 || s.CauseCode != 0 || s.EnemyCore >= 0:
				outcome = "abort:" + causeName(s.CauseCode)
			}
			args := map[string]any{
				"tx":       s.ID,
				"domain":   s.Domain,
				"attempt":  s.Attempt,
				"slow":     s.SlowPath,
				"reads":    s.Reads,
				"writes":   s.Writes,
				"wal":      s.WALAppends,
				"outcome":  outcome,
				"overflow": s.Overflowed,
			}
			if s.Overflowed {
				args["overflow_ts_us"] = usec(s.OverflowTS)
			}
			if s.Enemy != 0 {
				args["enemy"] = s.Enemy
			}
			if err := emit(chromeEvent{
				Name: "tx" + strconv.FormatUint(s.ID, 10), Cat: "tx",
				Ph: "X", TS: usec(s.Start), Dur: &dur,
				PID: pid, TID: s.Core, Args: args,
			}); err != nil {
				return err
			}
		}

		// Instant events and abort flow arrows, in timeline order.
		for i := range run.Events {
			e := &run.Events[i]
			ce, ok := instantFor(e, pid, causeName)
			if ok {
				if err := emit(ce); err != nil {
					return err
				}
			}
			if e.Kind == EvTxAbort && int(e.Addr) > 0 {
				// Arrow from the enemy's core to the victim's.
				id := "abort" + strconv.FormatUint(e.TxID, 10)
				if err := emit(chromeEvent{
					Name: "abort", Cat: "abort", Ph: "s",
					TS: usec(e.TS), PID: pid, TID: int(e.Addr) - 1, ID: id,
				}); err != nil {
					return err
				}
				if err := emit(chromeEvent{
					Name: "abort", Cat: "abort", Ph: "f", BP: "e",
					TS: usec(e.TS), PID: pid, TID: int(e.Core), ID: id,
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// trackOf maps an event core to a Chrome thread ID.
func trackOf(core int32) int {
	if core < 0 {
		return machineTID
	}
	return int(core)
}

// instantFor converts one event to a Chrome instant, or reports false
// for the per-access kinds that are aggregated into the tx slices.
func instantFor(e *Event, pid int, causeName func(uint64) string) (chromeEvent, bool) {
	ce := chromeEvent{Ph: "i", S: "t", TS: usec(e.TS), PID: pid, TID: trackOf(e.Core)}
	switch e.Kind {
	case EvTxOverflow:
		ce.Name, ce.Cat = "overflow", "tx"
		ce.Args = map[string]any{"tx": e.TxID}
	case EvTxAbort:
		ce.Name, ce.Cat = "abort:"+causeName(e.Arg), "tx"
		ce.Args = map[string]any{"tx": e.TxID}
		if e.Arg2 != 0 {
			ce.Args["enemy"] = e.Arg2
		}
	case EvTxCommitBegin:
		ce.Name, ce.Cat = "commit-begin", "tx"
		ce.Args = map[string]any{"tx": e.TxID}
	case EvTxCommitMark:
		ce.Name, ce.Cat = "commit-mark", "tx"
		ce.Args = map[string]any{"tx": e.TxID, "lsn": e.Arg}
	case EvTxCommitDone:
		ce.Name, ce.Cat = "commit-done", "tx"
		ce.Args = map[string]any{"tx": e.TxID}
	case EvSlowPathWait:
		ce.Name, ce.Cat = "slow-path-wait", "lock"
		ce.Args = map[string]any{"wait_us": usec(int64(e.Arg)), "acquire": e.Arg2 != 0}
	case EvSigProbe:
		if e.Arg == 0 {
			return ce, false // only conflicting probes are interesting
		}
		verdict := "true-conflict"
		if e.Arg == 2 {
			verdict = "false-positive"
		}
		ce.Name, ce.Cat = "sig-"+verdict, "sig"
		ce.Args = map[string]any{"tx": e.TxID, "against": e.Arg2, "addr": hexAddr(e.Addr)}
	case EvSigOccupancy:
		ce.Name, ce.Cat = "sig-occupancy", "sig"
		ce.Args = map[string]any{
			"tx":         e.TxID,
			"write_fill": float64(e.Arg) / 1e4,
			"read_fill":  float64(e.Arg2) / 1e4,
		}
	case EvWALTruncate:
		ring := "undo"
		if e.Arg>>8 != 0 {
			ring = "redo"
		}
		ce.Name, ce.Cat = "wal-"+ring+"-truncate", "wal"
		ce.Args = map[string]any{"tail": e.Arg2}
	case EvWALCheckpoint:
		ce.Name, ce.Cat = "checkpoint", "wal"
		ce.Args = map[string]any{"lsn": e.Arg}
	default:
		// Per-access and per-line kinds (reads/writes, cache lookups,
		// fills, evictions, DRAM-cache traffic, log appends, NVM
		// persists) are summarized in the tx slices, not emitted — a
		// full-scale run produces millions of them, which no trace
		// viewer loads. The raw stream keeps every one.
		return ce, false
	}
	return ce, true
}

func hexAddr(a uint64) string { return "0x" + strconv.FormatUint(a, 16) }

// sortInts is a tiny insertion sort (tid lists are short) that avoids
// importing sort just for this.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ChromeTx is one transaction slice read back from a Chrome trace file
// — the rows behind the trace-summary command.
type ChromeTx struct {
	Run     string
	Core    int
	Name    string
	StartUS float64
	DurUS   float64
	Attempt int
	Slow    bool
	Reads   int
	Writes  int
	WAL     int
	Outcome string
	Enemy   uint64
}

// ReadChromeTxs parses a Chrome trace-event file produced by
// WriteChrome and returns its transaction slices in file order.
func ReadChromeTxs(r io.Reader) ([]ChromeTx, error) {
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("trace: not a Chrome trace-event file: %w", err)
	}
	procs := map[int]string{}
	var out []ChromeTx
	for _, raw := range file.TraceEvents {
		var e chromeEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, err
		}
		if e.Ph == "M" && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procs[e.PID] = n
			}
			continue
		}
		if e.Ph != "X" || e.Cat != "tx" {
			continue
		}
		tx := ChromeTx{
			Run: procs[e.PID], Core: e.TID, Name: e.Name,
			StartUS: e.TS,
		}
		if e.Dur != nil {
			tx.DurUS = *e.Dur
		}
		tx.Attempt = int(argFloat(e.Args, "attempt"))
		tx.Slow, _ = e.Args["slow"].(bool)
		tx.Reads = int(argFloat(e.Args, "reads"))
		tx.Writes = int(argFloat(e.Args, "writes"))
		tx.WAL = int(argFloat(e.Args, "wal"))
		tx.Outcome, _ = e.Args["outcome"].(string)
		tx.Enemy = uint64(argFloat(e.Args, "enemy"))
		out = append(out, tx)
	}
	return out, nil
}

func argFloat(args map[string]any, key string) float64 {
	f, _ := args[key].(float64)
	return f
}
