// Package trace is the deterministic observability layer of the
// simulator: a flat, append-only event log recorded while a simulation
// runs, stamped with virtual time, core and transaction ID. The
// Recorder is owned by the engine world (sim.Engine carries one the
// same way it carries the RNG), so traces inherit the engine's
// determinism — the same seed and scale produce the same byte sequence
// regardless of how many engines the harness runs concurrently.
//
// The package sits below every other simulator package (sim imports it,
// and stats imports sim), so it depends on nothing: timestamps are raw
// int64 picoseconds, addresses are uint64, and abort causes travel as
// numeric codes that callers translate back to names.
//
// A nil *Recorder is the disabled state. Emit on a nil receiver returns
// immediately without allocating, so instrumentation can stay wired in
// on hot paths at the cost of one pointer test.
package trace

// Kind identifies one event type. The Arg/Arg2/Addr payload conventions
// per kind are documented on the constants.
type Kind uint8

const (
	// EvTxBegin: a transaction attempt starts. TxID; Arg = attempt
	// number (1-based); Arg2 = domain<<1 | slowPathBit.
	EvTxBegin Kind = iota
	// EvTxRead / EvTxWrite: a transactional line access. TxID; Addr.
	EvTxRead
	EvTxWrite
	// EvTxOverflow: the transaction's first working-set overflow out of
	// the LLC (it switches to off-chip signature tracking). TxID.
	EvTxOverflow
	// EvTxAbort: a transaction rolls back. TxID = victim; Arg = abort
	// cause code (stats.AbortCause); Arg2 = enemy TxID (0 = none);
	// Addr = enemy core + 1 (0 = none).
	EvTxAbort
	// EvTxCommitBegin / EvTxCommitMark / EvTxCommitDone: the commit
	// phases — entry, durable commit-record mark (Arg = LSN on Mark),
	// and completion. TxID.
	EvTxCommitBegin
	EvTxCommitMark
	EvTxCommitDone
	// EvSlowPathWait: a thread spent virtual time waiting on the
	// fallback lock. Core; Arg = wait in picoseconds; Arg2 = 1 when the
	// wait was a lock acquisition (slow path) rather than a fast-path
	// pause while a lock holder drains.
	EvSlowPathWait
	// EvL1Hit / EvL1Miss / EvLLCHit / EvLLCMiss: cache presence lookups
	// on the access path. Core (L1) or -1 (shared LLC); Addr.
	EvL1Hit
	EvL1Miss
	EvLLCHit
	EvLLCMiss
	// EvLLCEvict: a line leaves the LLC. Core = -1; Addr; TxID = owning
	// transaction (0 = non-transactional); Arg = 1 when dirty.
	EvLLCEvict
	// EvMemFill: a miss filled from below the LLC. Core; Addr; Arg =
	// fill source (Mem* constants); Arg2 = charged latency in ps.
	EvMemFill
	// EvDCFill / EvDCDrain / EvDCDrop: DRAM-cache activity for early-
	// evicted NVM lines — insertion, drain-to-NVM, and drop of a dead
	// (aborted) line. TxID; Addr.
	EvDCFill
	EvDCDrain
	EvDCDrop
	// EvNVMPersist: a line reached the NVM durability domain. Core = -1;
	// Addr.
	EvNVMPersist
	// EvSigProbe: an off-chip signature membership probe against one
	// concurrent transaction. Core = requester; TxID = requesting
	// transaction (0 = non-transactional access); Addr; Arg = verdict
	// (0 no conflict, 1 true conflict, 2 false positive); Arg2 = probed
	// transaction's ID.
	EvSigProbe
	// EvSigOccupancy: signature fill ratio of an overflowed transaction
	// sampled when it finishes. TxID; Arg = write-filter fill in
	// 1/10000ths; Arg2 = read-filter fill in 1/10000ths.
	EvSigOccupancy
	// EvWALAppend: a log record appended to a per-core ring. Core =
	// ring index; TxID; Addr = target line (0 for control records);
	// Arg = record type | redoBit<<8 (redoBit set for the durable NVM
	// redo ring); Arg2 = ring sequence number.
	EvWALAppend
	// EvWALTruncate: ring reclamation advanced a tail. Core = ring
	// index; Arg = redoBit<<8; Arg2 = new tail sequence.
	EvWALTruncate
	// EvWALCheckpoint: the global checkpoint LSN advanced. Core = -1;
	// Arg = new checkpoint LSN.
	EvWALCheckpoint

	numKinds
)

// Fill sources for EvMemFill's Arg.
const (
	MemDRAM      = 0 // DRAM row (volatile heap)
	MemDRAMCache = 1 // DRAM cache hit for an early-evicted NVM line
	MemNVM       = 2 // NVM media
	MemStreamed  = 3 // streamed/bypassed fill (long read-only tx)
)

var kindNames = [numKinds]string{
	"tx-begin", "tx-read", "tx-write", "tx-overflow", "tx-abort",
	"tx-commit-begin", "tx-commit-mark", "tx-commit-done",
	"slow-path-wait",
	"l1-hit", "l1-miss", "llc-hit", "llc-miss", "llc-evict", "mem-fill",
	"dc-fill", "dc-drain", "dc-drop", "nvm-persist",
	"sig-probe", "sig-occupancy",
	"wal-append", "wal-truncate", "wal-checkpoint",
}

// String names the event kind for rendered traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one timeline entry. Payload field meanings depend on Kind —
// see the Kind constants.
type Event struct {
	TS   int64 // virtual time, picoseconds
	Core int32 // core ID; -1 for machine-level events
	Kind Kind
	TxID uint64
	Addr uint64
	Arg  uint64
	Arg2 uint64
}

// Recorder accumulates the event log for one engine world. It is not
// safe for concurrent use — but engine worlds are single-threaded by
// construction, so no locking is needed. A nil Recorder is the disabled
// sink.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit appends one event. On a nil receiver it is a no-op and performs
// no allocation, so call sites may stay unconditional on hot paths.
func (r *Recorder) Emit(ts int64, core int, k Kind, txid, addr, arg, arg2 uint64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		TS: ts, Core: int32(core), Kind: k,
		TxID: txid, Addr: addr, Arg: arg, Arg2: arg2,
	})
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded log in emission order. Emission order is
// deterministic (the engine's scheduler is) but NOT globally sorted by
// timestamp: threads run optimistically ahead of the global clock
// between synchronization points, so events from different cores may
// interleave out of time order. Sort by TS if a globally ordered view
// is needed. The slice is the recorder's backing store; callers must
// not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Reset discards all recorded events but keeps the capacity.
func (r *Recorder) Reset() {
	if r != nil {
		r.events = r.events[:0]
	}
}
