package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderIsInert: the disabled state is a nil pointer — every
// method must be a safe no-op.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(1, 0, EvTxBegin, 1, 0, 0, 0)
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Errorf("nil recorder holds events: len=%d", r.Len())
	}
	r.Reset() // must not panic
}

// TestEmitDisabledAllocatesNothing: the whole point of the nil-receiver
// design is that instrumentation left wired into hot paths costs one
// pointer test and zero allocations when tracing is off.
func TestEmitDisabledAllocatesNothing(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(42, 3, EvTxRead, 7, 0x1000, 0, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled Emit allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkEmitDisabled quantifies the per-call cost of disabled
// tracing (the guard for the <3% fig2 overhead budget: one predictable
// branch, no allocation).
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(int64(i), 0, EvTxRead, 1, 0x40, 0, 0)
	}
}

// BenchmarkEmitEnabled is the enabled-path counterpart (amortized
// append).
func BenchmarkEmitEnabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(int64(i), 0, EvTxRead, 1, 0x40, 0, 0)
	}
}

// TestRecorderOrderAndReset: events come back in emission order; Reset
// empties without disabling.
func TestRecorderOrderAndReset(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 5; i++ {
		r.Emit(int64(i*10), i, EvTxBegin, uint64(i+1), 0, 1, 0)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.TS != int64(i*10) || e.TxID != uint64(i+1) || int(e.Core) != i {
			t.Errorf("event %d out of order: %+v", i, e)
		}
	}
	r.Reset()
	if r.Len() != 0 || !r.Enabled() {
		t.Errorf("after Reset: len=%d enabled=%v", r.Len(), r.Enabled())
	}
}

// TestKindStrings: every kind has a distinct, non-empty name (the trace
// schema's human-readable vocabulary).
func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

// sampleEvents builds a small, two-transaction lifecycle: tx1 commits,
// tx2 overflows and is aborted by tx1.
func sampleEvents() []Event {
	return []Event{
		{TS: 100, Core: 0, Kind: EvTxBegin, TxID: 1, Arg: 1, Arg2: 2<<1 | 0},
		{TS: 110, Core: 1, Kind: EvTxBegin, TxID: 2, Arg: 2, Arg2: 2<<1 | 1},
		{TS: 120, Core: 0, Kind: EvTxRead, TxID: 1, Addr: 0x40},
		{TS: 130, Core: 0, Kind: EvTxWrite, TxID: 1, Addr: 0x80},
		{TS: 140, Core: 1, Kind: EvTxOverflow, TxID: 2},
		{TS: 150, Core: 0, Kind: EvWALAppend, TxID: 1, Addr: 0x80, Arg: 1 | 1<<8, Arg2: 3},
		{TS: 160, Core: 1, Kind: EvTxAbort, TxID: 2, Addr: 0 + 1, Arg: 5, Arg2: 1},
		{TS: 170, Core: 0, Kind: EvTxCommitBegin, TxID: 1},
		{TS: 180, Core: 0, Kind: EvTxCommitMark, TxID: 1, Arg: 9},
		{TS: 190, Core: 0, Kind: EvTxCommitDone, TxID: 1},
	}
}

// TestSummarize folds the sample lifecycle into per-transaction rows.
func TestSummarize(t *testing.T) {
	sums := Summarize(sampleEvents())
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	tx1, tx2 := sums[0], sums[1]
	if tx1.ID != 1 || !tx1.Committed || tx1.Reads != 1 || tx1.Writes != 1 || tx1.WALAppends != 1 {
		t.Errorf("tx1 summary wrong: %+v", tx1)
	}
	if tx1.Domain != 2 || tx1.SlowPath || tx1.Attempt != 1 {
		t.Errorf("tx1 identity wrong: %+v", tx1)
	}
	if tx1.Start != 100 || tx1.End != 190 {
		t.Errorf("tx1 span = [%d,%d], want [100,190]", tx1.Start, tx1.End)
	}
	if tx2.ID != 2 || tx2.Committed || !tx2.Overflowed || tx2.OverflowTS != 140 {
		t.Errorf("tx2 summary wrong: %+v", tx2)
	}
	if tx2.CauseCode != 5 || tx2.Enemy != 1 || tx2.EnemyCore != 0 {
		t.Errorf("tx2 abort fields wrong: %+v", tx2)
	}
	if !tx2.SlowPath || tx2.Attempt != 2 {
		t.Errorf("tx2 identity wrong: %+v", tx2)
	}
}

// TestWriteChrome: the output is a valid Chrome trace-event JSON object
// with process/thread metadata, one X slice per transaction, abort flow
// arrows, and deterministic bytes.
func TestWriteChrome(t *testing.T) {
	runs := []Run{{Label: "unit/run", Events: sampleEvents()}}
	name := func(c uint64) string { return "cause" }

	var buf bytes.Buffer
	if err := WriteChrome(&buf, runs, name); err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var slices, flows, metas int
	for _, raw := range file.TraceEvents {
		var e struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		switch {
		case e.Ph == "X" && e.Cat == "tx":
			slices++
		case e.Ph == "s" || e.Ph == "f":
			flows++
		case e.Ph == "M":
			metas++
		}
	}
	if slices != 2 {
		t.Errorf("got %d tx slices, want 2", slices)
	}
	if flows != 2 {
		t.Errorf("got %d flow endpoints, want 2 (s+f)", flows)
	}
	if metas < 3 { // process_name + >=2 thread_name
		t.Errorf("got %d metadata events, want >= 3", metas)
	}
	if !strings.Contains(buf.String(), `"abort:cause"`) {
		t.Error("abort outcome does not use the injected cause name")
	}

	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, runs, name); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same events differ")
	}
}

// TestReadChromeTxs round-trips the transaction slices through the file
// format.
func TestReadChromeTxs(t *testing.T) {
	runs := []Run{{Label: "unit/run", Events: sampleEvents()}}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, runs, nil); err != nil {
		t.Fatal(err)
	}
	txs, err := ReadChromeTxs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 {
		t.Fatalf("got %d txs, want 2", len(txs))
	}
	if txs[0].Run != "unit/run" || txs[0].Name != "tx1" || txs[0].Outcome != "commit" {
		t.Errorf("tx1 row wrong: %+v", txs[0])
	}
	if txs[1].Name != "tx2" || !strings.HasPrefix(txs[1].Outcome, "abort:") || txs[1].Enemy != 1 {
		t.Errorf("tx2 row wrong: %+v", txs[1])
	}
	if !txs[1].Slow || txs[1].Attempt != 2 {
		t.Errorf("tx2 identity lost in round trip: %+v", txs[1])
	}
}

// TestReadChromeTxsRejectsGarbage: a non-trace file errors out rather
// than returning an empty summary.
func TestReadChromeTxsRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTxs(strings.NewReader("not json")); err == nil {
		t.Error("garbage input did not error")
	}
}
