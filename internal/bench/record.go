package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// Schema identifies the BENCH_<n>.json format; bump on incompatible
// changes.
const Schema = "uhtm-bench/1"

// Record is one benchmark's measurement in a BENCH_<n>.json file.
type Record struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries the custom b.ReportMetric values (e.g.
	// "skiplist-slowdown-x"). encoding/json sorts map keys, so the file
	// bytes are deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the whole BENCH_<n>.json document.
type File struct {
	Schema string   `json:"schema"`
	Go     string   `json:"go"`
	Suite  []Record `json:"suite"`
}

// RunSuite executes every spec via testing.Benchmark and collects one
// record per spec. logf (may be nil) receives one progress line per
// benchmark. A benchmark that fails (b.Fatal, missing grid cell, zero
// baseline) yields r.N == 0 and makes RunSuite return an error naming
// it — a bench run must never silently emit a half-empty baseline.
func RunSuite(logf func(format string, args ...any)) (File, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := File{Schema: Schema, Go: runtime.Version()}
	for _, s := range Specs() {
		r := testing.Benchmark(s.Fn)
		if r.N == 0 {
			return f, fmt.Errorf("benchmark %s failed", s.Name)
		}
		rec := Record{
			Name:        s.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Metrics[k] = v
			}
		}
		logf("%-16s %4d iters  %14.0f ns/op  %12d allocs/op", rec.Name, rec.Iters, rec.NsPerOp, rec.AllocsPerOp)
		f.Suite = append(f.Suite, rec)
	}
	return f, nil
}

// Write emits the file as indented, deterministic JSON.
func (f File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read parses a BENCH_<n>.json document and validates its schema tag.
func Read(r io.Reader) (File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return f, err
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("bench file schema %q, want %q", f.Schema, Schema)
	}
	return f, nil
}

// allocSlack absorbs run-to-run noise in absolute allocation counts
// (goroutine bookkeeping, one-off map growth): a benchmark only fails
// the gate when it exceeds the baseline by the relative tolerance AND
// by more than this many allocations per op.
const allocSlack = 64

// metricSlack is the absolute slack for gated per-op custom metrics
// (names ending in "/op", e.g. "sched-handoffs/op"): small enough to
// catch a lost fast path, large enough that a metric hovering near zero
// never fails on noise alone.
const metricSlack = 0.05

// Compare checks cur against base. It returns hard failures — a
// benchmark missing from cur, allocs/op beyond base*(1+tol) plus an
// absolute slack, or a custom metric whose name ends in "/op" beyond
// the same envelope — and informational notes (ns/op drift beyond tol,
// benchmarks with no baseline). Allocation counts and per-op event
// counts are the gate because they are machine-independent and
// deterministic; wall-clock on shared CI runners is not. Other custom
// metrics (throughput ratios, percentages) are not gated: they measure
// the simulated machine, and the goldens already pin those outputs
// byte for byte.
func Compare(base, cur File, tol float64) (failures, notes []string) {
	curBy := make(map[string]Record, len(cur.Suite))
	for _, r := range cur.Suite {
		curBy[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Suite))
	for _, b := range base.Suite {
		baseNames[b.Name] = true
		c, ok := curBy[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		limit := float64(b.AllocsPerOp)*(1+tol) + allocSlack
		if float64(c.AllocsPerOp) > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%% (+%d slack)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, 100*tol, allocSlack))
		}
		for _, name := range sortedMetricNames(b.Metrics) {
			if !strings.HasSuffix(name, "/op") {
				continue
			}
			bv := b.Metrics[name]
			cv, ok := c.Metrics[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: metric %s missing from current run", b.Name, name))
				continue
			}
			if cv > bv*(1+tol)+metricSlack {
				failures = append(failures, fmt.Sprintf("%s: %s %.3f exceeds baseline %.3f by more than %.0f%% (+%.2f slack)",
					b.Name, name, cv, bv, 100*tol, metricSlack))
			}
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			notes = append(notes, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (informational: wall-clock is machine-dependent)",
				b.Name, c.NsPerOp, b.NsPerOp))
		}
	}
	for _, c := range cur.Suite {
		if !baseNames[c.Name] {
			notes = append(notes, fmt.Sprintf("%s: no baseline (new benchmark)", c.Name))
		}
	}
	return failures, notes
}

// sortedMetricNames returns m's keys in sorted order so Compare output
// is deterministic.
func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
