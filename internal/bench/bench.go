// Package bench defines the shared benchmark suite: one spec per
// paper figure (regenerating its grid at a reduced scale) plus
// micro-benchmarks of the core machinery. The same specs back both
// `go test -bench` (via thin wrappers in bench_test.go) and the
// `uhtmsim bench` subcommand, which runs the suite with
// testing.Benchmark and emits one machine-readable BENCH_<n>.json
// record per spec (ns/op, allocs/op, bytes/op and the headline custom
// metrics reported via b.ReportMetric).
//
// Figure specs fail loudly — a missing grid cell or a zero-throughput
// baseline is a b.Fatalf, never a silently absent metric — and report
// their metrics on every iteration, so multi-iteration runs cannot
// carry a stale first-iteration value.
package bench

import (
	"strconv"
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/shard"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/wal"
	"uhtm/internal/workload"
)

// Spec is one benchmark of the suite.
type Spec struct {
	Name string
	// Figure marks full experiment regenerations (minutes-scale, one
	// iteration) as opposed to micro-benchmarks (ns/µs-scale, ramped).
	Figure bool
	Fn     func(b *testing.B)
}

// Specs lists the suite in its canonical order (the order BENCH_<n>.json
// records appear in).
func Specs() []Spec {
	return []Spec{
		{"Fig2", true, Fig2},
		{"Fig6", true, Fig6},
		{"Fig7", true, Fig7},
		{"Fig8", true, Fig8},
		{"Fig9a", true, Fig9a},
		{"Fig9b", true, Fig9b},
		{"Fig10", true, Fig10},
		{"Ablations", true, Ablations},
		{"ShardCross", false, ShardCross},
		{"TxSmallCommit", false, TxSmallCommit},
		{"SignatureInsert", false, SignatureInsert},
		{"SignatureCheck", false, SignatureCheck},
		{"RedoLogAppend", false, RedoLogAppend},
		{"LogReplay", false, LogReplay},
		{"RecoveryReplay", false, RecoveryReplay},
		{"SimEngineYield", false, SimEngineYield},
	}
}

// mustResult picks the result matching system and bench, failing the
// benchmark loudly when the grid cell is missing — a silent nil here
// would drop the headline metric without failing anything.
func mustResult(b *testing.B, rs []workload.Result, system string, bench workload.Bench) *workload.Result {
	b.Helper()
	for i := range rs {
		if rs[i].System == system && rs[i].Bench == bench {
			return &rs[i]
		}
	}
	b.Fatalf("no result for system %q bench %q in %d-cell grid", system, bench, len(rs))
	return nil
}

// Fig2 regenerates Figure 2 (LLC-Bounded vs Ideal) and reports the
// SkipList slowdown ratio.
func Fig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig2(0.25)
		bounded := mustResult(b, rs, "LLC-Bounded", workload.BenchSkipList)
		ideal := mustResult(b, rs, "Ideal", workload.BenchSkipList)
		if bounded.Throughput() <= 0 {
			b.Fatalf("LLC-Bounded SkipList throughput is %v, want > 0", bounded.Throughput())
		}
		b.ReportMetric(ideal.Throughput()/bounded.Throughput(), "skiplist-slowdown-x")
	}
}

// Fig6 regenerates Figure 6 (all systems, PMDK + Echo) and reports
// UHTM 4k_opt's normalized throughput on SkipList.
func Fig6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig6(0.125)
		base := mustResult(b, rs, "LLC-Bounded", workload.BenchSkipList)
		uhtm := mustResult(b, rs, "4k_opt", workload.BenchSkipList)
		if base.Throughput() <= 0 {
			b.Fatalf("LLC-Bounded SkipList throughput is %v, want > 0", base.Throughput())
		}
		b.ReportMetric(uhtm.Throughput()/base.Throughput(), "skiplist-4kopt-norm")
	}
}

// Fig7 regenerates Figure 7 (abort-rate decomposition) and reports the
// 4k_opt abort rate at the first footprint.
func Fig7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig7(0.125)
		found := false
		for _, r := range rs {
			if r.System == "4k_opt" {
				b.ReportMetric(100*r.Stats.AbortRate(), "4kopt-abort-%")
				found = true
				break
			}
		}
		if !found {
			b.Fatalf("no 4k_opt result in %d-cell fig7 grid", len(rs))
		}
	}
}

// Fig8 regenerates Figure 8 (long-running read-only transactions) and
// reports UHTM's speedup over the bounded baseline at the first
// fraction.
func Fig8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig8(0.125)
		if len(rs) < 2 {
			b.Fatalf("fig8 grid has %d results, want >= 2", len(rs))
		}
		if rs[0].Throughput() <= 0 {
			b.Fatalf("fig8 baseline throughput is %v, want > 0", rs[0].Throughput())
		}
		b.ReportMetric(rs[1].Throughput()/rs[0].Throughput(), "uhtm-speedup-x")
	}
}

// Fig9a regenerates Figure 9a (Hybrid-Index store) and reports the
// isolation optimization's throughput gain at the 512-bit signature.
func Fig9a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig9a(0.25)
		var sig, opt float64
		for _, r := range rs {
			if r.System == "512_sig" && sig == 0 {
				sig = r.Throughput()
			}
			if r.System == "512_opt" && opt == 0 {
				opt = r.Throughput()
			}
		}
		if sig <= 0 {
			b.Fatalf("no positive 512_sig throughput in %d-cell fig9a grid", len(rs))
		}
		b.ReportMetric(100*(opt-sig)/sig, "opt-gain-%")
	}
}

// Fig9b regenerates Figure 9b (Dual store).
func Fig9b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rs := workload.Fig9b(0.25)
		if len(rs) == 0 {
			b.Fatal("fig9b produced no results")
		}
	}
}

// Fig10 regenerates Figure 10 (undo vs redo DRAM logging) and reports
// the undo/redo throughput ratio at the largest footprint, parsed from
// the rendered table (column "undo/redo" of the last row).
func Fig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, _ := workload.Fig10(0.25)
		if tbl == nil || len(tbl.Rows) == 0 {
			b.Fatal("fig10 produced an empty table")
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		if len(last) < 4 {
			b.Fatalf("fig10 row has %d columns, want >= 4", len(last))
		}
		ratio, err := strconv.ParseFloat(last[3], 64)
		if err != nil {
			b.Fatalf("fig10 undo/redo cell %q is not a number: %v", last[3], err)
		}
		b.ReportMetric(ratio, "undo-redo-x")
	}
}

// Ablations regenerates the design-choice ablation table.
func Ablations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, rs := workload.Ablations(0.25)
		if tbl == nil || len(rs) == 0 {
			b.Fatal("ablations produced no results")
		}
	}
}

// --- Micro-benchmarks of the substrate ---

// ShardCross measures a small sharded cluster end to end — per-shard
// local batches plus cross-shard 2PC waves (prepare, decide, apply,
// reclaim, resolve) — and reports the cross-shard commit count per
// iteration. The count is a pure function of the configuration, so
// unlike ns/op it is machine-independent and gateable in CI: a change
// that silently stops admitting (or stops committing) cross-shard
// transactions moves it.
func ShardCross(b *testing.B) {
	cfg := shard.SweepConfig()
	cfg.Trace = false
	b.ReportAllocs()
	b.ResetTimer()
	var cross uint64
	for i := 0; i < b.N; i++ {
		c := shard.New(cfg)
		res := c.Run()
		if res.Halted {
			b.Fatal("uninjected cluster run halted")
		}
		if res.CrossCommits == 0 {
			b.Fatalf("no cross-shard commits (aborts=%d)", res.CrossAborts)
		}
		cross = res.CrossCommits
	}
	b.ReportMetric(float64(cross), "cross-shard-commits/op")
}

// TxSmallCommit measures a minimal durable transaction (one NVM line)
// end to end through the machine.
func TxSmallCommit(b *testing.B) {
	eng := sim.NewEngine(1)
	opts := core.DefaultOptions()
	opts.Paranoid = false
	mc := mem.DefaultConfig()
	mc.Cores = 1
	m := core.NewMachine(eng, mc, opts)
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Spawn("bench", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for i := 0; i < b.N; i++ {
			c.Run(func(tx *core.Tx) {
				tx.WriteU64(a, uint64(i))
			})
		}
	})
	eng.Run()
	// Goroutine handoffs per transaction: machine-independent, so unlike
	// ns/op it is gateable in CI. The single-thread engine should elide
	// essentially every dispatch via the Sync fast path.
	b.ReportMetric(float64(eng.Dispatches())/float64(b.N), "sched-handoffs/op")
}

// SignatureInsert measures Bloom-filter insertion.
func SignatureInsert(b *testing.B) {
	f := signature.NewFilter(signature.Bits4K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(mem.Addr(i) * mem.LineSize)
	}
}

// SignatureCheck measures a signature probe against a half-full filter.
func SignatureCheck(b *testing.B) {
	p := signature.NewPair(signature.Bits4K)
	for i := 0; i < 400; i++ {
		p.AddWrite(mem.Addr(i) * mem.LineSize)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CheckWrite(mem.Addr(i) * mem.LineSize)
	}
}

// RedoLogAppend measures hardware redo-log appends into simulated NVM.
func RedoLogAppend(b *testing.B) {
	s := mem.NewStore(mem.DefaultConfig())
	l := wal.NewLog(s, mem.NVMLogBase, 32<<20, true)
	var data mem.Line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(wal.Record{Type: wal.RecWrite, TxID: 1, Addr: mem.NVMBase, Data: data})
		if l.Len() > l.Slots()/2 {
			l.Reclaim(l.Head())
		}
	}
}

// LogReplay measures crash recovery over a populated log.
func LogReplay(b *testing.B) {
	s := mem.NewStore(mem.DefaultConfig())
	l := wal.NewLog(s, mem.NVMLogBase, 32<<20, true)
	var data mem.Line
	for tx := uint64(1); tx <= 100; tx++ {
		for j := 0; j < 16; j++ {
			l.Append(wal.Record{Type: wal.RecWrite, TxID: tx, Addr: mem.NVMBase + mem.Addr(j)*64, Data: data})
		}
		l.Append(wal.Record{Type: wal.RecCommit, TxID: tx, LSN: tx})
	}
	s.Crash()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Replay()
	}
}

// RecoveryReplay measures machine crash recovery end to end over a
// part-checkpointed redo log: a fixed single-core load with one fuzzy
// checkpoint partway leaves a residual committed suffix on the ring;
// each iteration crashes the machine and runs the timed recovery pass.
// Replay is non-destructive (the ring and the checkpoint cell survive
// it), so iterations are identical. The replayed-records count is a
// pure function of the load and the checkpoint placement — machine-
// independent and gateable in CI: a checkpoint that stops filtering,
// or a replay that stops applying, moves it.
func RecoveryReplay(b *testing.B) {
	const txs = 64
	const writesPerTx = 4
	const poolLines = 8
	eng := sim.NewEngine(1)
	opts := core.DefaultOptions()
	opts.Paranoid = false
	mc := mem.DefaultConfig()
	mc.Cores = 1
	m := core.NewMachine(eng, mc, opts)
	al := mem.NewAllocator(mem.NVM)
	pool := al.AllocLines(poolLines)
	eng.Spawn("load", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for k := 0; k < txs; k++ {
			k := k
			c.Run(func(tx *core.Tx) {
				for w := 0; w < writesPerTx; w++ {
					line := pool + mem.Addr((k*writesPerTx+w)%poolLines)*mem.LineSize
					tx.WriteU64(line, uint64(k))
				}
			})
			if k == txs/2 {
				m.ReclaimLogs()
			}
		}
	})
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	var applied int
	for i := 0; i < b.N; i++ {
		m.Crash()
		st := m.Recover()
		if st.AppliedLines == 0 || st.CheckpointLSN == 0 {
			b.Fatalf("recovery applied %d lines against checkpoint LSN %d, want both > 0",
				st.AppliedLines, st.CheckpointLSN)
		}
		applied = st.AppliedLines
	}
	b.ReportMetric(float64(applied), "recovery-replayed/op")
}

// SimEngineYield measures the scheduler handoff cost — the simulator's
// fundamental overhead per memory access.
func SimEngineYield(b *testing.B) {
	eng := sim.NewEngine(1)
	eng.Spawn("spin", func(th *sim.Thread) {
		for i := 0; i < b.N; i++ {
			th.Sync()
			th.Advance(sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
	b.ReportMetric(float64(eng.Dispatches())/float64(b.N), "sched-handoffs/op")
}
