package bench

import (
	"bytes"
	"strings"
	"testing"
)

func rec(name string, allocs int64, ns float64) Record {
	return Record{Name: name, Iters: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

// TestCompareGatesOnAllocs: the regression gate fires on allocs/op
// beyond tolerance+slack, treats ns/op drift as informational only,
// and fails hard on benchmarks missing from the current run.
func TestCompareGatesOnAllocs(t *testing.T) {
	base := File{Schema: Schema, Suite: []Record{
		rec("steady", 1000, 100),
		rec("regressed", 1000, 100),
		rec("slower", 1000, 100),
		rec("gone", 10, 10),
		rec("tiny", 0, 10), // slack absorbs small absolute growth
	}}
	cur := File{Schema: Schema, Suite: []Record{
		rec("steady", 1100, 100),    // +10% < 25% tolerance
		rec("regressed", 2000, 100), // +100% allocs: hard failure
		rec("slower", 1000, 1000),   // 10x slower, same allocs: note only
		rec("tiny", 50, 10),         // below the absolute slack
		rec("fresh", 5, 5),          // no baseline: note only
	}}
	failures, notes := Compare(base, cur, 0.25)
	if len(failures) != 2 {
		t.Fatalf("got %d failures %v, want 2", len(failures), failures)
	}
	if !strings.Contains(failures[0], "regressed") || !strings.Contains(failures[1], "gone") {
		t.Errorf("unexpected failures: %v", failures)
	}
	var slower, fresh bool
	for _, n := range notes {
		slower = slower || strings.Contains(n, "slower")
		fresh = fresh || strings.Contains(n, "fresh")
		if strings.Contains(n, "steady") || strings.Contains(n, "tiny") {
			t.Errorf("in-tolerance benchmark flagged: %q", n)
		}
	}
	if !slower || !fresh {
		t.Errorf("expected notes for slower and fresh, got %v", notes)
	}
}

// mrec builds a record carrying custom metrics.
func mrec(name string, allocs int64, metrics map[string]float64) Record {
	r := rec(name, allocs, 100)
	r.Metrics = metrics
	return r
}

// TestCompareGatesPerOpMetrics: custom metrics named "*/op" (per-op
// event counts, machine-independent) are gated like allocs/op; other
// custom metrics (simulated-machine ratios) are never gated.
func TestCompareGatesPerOpMetrics(t *testing.T) {
	base := File{Schema: Schema, Suite: []Record{
		mrec("steady", 10, map[string]float64{"sched-handoffs/op": 0.01}),
		mrec("regressed", 10, map[string]float64{"sched-handoffs/op": 0.5}),
		mrec("dropped", 10, map[string]float64{"sched-handoffs/op": 1}),
		mrec("ratio", 10, map[string]float64{"skiplist-slowdown-x": 2}),
	}}
	cur := File{Schema: Schema, Suite: []Record{
		// 0.01 -> 0.04: huge relative growth, but inside the absolute
		// slack that keeps near-zero metrics from failing on noise.
		mrec("steady", 10, map[string]float64{"sched-handoffs/op": 0.04}),
		// 0.5 -> 2.0: the fast path was lost; hard failure.
		mrec("regressed", 10, map[string]float64{"sched-handoffs/op": 2.0}),
		// Baseline had the metric, current run doesn't: hard failure.
		mrec("dropped", 10, nil),
		// Non-/op metric may move freely.
		mrec("ratio", 10, map[string]float64{"skiplist-slowdown-x": 9}),
	}}
	failures, _ := Compare(base, cur, 0.25)
	if len(failures) != 2 {
		t.Fatalf("got %d failures %v, want 2", len(failures), failures)
	}
	if !strings.Contains(failures[0], "regressed") || !strings.Contains(failures[0], "sched-handoffs/op") {
		t.Errorf("regressed metric not flagged: %v", failures)
	}
	if !strings.Contains(failures[1], "dropped") || !strings.Contains(failures[1], "missing") {
		t.Errorf("dropped metric not flagged: %v", failures)
	}
}

// TestFileRoundTrip: Write then Read reproduces the document, and the
// bytes are deterministic (map keys sorted by encoding/json).
func TestFileRoundTrip(t *testing.T) {
	f := File{Schema: Schema, Go: "go0.0", Suite: []Record{{
		Name: "X", Iters: 3, NsPerOp: 1.5, AllocsPerOp: 7, BytesPerOp: 9,
		Metrics: map[string]float64{"b-metric": 2, "a-metric": 1},
	}}}
	var w1, w2 bytes.Buffer
	if err := f.Write(&w1); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("two renders differ")
	}
	got, err := Read(&w1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite[0].Name != "X" || got.Suite[0].Metrics["a-metric"] != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// TestReadRejectsWrongSchema: an unrelated JSON document is an error,
// not an empty baseline that would vacuously pass every gate.
func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
