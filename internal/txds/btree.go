package txds

import "uhtm/internal/mem"

// BTree is a B-tree with minimum degree 4 (up to 7 keys / 8 children per
// node), the PMDK btree benchmark shape. It supports insert/update, point
// lookup, and ordered scans — the operation the paper places the DRAM
// copy of the hybrid index there for. Layout (all u64 words):
//
//	header: [root u64]
//	node:   [nkeys][leaf][keys×7][vals×7][children×8]
type BTree struct {
	head mem.Addr
	al   *mem.Allocator
}

const (
	btMinDeg   = 4
	btMaxKeys  = 2*btMinDeg - 1 // 7
	btMaxChild = 2 * btMinDeg   // 8

	btNKeys = 0
	btLeaf  = 8
	btKeys  = 16
	btVals  = btKeys + 8*btMaxKeys
	btKids  = btVals + 8*btMaxKeys
	btSize  = btKids + 8*btMaxChild
)

// NewBTree allocates an empty tree.
func NewBTree(m Mem, al *mem.Allocator) *BTree {
	t := &BTree{head: al.Alloc(8, mem.LineSize), al: al}
	root := t.newNode(m, true)
	m.WriteU64(t.head, uint64(root))
	return t
}

// AttachBTree re-binds an existing tree by its header address.
func AttachBTree(head mem.Addr, al *mem.Allocator) *BTree {
	return &BTree{head: head, al: al}
}

// Head returns the header address.
func (t *BTree) Head() mem.Addr { return t.head }

func (t *BTree) newNode(m Mem, leaf bool) mem.Addr {
	n := t.al.Alloc(btSize, mem.LineSize)
	m.WriteU64(n+btNKeys, 0)
	if leaf {
		m.WriteU64(n+btLeaf, 1)
	} else {
		m.WriteU64(n+btLeaf, 0)
	}
	return n
}

func key(m Mem, n mem.Addr, i int) uint64       { return m.ReadU64(n + btKeys + mem.Addr(i)*8) }
func setKey(m Mem, n mem.Addr, i int, k uint64) { m.WriteU64(n+btKeys+mem.Addr(i)*8, k) }
func val(m Mem, n mem.Addr, i int) uint64       { return m.ReadU64(n + btVals + mem.Addr(i)*8) }
func setVal(m Mem, n mem.Addr, i int, v uint64) { m.WriteU64(n+btVals+mem.Addr(i)*8, v) }
func kid(m Mem, n mem.Addr, i int) mem.Addr     { return mem.Addr(m.ReadU64(n + btKids + mem.Addr(i)*8)) }
func setKid(m Mem, n mem.Addr, i int, c mem.Addr) {
	m.WriteU64(n+btKids+mem.Addr(i)*8, uint64(c))
}
func nkeys(m Mem, n mem.Addr) int       { return int(m.ReadU64(n + btNKeys)) }
func setNKeys(m Mem, n mem.Addr, k int) { m.WriteU64(n+btNKeys, uint64(k)) }
func isLeaf(m Mem, n mem.Addr) bool     { return m.ReadU64(n+btLeaf) == 1 }

// Get returns the value for key k, or (nil, false).
func (t *BTree) Get(m Mem, k uint64) ([]byte, bool) {
	n := mem.Addr(m.ReadU64(t.head))
	for {
		cnt := nkeys(m, n)
		i := 0
		for i < cnt && k > key(m, n, i) {
			i++
		}
		if i < cnt && k == key(m, n, i) {
			return readValue(m, mem.Addr(val(m, n, i))), true
		}
		if isLeaf(m, n) {
			return nil, false
		}
		n = kid(m, n, i)
	}
}

// Put inserts or updates k with value v.
func (t *BTree) Put(m Mem, k uint64, v []byte) {
	root := mem.Addr(m.ReadU64(t.head))
	if nkeys(m, root) == btMaxKeys {
		nr := t.newNode(m, false)
		setKid(m, nr, 0, root)
		t.splitChild(m, nr, 0)
		m.WriteU64(t.head, uint64(nr))
		root = nr
	}
	t.insertNonFull(m, root, k, v)
}

// splitChild splits the full i-th child of parent p.
func (t *BTree) splitChild(m Mem, p mem.Addr, i int) {
	c := kid(m, p, i)
	leaf := isLeaf(m, c)
	nn := t.newNode(m, leaf)
	// Move the upper t-1 keys (and children) of c into nn.
	for j := 0; j < btMinDeg-1; j++ {
		setKey(m, nn, j, key(m, c, j+btMinDeg))
		setVal(m, nn, j, val(m, c, j+btMinDeg))
	}
	if !leaf {
		for j := 0; j < btMinDeg; j++ {
			setKid(m, nn, j, kid(m, c, j+btMinDeg))
		}
	}
	setNKeys(m, nn, btMinDeg-1)
	setNKeys(m, c, btMinDeg-1)
	// Shift parent entries right and hook in the median.
	pc := nkeys(m, p)
	for j := pc; j > i; j-- {
		setKid(m, p, j+1, kid(m, p, j))
	}
	setKid(m, p, i+1, nn)
	for j := pc - 1; j >= i; j-- {
		setKey(m, p, j+1, key(m, p, j))
		setVal(m, p, j+1, val(m, p, j))
	}
	setKey(m, p, i, key(m, c, btMinDeg-1))
	setVal(m, p, i, val(m, c, btMinDeg-1))
	setNKeys(m, p, pc+1)
}

func (t *BTree) insertNonFull(m Mem, n mem.Addr, k uint64, v []byte) {
	for {
		cnt := nkeys(m, n)
		// Update in place if the key exists at this node.
		i := 0
		for i < cnt && k > key(m, n, i) {
			i++
		}
		if i < cnt && k == key(m, n, i) {
			vp := mem.Addr(val(m, n, i))
			nv := updateValue(m, t.al, vp, v)
			if nv != vp {
				setVal(m, n, i, uint64(nv))
			}
			return
		}
		if isLeaf(m, n) {
			// Shift and insert.
			for j := cnt - 1; j >= i; j-- {
				setKey(m, n, j+1, key(m, n, j))
				setVal(m, n, j+1, val(m, n, j))
			}
			setKey(m, n, i, k)
			setVal(m, n, i, uint64(writeValue(m, t.al, v)))
			setNKeys(m, n, cnt+1)
			return
		}
		if nkeys(m, kid(m, n, i)) == btMaxKeys {
			t.splitChild(m, n, i)
			switch {
			case k == key(m, n, i):
				vp := mem.Addr(val(m, n, i))
				nv := updateValue(m, t.al, vp, v)
				if nv != vp {
					setVal(m, n, i, uint64(nv))
				}
				return
			case k > key(m, n, i):
				i++
			}
		}
		n = kid(m, n, i)
	}
}

// Scan visits keys ≥ from in ascending order until fn returns false or
// the tree is exhausted. It returns the number of entries visited — the
// long-running read-only operation of Section VI-B.
func (t *BTree) Scan(m Mem, from uint64, fn func(k uint64, valAddr mem.Addr) bool) int {
	visited := 0
	t.scan(m, mem.Addr(m.ReadU64(t.head)), from, fn, &visited)
	return visited
}

func (t *BTree) scan(m Mem, n mem.Addr, from uint64, fn func(uint64, mem.Addr) bool, visited *int) bool {
	cnt := nkeys(m, n)
	leaf := isLeaf(m, n)
	i := 0
	for i < cnt && key(m, n, i) < from {
		i++
	}
	if !leaf {
		if !t.scan(m, kid(m, n, i), from, fn, visited) {
			return false
		}
	}
	for ; i < cnt; i++ {
		*visited++
		if !fn(key(m, n, i), mem.Addr(val(m, n, i))) {
			return false
		}
		if !leaf {
			if !t.scan(m, kid(m, n, i+1), from, fn, visited) {
				return false
			}
		}
	}
	return true
}

// Len counts entries (test/checker use).
func (t *BTree) Len(m Mem) int {
	n := 0
	t.Scan(m, 0, func(uint64, mem.Addr) bool { n++; return true })
	return n
}
