package txds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"uhtm/internal/mem"
)

// env returns a raw store (which satisfies Mem) and an NVM allocator —
// structures are exercised here without the simulator in the loop.
func env() (*mem.Store, *mem.Allocator) {
	return mem.NewStore(mem.DefaultConfig()), mem.NewAllocator(mem.NVM)
}

func v(s string) []byte { return []byte(s) }

// kvStructure abstracts the four structures for shared tests.
type kvStructure interface {
	Put(m Mem, k uint64, v []byte)
	Get(m Mem, k uint64) ([]byte, bool)
	Len(m Mem) int
}

func structures(m Mem, al *mem.Allocator) map[string]kvStructure {
	return map[string]kvStructure{
		"hashmap":  NewHashMap(m, al, 64),
		"btree":    NewBTree(m, al),
		"rbtree":   NewRBTree(m, al),
		"skiplist": NewSkipList(m, al),
	}
}

func TestPutGetBasics(t *testing.T) {
	st, al := env()
	for name, ds := range structures(st, al) {
		t.Run(name, func(t *testing.T) {
			if _, ok := ds.Get(st, 42); ok {
				t.Error("empty structure returned a value")
			}
			ds.Put(st, 42, v("hello"))
			got, ok := ds.Get(st, 42)
			if !ok || !bytes.Equal(got, v("hello")) {
				t.Errorf("Get = %q, %v", got, ok)
			}
			ds.Put(st, 42, v("world")) // same-size update
			got, _ = ds.Get(st, 42)
			if !bytes.Equal(got, v("world")) {
				t.Errorf("after update, Get = %q", got)
			}
			ds.Put(st, 42, v("a much longer value forcing reallocation"))
			got, _ = ds.Get(st, 42)
			if !bytes.Equal(got, v("a much longer value forcing reallocation")) {
				t.Errorf("after grow, Get = %q", got)
			}
			if ds.Len(st) != 1 {
				t.Errorf("Len = %d", ds.Len(st))
			}
		})
	}
}

func TestOracleComparison(t *testing.T) {
	st, al := env()
	for name, ds := range structures(st, al) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			oracle := map[uint64][]byte{}
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(500)) + 1 // collisions guaranteed
				val := []byte(fmt.Sprintf("v%d-%d", k, i))
				ds.Put(st, k, val)
				oracle[k] = val
			}
			if ds.Len(st) != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", ds.Len(st), len(oracle))
			}
			for k, want := range oracle {
				got, ok := ds.Get(st, k)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("key %d: got %q ok=%v, want %q", k, got, ok, want)
				}
			}
			// Absent keys.
			for i := 0; i < 100; i++ {
				k := uint64(rng.Intn(500)) + 10000
				if _, ok := ds.Get(st, k); ok {
					t.Fatalf("absent key %d found", k)
				}
			}
		})
	}
}

func TestHashMapDelete(t *testing.T) {
	st, al := env()
	h := NewHashMap(st, al, 16)
	for k := uint64(1); k <= 100; k++ {
		h.Put(st, k, v("x"))
	}
	for k := uint64(1); k <= 100; k += 2 {
		if !h.Delete(st, k) {
			t.Fatalf("Delete(%d) = false", k)
		}
	}
	if h.Delete(st, 1) {
		t.Error("double delete succeeded")
	}
	if h.Len(st) != 50 {
		t.Errorf("Len = %d", h.Len(st))
	}
	for k := uint64(2); k <= 100; k += 2 {
		if _, ok := h.Get(st, k); !ok {
			t.Fatalf("surviving key %d missing", k)
		}
	}
}

func TestSkipListDelete(t *testing.T) {
	st, al := env()
	s := NewSkipList(st, al)
	for k := uint64(1); k <= 200; k++ {
		s.Put(st, k, v("x"))
	}
	for k := uint64(1); k <= 200; k += 3 {
		if !s.Delete(st, k) {
			t.Fatalf("Delete(%d) = false", k)
		}
	}
	if s.Delete(st, 4) { // 4 %3==1 → wait, 4 was not deleted (1,4,7...? k+=3 from 1: 1,4,7 — 4 WAS deleted)
		t.Error("double delete succeeded")
	}
	for k := uint64(1); k <= 200; k++ {
		_, ok := s.Get(st, k)
		wantOK := (k-1)%3 != 0
		if ok != wantOK {
			t.Fatalf("key %d present=%v want %v", k, ok, wantOK)
		}
	}
}

func TestOrderedScan(t *testing.T) {
	st, al := env()
	scanners := map[string]interface {
		Put(m Mem, k uint64, v []byte)
		Scan(m Mem, from uint64, fn func(uint64, mem.Addr) bool) int
	}{
		"btree":    NewBTree(st, al),
		"rbtree":   NewRBTree(st, al),
		"skiplist": NewSkipList(st, al),
	}
	rng := rand.New(rand.NewSource(9))
	keys := rng.Perm(500)
	for name, ds := range scanners {
		t.Run(name, func(t *testing.T) {
			for _, k := range keys {
				ds.Put(st, uint64(k)+1, v("s"))
			}
			var got []uint64
			ds.Scan(st, 100, func(k uint64, _ mem.Addr) bool {
				got = append(got, k)
				return true
			})
			if len(got) != 401 { // keys 100..500
				t.Fatalf("scan visited %d keys, want 401", len(got))
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Error("scan out of order")
			}
			if got[0] != 100 || got[len(got)-1] != 500 {
				t.Errorf("scan range [%d,%d]", got[0], got[len(got)-1])
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	st, al := env()
	b := NewBTree(st, al)
	for k := uint64(1); k <= 100; k++ {
		b.Put(st, k, v("x"))
	}
	n := 0
	b.Scan(st, 0, func(uint64, mem.Addr) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRBTreeInvariantsUnderLoad(t *testing.T) {
	st, al := env()
	r := NewRBTree(st, al)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		r.Put(st, rng.Uint64()%10000+1, v("z"))
		if i%250 == 0 {
			r.CheckInvariants(st)
		}
	}
	r.CheckInvariants(st)
	// Sequential (adversarial for naive BSTs).
	r2 := NewRBTree(st, al)
	for k := uint64(1); k <= 2000; k++ {
		r2.Put(st, k, v("z"))
	}
	if h := r2.CheckInvariants(st); h > 16 {
		t.Errorf("black height %d too large for 2000 sequential keys", h)
	}
}

func TestBTreeSplitsDeep(t *testing.T) {
	st, al := env()
	b := NewBTree(st, al)
	// Enough keys to force several levels (fanout 8 → 8^4 = 4096).
	for k := uint64(1); k <= 5000; k++ {
		b.Put(st, k, v("d"))
	}
	if b.Len(st) != 5000 {
		t.Fatalf("Len = %d", b.Len(st))
	}
	for _, k := range []uint64{1, 7, 8, 63, 64, 512, 4999, 5000} {
		if _, ok := b.Get(st, k); !ok {
			t.Fatalf("key %d lost after splits", k)
		}
	}
}

func TestLargeValues(t *testing.T) {
	st, al := env()
	h := NewHashMap(st, al, 16)
	big := make([]byte, 4096) // 64 lines
	for i := range big {
		big[i] = byte(i)
	}
	h.Put(st, 7, big)
	got, ok := h.Get(st, 7)
	if !ok || !bytes.Equal(got, big) {
		t.Error("4KB value round-trip failed")
	}
}

func TestDeterministicSkipListLevels(t *testing.T) {
	counts := make([]int, slMaxLevel+1)
	for k := uint64(0); k < 100000; k++ {
		counts[levelFor(k)]++
	}
	// Roughly geometric: level 1 ≈ 50%, level 2 ≈ 25%...
	if counts[1] < 40000 || counts[1] > 60000 {
		t.Errorf("level-1 fraction off: %d", counts[1])
	}
	if counts[2] < 20000 || counts[2] > 30000 {
		t.Errorf("level-2 fraction off: %d", counts[2])
	}
}

// Property: every structure agrees with a Go map oracle under random
// put/get interleavings.
func TestQuickOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		st, al := env()
		for _, ds := range structures(st, al) {
			oracle := map[uint64][]byte{}
			for i, op := range ops {
				k := uint64(op%97) + 1
				if op%3 == 0 {
					got, ok := ds.Get(st, k)
					want, wantOK := oracle[k]
					if ok != wantOK || (ok && !bytes.Equal(got, want)) {
						return false
					}
				} else {
					val := []byte(fmt.Sprintf("%d:%d", k, i))
					ds.Put(st, k, val)
					oracle[k] = val
				}
			}
			if ds.Len(st) != len(oracle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
