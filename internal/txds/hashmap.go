package txds

import "uhtm/internal/mem"

// HashMap is a fixed-bucket chained hash table (the PMDK hashmap
// benchmark shape). Each bucket head occupies its own cache line —
// HTM-friendly index layout (packing eight bucket heads per line would
// make unrelated inserts conflict at line granularity; cf. the index
// redesign Karnagel et al. [32] describe). Layout:
//
//	header: [nbuckets u64][bucketsBase u64]
//	bucket: head node pointer (nilPtr when empty), one line per bucket
//	node:   [key u64][valPtr u64][next u64]
type HashMap struct {
	head mem.Addr
	al   *mem.Allocator
}

const (
	hmNBuckets = 0
	hmBuckets  = 8
	hmNodeSize = 24
	nodeKey    = 0
	nodeVal    = 8
	nodeNext   = 16
)

// NewHashMap allocates a hash map with nbuckets buckets from al. The
// constructor writes through m (non-transactional setup or a
// transaction, caller's choice).
func NewHashMap(m Mem, al *mem.Allocator, nbuckets int) *HashMap {
	if nbuckets <= 0 || nbuckets&(nbuckets-1) != 0 {
		panic("txds: bucket count must be a positive power of two")
	}
	h := &HashMap{head: al.Alloc(16, mem.LineSize), al: al}
	buckets := al.Alloc(nbuckets*mem.LineSize, mem.LineSize)
	m.WriteU64(h.head+hmNBuckets, uint64(nbuckets))
	m.WriteU64(h.head+hmBuckets, uint64(buckets))
	for i := 0; i < nbuckets; i++ {
		m.WriteU64(buckets+mem.Addr(i)*mem.LineSize, nilPtr)
	}
	return h
}

// AttachHashMap re-binds an existing hash map (e.g. after recovery).
func AttachHashMap(head mem.Addr, al *mem.Allocator) *HashMap {
	return &HashMap{head: head, al: al}
}

// Head returns the header address (stable across crashes; store it in
// NVM to find the map again after recovery).
func (h *HashMap) Head() mem.Addr { return h.head }

// Allocator returns the allocator backing this map (value blobs for
// PutRef must come from the same region).
func (h *HashMap) Allocator() *mem.Allocator { return h.al }

func (h *HashMap) bucketAddr(m Mem, key uint64) mem.Addr {
	n := m.ReadU64(h.head + hmNBuckets)
	base := mem.Addr(m.ReadU64(h.head + hmBuckets))
	return base + mem.Addr(hashKey(key)&(n-1))*mem.LineSize
}

// Put inserts or updates key with value.
func (h *HashMap) Put(m Mem, key uint64, value []byte) {
	ba := h.bucketAddr(m, key)
	for p := m.ReadU64(ba); p != nilPtr; p = m.ReadU64(mem.Addr(p) + nodeNext) {
		if m.ReadU64(mem.Addr(p)+nodeKey) == key {
			vp := mem.Addr(m.ReadU64(mem.Addr(p) + nodeVal))
			nv := updateValue(m, h.al, vp, value)
			if nv != vp {
				m.WriteU64(mem.Addr(p)+nodeVal, uint64(nv))
			}
			return
		}
	}
	vp := writeValue(m, h.al, value)
	node := h.al.Alloc(hmNodeSize, mem.LineSize)
	m.WriteU64(node+nodeKey, key)
	m.WriteU64(node+nodeVal, uint64(vp))
	m.WriteU64(node+nodeNext, m.ReadU64(ba))
	m.WriteU64(ba, uint64(node))
}

// PutRef inserts or updates key to reference an already-materialized
// value blob at valAddr (built with BuildValue) — the copy-on-write
// publish idiom of persistent-memory programming: the value is written
// outside the transaction (it is private until published) and only the
// pointer splice is transactional. This keeps hashmap transactions tiny,
// which is why the paper's HashMap benchmark never hits capacity
// overflow.
func (h *HashMap) PutRef(m Mem, key uint64, valAddr mem.Addr) {
	ba := h.bucketAddr(m, key)
	for p := m.ReadU64(ba); p != nilPtr; p = m.ReadU64(mem.Addr(p) + nodeNext) {
		if m.ReadU64(mem.Addr(p)+nodeKey) == key {
			m.WriteU64(mem.Addr(p)+nodeVal, uint64(valAddr))
			return
		}
	}
	node := h.al.Alloc(hmNodeSize, mem.LineSize)
	m.WriteU64(node+nodeKey, key)
	m.WriteU64(node+nodeVal, uint64(valAddr))
	m.WriteU64(node+nodeNext, m.ReadU64(ba))
	m.WriteU64(ba, uint64(node))
}

// BuildValue materializes a value blob through m (typically a
// non-transactional accessor) and returns its address, for PutRef.
func BuildValue(m Mem, al *mem.Allocator, v []byte) mem.Addr {
	return writeValue(m, al, v)
}

// Get returns the value stored for key, or (nil, false).
func (h *HashMap) Get(m Mem, key uint64) ([]byte, bool) {
	ba := h.bucketAddr(m, key)
	for p := m.ReadU64(ba); p != nilPtr; p = m.ReadU64(mem.Addr(p) + nodeNext) {
		if m.ReadU64(mem.Addr(p)+nodeKey) == key {
			return readValue(m, mem.Addr(m.ReadU64(mem.Addr(p)+nodeVal))), true
		}
	}
	return nil, false
}

// Delete removes key; it reports whether the key was present.
func (h *HashMap) Delete(m Mem, key uint64) bool {
	ba := h.bucketAddr(m, key)
	prev := ba
	for p := m.ReadU64(ba); p != nilPtr; {
		next := m.ReadU64(mem.Addr(p) + nodeNext)
		if m.ReadU64(mem.Addr(p)+nodeKey) == key {
			m.WriteU64(prev, next)
			return true
		}
		prev = mem.Addr(p) + nodeNext
		p = next
	}
	return false
}

// Len walks the whole table and counts entries (test/checker use).
func (h *HashMap) Len(m Mem) int {
	n := int(m.ReadU64(h.head + hmNBuckets))
	base := mem.Addr(m.ReadU64(h.head + hmBuckets))
	count := 0
	for i := 0; i < n; i++ {
		for p := m.ReadU64(base + mem.Addr(i)*mem.LineSize); p != nilPtr; p = m.ReadU64(mem.Addr(p) + nodeNext) {
			count++
		}
	}
	return count
}

// Keys returns every key (unordered walk; test/checker use).
func (h *HashMap) Keys(m Mem) []uint64 {
	n := int(m.ReadU64(h.head + hmNBuckets))
	base := mem.Addr(m.ReadU64(h.head + hmBuckets))
	var out []uint64
	for i := 0; i < n; i++ {
		for p := m.ReadU64(base + mem.Addr(i)*mem.LineSize); p != nilPtr; p = m.ReadU64(mem.Addr(p) + nodeNext) {
			out = append(out, m.ReadU64(mem.Addr(p)+nodeKey))
		}
	}
	return out
}
