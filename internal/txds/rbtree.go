package txds

import "uhtm/internal/mem"

// RBTree is a classic red-black tree with parent pointers (the PMDK
// rbtree benchmark shape): insert/update, lookup, ordered scan. Layout
// (u64 words):
//
//	header: [root u64]
//	node:   [key][valPtr][left][right][parent][color]  (red=1, black=0)
type RBTree struct {
	head mem.Addr
	al   *mem.Allocator
}

const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40
	rbSize   = 48

	red   = 1
	black = 0
)

// NewRBTree allocates an empty tree.
func NewRBTree(m Mem, al *mem.Allocator) *RBTree {
	t := &RBTree{head: al.Alloc(8, mem.LineSize), al: al}
	m.WriteU64(t.head, nilPtr)
	return t
}

// AttachRBTree re-binds an existing tree by its header address.
func AttachRBTree(head mem.Addr, al *mem.Allocator) *RBTree {
	return &RBTree{head: head, al: al}
}

// Head returns the header address.
func (t *RBTree) Head() mem.Addr { return t.head }

func (t *RBTree) root(m Mem) uint64       { return m.ReadU64(t.head) }
func (t *RBTree) setRoot(m Mem, n uint64) { m.WriteU64(t.head, n) }

func rbF(m Mem, n uint64, off mem.Addr) uint64      { return m.ReadU64(mem.Addr(n) + off) }
func rbSet(m Mem, n uint64, off mem.Addr, v uint64) { m.WriteU64(mem.Addr(n)+off, v) }
func rbColorOf(m Mem, n uint64) uint64 {
	if n == nilPtr {
		return black // nil leaves are black
	}
	return rbF(m, n, rbColor)
}

// Get returns the value for key k, or (nil, false).
func (t *RBTree) Get(m Mem, k uint64) ([]byte, bool) {
	n := t.root(m)
	for n != nilPtr {
		nk := rbF(m, n, rbKey)
		switch {
		case k == nk:
			return readValue(m, mem.Addr(rbF(m, n, rbVal))), true
		case k < nk:
			n = rbF(m, n, rbLeft)
		default:
			n = rbF(m, n, rbRight)
		}
	}
	return nil, false
}

// Put inserts or updates k with value v.
func (t *RBTree) Put(m Mem, k uint64, v []byte) {
	// Standard BST insert.
	parent := nilPtr
	n := t.root(m)
	for n != nilPtr {
		nk := rbF(m, n, rbKey)
		if k == nk {
			vp := mem.Addr(rbF(m, n, rbVal))
			nv := updateValue(m, t.al, vp, v)
			if nv != vp {
				rbSet(m, n, rbVal, uint64(nv))
			}
			return
		}
		parent = n
		if k < nk {
			n = rbF(m, n, rbLeft)
		} else {
			n = rbF(m, n, rbRight)
		}
	}
	node := uint64(t.al.Alloc(rbSize, mem.LineSize))
	rbSet(m, node, rbKey, k)
	rbSet(m, node, rbVal, uint64(writeValue(m, t.al, v)))
	rbSet(m, node, rbLeft, nilPtr)
	rbSet(m, node, rbRight, nilPtr)
	rbSet(m, node, rbParent, parent)
	rbSet(m, node, rbColor, red)
	switch {
	case parent == nilPtr:
		t.setRoot(m, node)
	case k < rbF(m, parent, rbKey):
		rbSet(m, parent, rbLeft, node)
	default:
		rbSet(m, parent, rbRight, node)
	}
	t.fixInsert(m, node)
}

func (t *RBTree) rotateLeft(m Mem, x uint64) {
	y := rbF(m, x, rbRight)
	yl := rbF(m, y, rbLeft)
	rbSet(m, x, rbRight, yl)
	if yl != nilPtr {
		rbSet(m, yl, rbParent, x)
	}
	p := rbF(m, x, rbParent)
	rbSet(m, y, rbParent, p)
	switch {
	case p == nilPtr:
		t.setRoot(m, y)
	case x == rbF(m, p, rbLeft):
		rbSet(m, p, rbLeft, y)
	default:
		rbSet(m, p, rbRight, y)
	}
	rbSet(m, y, rbLeft, x)
	rbSet(m, x, rbParent, y)
}

func (t *RBTree) rotateRight(m Mem, x uint64) {
	y := rbF(m, x, rbLeft)
	yr := rbF(m, y, rbRight)
	rbSet(m, x, rbLeft, yr)
	if yr != nilPtr {
		rbSet(m, yr, rbParent, x)
	}
	p := rbF(m, x, rbParent)
	rbSet(m, y, rbParent, p)
	switch {
	case p == nilPtr:
		t.setRoot(m, y)
	case x == rbF(m, p, rbRight):
		rbSet(m, p, rbRight, y)
	default:
		rbSet(m, p, rbLeft, y)
	}
	rbSet(m, y, rbRight, x)
	rbSet(m, x, rbParent, y)
}

func (t *RBTree) fixInsert(m Mem, z uint64) {
	for {
		p := rbF(m, z, rbParent)
		if p == nilPtr || rbColorOf(m, p) == black {
			break
		}
		g := rbF(m, p, rbParent) // grandparent exists: p is red, root is black
		if p == rbF(m, g, rbLeft) {
			u := rbF(m, g, rbRight)
			if rbColorOf(m, u) == red {
				rbSet(m, p, rbColor, black)
				rbSet(m, u, rbColor, black)
				rbSet(m, g, rbColor, red)
				z = g
				continue
			}
			if z == rbF(m, p, rbRight) {
				z = p
				t.rotateLeft(m, z)
				p = rbF(m, z, rbParent)
				g = rbF(m, p, rbParent)
			}
			rbSet(m, p, rbColor, black)
			rbSet(m, g, rbColor, red)
			t.rotateRight(m, g)
		} else {
			u := rbF(m, g, rbLeft)
			if rbColorOf(m, u) == red {
				rbSet(m, p, rbColor, black)
				rbSet(m, u, rbColor, black)
				rbSet(m, g, rbColor, red)
				z = g
				continue
			}
			if z == rbF(m, p, rbLeft) {
				z = p
				t.rotateRight(m, z)
				p = rbF(m, z, rbParent)
				g = rbF(m, p, rbParent)
			}
			rbSet(m, p, rbColor, black)
			rbSet(m, g, rbColor, red)
			t.rotateLeft(m, g)
		}
	}
	root := t.root(m)
	if rbColorOf(m, root) != black {
		rbSet(m, root, rbColor, black)
	}
}

// Scan visits keys ≥ from ascending until fn returns false; it returns
// the number visited.
func (t *RBTree) Scan(m Mem, from uint64, fn func(k uint64, valAddr mem.Addr) bool) int {
	visited := 0
	t.scan(m, t.root(m), from, fn, &visited)
	return visited
}

func (t *RBTree) scan(m Mem, n uint64, from uint64, fn func(uint64, mem.Addr) bool, visited *int) bool {
	if n == nilPtr {
		return true
	}
	k := rbF(m, n, rbKey)
	if k >= from {
		if !t.scan(m, rbF(m, n, rbLeft), from, fn, visited) {
			return false
		}
		*visited++
		if !fn(k, mem.Addr(rbF(m, n, rbVal))) {
			return false
		}
	}
	return t.scan(m, rbF(m, n, rbRight), from, fn, visited)
}

// Len counts entries (test/checker use).
func (t *RBTree) Len(m Mem) int {
	return t.Scan(m, 0, func(uint64, mem.Addr) bool { return true })
}

// CheckInvariants verifies the red-black properties against m (test
// use): root is black, no red node has a red child, and every
// root-to-nil path has the same black height. It returns the black
// height or panics with a description.
func (t *RBTree) CheckInvariants(m Mem) int {
	root := t.root(m)
	if root != nilPtr && rbColorOf(m, root) != black {
		panic("rbtree: red root")
	}
	return t.checkNode(m, root, 0, ^uint64(0))
}

func (t *RBTree) checkNode(m Mem, n uint64, lo, hi uint64) int {
	if n == nilPtr {
		return 1
	}
	k := rbF(m, n, rbKey)
	if k < lo || k > hi {
		panic("rbtree: BST order violated")
	}
	if rbColorOf(m, n) == red {
		if rbColorOf(m, rbF(m, n, rbLeft)) == red || rbColorOf(m, rbF(m, n, rbRight)) == red {
			panic("rbtree: red node with red child")
		}
	}
	var hiL, loR uint64
	if k > 0 {
		hiL = k - 1
	}
	loR = k + 1
	lh := t.checkNode(m, rbF(m, n, rbLeft), lo, hiL)
	rh := t.checkNode(m, rbF(m, n, rbRight), loR, hi)
	if lh != rh {
		panic("rbtree: black-height mismatch")
	}
	if rbColorOf(m, n) == black {
		return lh + 1
	}
	return lh
}
