package txds

import "uhtm/internal/mem"

// SkipList is a deterministic-height skip list (the PMDK skiplist
// benchmark shape). Its long forward-pointer chases make it the most
// signature-hostile structure in the suite — the paper singles it out as
// the benchmark where false positives cost UHTM the most (Section VI-A).
// Layout (u64 words):
//
//	header: [maxLevel u64][head node]
//	node:   [key][valPtr][level][next×level]
type SkipList struct {
	head mem.Addr // header
	al   *mem.Allocator
}

const (
	slMaxLevel = 16

	slKey   = 0
	slVal   = 8
	slLevel = 16
	slNext  = 24
)

// NewSkipList allocates an empty list.
func NewSkipList(m Mem, al *mem.Allocator) *SkipList {
	s := &SkipList{head: al.Alloc(16, mem.LineSize), al: al}
	hn := al.Alloc(slNext+8*slMaxLevel, mem.LineSize)
	m.WriteU64(s.head, slMaxLevel)
	m.WriteU64(s.head+8, uint64(hn))
	m.WriteU64(hn+slKey, 0)
	m.WriteU64(hn+slVal, nilPtr)
	m.WriteU64(hn+slLevel, slMaxLevel)
	for i := 0; i < slMaxLevel; i++ {
		m.WriteU64(hn+slNext+mem.Addr(i)*8, nilPtr)
	}
	return s
}

// AttachSkipList re-binds an existing list by its header address.
func AttachSkipList(head mem.Addr, al *mem.Allocator) *SkipList {
	return &SkipList{head: head, al: al}
}

// Head returns the header address.
func (s *SkipList) Head() mem.Addr { return s.head }

func (s *SkipList) headNode(m Mem) uint64 { return m.ReadU64(s.head + 8) }

// levelFor derives a deterministic height from the key so behaviour is
// reproducible across runs and retries (hardware randomness would break
// the simulator's determinism guarantees).
func levelFor(k uint64) int {
	h := hashKey(k)
	lvl := 1
	for h&1 == 1 && lvl < slMaxLevel {
		lvl++
		h >>= 1
	}
	return lvl
}

// Get returns the value for key k, or (nil, false).
func (s *SkipList) Get(m Mem, k uint64) ([]byte, bool) {
	n := s.headNode(m)
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := m.ReadU64(mem.Addr(n) + slNext + mem.Addr(lvl)*8)
			if next == nilPtr || m.ReadU64(mem.Addr(next)+slKey) > k {
				break
			}
			n = next
		}
	}
	if n != s.headNode(m) && m.ReadU64(mem.Addr(n)+slKey) == k {
		return readValue(m, mem.Addr(m.ReadU64(mem.Addr(n)+slVal))), true
	}
	return nil, false
}

// Put inserts or updates k with value v.
func (s *SkipList) Put(m Mem, k uint64, v []byte) {
	var update [slMaxLevel]uint64
	n := s.headNode(m)
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := m.ReadU64(mem.Addr(n) + slNext + mem.Addr(lvl)*8)
			if next == nilPtr || m.ReadU64(mem.Addr(next)+slKey) >= k {
				break
			}
			n = next
		}
		update[lvl] = n
	}
	cand := m.ReadU64(mem.Addr(n) + slNext)
	if cand != nilPtr && m.ReadU64(mem.Addr(cand)+slKey) == k {
		vp := mem.Addr(m.ReadU64(mem.Addr(cand) + slVal))
		nv := updateValue(m, s.al, vp, v)
		if nv != vp {
			m.WriteU64(mem.Addr(cand)+slVal, uint64(nv))
		}
		return
	}
	lvl := levelFor(k)
	node := uint64(s.al.Alloc(slNext+8*lvl, mem.LineSize))
	m.WriteU64(mem.Addr(node)+slKey, k)
	m.WriteU64(mem.Addr(node)+slVal, uint64(writeValue(m, s.al, v)))
	m.WriteU64(mem.Addr(node)+slLevel, uint64(lvl))
	for i := 0; i < lvl; i++ {
		prev := update[i]
		m.WriteU64(mem.Addr(node)+slNext+mem.Addr(i)*8, m.ReadU64(mem.Addr(prev)+slNext+mem.Addr(i)*8))
		m.WriteU64(mem.Addr(prev)+slNext+mem.Addr(i)*8, node)
	}
}

// Delete removes key k; it reports whether the key was present.
func (s *SkipList) Delete(m Mem, k uint64) bool {
	var update [slMaxLevel]uint64
	n := s.headNode(m)
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := m.ReadU64(mem.Addr(n) + slNext + mem.Addr(lvl)*8)
			if next == nilPtr || m.ReadU64(mem.Addr(next)+slKey) >= k {
				break
			}
			n = next
		}
		update[lvl] = n
	}
	target := m.ReadU64(mem.Addr(n) + slNext)
	if target == nilPtr || m.ReadU64(mem.Addr(target)+slKey) != k {
		return false
	}
	lvl := int(m.ReadU64(mem.Addr(target) + slLevel))
	for i := 0; i < lvl; i++ {
		prev := update[i]
		if m.ReadU64(mem.Addr(prev)+slNext+mem.Addr(i)*8) == target {
			m.WriteU64(mem.Addr(prev)+slNext+mem.Addr(i)*8,
				m.ReadU64(mem.Addr(target)+slNext+mem.Addr(i)*8))
		}
	}
	return true
}

// Scan visits keys ≥ from ascending (bottom-level walk) until fn returns
// false; it returns the number visited.
func (s *SkipList) Scan(m Mem, from uint64, fn func(k uint64, valAddr mem.Addr) bool) int {
	n := s.headNode(m)
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := m.ReadU64(mem.Addr(n) + slNext + mem.Addr(lvl)*8)
			if next == nilPtr || m.ReadU64(mem.Addr(next)+slKey) >= from {
				break
			}
			n = next
		}
	}
	visited := 0
	for p := m.ReadU64(mem.Addr(n) + slNext); p != nilPtr; p = m.ReadU64(mem.Addr(p) + slNext) {
		visited++
		if !fn(m.ReadU64(mem.Addr(p)+slKey), mem.Addr(m.ReadU64(mem.Addr(p)+slVal))) {
			break
		}
	}
	return visited
}

// Len counts entries (test/checker use).
func (s *SkipList) Len(m Mem) int {
	n := 0
	s.Scan(m, 0, func(uint64, mem.Addr) bool { n++; return true })
	return n
}
