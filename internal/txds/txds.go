// Package txds provides the transactional data structures the paper's
// evaluation uses (Table IV): a chained HashMap, a B-Tree, a Red-Black
// Tree and a SkipList — the PMDK micro-benchmark structures — all living
// *inside the simulated address space*. Every field access goes through
// a Mem accessor, so the same structure code runs transactionally (with
// a *core.Tx), non-transactionally (*core.NTAccess), or directly against
// the store in unit tests.
//
// Persistent instances allocate from the NVM region, volatile ones from
// DRAM; the paper's hybrid key-value stores combine one of each.
package txds

import (
	"uhtm/internal/mem"
)

// Mem is the memory-accessor interface: *core.Tx, *core.NTAccess and
// *mem.Store all satisfy it.
type Mem interface {
	ReadU64(a mem.Addr) uint64
	WriteU64(a mem.Addr, v uint64)
	ReadBytes(a mem.Addr, n int) []byte
	WriteBytes(a mem.Addr, b []byte)
}

// nilPtr is the in-memory null pointer (address 0 is valid DRAM, so a
// sentinel is used instead).
const nilPtr = ^uint64(0)

// hashKey mixes a key for bucket selection (splitmix64 finalizer).
func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

// writeValue allocates and fills a fresh value blob ([len u64][bytes…];
// writing one touches ceil(len/64)+1 lines — the footprint knob of the
// evaluation), returning its address.
func writeValue(m Mem, al *mem.Allocator, v []byte) mem.Addr {
	a := al.Alloc(8+len(v), mem.LineSize)
	m.WriteU64(a, uint64(len(v)))
	if len(v) > 0 {
		m.WriteBytes(a+8, v)
	}
	return a
}

// readValue loads a value blob.
func readValue(m Mem, a mem.Addr) []byte {
	n := m.ReadU64(a)
	if n == 0 {
		return nil
	}
	return m.ReadBytes(a+8, int(n))
}

// updateValue overwrites a value blob in place when the new value fits,
// otherwise allocates a fresh blob; it returns the (possibly new)
// address.
func updateValue(m Mem, al *mem.Allocator, a mem.Addr, v []byte) mem.Addr {
	oldLen := m.ReadU64(a)
	if uint64(len(v)) <= oldLen {
		m.WriteU64(a, uint64(len(v)))
		if len(v) > 0 {
			m.WriteBytes(a+8, v)
		}
		return a
	}
	return writeValue(m, al, v)
}
