package txds

import (
	"bytes"
	"testing"
)

// TestAttachRebindsStructures: the Attach* constructors rebind existing
// structures by header address — the post-recovery path, where the
// application finds its persistent roots again.
func TestAttachRebindsStructures(t *testing.T) {
	st, al := env()

	h := NewHashMap(st, al, 64)
	h.Put(st, 5, v("five"))
	h2 := AttachHashMap(h.Head(), al)
	if got, ok := h2.Get(st, 5); !ok || !bytes.Equal(got, v("five")) {
		t.Error("AttachHashMap lost data")
	}

	b := NewBTree(st, al)
	b.Put(st, 9, v("nine"))
	b2 := AttachBTree(b.Head(), al)
	if got, ok := b2.Get(st, 9); !ok || !bytes.Equal(got, v("nine")) {
		t.Error("AttachBTree lost data")
	}

	r := NewRBTree(st, al)
	r.Put(st, 3, v("three"))
	r2 := AttachRBTree(r.Head(), al)
	if got, ok := r2.Get(st, 3); !ok || !bytes.Equal(got, v("three")) {
		t.Error("AttachRBTree lost data")
	}

	s := NewSkipList(st, al)
	s.Put(st, 7, v("seven"))
	s2 := AttachSkipList(s.Head(), al)
	if got, ok := s2.Get(st, 7); !ok || !bytes.Equal(got, v("seven")) {
		t.Error("AttachSkipList lost data")
	}
}

// TestPutRefPublish: the copy-on-write publish path — value built first,
// pointer spliced second — reads back correctly for inserts and updates.
func TestPutRefPublish(t *testing.T) {
	st, al := env()
	h := NewHashMap(st, al, 16)
	blob1 := BuildValue(st, al, v("first"))
	h.PutRef(st, 1, blob1)
	if got, ok := h.Get(st, 1); !ok || !bytes.Equal(got, v("first")) {
		t.Fatalf("Get after PutRef = %q, %v", got, ok)
	}
	// Update by publishing a fresh blob.
	blob2 := BuildValue(st, al, v("second"))
	h.PutRef(st, 1, blob2)
	if got, _ := h.Get(st, 1); !bytes.Equal(got, v("second")) {
		t.Fatalf("Get after re-publish = %q", got)
	}
	if h.Len(st) != 1 {
		t.Errorf("Len = %d", h.Len(st))
	}
	// Interleaves with regular Put.
	h.Put(st, 1, v("third"))
	if got, _ := h.Get(st, 1); !bytes.Equal(got, v("third")) {
		t.Fatalf("Get after Put-over-ref = %q", got)
	}
}

func TestBadBucketCountPanics(t *testing.T) {
	st, al := env()
	for _, n := range []int{0, -4, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHashMap(%d buckets) did not panic", n)
				}
			}()
			NewHashMap(st, al, n)
		}()
	}
}
