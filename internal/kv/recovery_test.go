package kv

import (
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/txds"
)

// TestEchoCrashRecovery is the application-level durability test: an
// Echo store takes batched updates through durable transactions, the
// machine loses power mid-run, and after redo-log replay the re-attached
// table contains a consistent prefix — every recovered batch is complete
// (batches are transactions, so no partial batch may surface).
func TestEchoCrashRecovery(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	e := NewEcho(m.Store(), dal, nal, 256, 1, 64, 16)
	tableHead := e.Table.Head()
	m.Store().PersistLiveNVM() // initialization durability

	// Master applies batches of 4; each batch writes keys
	// {b*4+1..b*4+4} with the batch number as value. Batch b is only
	// durable if ALL four keys recover.
	eng.Spawn("master", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for b := 0; b < 200; b++ {
			b := b
			c.Run(func(tx *core.Tx) {
				for j := 0; j < 4; j++ {
					e.Table.Put(tx, uint64(b*4+j+1), []byte{byte(b)})
				}
			})
		}
	})
	eng.HaltAt(150 * sim.Microsecond)
	eng.Run()
	if !eng.Halted() {
		t.Skip("workload finished before the injected failure")
	}

	m.Crash()
	st := m.Recover()
	if st.CommittedTx == 0 {
		t.Fatal("nothing recovered; crash landed before any commit")
	}

	// Re-attach the table by its (recovered) header address.
	table := txds.AttachHashMap(tableHead, nal)
	s := m.Store()
	present := map[int]int{} // batch → keys present
	for _, k := range table.Keys(s) {
		present[int((k-1)/4)]++
	}
	for b, n := range present {
		if n != 4 {
			t.Errorf("batch %d recovered partially: %d/4 keys (atomicity violated)", b, n)
		}
	}
	if len(present) == 0 {
		t.Error("no batches recovered")
	}
}

// TestHybridIndexCrashLosesOnlyDRAMIndex: after a crash the NVM table
// survives (via replay) while the DRAM B-Tree index is gone — the
// documented recovery contract: "programmers' responsibility is to place
// data structures in NVM if they are necessary for data recovery". The
// index is rebuildable from the table.
func TestHybridIndexCrashLosesOnlyDRAMIndex(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	h := NewHybridIndex(m.Store(), dal, nal, 64, 1)
	m.Store().PersistLiveNVM()
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		var batch []KV
		for k := uint64(1); k <= 20; k++ {
			batch = append(batch, KV{Key: k, Val: []byte{byte(k)}})
		}
		h.PutBatch(c, 0, batch)
	})
	eng.Run()
	m.Crash()
	m.Recover()
	s := m.Store()
	if got := h.Parts[0].Table.Len(s); got != 20 {
		t.Errorf("NVM table lost data: %d/20 keys", got)
	}
	// Rebuild the volatile index from the recovered table — the
	// AutoPersist/Go-pmem style bootstrap.
	rebuilt := txds.NewBTree(s, dal)
	for _, k := range h.Parts[0].Table.Keys(s) {
		rebuilt.Put(s, k, nil)
	}
	if rebuilt.Len(s) != 20 {
		t.Errorf("rebuilt index has %d keys", rebuilt.Len(s))
	}
}
