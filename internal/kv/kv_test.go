package kv

import (
	"bytes"
	"fmt"
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

func testConfig() mem.Config {
	c := mem.DefaultConfig()
	c.Cores = 4
	c.L1Size = 2 << 10
	c.LLCSize = 64 << 10
	c.DRAMCacheSize = 128 << 10
	return c
}

func newMachine() (*sim.Engine, *core.Machine) {
	eng := sim.NewEngine(3)
	return eng, core.NewMachine(eng, testConfig(), core.DefaultOptions())
}

func TestOpRing(t *testing.T) {
	st := mem.NewStore(mem.DefaultConfig())
	al := mem.NewAllocator(mem.DRAM)
	r := NewOpRing(st, al, 4, 32)
	if _, ok := r.TryPop(st); ok {
		t.Error("pop from empty ring")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(st, KV{Key: uint64(i), Val: []byte(fmt.Sprintf("v%d", i))}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(st, KV{Key: 9}) {
		t.Error("push into full ring succeeded")
	}
	if r.Len(st) != 4 {
		t.Errorf("Len = %d", r.Len(st))
	}
	for i := 0; i < 4; i++ {
		p, ok := r.TryPop(st)
		if !ok || p.Key != uint64(i) || !bytes.Equal(p.Val, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("pop %d = %+v ok=%v", i, p, ok)
		}
	}
	// Wrap-around.
	for round := 0; round < 3; round++ {
		r.TryPush(st, KV{Key: 100 + uint64(round)})
		p, ok := r.TryPop(st)
		if !ok || p.Key != 100+uint64(round) {
			t.Fatalf("wrap round %d: %+v", round, p)
		}
	}
}

func TestOpRingOversizePanics(t *testing.T) {
	st := mem.NewStore(mem.DefaultConfig())
	al := mem.NewAllocator(mem.DRAM)
	r := NewOpRing(st, al, 2, 8)
	defer func() {
		if recover() == nil {
			t.Error("oversize value did not panic")
		}
	}()
	r.TryPush(st, KV{Key: 1, Val: make([]byte, 9)})
}

// TestHybridIndexConsistency: concurrent batched puts; afterwards the
// DRAM index and the NVM table must agree exactly.
func TestHybridIndexConsistency(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	h := NewHybridIndex(m.Store(), dal, nal, 64, 2)
	for i := 0; i < 2; i++ {
		id := i
		eng.Spawn("put", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			for b := 0; b < 10; b++ {
				var batch []KV
				for j := 0; j < 5; j++ {
					k := uint64(id*1000 + b*10 + j + 1)
					batch = append(batch, KV{Key: k, Val: []byte(fmt.Sprintf("v%d", k))})
				}
				h.PutBatch(c, id, batch)
			}
		})
	}
	eng.Run()
	// Index and table agree (checked against the raw store).
	st := m.Store()
	totalIdx, totalTbl := 0, 0
	for _, p := range h.Parts {
		idxKeys := map[uint64]bool{}
		p.Index.Scan(st, 0, func(k uint64, _ mem.Addr) bool { idxKeys[k] = true; return true })
		tblKeys := p.Table.Keys(st)
		totalIdx += len(idxKeys)
		totalTbl += len(tblKeys)
		for _, k := range tblKeys {
			if !idxKeys[k] {
				t.Errorf("key %d in table but not index", k)
			}
		}
	}
	if totalIdx != 100 || totalTbl != 100 {
		t.Fatalf("index=%d table=%d, want 100 each", totalIdx, totalTbl)
	}
}

// TestHybridIndexScan: scans see inserted keys in order through the
// DRAM index.
func TestHybridIndexScan(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	h := NewHybridIndex(m.Store(), dal, nal, 64, 1)
	var got []uint64
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		var batch []KV
		for k := uint64(1); k <= 50; k++ {
			batch = append(batch, KV{Key: k, Val: []byte("x")})
		}
		h.PutBatch(c, 0, batch)
		got = h.Scan(c, 0, 10, 20)
	})
	eng.Run()
	if len(got) != 20 || got[0] != 10 || got[19] != 29 {
		t.Errorf("scan = %v", got)
	}
}

// TestDualConvergence: after the backend drains the cross-referencing
// log, front and back maps hold the same data.
func TestDualConvergence(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	d := NewDual(m.Store(), dal, nal, 64, 1, 256, 32)
	done := false
	eng.Spawn("front", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for b := 0; b < 20; b++ {
			var batch []KV
			for j := 0; j < 5; j++ {
				k := uint64(b*5 + j + 1)
				batch = append(batch, KV{Key: k, Val: []byte(fmt.Sprintf("d%d", k))})
			}
			if n := d.FrontPut(c, 0, batch); n != 0 {
				t.Errorf("dropped %d log entries", n)
			}
		}
		done = true
	})
	eng.Spawn("back", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for {
			n := d.BackendStep(c, 0, 8)
			if n == 0 {
				if done && d.Parts[0].XLog.Len(c.NT()) == 0 {
					return
				}
				th.Advance(sim.Microsecond)
				th.Sync()
			}
		}
	})
	eng.Run()
	st := m.Store()
	if f, b := d.Parts[0].Front.Len(st), d.Parts[0].Back.Len(st); f != 100 || b != 100 {
		t.Fatalf("front=%d back=%d", f, b)
	}
	for k := uint64(1); k <= 100; k++ {
		fv, _ := d.Parts[0].Front.Get(st, k)
		bv, ok := d.Parts[0].Back.Get(st, k)
		if !ok || !bytes.Equal(fv, bv) {
			t.Fatalf("key %d: front %q back %q ok=%v", k, fv, bv, ok)
		}
	}
}

// TestEchoMasterClients: two clients stream batches through rings; the
// master applies them transactionally; the table ends complete.
func TestEchoMasterClients(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	e := NewEcho(m.Store(), dal, nal, 64, 2, 128, 32)
	clientsDone := 0
	for i := 0; i < 2; i++ {
		id := i
		eng.Spawn("client", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			for b := 0; b < 10; b++ {
				var batch []KV
				for j := 0; j < 4; j++ {
					k := uint64(id*1000 + b*4 + j + 1)
					batch = append(batch, KV{Key: k, Val: []byte("e")})
				}
				for e.ClientSend(c, id, batch) > 0 {
					th.Advance(sim.Microsecond)
					th.Sync()
				}
			}
			clientsDone++
		})
	}
	eng.Spawn("master", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for {
			total := 0
			for id := 0; id < 2; id++ {
				total += e.MasterStep(c, id, 16)
			}
			if total == 0 {
				if clientsDone == 2 && e.Rings[0].Len(c.NT()) == 0 && e.Rings[1].Len(c.NT()) == 0 {
					return
				}
				th.Advance(sim.Microsecond)
				th.Sync()
			}
		}
	})
	eng.Run()
	if n := e.Table.Len(m.Store()); n != 80 {
		t.Errorf("table has %d entries, want 80", n)
	}
}

// TestEchoReadOnlyBatch: a read-only batch finds exactly the inserted
// keys.
func TestEchoReadOnlyBatch(t *testing.T) {
	eng, m := newMachine()
	dal, nal := mem.NewAllocator(mem.DRAM), mem.NewAllocator(mem.NVM)
	e := NewEcho(m.Store(), dal, nal, 64, 1, 64, 32)
	var found int
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *core.Tx) {
			for k := uint64(1); k <= 30; k++ {
				e.Table.Put(tx, k, []byte("r"))
			}
		})
		keys := []uint64{1, 5, 30, 99, 100}
		found = e.ReadOnlyBatch(c, keys)
	})
	eng.Run()
	if found != 3 {
		t.Errorf("found = %d, want 3", found)
	}
}
