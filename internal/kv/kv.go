// Package kv implements the three key-value store workloads of the
// paper's evaluation (Table IV):
//
//   - HybridIndex — HiKV-style [63]: a DRAM B-Tree index for scans plus
//     an NVM HashMap for point operations, updated atomically in one
//     durable transaction. The canonical "DRAM and NVM data in one
//     transaction" workload.
//   - Dual — cross-referencing-log style [23]: identical HashMaps in
//     DRAM (foreground) and NVM (background) linked by an
//     out-of-transaction log ring.
//   - Echo — WHISPER's Echo [5]: a master thread owning a persistent
//     hash table, client threads batching updates through rings, plus
//     the long-running read-only get batches of Section VI-B.
package kv

import (
	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/txds"
)

// KV is one key-value pair in flight.
type KV struct {
	Key uint64
	Val []byte
}

// OpRing is a fixed-slot ring buffer in simulated DRAM used for
// out-of-transaction communication between threads (the
// cross-referencing log of Dual, the client→master queues of Echo).
// Layout: [head u64][tail u64][slots: [key u64][len u64][bytes maxVal]].
type OpRing struct {
	base    mem.Addr
	slots   int
	slotCap int
}

const ringHdr = 16

// NewOpRing allocates a ring with the given slot count and max value
// size.
func NewOpRing(m txds.Mem, al *mem.Allocator, slots, maxVal int) *OpRing {
	r := &OpRing{slotCap: maxVal, slots: slots}
	r.base = al.Alloc(ringHdr+slots*(16+maxVal), mem.LineSize)
	m.WriteU64(r.base, 0)
	m.WriteU64(r.base+8, 0)
	return r
}

func (r *OpRing) slotAddr(i uint64) mem.Addr {
	return r.base + ringHdr + mem.Addr(int(i%uint64(r.slots))*(16+r.slotCap))
}

// TryPush enqueues one pair; it reports false when the ring is full.
func (r *OpRing) TryPush(m txds.Mem, p KV) bool {
	head := m.ReadU64(r.base)
	tail := m.ReadU64(r.base + 8)
	if head-tail >= uint64(r.slots) {
		return false
	}
	if len(p.Val) > r.slotCap {
		panic("kv: value exceeds ring slot capacity")
	}
	s := r.slotAddr(head)
	m.WriteU64(s, p.Key)
	m.WriteU64(s+8, uint64(len(p.Val)))
	if len(p.Val) > 0 {
		m.WriteBytes(s+16, p.Val)
	}
	m.WriteU64(r.base, head+1)
	return true
}

// TryPop dequeues one pair; ok is false when the ring is empty.
func (r *OpRing) TryPop(m txds.Mem) (p KV, ok bool) {
	head := m.ReadU64(r.base)
	tail := m.ReadU64(r.base + 8)
	if head == tail {
		return KV{}, false
	}
	s := r.slotAddr(tail)
	p.Key = m.ReadU64(s)
	n := m.ReadU64(s + 8)
	if n > 0 {
		p.Val = m.ReadBytes(s+16, int(n))
	}
	m.WriteU64(r.base+8, tail+1)
	return p, true
}

// Len returns the number of queued pairs.
func (r *OpRing) Len(m txds.Mem) int {
	return int(m.ReadU64(r.base) - m.ReadU64(r.base+8))
}

// HybridPart is one partition of the HiKV-style store: a DRAM B-Tree
// index for scans and an NVM HashMap for point operations.
type HybridPart struct {
	Index *txds.BTree   // DRAM
	Table *txds.HashMap // NVM
}

// HybridIndex is the HiKV-style store. Following HiKV's design, the
// store is partitioned (one partition per serving thread), so true
// conflicts between serving threads are rare and the interesting HTM
// effects — overflows and signature false positives — dominate, as in
// the paper's Figure 9a discussion.
type HybridIndex struct {
	Parts []HybridPart
}

// NewHybridIndex builds the store with parts partitions.
func NewHybridIndex(setup txds.Mem, dal, nal *mem.Allocator, buckets, parts int) *HybridIndex {
	h := &HybridIndex{}
	for i := 0; i < parts; i++ {
		h.Parts = append(h.Parts, HybridPart{
			Index: txds.NewBTree(setup, dal),
			Table: txds.NewHashMap(setup, nal, buckets),
		})
	}
	return h
}

// PutBatch inserts/updates all pairs into partition part in one
// transaction, touching both the DRAM index and the NVM table — the
// transaction that must abort or commit them consistently (Fig. 1 of
// the paper).
func (h *HybridIndex) PutBatch(c *core.Ctx, part int, batch []KV) {
	p := h.Parts[part]
	c.Run(func(tx *core.Tx) {
		for _, kvp := range batch {
			p.Table.Put(tx, kvp.Key, kvp.Val)
			p.Index.Put(tx, kvp.Key, nil) // index entry: key presence for scans
		}
	})
}

// Get returns the value for key from partition part in one transaction.
func (h *HybridIndex) Get(c *core.Ctx, part int, key uint64) (val []byte, found bool) {
	c.Run(func(tx *core.Tx) {
		val, found = h.Parts[part].Table.Get(tx, key)
	})
	return val, found
}

// Scan walks up to n keys starting at from via partition part's DRAM
// index, fetching values from the NVM table, in one read-only
// transaction.
func (h *HybridIndex) Scan(c *core.Ctx, part int, from uint64, n int) (keys []uint64) {
	p := h.Parts[part]
	c.Run(func(tx *core.Tx) {
		keys = keys[:0]
		p.Index.Scan(tx, from, func(k uint64, _ mem.Addr) bool {
			if _, ok := p.Table.Get(tx, k); ok {
				keys = append(keys, k)
			}
			return len(keys) < n
		})
	})
	return keys
}

// DualPart is one shard of the cross-referencing-log store: a DRAM
// foreground map, an NVM background map, and the log ring that links
// them.
type DualPart struct {
	Front *txds.HashMap // DRAM
	Back  *txds.HashMap // NVM
	XLog  *OpRing       // DRAM, non-transactional
}

// Dual is the cross-referencing-log store [23], sharded so each
// foreground thread serves its own partition and each background thread
// drains the matching log — the out-of-transaction communication that
// gives Dual its low aggregated transactional footprint (Section VI-C).
type Dual struct {
	Parts []DualPart
}

// NewDual builds the store with parts shards; logSlots and maxVal size
// each cross-referencing log.
func NewDual(setup txds.Mem, dal, nal *mem.Allocator, buckets, parts, logSlots, maxVal int) *Dual {
	d := &Dual{}
	for i := 0; i < parts; i++ {
		d.Parts = append(d.Parts, DualPart{
			Front: txds.NewHashMap(setup, dal, buckets),
			Back:  txds.NewHashMap(setup, nal, buckets),
			XLog:  NewOpRing(setup, dal, logSlots, maxVal),
		})
	}
	return d
}

// FrontPut applies a batch to shard part's foreground DRAM map in one
// transaction and then publishes the pairs on the cross-referencing log
// outside any transaction. It reports how many log entries could not be
// queued (backend too slow).
func (d *Dual) FrontPut(c *core.Ctx, part int, batch []KV) (dropped int) {
	sh := d.Parts[part]
	c.Run(func(tx *core.Tx) {
		for _, p := range batch {
			sh.Front.Put(tx, p.Key, p.Val)
		}
	})
	nt := c.NT()
	for _, p := range batch {
		if !sh.XLog.TryPush(nt, p) {
			dropped++
		}
	}
	return dropped
}

// FrontGet serves a read from shard part's foreground map in one
// transaction.
func (d *Dual) FrontGet(c *core.Ctx, part int, key uint64) (val []byte, found bool) {
	c.Run(func(tx *core.Tx) {
		val, found = d.Parts[part].Front.Get(tx, key)
	})
	return val, found
}

// BackendStep drains up to max log entries from shard part and applies
// them to its NVM background map in one durable transaction. It returns
// the number applied.
func (d *Dual) BackendStep(c *core.Ctx, part, max int) int {
	sh := d.Parts[part]
	nt := c.NT()
	var pending []KV
	for len(pending) < max {
		p, ok := sh.XLog.TryPop(nt)
		if !ok {
			break
		}
		pending = append(pending, p)
	}
	if len(pending) == 0 {
		return 0
	}
	c.Run(func(tx *core.Tx) {
		for _, p := range pending {
			sh.Back.Put(tx, p.Key, p.Val)
		}
	})
	return len(pending)
}

// Echo is the WHISPER Echo store: clients enqueue batched updates on
// per-client rings; the master applies one client batch per durable
// transaction against the persistent NVM hash table.
type Echo struct {
	Table *txds.HashMap // NVM
	Rings []*OpRing     // one per client, DRAM
}

// NewEcho builds the store for nClients clients.
func NewEcho(setup txds.Mem, dal, nal *mem.Allocator, buckets, nClients, ringSlots, maxVal int) *Echo {
	e := &Echo{Table: txds.NewHashMap(setup, nal, buckets)}
	for i := 0; i < nClients; i++ {
		e.Rings = append(e.Rings, NewOpRing(setup, dal, ringSlots, maxVal))
	}
	return e
}

// ClientSend enqueues a batch on client id's ring (out of transaction),
// returning how many entries did not fit.
func (e *Echo) ClientSend(c *core.Ctx, id int, batch []KV) (dropped int) {
	nt := c.NT()
	for _, p := range batch {
		if !e.Rings[id].TryPush(nt, p) {
			dropped++
		}
	}
	return dropped
}

// MasterStep drains up to max updates from one client ring and applies
// them in a single durable transaction; it returns the number applied.
func (e *Echo) MasterStep(c *core.Ctx, id, max int) int {
	nt := c.NT()
	var pending []KV
	for len(pending) < max {
		p, ok := e.Rings[id].TryPop(nt)
		if !ok {
			break
		}
		pending = append(pending, p)
	}
	if len(pending) == 0 {
		return 0
	}
	c.Run(func(tx *core.Tx) {
		for _, p := range pending {
			e.Table.Put(tx, p.Key, p.Val)
		}
	})
	return len(pending)
}

// ReadOnlyBatch performs one long-running read-only transaction getting
// every listed key — the Section VI-B workload whose footprint (8–32 MB)
// dwarfs any on-chip cache.
func (e *Echo) ReadOnlyBatch(c *core.Ctx, keys []uint64) (found int) {
	c.Run(func(tx *core.Tx) {
		found = 0
		for _, k := range keys {
			if _, ok := e.Table.Get(tx, k); ok {
				found++
			}
		}
	})
	return found
}
