package crash

import (
	"reflect"
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/mem"
)

// requiredPoints is the full set of injection points the small workload
// must reach: every step of the commit, abort and reclamation protocols
// plus the log-append and per-line persist points beneath them. The
// exhaustive sweep is only meaningful if all of them are visited.
var requiredPoints = []string{
	core.PointCommitBegin,
	core.PointCommitRecord,
	core.PointCommitMark,
	core.PointCommitFlush,
	core.PointCommitDRAM,
	core.PointCommitCleanup,
	core.PointAbortBegin,
	core.PointAbortUndo,
	core.PointAbortMark,
	core.PointAbortDone,
	core.PointReclaimBegin,
	core.PointReclaimImage,
	core.PointReclaimDrain,
	core.PointReclaimCkpt,
	core.PointReclaimRings,
	"wal.redo.append.record",
	"wal.redo.append.ctrl",
	"wal.redo.reclaim.ctrl",
	"wal.undo.append.record",
	"wal.undo.append.ctrl",
	"wal.undo.reclaim.ctrl",
	mem.PointPersistLine,
}

func TestInjectorCounting(t *testing.T) {
	in := NewCounter()
	in.Hit("a")
	in.Hit("b")
	in.Hit("a")
	if in.Fired() {
		t.Error("counting injector fired")
	}
	if got := in.Hits()["a"]; got != 2 {
		t.Errorf("hits[a] = %d, want 2", got)
	}
	if got := in.Points(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Points = %v", got)
	}
	injs := enumerate(in.Hits())
	want := []Injection{{"a", 1}, {"a", 2}, {"b", 1}}
	if !reflect.DeepEqual(injs, want) {
		t.Errorf("enumerate = %v, want %v", injs, want)
	}
}

func TestInjectorArming(t *testing.T) {
	in := Arm(Injection{Point: "p", Visit: 2})
	halted := false
	in.halt = func() { halted = true }
	in.Hit("p")
	if in.Fired() || halted {
		t.Fatal("fired on visit 1, armed for visit 2")
	}
	in.Hit("q")
	in.Hit("p")
	if !in.Fired() || !halted {
		t.Fatal("did not fire on visit 2")
	}
	// Disarmed after firing: further hits are ignored.
	in.Hit("p")
	if in.Hits()["p"] != 2 {
		t.Errorf("hits[p] = %d after disarm, want 2", in.Hits()["p"])
	}
}

// TestExhaustiveSmallSweep is the acceptance test for the framework:
// every (point, visit) pair of the small workload is injected, and
// recovery must satisfy the committed-prefix oracle at all of them.
func TestExhaustiveSmallSweep(t *testing.T) {
	w := SmallWorkload()
	injs, hits, err := Enumerate(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range requiredPoints {
		if hits[p] == 0 {
			t.Errorf("required injection point %s never visited", p)
		}
	}
	fails := 0
	for _, inj := range injs {
		o := RunInjection(w, inj)
		if !o.OK() {
			fails++
			if fails <= 10 {
				t.Errorf("%s visit %d: %s", inj.Point, inj.Visit, o.Verdict)
			}
		}
	}
	if fails > 0 {
		t.Errorf("%d/%d injections violated recovery invariants", fails, len(injs))
	}
	t.Logf("verified %d injections across %d points", len(injs), len(hits))
}

// TestSampledLargeSweep checks the seeded-random mode on the large
// workload: a deterministic sample of its thousands of injection points.
func TestSampledLargeSweep(t *testing.T) {
	w := LargeWorkload()
	injs, hits, err := Enumerate(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) < 1000 {
		t.Fatalf("large workload enumerated only %d injections", len(injs))
	}
	for _, p := range requiredPoints {
		if hits[p] == 0 {
			t.Errorf("required injection point %s never visited", p)
		}
	}
	n := 24
	if testing.Short() {
		n = 6
	}
	for _, inj := range Sample(injs, n, 1) {
		if o := RunInjection(w, inj); !o.OK() {
			t.Errorf("%s visit %d: %s", inj.Point, inj.Visit, o.Verdict)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	injs := enumerate(map[string]int{"a": 5, "b": 5, "c": 5})
	s1 := Sample(injs, 4, 9)
	s2 := Sample(injs, 4, 9)
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("same seed, different samples: %v vs %v", s1, s2)
	}
	if len(s1) != 4 {
		t.Errorf("sample size = %d, want 4", len(s1))
	}
	all := Sample(injs, 100, 9)
	if !reflect.DeepEqual(all, injs) {
		t.Error("oversized sample should return all injections")
	}
}

// TestInjectionDeterministic: the same injection must produce the same
// crash state (virtual time, replay shape, verdict) on every run — the
// property that lets sweeps fan out across workers.
func TestInjectionDeterministic(t *testing.T) {
	w := SmallWorkload()
	inj := Injection{Point: core.PointCommitFlush, Visit: 7}
	a := RunInjection(w, inj)
	b := RunInjection(w, inj)
	if a.Verdict != b.Verdict || a.Elapsed != b.Elapsed || a.Replay != b.Replay {
		t.Errorf("nondeterministic injection: %+v vs %+v", a, b)
	}
	if !a.OK() {
		t.Errorf("verdict: %s", a.Verdict)
	}
}
