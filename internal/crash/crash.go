// Package crash is the crash-point fault-injection framework: it
// enumerates the named injection points threaded through the simulator's
// durability paths (internal/wal log appends and reclamation,
// internal/core's parallel DRAM-undo/NVM-redo commit and abort
// protocols, internal/mem's per-line durable updates), kills a
// simulation at any chosen point via sim.Engine.HaltNow, runs
// post-crash recovery, and checks the recovered NVM image against a
// committed-prefix oracle computed independently of the recovery code.
//
// The invariants verified at every injection (see RECOVERY.md):
//
//  1. Committed-prefix equality: the recovered durable NVM state equals
//     baseline + the writes of exactly the transactions whose commit
//     records were durable at the crash (applied in commit/LSN order),
//     no more and no less.
//  2. Atomicity: no transaction is ever partially applied — torn or
//     truncated log records are detected (record checksums) and
//     skipped, and write records without a durable commit mark are
//     discarded.
//  3. Durability: every transaction acknowledged committed before the
//     crash survives recovery.
//  4. DRAM volatility: the DRAM side (undo logs, DRAM cache, DRAM data)
//     is fully discarded; no redo record ever references DRAM.
//
// Injection points are named <package>.<protocol>.<step> (e.g.
// core.commit.mark, wal.redo.append.record, mem.persist.line). A sweep
// first runs the workload once with a counting injector to discover
// every point and its visit count, then replays the workload once per
// (point, visit) pair — exhaustively for small workloads, seeded-random
// sampling for large ones. Each replay is a self-contained sim.Engine
// world, so sweeps fan out across the internal/harness worker pool with
// deterministic results at any parallelism.
package crash

import "sort"

// Injection identifies one crash to inject: the simulation is killed at
// the Visit-th time (1-based) the named point is reached.
type Injection struct {
	Point string
	Visit int
}

// Injector is the hook installed at every instrumented protocol step
// (via Machine.SetCrashpoint). In counting mode it only tallies visits;
// armed, it halts the engine at the configured (point, visit).
type Injector struct {
	point    string // armed point ("" = counting only)
	visit    int    // 1-based visit to crash at
	halt     func() // kills the simulation (sim.Engine.HaltNow)
	fired    bool
	disarmed bool
	hits     map[string]int
}

// NewCounter returns an injector that only counts visits (the
// enumeration pass of a sweep).
func NewCounter() *Injector {
	return &Injector{hits: make(map[string]int)}
}

// Arm returns an injector that halts at the given injection. The halt
// function is bound later, when the engine exists (see Workload runs).
func Arm(inj Injection) *Injector {
	return &Injector{point: inj.Point, visit: inj.Visit, hits: make(map[string]int)}
}

// Hit records one visit of the named point and, when armed for exactly
// this visit, halts the simulation. It is the func(string) installed as
// the crashpoint hook.
func (in *Injector) Hit(point string) {
	if in.disarmed {
		return
	}
	in.hits[point]++
	if !in.fired && in.point == point && in.hits[point] == in.visit {
		in.fired = true
		in.disarmed = true
		if in.halt != nil {
			in.halt()
		}
	}
}

// SetHalt binds the function Hit fires when the armed (point, visit) is
// reached — normally the owning engine's HaltNow, bound once the engine
// exists. Multi-engine sweeps (internal/shard) bind a different halt per
// shard while sharing one injector.
func (in *Injector) SetHalt(f func()) { in.halt = f }

// Fired reports whether the armed crash was injected.
func (in *Injector) Fired() bool { return in.fired }

// Disarm stops all counting and firing — called before recovery runs,
// so the recovery path's own persists don't re-trigger.
func (in *Injector) Disarm() { in.disarmed = true }

// Hits returns the visit count per point (counting mode).
func (in *Injector) Hits() map[string]int { return in.hits }

// Points returns the visited point names in sorted order.
func (in *Injector) Points() []string {
	out := make([]string, 0, len(in.hits))
	for p := range in.hits {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// EnumerateHits expands a visit-count map into the exhaustive injection
// list: one entry per (point, visit) pair, points sorted, visits
// ascending. It is the enumeration step of a sweep, exported for sweeps
// that assemble their own counts (internal/shard merges per-shard maps).
func EnumerateHits(hits map[string]int) []Injection { return enumerate(hits) }

// Enumerate expands visit counts into the exhaustive injection list:
// one entry per (point, visit) pair, points sorted, visits ascending.
func enumerate(hits map[string]int) []Injection {
	points := make([]string, 0, len(hits))
	for p := range hits {
		points = append(points, p)
	}
	sort.Strings(points)
	var out []Injection
	for _, p := range points {
		for k := 1; k <= hits[p]; k++ {
			out = append(out, Injection{Point: p, Visit: k})
		}
	}
	return out
}
