package crash

import (
	"fmt"
	"math/rand"
	"sort"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/wal"
)

// Workload parameterizes one crash-sweep workload: a deterministic mix
// of durable transactions over shared NVM and DRAM line pools, sized so
// that write sets overflow the (deliberately tiny) cache hierarchy —
// exercising the undo log, the DRAM cache and the slow path — and so
// that overlapping line picks produce conflicts and aborts. The same
// Workload value always produces the same simulation, which is what
// lets an enumeration pass predict the injection points of every replay.
type Workload struct {
	Name            string
	Threads         int
	TxPerThread     int
	NVMLines        int // shared NVM data pool (prepopulated, durable baseline)
	DRAMLines       int // shared DRAM data pool
	NVMWritesPerTx  int
	DRAMWritesPerTx int
	ReadsPerTx      int
	Seed            int64
	// ReclaimMid makes thread 0 run a full log-reclamation pass halfway
	// through its transactions, so the sweep also lands crashes inside
	// ReclaimLogs (in-place image persists, ring reclamation).
	ReclaimMid bool
}

// SmallWorkload is the exhaustive-sweep shape: every (point, visit)
// pair is injected — a few hundred replays.
func SmallWorkload() Workload {
	return Workload{
		Name:            "crash-small",
		Threads:         2,
		TxPerThread:     5,
		NVMLines:        10,
		DRAMLines:       8,
		NVMWritesPerTx:  4,
		DRAMWritesPerTx: 3,
		ReadsPerTx:      2,
		Seed:            42,
		ReclaimMid:      true,
	}
}

// LargeWorkload is the sampled-sweep shape: tens of thousands of
// injection points, of which a seeded-random subset is injected.
func LargeWorkload() Workload {
	return Workload{
		Name:            "crash-large",
		Threads:         4,
		TxPerThread:     30,
		NVMLines:        64,
		DRAMLines:       48,
		NVMWritesPerTx:  6,
		DRAMWritesPerTx: 4,
		ReadsPerTx:      3,
		Seed:            42,
		ReclaimMid:      true,
	}
}

// geometry shrinks the Table III machine so transactional footprints
// overflow on-chip capacity within a handful of writes.
func (w Workload) geometry() mem.Config {
	cfg := mem.DefaultConfig()
	cfg.Cores = w.Threads
	cfg.L1Size = 8 * mem.LineSize // 8 lines: L1 spills immediately
	cfg.L1Ways = 2
	cfg.LLCSize = 8 * mem.LineSize // 8 lines: LLC evicts live tx lines to undo log / DRAM cache
	cfg.LLCWays = 4
	cfg.DRAMCacheSize = 64 * mem.LineSize
	cfg.DRAMCacheWays = 4
	return cfg
}

// pick chooses a pool index for write i of transaction k on thread t —
// a fixed mixing function, so retried attempts touch the same lines and
// different threads overlap often enough to conflict.
func pick(t, k, i, n int) int {
	return ((t*131+k*17+i*7+(t^k)*3)%n + n) % n
}

// runState is one built simulation plus the ground truth the oracle
// needs: the post-setup durable baseline, every attempt's intended NVM
// writes (keyed by hardware transaction ID), and the IDs of
// transactions whose commit was acknowledged to the workload.
type runState struct {
	eng      *sim.Engine
	m        *core.Machine
	nvmPool  []mem.Addr
	dramPool []mem.Addr
	baseline map[mem.Addr]mem.Line
	intents  map[uint64]map[mem.Addr]uint64 // txID → final value per NVM line
	acked    []uint64
}

// build constructs the engine, machine, pools and threads, and installs
// the injector (which may be counting-only). Run the returned state's
// engine to execute the workload.
func (w Workload) build(in *Injector) *runState {
	eng := sim.NewEngine(w.Seed)
	opts := core.DefaultOptions()
	opts.TrackCommits = true
	m := core.NewMachine(eng, w.geometry(), opts)
	if in != nil {
		in.halt = eng.HaltNow
		m.SetCrashpoint(in.Hit)
	}
	st := &runState{
		eng:     eng,
		m:       m,
		intents: make(map[uint64]map[mem.Addr]uint64),
	}
	nvmAl := mem.NewAllocator(mem.NVM)
	dramAl := mem.NewAllocator(mem.DRAM)
	for i := 0; i < w.NVMLines; i++ {
		la := nvmAl.AllocLines(1)
		m.Store().WriteU64(la, 0xA000+uint64(i))
		st.nvmPool = append(st.nvmPool, la)
	}
	for i := 0; i < w.DRAMLines; i++ {
		st.dramPool = append(st.dramPool, dramAl.AllocLines(1))
	}
	// Non-transactional setup is durable before any transaction runs —
	// the formatted-heap state crash recovery falls back to.
	m.Store().PersistLiveNVM()
	st.baseline = m.Store().SnapshotDurable()
	for t := 0; t < w.Threads; t++ {
		t := t
		eng.Spawn(fmt.Sprintf("crash-w%d", t), func(th *sim.Thread) {
			w.thread(st, th, t)
		})
	}
	return st
}

// thread is one worker's body: TxPerThread durable transactions, each
// recording its intended writes before committing.
func (w Workload) thread(st *runState, th *sim.Thread, t int) {
	c := st.m.NewCtx(th, 0)
	for k := 0; k < w.TxPerThread; k++ {
		// Three passes, not one: each checkpoint keeps its predecessor
		// as the torn-write fallback and truncates the group before
		// that, so only the third pass actually reclaims checkpoint-ring
		// space — the sweep needs it to land crashes in the ring's own
		// truncation (wal.ckpt.reclaim.ctrl).
		if w.ReclaimMid && t == 0 &&
			(k == w.TxPerThread/4 || k == w.TxPerThread/2 || k == 3*w.TxPerThread/4) {
			st.m.ReclaimLogs()
		}
		var id uint64
		c.Run(func(tx *core.Tx) {
			id = tx.ID()
			writes := make(map[mem.Addr]uint64, w.NVMWritesPerTx)
			dram := func() {
				for i := 0; i < w.DRAMWritesPerTx; i++ {
					la := st.dramPool[pick(t, k, i, len(st.dramPool))]
					tx.WriteU64(la, id<<16|uint64(0x8000+i))
				}
			}
			nvm := func() {
				for i := 0; i < w.ReadsPerTx; i++ {
					tx.ReadU64(st.nvmPool[pick(t, k, i+23, len(st.nvmPool))])
				}
				for i := 0; i < w.NVMWritesPerTx; i++ {
					la := st.nvmPool[pick(t, k, i, len(st.nvmPool))]
					v := id<<16 | uint64(i+1)
					tx.WriteU64(la, v)
					writes[la] = v
				}
			}
			// Even threads write DRAM first, so the later NVM traffic
			// evicts those lines from the tiny LLC while the transaction
			// is live (undo-log wal.undo.* points); odd threads write NVM
			// first, so conflict aborts land after redo state exists
			// (core.abort.mark).
			if t%2 == 0 {
				dram()
				nvm()
			} else {
				nvm()
				dram()
			}
			// Recorded before the commit protocol starts, so a crash
			// anywhere inside commit finds the intent on file.
			st.intents[id] = writes
		})
		st.acked = append(st.acked, id)
	}
}

// Enumerate runs the workload once with a counting injector and returns
// the exhaustive injection list plus the per-point visit counts. The
// run must complete (no crash) with every transaction acknowledged.
func Enumerate(w Workload) ([]Injection, map[string]int, error) {
	in := NewCounter()
	st := w.build(in)
	st.eng.Run()
	if st.eng.Halted() {
		return nil, nil, fmt.Errorf("crash: enumeration run halted unexpectedly")
	}
	if got, want := len(st.acked), w.Threads*w.TxPerThread; got != want {
		return nil, nil, fmt.Errorf("crash: enumeration run acked %d txs, want %d", got, want)
	}
	if len(in.Hits()) == 0 {
		return nil, nil, fmt.Errorf("crash: workload fired no injection points")
	}
	return enumerate(in.Hits()), in.Hits(), nil
}

// Sample returns n distinct injections drawn deterministically from
// injs with the given seed (all of them when n >= len(injs)), in
// original order.
func Sample(injs []Injection, n int, seed int64) []Injection {
	if n >= len(injs) {
		out := make([]Injection, len(injs))
		copy(out, injs)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(injs))[:n]
	sort.Ints(idx)
	out := make([]Injection, 0, n)
	for _, i := range idx {
		out = append(out, injs[i])
	}
	return out
}

// Outcome is the result of one injected crash: where it was injected
// and whether recovery upheld every invariant.
type Outcome struct {
	Workload string
	Point    string
	Visit    int
	Seed     int64
	// Verdict is "ok", or "fail: <detail>" describing the violated
	// invariant.
	Verdict string
	Stats   stats.Stats     // machine counters at the crash
	Elapsed sim.Time        // virtual time of the crash
	Replay  wal.ReplayStats // what recovery replayed
}

// OK reports whether every invariant held.
func (o Outcome) OK() bool { return o.Verdict == "ok" }

// RunInjection replays the workload, kills it at the injection, runs
// recovery, and verifies the recovery invariants. It never panics on an
// invariant violation — failures are reported in the Outcome so sweeps
// can tabulate them.
func RunInjection(w Workload, inj Injection) Outcome {
	out := Outcome{Workload: w.Name, Point: inj.Point, Visit: inj.Visit, Seed: w.Seed}
	in := Arm(inj)
	st := w.build(in)
	out.Elapsed = st.eng.Run()
	out.Stats = *st.m.Stats()
	if !in.Fired() {
		out.Verdict = fmt.Sprintf("fail: point %s visit %d never reached (saw %d visits)",
			inj.Point, inj.Visit, in.Hits()[inj.Point])
		return out
	}
	in.Disarm()
	detail, replay := verify(w, st)
	out.Replay = replay
	if detail == "" {
		out.Verdict = "ok"
	} else {
		out.Verdict = "fail: " + detail
	}
	return out
}

// dataNVM reports whether a line holds NVM *data* (not hardware log
// area) — the address range the oracle compares.
func dataNVM(a mem.Addr) bool {
	return mem.KindOf(a) == mem.NVM && !mem.InLogArea(a)
}

// verify crashes the machine, recovers it, and checks the recovered
// state against the committed-prefix oracle. It returns "" when every
// invariant holds, else a description of the violation.
func verify(w Workload, st *runState) (detail string, replay wal.ReplayStats) {
	m := st.m

	// Ground truth recorded by the still-live machine: the committed
	// transactions in commit (LSN) order with their exact write images.
	type centry struct {
		id     uint64
		writes map[mem.Addr]mem.Line
	}
	var clog []centry
	committed := make(map[uint64]bool)
	for _, c := range m.CommitLog() {
		clog = append(clog, centry{id: c.ID, writes: c.Writes})
		committed[c.ID] = true
	}

	// Invariant 3 precondition: an acknowledged commit always reached
	// the commit log (finishCommit ran before the ack).
	for _, id := range st.acked {
		if !committed[id] {
			return fmt.Sprintf("acked tx %d missing from commit log", id), replay
		}
	}

	// Power failure. Everything below sees only durable state plus the
	// recovery protocol's own effects.
	m.Crash()

	// Commit marks at or below the durable checkpoint are truncation
	// leftovers: their transactions' data is persisted in place, and
	// recovery ignores them (see core.ReclaimLogs).
	ckpt := m.Checkpoint()
	durable := make(map[uint64]uint64) // txID → commit LSN, from durable logs
	abortedD := make(map[uint64]bool)
	for _, r := range m.DurableRedoRecords() {
		switch r.Type {
		case wal.RecCommit:
			if _, ok := durable[r.TxID]; !ok && r.LSN > ckpt {
				durable[r.TxID] = r.LSN
			}
		case wal.RecAbort:
			abortedD[r.TxID] = true
		case wal.RecWrite:
			// Invariant 4: the redo log never references DRAM.
			if !dataNVM(r.Addr) {
				return fmt.Sprintf("redo record for tx %d addresses non-NVM-data line %#x", r.TxID, uint64(r.Addr)), replay
			}
		}
	}
	for id := range abortedD {
		if _, ok := durable[id]; ok || committed[id] {
			return fmt.Sprintf("tx %d has both abort and commit marks", id), replay
		}
	}

	// A durable commit mark either belongs to a fully committed
	// transaction or to one that was mid-commit when the power failed:
	// past its durable mark but suspended (at the commit latency charge)
	// before registering in the commit log. At most one such transaction
	// per core is possible; conflict detection guarantees their write
	// sets are mutually disjoint.
	var mid []uint64
	for id := range durable {
		if !committed[id] {
			mid = append(mid, id)
		}
	}
	if len(mid) > w.Threads {
		return fmt.Sprintf("%d mid-commit txs have durable commit marks (at most %d cores)", len(mid), w.Threads), replay
	}
	sort.Slice(mid, func(i, j int) bool { return durable[mid[i]] < durable[mid[j]] })

	replay = m.Recover().ReplayStats

	// Committed-prefix oracle: baseline, then every completed commit in
	// order, then the mid-commit transaction iff its mark is durable.
	expected := make(map[mem.Addr]mem.Line, len(st.baseline))
	for a, l := range st.baseline {
		if dataNVM(a) {
			expected[a] = l
		}
	}
	for _, ce := range clog {
		for la, ln := range ce.writes {
			if dataNVM(la) {
				expected[la] = ln
			}
		}
	}
	for _, id := range mid {
		wmap, ok := st.intents[id]
		if !ok {
			return fmt.Sprintf("durable commit mark for unknown tx %d", id), replay
		}
		for la, v := range wmap {
			ln := expected[la]
			for i := 0; i < 8; i++ {
				ln[i] = byte(v >> (8 * i))
			}
			expected[la] = ln
		}
	}

	// Invariants 1–3: exact durable-image equality over all NVM data.
	got := make(map[mem.Addr]mem.Line)
	for a, l := range m.Store().SnapshotDurable() {
		if dataNVM(a) {
			got[a] = l
		}
	}
	for a, want := range expected {
		if got[a] != want {
			return fmt.Sprintf("line %#x: durable %x, oracle %x", uint64(a), got[a], want), replay
		}
	}
	for a, g := range got {
		if _, ok := expected[a]; !ok && g != (mem.Line{}) {
			return fmt.Sprintf("line %#x: unexpected durable data %x", uint64(a), g), replay
		}
	}

	// Invariant 4: the DRAM side is gone — recovery rebuilds a live
	// image containing nothing but recovered NVM data.
	for a, l := range m.Store().SnapshotLive() {
		if mem.KindOf(a) == mem.DRAM && l != (mem.Line{}) {
			return fmt.Sprintf("DRAM line %#x survived the crash", uint64(a)), replay
		}
	}
	return "", replay
}
