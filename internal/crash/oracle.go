package crash

import (
	"fmt"
	"sort"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/wal"
)

// The committed-prefix oracle, factored out of the sweep so other
// crash consumers (the server's kill-and-restart tests, ad-hoc
// recovery drills) can verify a machine they crashed themselves. The
// sweep's verify() keeps its own copy of the logic because it also
// checks sweep-internal bookkeeping (acked sets, per-run intents); this
// exported form reconstructs mid-commit write images from the durable
// redo records instead, so it needs nothing beyond the machine.

// Baseline deep-copies the durable NVM data image (log areas excluded).
// Capture it before running the workload whose recovery will be
// verified, and after any non-transactional formatting/prepopulation.
func Baseline(m *core.Machine) map[mem.Addr]mem.Line {
	out := make(map[mem.Addr]mem.Line)
	for a, l := range m.Store().SnapshotDurable() {
		if dataNVM(a) {
			out[a] = l
		}
	}
	return out
}

// VerifyRecovered checks a machine that has already crashed and
// recovered (core.Machine.Crash + Recover, logs not yet reclaimed)
// against the committed-prefix oracle: the durable NVM data image must
// equal baseline, plus every tracked commit in commit order, plus any
// mid-commit transaction whose commit mark went durable before the
// failure (its write image reconstructed from its durable redo
// records). cores bounds how many mid-commit transactions are possible
// (one per core). Requires Options.TrackCommits on the machine.
//
// It returns "" when every invariant holds, else a description of the
// violation. Unlike the sweep's internal verify, it does not check that
// DRAM is empty — callers may already have rebuilt volatile indexes.
func VerifyRecovered(m *core.Machine, cores int, baseline map[mem.Addr]mem.Line) string {
	committed := make(map[uint64]bool)
	for _, c := range m.CommitLog() {
		committed[c.ID] = true
	}

	// Durable log inspection: commit marks above the checkpoint, abort
	// marks, and per-transaction write images (redo records carry the
	// new line value, so a mid-commit transaction's intent is exactly
	// its durable RecWrite set).
	ckpt := m.Checkpoint()
	durable := make(map[uint64]uint64) // txID → commit LSN
	abortedD := make(map[uint64]bool)
	intents := make(map[uint64]map[mem.Addr]mem.Line)
	for _, r := range m.DurableRedoRecords() {
		switch r.Type {
		case wal.RecCommit:
			if _, ok := durable[r.TxID]; !ok && r.LSN > ckpt {
				durable[r.TxID] = r.LSN
			}
		case wal.RecAbort:
			abortedD[r.TxID] = true
		case wal.RecWrite:
			if !dataNVM(r.Addr) {
				return fmt.Sprintf("redo record for tx %d addresses non-NVM-data line %#x", r.TxID, uint64(r.Addr))
			}
			w := intents[r.TxID]
			if w == nil {
				w = make(map[mem.Addr]mem.Line)
				intents[r.TxID] = w
			}
			w[r.Addr] = r.Data
		}
	}
	for id := range abortedD {
		if _, ok := durable[id]; ok || committed[id] {
			return fmt.Sprintf("tx %d has both abort and commit marks", id)
		}
	}

	// Mid-commit transactions: durable commit mark, never registered in
	// the commit log. At most one per core; disjoint write sets.
	var mid []uint64
	for id := range durable {
		if !committed[id] {
			mid = append(mid, id)
		}
	}
	if len(mid) > cores {
		return fmt.Sprintf("%d mid-commit txs have durable commit marks (at most %d cores)", len(mid), cores)
	}
	sort.Slice(mid, func(i, j int) bool { return durable[mid[i]] < durable[mid[j]] })

	// Committed-prefix image: baseline, each tracked commit in order,
	// then the durable-marked mid-commit transactions.
	expected := make(map[mem.Addr]mem.Line, len(baseline))
	for a, l := range baseline {
		expected[a] = l
	}
	for _, c := range m.CommitLog() {
		for la, ln := range c.Writes {
			if dataNVM(la) {
				expected[la] = ln
			}
		}
	}
	for _, id := range mid {
		for la, ln := range intents[id] {
			expected[la] = ln
		}
	}

	got := make(map[mem.Addr]mem.Line)
	for a, l := range m.Store().SnapshotDurable() {
		if dataNVM(a) {
			got[a] = l
		}
	}
	for a, want := range expected {
		if got[a] != want {
			return fmt.Sprintf("line %#x: durable %x, oracle %x", uint64(a), got[a], want)
		}
	}
	for a, g := range got {
		if _, ok := expected[a]; !ok && g != (mem.Line{}) {
			return fmt.Sprintf("line %#x: unexpected durable data %x", uint64(a), g)
		}
	}
	return ""
}
