package shard

import (
	"bytes"
	"strings"
	"testing"

	"uhtm/internal/crash"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// run executes a fresh sweep-shaped cluster at the given parallelism,
// with tracing on, and returns it plus its result.
func runSweepCluster(t *testing.T, par int) (*Cluster, Result) {
	t.Helper()
	cfg := SweepConfig()
	cfg.Par = par
	cfg.Trace = true
	c := New(cfg)
	res := c.Run()
	if res.Halted {
		t.Fatalf("uninjected run halted")
	}
	return c, res
}

func TestClusterRunsAndCommitsCrossTxs(t *testing.T) {
	cfg := SweepConfig()
	_, res := runSweepCluster(t, 1)
	if res.CrossCommits == 0 {
		t.Fatalf("no cross-shard commits (aborts=%d)", res.CrossAborts)
	}
	if res.CrossAborts == 0 {
		t.Fatalf("no cross-shard conflict aborts — wave admission untested (commits=%d)", res.CrossCommits)
	}
	if got, want := res.CrossCommits+res.CrossAborts, uint64(cfg.Rounds*cfg.CrossPerRound); got != want {
		t.Fatalf("decided %d cross txs, want %d", got, want)
	}
	wantLocal := uint64(cfg.Shards * cfg.CoresPerShard * cfg.Rounds * cfg.TxPerCore)
	if res.Stats.Commits != wantLocal {
		t.Fatalf("local commits = %d, want %d", res.Stats.Commits, wantLocal)
	}
}

func TestSingleShardHasNoCrossTraffic(t *testing.T) {
	cfg := SweepConfig()
	cfg.Shards = 1
	c := New(cfg)
	res := c.Run()
	if res.Halted {
		t.Fatalf("run halted")
	}
	if res.CrossCommits != 0 || res.CrossAborts != 0 {
		t.Fatalf("single-shard cluster ran cross txs: commits=%d aborts=%d", res.CrossCommits, res.CrossAborts)
	}
	if res.Stats.Commits == 0 {
		t.Fatalf("no local commits")
	}
	if c.decLog.Appends != 0 {
		t.Fatalf("decision log saw %d appends in a single-shard run", c.decLog.Appends)
	}
}

// TestMergedTraceDeterministicAcrossPar is the merged-trace determinism
// gate: the virtual-time-merged Chrome trace of a sharded run must be
// byte-identical at any OS-thread parallelism.
func TestMergedTraceDeterministicAcrossPar(t *testing.T) {
	c1, res1 := runSweepCluster(t, 1)
	c8, res8 := runSweepCluster(t, 8)

	if res1 != res8 {
		t.Fatalf("results differ across par:\n par1: %+v\n par8: %+v", res1, res8)
	}
	ev1, ev8 := c1.MergedTrace(), c8.MergedTrace()
	if len(ev1) == 0 {
		t.Fatalf("merged trace is empty")
	}
	var b1, b8 bytes.Buffer
	cause := func(c uint64) string { return stats.AbortCause(c).String() }
	if err := trace.WriteChrome(&b1, []trace.Run{{Label: "shard", Events: ev1}}, cause); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&b8, []trace.Run{{Label: "shard", Events: ev8}}, cause); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatalf("merged Chrome trace differs between par=1 (%d bytes) and par=8 (%d bytes)", b1.Len(), b8.Len())
	}
}

// TestMergedTraceRemapsIdentities checks the merge's core and
// transaction remapping: global core IDs span every shard and local
// transaction IDs from different shards never collide.
func TestMergedTraceRemapsIdentities(t *testing.T) {
	c, _ := runSweepCluster(t, 1)
	cfg := c.cfg
	coresSeen := map[int32]bool{}
	txShards := map[uint64]map[int]bool{} // remapped local tx → shards claiming it
	for _, ev := range c.MergedTrace() {
		if ev.Core >= 0 {
			if int(ev.Core) >= cfg.Shards*cfg.CoresPerShard {
				t.Fatalf("core %d out of global range", ev.Core)
			}
			coresSeen[ev.Core] = true
		}
		if ev.TxID != 0 && ev.TxID < GIDBase {
			k := int(ev.TxID >> txOffsetShift)
			if txShards[ev.TxID] == nil {
				txShards[ev.TxID] = map[int]bool{}
			}
			txShards[ev.TxID][k] = true
		}
	}
	if len(coresSeen) != cfg.Shards*cfg.CoresPerShard {
		t.Fatalf("saw %d distinct cores, want %d", len(coresSeen), cfg.Shards*cfg.CoresPerShard)
	}
	for id, shards := range txShards {
		if len(shards) != 1 {
			t.Fatalf("remapped local tx %#x claimed by %d shards", id, len(shards))
		}
	}
}

func TestEnumerateFindsTwoPCPoints(t *testing.T) {
	injs, hits, err := Enumerate(SweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		PointPrepareLogged, PointDecisionLogged, PointApplyMark, PointApplyLine, PointResolveCkpt,
		PointPrefixDecision + "append.record",
		PointPrefixDecision + "append.ctrl",
		PointPrefixDecision + "reclaim.ctrl",
	} {
		found := false
		for p := range hits {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no injection point matching %q enumerated", want)
		}
	}
	if len(injs) == 0 {
		t.Fatalf("no injections enumerated")
	}
}

// TestCrashSweepTwoPCPoints injects a crash at every (point, visit) of
// every 2PC protocol step — the shard.* namespace — and verifies
// recovery with the committed-prefix oracle plus cluster atomicity.
func TestCrashSweepTwoPCPoints(t *testing.T) {
	cfg := SweepConfig()
	injs, _, err := Enumerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, inj := range injs {
		if !strings.Contains(inj.Point, "shard.") {
			continue
		}
		out := RunInjection(cfg, inj)
		if !out.OK() {
			t.Errorf("%s visit %d: %s", out.Point, out.Visit, out.Verdict)
		}
		ran++
	}
	if ran == 0 {
		t.Fatalf("no shard.* injections found")
	}
	t.Logf("swept %d 2PC injection points", ran)
}

// TestCrashSweepSampledMachinePoints samples the non-2PC points (the
// underlying core.*/wal.*/mem.* protocol steps running inside a sharded
// cluster) and verifies the same invariants there.
func TestCrashSweepSampledMachinePoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled sweep is slow")
	}
	cfg := SweepConfig()
	injs, _, err := Enumerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rest []crash.Injection
	for _, inj := range injs {
		if !strings.Contains(inj.Point, "shard.") {
			rest = append(rest, inj)
		}
	}
	for _, inj := range crash.Sample(rest, 32, cfg.Seed) {
		if out := RunInjection(cfg, inj); !out.OK() {
			t.Errorf("%s visit %d: %s", out.Point, out.Visit, out.Verdict)
		}
	}
}

// TestRecoverAfterCleanRun checks recovery idempotence with no crash at
// all: every decided transaction is already resolved, so the completion
// pass has nothing to do.
func TestRecoverAfterCleanRun(t *testing.T) {
	c, res := runSweepCluster(t, 1)
	rec := c.Recover()
	if rec.Completed != 0 || rec.Noted != 0 {
		t.Fatalf("clean run needed completion work: completed=%d noted=%d", rec.Completed, rec.Noted)
	}
	if len(rec.Inconsistent) > 0 {
		t.Fatalf("inconsistencies: %v", rec.Inconsistent)
	}
	if rec.Cell == 0 || rec.Cell != res.CrossCommits+res.CrossAborts {
		t.Fatalf("cell = %d, want %d", rec.Cell, res.CrossCommits+res.CrossAborts)
	}
}
