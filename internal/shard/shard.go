// Package shard scales the simulator past one machine: it partitions
// the line-address space across N independent sim.Engine shards — each
// with its own core.Machine, WAL rings and caches — fans them out over
// real OS threads via internal/harness, and layers a 2PC-style
// cross-shard commit protocol on the existing WAL so multi-shard
// transactions are crash-atomic across machines.
//
// The protocol reuses the repo's two durability primitives end to end:
// per-shard prepare and apply records travel the ordinary redo rings
// (wal.RecWrite + wal.RecPrepare, then a wal.RecCommit apply mark), and
// the coordinator's decision record lives in a dedicated decision log
// on shard 0 plus a single-line resolution cell — the same crash-atomic
// single-line-cell pattern as the checkpoint LSN. A crash at any step
// recovers to a consistent cross-shard prefix: decided transactions
// complete everywhere, undecided ones vanish everywhere.
//
// Transactions that touch one shard keep the existing fast path
// unchanged — they are ordinary core.Ctx.Run transactions on that
// shard's machine. Only cross-shard transactions route through the
// coordinator. Per-shard traces stay deterministic and merge by virtual
// time into one stream (MergedTrace), byte-identical at any OS-thread
// parallelism.
package shard

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/harness"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
	"uhtm/internal/wal"
)

// GIDBase is the low end of the cross-shard transaction ID space. The
// high bit keeps global IDs disjoint from every machine's local
// transaction counter, so a shard's redo ring can carry both without
// collision.
const GIDBase uint64 = 1 << 63

// DecisionReserve is carved off the top of every shard's NVM log area
// (core.Options.ReserveLogArea); shard 0 places the resolution cell in
// its first line and the coordinator decision log after it. All shards
// reserve it so their redo rings stay identically sized.
const DecisionReserve mem.Addr = 64 << 10

// Config sizes one sharded cluster and its deterministic workload.
type Config struct {
	Shards        int // engine shards (>= 1)
	CoresPerShard int // simulated cores per shard
	Domains       int // conflict domains per shard (core c → domain c%Domains, each working its own pool segment)

	Rounds        int // work rounds (local batch + cross-shard wave each)
	TxPerCore     int // local transactions per core per round
	WritesPerTx   int // NVM lines written per transaction (local and cross)
	ReadsPerTx    int // NVM lines read per local transaction
	CrossPerRound int // cross-shard transactions per round (0 when Shards < 2)
	CrossShards   int // participant shards per cross transaction (clamped to [2, Shards])
	LinesPerShard int // NVM data pool size per shard

	Seed int64 // engine seed base (shard k runs at Seed+k)
	Par  int   // OS-thread parallelism for shard fan-out (<= 0: GOMAXPROCS)

	Trace bool         // record per-shard event traces (see MergedTrace)
	Opts  core.Options // base machine options; ReserveLogArea is overridden
	Geom  *mem.Config  // geometry override (nil: mem.DefaultConfig); Cores is overridden
}

// normalized clamps the degenerate corners so every Config drives a
// well-formed cluster.
func (cfg Config) normalized() Config {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.CoresPerShard < 1 {
		cfg.CoresPerShard = 1
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	if cfg.Shards < 2 {
		cfg.CrossPerRound = 0
	}
	if cfg.CrossShards < 2 {
		cfg.CrossShards = 2
	}
	if cfg.CrossShards > cfg.Shards {
		cfg.CrossShards = cfg.Shards
	}
	if cfg.LinesPerShard < 1 {
		cfg.LinesPerShard = 1
	}
	return cfg
}

// Shard is one engine world: a machine, its session driver, and its
// slice of the partitioned address space.
type Shard struct {
	id   int
	eng  *sim.Engine
	m    *core.Machine
	sess *harness.Session
	pool []mem.Addr // home lines (global item g = i*Shards+id at index i)
	hook func(point string)
}

// ID returns the shard's index.
func (sh *Shard) ID() int { return sh.id }

// Machine returns the shard's machine (verification, stats).
func (sh *Shard) Machine() *core.Machine { return sh.m }

// Engine returns the shard's engine.
func (sh *Shard) Engine() *sim.Engine { return sh.eng }

// hit fires one shard-level injection point.
func (sh *Shard) hit(point string) {
	if sh.hook != nil {
		sh.hook(point)
	}
}

// Cluster is a set of shards plus the cross-shard commit coordinator
// state (decision log and resolution cell on shard 0) and the ground-
// truth record of every cross-shard transaction issued.
type Cluster struct {
	cfg    Config
	shards []*Shard

	decLog   *wal.Log // coordinator decision log (shard 0's store)
	cellAddr mem.Addr // resolution cell: highest durably resolved GID seq

	seq    uint64     // GID sequence (next = seq+1)
	waves  []*crossTx // every issued cross-shard transaction, in seq order
	halted bool

	// decidedAbort and resolvedSeq mirror the coordinator's durable
	// decision state for the shards' prepare resolvers (see resolveGID):
	// GID sequences with a durable abort decision, and the highest fully
	// resolved sequence (the resolution cell). Written only in
	// single-shard coordinator phases; read concurrently by reclamation
	// passes in barriered multi-shard phases, so no locking is needed.
	decidedAbort map[uint64]bool
	resolvedSeq  uint64

	crossCommits uint64
	crossAborts  uint64
}

// New builds the cluster: one engine+machine per shard with the
// decision area reserved, per-shard NVM pools prepopulated and
// persisted (the durable baseline), and the coordinator structures on
// shard 0.
func New(cfg Config) *Cluster {
	cfg = cfg.normalized()
	c := newCluster(cfg, DecisionReserve, cfg.Trace)
	for _, sh := range c.shards {
		al := mem.NewAllocator(mem.NVM)
		for i := 0; i < cfg.LinesPerShard; i++ {
			la := al.AllocLines(1)
			// Prepopulate with the global item number so the durable
			// baseline identifies the partition map.
			sh.m.Store().WriteU64(la, 0xD000_0000+uint64(i*cfg.Shards+sh.id))
			sh.pool = append(sh.pool, la)
		}
		sh.m.Store().PersistLiveNVM()
	}
	return c
}

// newCluster builds the shards (engine, machine, session each) and —
// when reserve is nonzero — the coordinator decision log and resolution
// cell on shard 0. It is the construction path shared by the canned
// workload driver (New) and the serving front-end (NewServing); the
// per-shard machine construction sequence must stay byte-identical so
// goldens pinned against either path keep holding.
func newCluster(cfg Config, reserve mem.Addr, traced bool) *Cluster {
	c := &Cluster{cfg: cfg}
	for k := 0; k < cfg.Shards; k++ {
		eng := sim.NewEngine(cfg.Seed + int64(k))
		if traced {
			eng.SetTracer(trace.NewRecorder())
		}
		g := mem.DefaultConfig()
		if cfg.Geom != nil {
			g = *cfg.Geom
		}
		g.Cores = cfg.CoresPerShard
		opts := cfg.Opts
		opts.ReserveLogArea = reserve
		m := core.NewMachine(eng, g, opts)
		c.shards = append(c.shards, &Shard{id: k, eng: eng, m: m, sess: harness.NewSession(eng)})
	}
	if reserve > 0 {
		st0 := c.shards[0].m.Store()
		decBase := mem.NVMLogBase + mem.LogAreaSize - reserve
		c.cellAddr = decBase
		c.decLog = wal.NewLog(st0, decBase+mem.LineSize, reserve-mem.LineSize, true)
		c.decLog.SetPointPrefix(PointPrefixDecision)
		c.decidedAbort = make(map[uint64]bool)
		// Incremental reclamation consults the coordinator's decision
		// state before truncating a prepared-but-unapplied record group:
		// an undecided prepare is the only durable evidence of the
		// transaction and must survive.
		for _, sh := range c.shards {
			sh.m.SetPrepareResolver(c.resolveGID)
		}
	}
	return c
}

// resolveGID answers a machine's prepare resolver: a prepared record
// group for txID is disposable when the coordinator durably decided
// abort for it (the group will never be applied) or the transaction is
// at or below the resolution cell (fully applied and registered
// everywhere). Both facts are durable before the in-memory mirrors here
// are updated, so truncation never outruns the decision log.
func (c *Cluster) resolveGID(txID uint64) bool {
	if txID < GIDBase {
		return false
	}
	seq := txID &^ GIDBase
	return seq <= c.resolvedSeq || c.decidedAbort[seq]
}

// Shards returns the cluster's shards in index order.
func (c *Cluster) Shards() []*Shard { return c.shards }

// Halted reports whether an injected crash stopped the cluster.
func (c *Cluster) Halted() bool { return c.halted }

// CrossCommits returns the number of cross-shard transactions the
// coordinator decided to commit.
func (c *Cluster) CrossCommits() uint64 { return c.crossCommits }

// CrossAborts returns the number of cross-shard transactions aborted by
// wave conflict admission.
func (c *Cluster) CrossAborts() uint64 { return c.crossAborts }

// SetHook installs (or, with nil, removes) the crash-injection hook on
// shard k: the machine, its store and rings, the shard-level 2PC points,
// and — on shard 0 — the coordinator decision log. The hook runs on the
// shard's simulated threads, so it may call that shard's
// sim.Engine.HaltNow. Installing a hook on at most one shard keeps a
// Par > 1 cluster race-free; counting sweeps install one private
// counter per shard.
func (c *Cluster) SetHook(k int, f func(point string)) {
	sh := c.shards[k]
	sh.hook = f
	sh.m.SetCrashpoint(f)
	if k == 0 && c.decLog != nil {
		c.decLog.SetCrashpoint(f)
	}
}

// Result summarizes one cluster run.
type Result struct {
	Stats        stats.Stats // aggregated per-shard machine counters (local HTM)
	CrossCommits uint64      // committed cross-shard transactions
	CrossAborts  uint64      // admission-aborted cross-shard transactions
	Elapsed      sim.Time    // max shard virtual time
	Halted       bool        // an injected crash stopped the run
}

// pick is the deterministic mixing function for pool-index choices —
// the same line picks on every run, so enumeration predicts every
// replay (mirrors internal/crash's pick).
func pick(t, k, i, n int) int {
	return ((t*131+k*17+i*7+(t^k)*3)%n + n) % n
}

// fanout runs f once per given shard on the harness worker pool and
// reports whether any shard halted. Execute's determinism guarantees
// make the result independent of Par.
func (c *Cluster) fanout(shards []*Shard, f func(sh *Shard) bool) bool {
	specs := make([]harness.Spec[bool], len(shards))
	for i, sh := range shards {
		sh := sh
		specs[i] = harness.Spec[bool]{
			Experiment: "shard",
			System:     fmt.Sprintf("s%d", sh.id),
			Seed:       c.cfg.Seed + int64(sh.id),
			Run:        func() bool { return f(sh) },
		}
	}
	halted := false
	for _, h := range harness.Execute(specs, c.cfg.Par) {
		halted = halted || h
	}
	return halted
}

// localBatch runs one round of single-shard transactions on sh: one
// body per core, TxPerCore ordinary fast-path transactions each. Each
// core works the pool segment of its conflict domain, so the domain
// count is a real contention knob: D domains split the same pool among
// D disjoint thread groups, cutting cross-thread collisions by ~D.
// Returns whether the shard halted.
func (c *Cluster) localBatch(sh *Shard, round int) bool {
	cfg := c.cfg
	seg := cfg.LinesPerShard / cfg.Domains
	if seg < 1 {
		seg = 1
	}
	bodies := make([]func(*sim.Thread), cfg.CoresPerShard)
	for t := 0; t < cfg.CoresPerShard; t++ {
		t := t
		bodies[t] = func(th *sim.Thread) {
			dom := t % cfg.Domains
			base := (dom * seg) % cfg.LinesPerShard
			ctx := sh.m.NewCtx(th, dom)
			for k := 0; k < cfg.TxPerCore; k++ {
				ctx.Run(func(tx *core.Tx) {
					for i := 0; i < cfg.ReadsPerTx; i++ {
						li := base + pick(sh.id*31+t, round*13+k, i+23, seg)
						tx.ReadU64(sh.pool[li])
					}
					for i := 0; i < cfg.WritesPerTx; i++ {
						li := base + pick(sh.id*31+t, round*13+k, i, seg)
						tx.WriteU64(sh.pool[li], tx.ID()<<16|uint64(i+1))
					}
				})
			}
		}
	}
	_, halted := sh.sess.Do(fmt.Sprintf("local.r%d", round), bodies...)
	return halted
}

// Run drives the cluster to completion (or to an injected halt): per
// round, a local batch on every shard, then the cross-shard wave —
// prepare, decide, apply, per-shard log reclamation, and the
// coordinator's resolution-cell advance. Each phase is a barrier across
// shards; a halted shard stops the cluster after the phase in which it
// died (the other shards complete that phase, exactly as independent
// nodes would keep running until they notice the coordinator is gone).
func (c *Cluster) Run() Result {
	for r := 0; r < c.cfg.Rounds && !c.halted; r++ {
		if c.fanout(c.shards, func(sh *Shard) bool { return c.localBatch(sh, r) }) {
			c.halted = true
			break
		}
		if c.cfg.CrossPerRound == 0 {
			continue
		}
		wave := c.buildWave(r)
		c.runWave(wave)
	}
	return c.result()
}

// result assembles the run summary from the shards' machines.
func (c *Cluster) result() Result {
	res := Result{
		CrossCommits: c.crossCommits,
		CrossAborts:  c.crossAborts,
		Halted:       c.halted,
	}
	for _, sh := range c.shards {
		res.Stats.Add(sh.m.Stats())
		if now := sh.eng.Now(); now > res.Elapsed {
			res.Elapsed = now
		}
	}
	res.Stats.Elapsed = res.Elapsed
	return res
}
