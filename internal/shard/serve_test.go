package shard

import (
	"testing"

	"uhtm/internal/core"
	"uhtm/internal/crash"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// servingConfig is the cluster shape the serving-surface tests run:
// commit tracking on for the committed-prefix oracle, Par 1 so hooks
// stay race-free.
func servingConfig(shards int) Config {
	opts := core.DefaultOptions()
	opts.TrackCommits = true
	return Config{
		Shards:        shards,
		CoresPerShard: 2,
		Seed:          7,
		Par:           1,
		Opts:          opts,
	}
}

func TestShardOfDeterministicAndCovering(t *testing.T) {
	if got := ShardOf(12345, 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf(12345, 0); got != 0 {
		t.Fatalf("ShardOf(_, 0) = %d, want 0", got)
	}
	const n = 4
	seen := map[int]bool{}
	for k := uint64(1); k <= 1000; k++ {
		h := ShardOf(k, n)
		if h < 0 || h >= n {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", k, n, h)
		}
		if h != ShardOf(k, n) {
			t.Fatalf("ShardOf(%d, %d) not deterministic", k, n)
		}
		seen[h] = true
	}
	if len(seen) != n {
		t.Fatalf("keys 1..1000 landed on %d of %d shards", len(seen), n)
	}
}

func TestNewServingSingleShardHasNoCoordinator(t *testing.T) {
	c := NewServing(servingConfig(1))
	if c.decLog != nil {
		t.Fatalf("single-shard serving cluster built a decision log")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("SubmitCross on a single-shard cluster did not panic")
		}
	}()
	c.SubmitCross([]int{0}, func(int, *sim.Thread) []LineWrite { return nil }, nil)
}

// servingFixture builds an n-shard serving cluster with one allocated,
// persisted NVM data line per shard, returning the cluster, the line
// addresses, and per-shard durable baselines for the oracle.
func servingFixture(t *testing.T, n int) (*Cluster, []mem.Addr, []map[mem.Addr]mem.Line) {
	t.Helper()
	c := NewServing(servingConfig(n))
	las := make([]mem.Addr, n)
	baselines := make([]map[mem.Addr]mem.Line, n)
	for k, sh := range c.Shards() {
		al := mem.NewAllocator(mem.NVM)
		las[k] = al.AllocLines(1)
		sh.Machine().Store().WriteU64(las[k], 0xBA5E+uint64(k))
		sh.Machine().Store().PersistLiveNVM()
		baselines[k] = crash.Baseline(sh.Machine())
	}
	return c, las, baselines
}

// lineImg builds a full-line image of repeated b.
func lineImg(b byte) mem.Line {
	var l mem.Line
	for i := range l {
		l[i] = b
	}
	return l
}

func TestSubmitCrossCommitAppliesEverywhere(t *testing.T) {
	c, las, baselines := servingFixture(t, 2)
	imgs := []mem.Line{lineImg(0xA1), lineImg(0xB2)}
	appliedOn := map[int]bool{}
	decided, halted := c.SubmitCross([]int{0, 1},
		func(k int, th *sim.Thread) []LineWrite {
			return []LineWrite{{Addr: las[k], Img: imgs[k]}}
		},
		func(k int, th *sim.Thread) { appliedOn[k] = true })
	if !decided || halted {
		t.Fatalf("SubmitCross = (decided=%v, halted=%v), want (true, false)", decided, halted)
	}
	if c.CrossCommits() != 1 {
		t.Fatalf("CrossCommits = %d, want 1", c.CrossCommits())
	}
	for k, sh := range c.Shards() {
		if !appliedOn[k] {
			t.Errorf("applied callback never ran on shard %d", k)
		}
		if got := sh.Machine().Store().PeekLine(las[k]); got != imgs[k] {
			t.Errorf("shard %d live line = %x, want committed image", k, got)
		}
	}

	// Recovery after a clean commit is a no-op completion pass, and every
	// shard still satisfies the committed-prefix oracle.
	rec := c.RecoverServing()
	if rec.Completed != 0 || rec.Noted != 0 {
		t.Fatalf("clean commit needed completion work: completed=%d noted=%d", rec.Completed, rec.Noted)
	}
	if rec.Cell != 1 {
		t.Fatalf("resolution cell = %d, want 1", rec.Cell)
	}
	for k, sh := range c.Shards() {
		if d := crash.VerifyRecovered(sh.Machine(), 3, baselines[k]); d != "" {
			t.Errorf("shard %d: %s", k, d)
		}
	}
}

func TestSubmitCrossReadOnlySkipsProtocol(t *testing.T) {
	c, _, _ := servingFixture(t, 2)
	decided, halted := c.SubmitCross([]int{0, 1},
		func(int, *sim.Thread) []LineWrite { return nil },
		func(int, *sim.Thread) { t.Error("applied callback ran for a read-only transaction") })
	if decided || halted {
		t.Fatalf("read-only SubmitCross = (%v, %v), want (false, false)", decided, halted)
	}
	if c.CrossCommits() != 0 || c.decLog.Appends != 0 {
		t.Fatalf("read-only transaction reached the coordinator: commits=%d appends=%d",
			c.CrossCommits(), c.decLog.Appends)
	}
}

func TestSubmitCrossHaltBeforeDecisionVanishesEverywhere(t *testing.T) {
	c, las, baselines := servingFixture(t, 2)
	in := crash.Arm(crash.Injection{Point: PointPrepareLogged, Visit: 1})
	in.SetHalt(c.Shards()[1].Engine().HaltNow)
	c.SetHook(1, in.Hit)

	imgs := []mem.Line{lineImg(0xC3), lineImg(0xD4)}
	decided, halted := c.SubmitCross([]int{0, 1},
		func(k int, th *sim.Thread) []LineWrite {
			return []LineWrite{{Addr: las[k], Img: imgs[k]}}
		}, nil)
	if decided || !halted {
		t.Fatalf("SubmitCross = (%v, %v), want (false, true)", decided, halted)
	}
	if !in.Fired() {
		t.Fatalf("injection never fired")
	}
	in.Disarm()

	rec := c.RecoverServing()
	if len(rec.DecidedCommit) != 0 {
		t.Fatalf("undecided transaction has a durable commit decision: %v", rec.DecidedCommit)
	}
	if rec.Completed != 0 || rec.Noted != 0 {
		t.Fatalf("undecided transaction was completed: completed=%d noted=%d", rec.Completed, rec.Noted)
	}
	for k, sh := range c.Shards() {
		if d := crash.VerifyRecovered(sh.Machine(), 3, baselines[k]); d != "" {
			t.Errorf("shard %d: %s", k, d)
		}
		if got := sh.Machine().Store().PeekLine(las[k]); got == imgs[k] {
			t.Errorf("shard %d applied an undecided transaction", k)
		}
	}
}

func TestSubmitCrossHaltAfterDecisionCompletesEverywhere(t *testing.T) {
	for _, tc := range []struct {
		name  string
		shard int
		point string
	}{
		// Halt the coordinator right after the decision record: no shard
		// has applied yet, recovery must finish both from prepare images.
		{"at-decision", 0, PointDecisionLogged},
		// Halt one participant before its apply mark: the other applied
		// fully, recovery must finish the straggler.
		{"mid-apply", 1, PointApplyMark},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, las, baselines := servingFixture(t, 2)
			in := crash.Arm(crash.Injection{Point: tc.point, Visit: 1})
			in.SetHalt(c.Shards()[tc.shard].Engine().HaltNow)
			c.SetHook(tc.shard, in.Hit)

			imgs := []mem.Line{lineImg(0xE5), lineImg(0xF6)}
			_, halted := c.SubmitCross([]int{0, 1},
				func(k int, th *sim.Thread) []LineWrite {
					return []LineWrite{{Addr: las[k], Img: imgs[k]}}
				}, nil)
			if !halted {
				t.Fatalf("injected halt did not surface")
			}
			if !in.Fired() {
				t.Fatalf("injection never fired")
			}
			in.Disarm()

			rec := c.RecoverServing()
			if !rec.DecidedCommit[1] {
				t.Fatalf("durable commit decision missing: %v", rec.DecidedCommit)
			}
			if rec.Completed+rec.Noted == 0 {
				t.Fatalf("completion pass did nothing for a decided transaction")
			}
			for k, sh := range c.Shards() {
				if d := crash.VerifyRecovered(sh.Machine(), 3, baselines[k]); d != "" {
					t.Errorf("shard %d: %s", k, d)
				}
				if got := sh.Machine().Store().PeekLine(las[k]); got != imgs[k] {
					t.Errorf("shard %d: decided transaction not applied after recovery (line=%x)", k, got)
				}
				if !inCommitLog(sh, GIDBase|1) {
					t.Errorf("shard %d: decided transaction not registered in the commit log", k)
				}
			}

			// The cluster serves again after recovery: a fresh cross
			// transaction on restarted sessions commits cleanly.
			for _, sh := range c.Shards() {
				sh.Restart()
			}
			imgs2 := []mem.Line{lineImg(0x11), lineImg(0x22)}
			decided, halted := c.SubmitCross([]int{0, 1},
				func(k int, th *sim.Thread) []LineWrite {
					return []LineWrite{{Addr: las[k], Img: imgs2[k]}}
				}, nil)
			if !decided || halted {
				t.Fatalf("post-recovery SubmitCross = (%v, %v), want (true, false)", decided, halted)
			}
		})
	}
}
