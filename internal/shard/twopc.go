package shard

import (
	"fmt"
	"sort"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/wal"
)

// Injection points fired by the cross-shard commit protocol, in
// protocol order, all prefixed per shard ("s<k>." + point) by the sweep.
// Together with the wal.* points of the decision log
// (shard.decision.append.record etc.) and the core.*/wal.*/mem.* points
// the underlying machines fire, crashing at every point covers every
// reachable mid-2PC durable state. See RECOVERY.md.
const (
	// PointPrepareLogged fires on a participant shard after one cross
	// transaction's prepare record set (its RecWrite images plus the
	// RecPrepare mark) is durable on the shard's redo ring. A crash here
	// leaves a durable prepared write set with no decision: recovery
	// discards it everywhere.
	PointPrepareLogged = "shard.2pc.prepare.logged"
	// PointDecisionLogged fires on shard 0 after one decision record
	// (RecCommit or RecAbort for a GID) is durable in the coordinator
	// decision log. A crash here commits the decided prefix of the wave:
	// decided transactions complete during recovery, the rest vanish.
	PointDecisionLogged = "shard.2pc.decision.logged"
	// PointApplyMark fires on a participant shard before the per-shard
	// apply mark (RecCommit) is appended for a decided transaction. A
	// crash here leaves the decision durable but this shard unmarked:
	// recovery re-applies from the prepare records.
	PointApplyMark = "shard.2pc.apply.mark"
	// PointApplyLine fires before each in-place line write+persist of a
	// decided transaction's apply. A crash mid-apply leaves a torn
	// in-place image that local replay completes from the durable mark
	// plus prepare records.
	PointApplyLine = "shard.2pc.apply.line"
	// PointResolveCkpt fires on shard 0 before the resolution cell —
	// the highest fully resolved GID sequence — persists (a single-line,
	// hence crash-atomic, durable update). A crash here replays the
	// round's decisions idempotently.
	PointResolveCkpt = "shard.2pc.resolve.ckpt"
)

// PointPrefixDecision is the injection-point prefix of the coordinator
// decision log (wal.Log.SetPointPrefix), yielding
// shard.decision.append.record / append.ctrl / reclaim.ctrl.
const PointPrefixDecision = "shard.decision."

// Protocol latencies charged to the simulated threads driving 2PC.
const (
	prepareLatPerRec = 5 * sim.Nanosecond   // redo-ring append + flush
	coordHopLat      = 200 * sim.Nanosecond // shard ↔ coordinator message
	decisionLatPerTx = 10 * sim.Nanosecond  // decision append
	applyLatPerLine  = 8 * sim.Nanosecond   // in-place write + persist
)

// crossWrite is one line write of a cross-shard transaction on one
// participant shard. The full line image is captured when the prepare
// record is logged and reused verbatim by apply and recovery, so the
// durable log and the in-place update can never disagree.
type crossWrite struct {
	addr mem.Addr
	val  uint64
	img  mem.Line // captured at prepare
}

// crossTx is one cross-shard transaction: the ground truth the driver
// keeps about what it issued (participants, write sets, admission
// verdict), recorded before any phase runs so an injected crash can be
// checked against exact intent.
type crossTx struct {
	gid      uint64
	seq      uint64
	shards   []int               // participant shard IDs, ascending
	writes   map[int][]crossWrite // participant → writes, ascending by addr
	admitted bool                // wave conflict admission verdict
}

// buildWave constructs round r's cross-shard transactions and runs
// conflict admission: transactions are admitted greedily in GID order,
// and one whose (shard, line) set overlaps an earlier admitted
// transaction in the same wave is aborted by the coordinator (the
// cross-shard analogue of a conflict abort). Everything is a pure
// function of (Config, r), so waves are identical on every run.
func (c *Cluster) buildWave(r int) []*crossTx {
	cfg := c.cfg
	var wave []*crossTx
	taken := make(map[int]map[mem.Addr]bool, cfg.Shards)
	for j := 0; j < cfg.CrossPerRound; j++ {
		c.seq++
		tx := &crossTx{
			gid:    GIDBase | c.seq,
			seq:    c.seq,
			writes: make(map[int][]crossWrite, cfg.CrossShards),
		}
		base := pick(r*7+3, j, 0, cfg.Shards)
		for i := 0; i < cfg.CrossShards; i++ {
			tx.shards = append(tx.shards, (base+i)%cfg.Shards)
		}
		sort.Ints(tx.shards)
		for i, s := range tx.shards {
			sh := c.shards[s]
			seen := make(map[mem.Addr]bool, cfg.WritesPerTx)
			for w := 0; w < cfg.WritesPerTx; w++ {
				li := pick(r*17+5, j*29+1, i*cfg.WritesPerTx+w, cfg.LinesPerShard)
				la := sh.pool[li]
				if seen[la] {
					continue // duplicate pick within the same tx: one write
				}
				seen[la] = true
				tx.writes[s] = append(tx.writes[s], crossWrite{
					addr: la,
					val:  tx.seq<<20 | uint64(i)<<10 | uint64(w+1),
				})
			}
			sort.Slice(tx.writes[s], func(a, b int) bool {
				return tx.writes[s][a].addr < tx.writes[s][b].addr
			})
		}
		// Greedy admission against the wave's already-admitted sets.
		tx.admitted = true
	admit:
		for _, s := range tx.shards {
			for _, w := range tx.writes[s] {
				if taken[s][w.addr] {
					tx.admitted = false
					break admit
				}
			}
		}
		if tx.admitted {
			for _, s := range tx.shards {
				if taken[s] == nil {
					taken[s] = make(map[mem.Addr]bool)
				}
				for _, w := range tx.writes[s] {
					taken[s][w.addr] = true
				}
			}
		}
		wave = append(wave, tx)
	}
	c.waves = append(c.waves, wave...)
	return wave
}

// participants returns the distinct shards touched by the wave, in
// index order.
func (c *Cluster) participants(wave []*crossTx) []*Shard {
	in := make([]bool, c.cfg.Shards)
	for _, tx := range wave {
		for _, s := range tx.shards {
			in[s] = true
		}
	}
	var out []*Shard
	for k, ok := range in {
		if ok {
			out = append(out, c.shards[k])
		}
	}
	return out
}

// runWave executes one wave's 2PC: prepare on every participant,
// decision on shard 0, apply on every participant, a log-reclamation
// pass on every shard, and the resolution-cell advance on shard 0.
// Every phase is a cross-shard barrier; a halt stops the cluster after
// the phase that observed it.
func (c *Cluster) runWave(wave []*crossTx) {
	parts := c.participants(wave)

	// Phase 1: durable prepare on each participant.
	if c.fanout(parts, func(sh *Shard) bool { return c.prepare(sh, wave) }) {
		c.halted = true
		return
	}

	// Phase 2: coordinator decision on shard 0, at a virtual time after
	// every participant's prepare (plus a coordination hop).
	tmax := c.maxNow()
	if c.fanout(c.shards[:1], func(sh *Shard) bool { return c.decide(sh, wave, tmax) }) {
		c.halted = true
		return
	}
	for _, tx := range wave {
		if tx.admitted {
			c.crossCommits++
		} else {
			c.crossAborts++
		}
	}

	// Phase 3: per-shard apply of the committed transactions, after the
	// decision (plus the return hop).
	tdec := c.shards[0].eng.Now()
	if c.fanout(parts, func(sh *Shard) bool { return c.apply(sh, wave, tdec) }) {
		c.halted = true
		return
	}

	// Phase 4: background log reclamation on every shard — applied
	// images persist in place, checkpoints advance, rings truncate.
	if c.fanout(c.shards, func(sh *Shard) bool { return c.reclaim(sh) }) {
		c.halted = true
		return
	}

	// Phase 5: the coordinator durably resolves the wave and truncates
	// the decision log.
	if c.fanout(c.shards[:1], func(sh *Shard) bool { return c.resolve(sh, wave[len(wave)-1].seq) }) {
		c.halted = true
	}
}

// maxNow returns the latest virtual time across shards.
func (c *Cluster) maxNow() sim.Time {
	var t sim.Time
	for _, sh := range c.shards {
		if now := sh.eng.Now(); now > t {
			t = now
		}
	}
	return t
}

// advanceTo moves th forward to at (no-op when already past it).
func advanceTo(th *sim.Thread, at sim.Time) {
	if d := at - th.Clock(); d > 0 {
		th.Advance(d)
	}
}

// prepare logs, for every wave transaction with sh as participant, the
// transaction's write images (RecWrite per line, full prepared image)
// followed by its RecPrepare mark on the shard's ring 0 — a durable
// prepared write set invisible to local replay until a mark commits it.
func (c *Cluster) prepare(sh *Shard, wave []*crossTx) bool {
	_, halted := sh.sess.Do("2pc.prepare", func(th *sim.Thread) {
		st := sh.m.Store()
		ring := sh.m.RedoLog(0)
		for _, tx := range wave {
			ws := tx.writes[sh.id]
			if len(ws) == 0 {
				continue
			}
			for i := range ws {
				w := &ws[i]
				img := st.PeekLine(w.addr)
				for b := 0; b < 8; b++ {
					img[b] = byte(w.val >> (8 * b))
				}
				w.img = img
				ring.Append(wal.Record{Type: wal.RecWrite, TxID: tx.gid, Addr: w.addr, Data: img})
				th.Advance(prepareLatPerRec)
			}
			ring.Append(wal.Record{Type: wal.RecPrepare, TxID: tx.gid})
			th.Advance(prepareLatPerRec)
			sh.hit(PointPrepareLogged)
		}
	})
	return halted
}

// decide runs the coordinator: one durable decision record per wave
// transaction (RecCommit for admitted, RecAbort for conflict-aborted),
// appended to the decision log in GID order at a time causally after
// every prepare.
func (c *Cluster) decide(sh *Shard, wave []*crossTx, tmax sim.Time) bool {
	_, halted := sh.sess.Do("2pc.decide", func(th *sim.Thread) {
		advanceTo(th, tmax)
		th.Advance(coordHopLat)
		for _, tx := range wave {
			typ := wal.RecCommit
			if !tx.admitted {
				typ = wal.RecAbort
			}
			c.decLog.Append(wal.Record{Type: typ, TxID: tx.gid, LSN: tx.seq})
			if !tx.admitted {
				c.decidedAbort[tx.seq] = true
			}
			th.Advance(decisionLatPerTx)
			sh.hit(PointDecisionLogged)
		}
	})
	return halted
}

// apply completes the committed wave transactions on sh: the durable
// apply mark first (so a torn apply is completed by local replay from
// the prepare records), then each prepared image in place.
func (c *Cluster) apply(sh *Shard, wave []*crossTx, tdec sim.Time) bool {
	_, halted := sh.sess.Do("2pc.apply", func(th *sim.Thread) {
		advanceTo(th, tdec)
		th.Advance(coordHopLat)
		st := sh.m.Store()
		ring := sh.m.RedoLog(0)
		for _, tx := range wave {
			ws := tx.writes[sh.id]
			if !tx.admitted || len(ws) == 0 {
				continue
			}
			sh.hit(PointApplyMark)
			ring.Append(wal.Record{Type: wal.RecCommit, TxID: tx.gid, LSN: sh.m.NextLSN()})
			writes := make(map[mem.Addr]mem.Line, len(ws))
			for i := range ws {
				w := ws[i]
				sh.hit(PointApplyLine)
				img := w.img
				st.WriteLine(w.addr, &img)
				st.PersistLine(w.addr, &img)
				writes[w.addr] = img
				th.Advance(applyLatPerLine)
			}
			sh.m.NoteCommit(tx.gid, 0, writes)
		}
	})
	return halted
}

// reclaim runs one background log-reclamation pass on sh's machine from
// a simulated thread (so injected crashes inside it halt the engine).
func (c *Cluster) reclaim(sh *Shard) bool {
	_, halted := sh.sess.Do("2pc.reclaim", func(th *sim.Thread) {
		sh.m.ReclaimLogs()
	})
	return halted
}

// resolve durably advances the resolution cell to seq — every cross
// transaction with sequence <= seq is fully applied (or decided-abort)
// and reclaimed everywhere — then truncates the decision log, whose
// records are now redundant with the cell.
func (c *Cluster) resolve(sh *Shard, seq uint64) bool {
	_, halted := sh.sess.Do("2pc.resolve", func(th *sim.Thread) {
		st := sh.m.Store()
		sh.hit(PointResolveCkpt)
		st.WriteU64(c.cellAddr, seq)
		ln := st.PeekLine(c.cellAddr)
		st.PersistLine(c.cellAddr, &ln)
		th.Advance(decisionLatPerTx)
		c.decLog.Reclaim(c.decLog.Head())
		c.resolvedSeq = seq
	})
	return halted
}

// String identifies a cross transaction in diagnostics.
func (tx *crossTx) String() string {
	return fmt.Sprintf("gid=%#x seq=%d shards=%v admitted=%v", tx.gid, tx.seq, tx.shards, tx.admitted)
}
