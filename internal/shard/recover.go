package shard

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/wal"
)

// Recovery reports what cross-shard crash recovery found and did.
type Recovery struct {
	// PerShard is each machine's local recovery summary (core.Recover):
	// replay counts plus the measured scan/replay/persist phase stats.
	PerShard []core.RecoveryStats
	// Cell is the durable resolution cell: every GID sequence at or
	// below it was fully resolved (applied everywhere or decided-abort)
	// before the crash.
	Cell uint64
	// DecidedCommit / DecidedAbort hold the GID sequences whose decision
	// records were durable in the coordinator log at the crash.
	DecidedCommit map[uint64]bool
	DecidedAbort  map[uint64]bool
	// Completed counts (shard, GID) applies the completion pass finished
	// from durable prepare records; Noted counts applies local replay
	// had already finished and the pass only registered in the commit
	// log.
	Completed int
	Noted     int
	// Inconsistent lists protocol-invariant violations found during the
	// pass (empty on a correct implementation).
	Inconsistent []string
}

// Recover performs cross-shard crash recovery: every shard's machine
// crashes (live image reverts to durable) and replays its own redo
// rings, then the coordinator's durable evidence — the resolution cell
// and the decision log — drives a completion pass that finishes every
// decided-commit transaction on every participant and leaves no trace
// of undecided or decided-abort ones.
//
// Correctness leans on the phase ordering of runWave: a durable
// decision implies every participant's prepare records were durable
// first; an absent decision implies no participant ever logged an apply
// mark; a GID at or below the cell implies every participant applied,
// registered, and reclaimed it before the crash.
func (c *Cluster) Recover() Recovery {
	rec := Recovery{
		DecidedCommit: make(map[uint64]bool),
		DecidedAbort:  make(map[uint64]bool),
	}

	// Power failure on every shard.
	for _, sh := range c.shards {
		sh.m.Crash()
	}

	// Coordinator evidence, read from shard 0's durable image (after
	// Crash the live image is the durable one).
	st0 := c.shards[0].m.Store()
	rec.Cell = st0.ReadU64(c.cellAddr)
	for _, r := range c.decLog.Records(true) {
		switch r.Type {
		case wal.RecCommit:
			rec.DecidedCommit[r.LSN] = true
		case wal.RecAbort:
			rec.DecidedAbort[r.LSN] = true
		}
	}

	// Per-shard durable evidence, collected before local replay appends
	// anything: which GIDs have a durable apply mark, and which have
	// durable prepare write records, on each shard.
	durMark := make([]map[uint64]bool, len(c.shards))
	durPrep := make([]map[uint64]bool, len(c.shards))
	for k, sh := range c.shards {
		durMark[k] = make(map[uint64]bool)
		durPrep[k] = make(map[uint64]bool)
		for _, r := range sh.m.DurableRedoRecords() {
			if r.TxID < GIDBase {
				continue
			}
			switch r.Type {
			case wal.RecCommit:
				durMark[k][r.TxID] = true
			case wal.RecWrite:
				durPrep[k][r.TxID] = true
			}
		}
	}

	// Local replay per shard: completes every transaction — local or
	// cross — whose commit/apply mark was durable, from its logged
	// images.
	for _, sh := range c.shards {
		rec.PerShard = append(rec.PerShard, sh.m.Recover())
	}

	// Completion pass: decided-commit transactions above the cell that
	// some participant never durably marked are finished from their
	// durable prepare records; ones local replay already applied are
	// registered in the commit log so the cluster-wide "applied" record
	// is uniform.
	for _, tx := range c.waves {
		if tx.seq <= rec.Cell || !rec.DecidedCommit[tx.seq] {
			continue
		}
		for _, s := range tx.shards {
			sh := c.shards[s]
			ws := tx.writes[s]
			if len(ws) == 0 {
				continue
			}
			if inCommitLog(sh, tx.gid) {
				continue // fully applied and registered before the crash
			}
			if !durMark[s][tx.gid] && !durPrep[s][tx.gid] {
				// A durable decision with neither mark nor prepare records
				// can only mean the records were reclaimed — which implies
				// the apply completed and registered, contradicting the
				// commit-log miss above.
				rec.Inconsistent = append(rec.Inconsistent, fmt.Sprintf(
					"shard %d: decided tx %s has no durable evidence and no commit-log entry", s, tx))
				continue
			}
			writes := make(map[mem.Addr]mem.Line, len(ws))
			for _, w := range ws {
				writes[w.addr] = w.img
			}
			if durMark[s][tx.gid] {
				// Local replay already applied the images; only register.
				rec.Noted++
			} else {
				// Decision durable, shard unmarked: finish the apply — mark
				// first, then the prepared images in place.
				sh.m.RedoLog(0).Append(wal.Record{Type: wal.RecCommit, TxID: tx.gid, LSN: sh.m.NextLSN()})
				st := sh.m.Store()
				for _, w := range ws {
					img := w.img
					st.WriteLine(w.addr, &img)
					st.PersistLine(w.addr, &img)
				}
				rec.Completed++
			}
			sh.m.NoteCommit(tx.gid, 0, writes)
		}
	}
	c.mergeDecisionState(rec)
	return rec
}

// mergeDecisionState refreshes the cluster's in-memory mirror of the
// coordinator's durable decision state after recovery, so the shards'
// prepare resolvers answer from what actually survived the crash rather
// than pre-crash volatile state.
func (c *Cluster) mergeDecisionState(rec Recovery) {
	if c.decidedAbort == nil {
		return
	}
	clear(c.decidedAbort)
	for s := range rec.DecidedAbort {
		c.decidedAbort[s] = true
	}
	c.resolvedSeq = rec.Cell
}

// inCommitLog reports whether the machine's tracked commit log contains
// id (requires core.Options.TrackCommits).
func inCommitLog(sh *Shard, id uint64) bool {
	for _, ce := range sh.m.CommitLog() {
		if ce.ID == id {
			return true
		}
	}
	return false
}
