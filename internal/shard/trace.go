package shard

import (
	"sort"

	"uhtm/internal/trace"
)

// txOffsetShift positions the shard ID in remapped local transaction
// IDs: shard k's local transaction t becomes t + k<<txOffsetShift in
// the merged stream, keeping per-shard counters disjoint while staying
// below GIDBase (cross-shard GIDs pass through unchanged).
const txOffsetShift = 48

// MergedTrace merges the per-shard event logs into one virtual-time-
// ordered stream. Core IDs are remapped to the global core space
// (shard k, core c → k*CoresPerShard+c; machine-level -1 stays -1),
// and local transaction IDs — including the enemy/probed IDs carried in
// EvTxAbort and EvSigProbe payloads — get a per-shard offset so they
// stay distinct across shards. Events with equal timestamps order by
// shard then per-shard emission order, so the merge is byte-identical
// at any OS-thread parallelism. Returns nil when tracing was off.
func (c *Cluster) MergedTrace() []trace.Event {
	var out []trace.Event
	for k, sh := range c.shards {
		rec := sh.eng.Tracer()
		if rec == nil {
			continue
		}
		txOff := uint64(k) << txOffsetShift
		coreOff := int32(k * c.cfg.CoresPerShard)
		for _, ev := range rec.Events() {
			if ev.Core >= 0 {
				ev.Core += coreOff
			}
			ev.TxID = remapTx(ev.TxID, txOff)
			switch ev.Kind {
			case trace.EvTxAbort:
				ev.Arg2 = remapTx(ev.Arg2, txOff) // enemy transaction
				if ev.Addr != 0 {                 // enemy core + 1
					ev.Addr += uint64(coreOff)
				}
			case trace.EvSigProbe:
				ev.Arg2 = remapTx(ev.Arg2, txOff) // probed transaction
			}
			out = append(out, ev)
		}
	}
	// Per-shard streams are already in deterministic emission order;
	// a stable sort by timestamp alone therefore yields one global
	// deterministic order (equal stamps keep shard-then-emission order).
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// remapTx applies the per-shard transaction-ID offset to local IDs,
// leaving 0 (none) and cross-shard GIDs untouched.
func remapTx(id, off uint64) uint64 {
	if id == 0 || id >= GIDBase {
		return id
	}
	return id + off
}
