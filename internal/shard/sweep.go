package shard

import (
	"fmt"
	"strconv"
	"strings"

	"uhtm/internal/core"
	"uhtm/internal/crash"
	"uhtm/internal/mem"
)

// SweepConfig is the cluster shape the cross-shard crash sweep runs:
// small enough for an exhaustive sweep over every 2PC injection point,
// with a shrunken cache hierarchy (conflicts and overflows within a
// handful of writes), commit tracking for the oracle, and Par 1 so the
// counting pass may install one counter per shard without races.
func SweepConfig() Config {
	cfg := Config{
		Shards:        2,
		CoresPerShard: 2,
		Domains:       1,
		Rounds:        2,
		TxPerCore:     2,
		WritesPerTx:   2,
		ReadsPerTx:    1,
		CrossPerRound: 3,
		CrossShards:   2,
		LinesPerShard: 8,
		Seed:          42,
		Par:           1,
	}
	g := mem.DefaultConfig()
	g.L1Size = 8 * mem.LineSize
	g.L1Ways = 2
	g.LLCSize = 8 * mem.LineSize
	g.LLCWays = 4
	g.DRAMCacheSize = 64 * mem.LineSize
	g.DRAMCacheWays = 4
	cfg.Geom = &g
	opts := core.DefaultOptions()
	opts.TrackCommits = true
	cfg.Opts = opts
	return cfg
}

// shardPoint formats a shard-qualified injection-point name.
func shardPoint(k int, point string) string {
	return fmt.Sprintf("s%d.%s", k, point)
}

// splitPoint parses a shard-qualified point name back into (shard,
// point).
func splitPoint(p string) (int, string, error) {
	rest, ok := strings.CutPrefix(p, "s")
	if !ok {
		return 0, "", fmt.Errorf("shard: point %q lacks s<k>. prefix", p)
	}
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return 0, "", fmt.Errorf("shard: point %q lacks s<k>. prefix", p)
	}
	k, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return 0, "", fmt.Errorf("shard: point %q: bad shard index: %v", p, err)
	}
	return k, rest[dot+1:], nil
}

// Enumerate runs the cluster once with a private counting injector per
// shard and returns the exhaustive injection list (points qualified
// "s<k>.<point>") plus the merged visit counts. The run must complete
// uncrashed.
func Enumerate(cfg Config) ([]crash.Injection, map[string]int, error) {
	c := New(cfg)
	counters := make([]*crash.Injector, len(c.shards))
	for k := range c.shards {
		counters[k] = crash.NewCounter()
		c.SetHook(k, counters[k].Hit)
	}
	res := c.Run()
	if res.Halted {
		return nil, nil, fmt.Errorf("shard: enumeration run halted unexpectedly")
	}
	merged := make(map[string]int)
	for k, in := range counters {
		for p, n := range in.Hits() {
			merged[shardPoint(k, p)] = n
		}
	}
	if len(merged) == 0 {
		return nil, nil, fmt.Errorf("shard: cluster fired no injection points")
	}
	return crash.EnumerateHits(merged), merged, nil
}

// RunInjection replays the cluster, kills the named shard at the
// injection, runs cross-shard recovery, and verifies both the per-shard
// committed-prefix oracle (crash.VerifyRecovered) and cluster-wide 2PC
// atomicity: every issued cross transaction is applied on all of its
// participants or on none, exactly according to the durable decision
// evidence. Failures land in the Outcome verdict, never a panic.
func RunInjection(cfg Config, inj crash.Injection) crash.Outcome {
	cfg = cfg.normalized()
	out := crash.Outcome{
		Workload: fmt.Sprintf("shard-%dx%d", cfg.Shards, cfg.CoresPerShard),
		Point:    inj.Point, Visit: inj.Visit, Seed: cfg.Seed,
	}
	k, point, err := splitPoint(inj.Point)
	if err != nil || k >= cfg.Shards {
		out.Verdict = fmt.Sprintf("fail: %v", err)
		return out
	}
	c := New(cfg)
	baselines := make([]map[mem.Addr]mem.Line, len(c.shards))
	for i, sh := range c.shards {
		baselines[i] = crash.Baseline(sh.m)
	}
	in := crash.Arm(crash.Injection{Point: point, Visit: inj.Visit})
	in.SetHalt(c.shards[k].eng.HaltNow)
	c.SetHook(k, in.Hit)

	res := c.Run()
	out.Elapsed = res.Elapsed
	out.Stats = res.Stats
	if !in.Fired() {
		out.Verdict = fmt.Sprintf("fail: point %s visit %d never reached (saw %d visits)",
			inj.Point, inj.Visit, in.Hits()[point])
		return out
	}
	in.Disarm()

	rec := c.Recover()
	for _, rs := range rec.PerShard {
		out.Replay.CommittedTx += rs.CommittedTx
		out.Replay.AppliedLines += rs.AppliedLines
		out.Replay.DiscardedTx += rs.DiscardedTx
		out.Replay.DiscardedRecs += rs.DiscardedRecs
		out.Replay.TornRecs += rs.TornRecs
		out.Replay.StaleTx += rs.StaleTx
		out.Replay.StaleRecs += rs.StaleRecs
	}
	if detail := c.verify(rec, baselines); detail != "" {
		out.Verdict = "fail: " + detail
		return out
	}
	out.Verdict = "ok"
	return out
}

// verify checks a recovered cluster: the exported per-shard oracle plus
// the cross-shard atomicity invariants. Returns "" when everything
// holds.
func (c *Cluster) verify(rec Recovery, baselines []map[mem.Addr]mem.Line) string {
	for _, msg := range rec.Inconsistent {
		return msg
	}
	// Per-shard committed-prefix equality. The mid-commit bound covers
	// one local transaction per core; cross applies are all registered
	// by the completion pass, so they never count as mid.
	for i, sh := range c.shards {
		if d := crash.VerifyRecovered(sh.m, c.cfg.CoresPerShard+c.cfg.CrossPerRound, baselines[i]); d != "" {
			return fmt.Sprintf("shard %d: %s", i, d)
		}
	}
	// Cluster atomicity: a cross transaction is applied on all its
	// participants iff it was durably decided commit (or resolved at or
	// below the cell and admitted); never anywhere otherwise.
	for _, tx := range c.waves {
		expect := rec.DecidedCommit[tx.seq] || (tx.seq <= rec.Cell && tx.admitted)
		for _, s := range tx.shards {
			if len(tx.writes[s]) == 0 {
				continue
			}
			applied := inCommitLog(c.shards[s], tx.gid)
			if expect && !applied {
				return fmt.Sprintf("cross tx %s missing on shard %d after recovery", tx, s)
			}
			if !expect && applied {
				return fmt.Sprintf("cross tx %s applied on shard %d without a durable commit decision", tx, s)
			}
		}
	}
	return ""
}
