package shard

import (
	"sort"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/wal"
)

// This file is the serving-facing surface of the cluster: where the
// canned workload driver (Run/buildWave) fabricates its own
// transactions, a long-lived server routes externally arriving requests
// — single-shard batches through each shard's session, multi-shard
// MULTI…EXEC batches through SubmitCross — and recovers the whole
// cluster from durable evidence alone (RecoverServing), because a
// server has no ground-truth wave record to lean on.

// NewServing builds a cluster for a serving front-end: shards with
// engines, machines and sessions but no canned NVM pools and no
// tracers. With more than one shard the coordinator decision area is
// reserved on every shard (rings stay identically sized) and the
// decision log and resolution cell are placed on shard 0; with exactly
// one shard nothing is reserved, so the machine is bit-for-bit the one
// a single-machine server would build — the -shards 1 equivalence the
// server tests pin.
func NewServing(cfg Config) *Cluster {
	cfg = cfg.normalized()
	reserve := mem.Addr(0)
	if cfg.Shards > 1 {
		reserve = DecisionReserve
	}
	return newCluster(cfg, reserve, false)
}

// ShardOf maps a key to its home shard: a splitmix64-style finalizer
// (the same construction internal/txds uses for bucket hashing) over
// the key, reduced mod shards. Deterministic across processes, so a
// load generator can predict routing.
func ShardOf(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := key + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(shards))
}

// Do runs bodies as one session batch on the shard (harness.Session.Do
// semantics: fresh threads at the engine's current virtual time) and
// reports whether the engine halted mid-batch.
func (sh *Shard) Do(name string, bodies ...func(*sim.Thread)) bool {
	_, halted := sh.sess.Do(name, bodies...)
	return halted
}

// Restart reboots the shard's session after a halt (the caller recovers
// the machine first).
func (sh *Shard) Restart() {
	sh.sess.Restart()
}

// Fanout runs f once per listed shard on the harness worker pool and
// reports whether any shard halted. It is the exported form of the
// cluster's internal phase barrier, for callers (the server's engine
// loop) that drive their own waves.
func (c *Cluster) Fanout(shards []*Shard, f func(sh *Shard) bool) bool {
	return c.fanout(shards, f)
}

// LineWrite is one full-line NVM write of a cross-shard transaction:
// the image captured at prepare time and reused verbatim by apply and
// recovery, so the durable log and the in-place update can never
// disagree.
type LineWrite struct {
	// Addr is the line base address (64-byte aligned).
	Addr mem.Addr
	// Img is the complete post-transaction line image.
	Img mem.Line
}

// SubmitCross commits one externally supplied cross-shard transaction
// through the 2PC coordinator. exec runs once per participant shard on
// a simulated thread and returns that shard's line-granular write set
// (empty for read-only participants); when at least one participant
// wrote, the full protocol runs — durable prepare records on every
// writer's ring 0, a durable commit decision in the coordinator log, a
// mark-first apply on every writer, and the resolution-cell advance —
// firing the same injection points as the canned wave driver. applied,
// when non-nil, runs on each writer's apply thread after its images are
// in place (volatile index maintenance). Unlike the canned driver there
// is no admission control: the engine loop serializes cross
// transactions, so every written transaction is decided commit.
//
// decided reports whether a durable commit decision was logged (false
// for read-only transactions, which skip the protocol); halted reports
// an injected crash. A halted-but-decided transaction is guaranteed to
// complete on every participant during RecoverServing, so the caller
// may still acknowledge it.
func (c *Cluster) SubmitCross(parts []int, exec func(k int, th *sim.Thread) []LineWrite, applied func(k int, th *sim.Thread)) (decided, halted bool) {
	if c.decLog == nil {
		panic("shard: SubmitCross on a single-shard cluster")
	}
	c.seq++
	seq := c.seq
	gid := GIDBase | seq
	pshs := make([]*Shard, len(parts))
	for i, k := range parts {
		pshs[i] = c.shards[k]
	}
	ws := make([][]LineWrite, len(c.shards))

	// Phase 1: execute on every participant and durably prepare the
	// writers (RecWrite images + the RecPrepare mark on ring 0).
	if c.fanout(pshs, func(sh *Shard) bool {
		return sh.Do("cross.prepare", func(th *sim.Thread) {
			w := exec(sh.id, th)
			ws[sh.id] = w
			if len(w) == 0 {
				return
			}
			ring := sh.m.RedoLog(0)
			for i := range w {
				ring.Append(wal.Record{Type: wal.RecWrite, TxID: gid, Addr: w[i].Addr, Data: w[i].Img})
				th.Advance(prepareLatPerRec)
			}
			ring.Append(wal.Record{Type: wal.RecPrepare, TxID: gid})
			th.Advance(prepareLatPerRec)
			sh.hit(PointPrepareLogged)
		})
	}) {
		c.halted = true
		return false, true
	}
	var writers []*Shard
	for _, sh := range pshs {
		if len(ws[sh.id]) > 0 {
			writers = append(writers, sh)
		}
	}
	if len(writers) == 0 {
		return false, false // read-only: nothing to decide or apply
	}

	// Phase 2: durable commit decision on shard 0, causally after every
	// prepare.
	tmax := c.maxNow()
	if c.fanout(c.shards[:1], func(sh *Shard) bool {
		return sh.Do("cross.decide", func(th *sim.Thread) {
			advanceTo(th, tmax)
			th.Advance(coordHopLat)
			c.decLog.Append(wal.Record{Type: wal.RecCommit, TxID: gid, LSN: seq})
			th.Advance(decisionLatPerTx)
			sh.hit(PointDecisionLogged)
		})
	}) {
		c.halted = true
		return false, true
	}
	c.crossCommits++

	// Phase 3: mark-first apply on every writer. From here the outcome
	// is fixed: a crash leaves the durable decision, and RecoverServing
	// completes the apply from the prepare images.
	tdec := c.shards[0].eng.Now()
	if c.fanout(writers, func(sh *Shard) bool {
		return sh.Do("cross.apply", func(th *sim.Thread) {
			advanceTo(th, tdec)
			th.Advance(coordHopLat)
			st := sh.m.Store()
			ring := sh.m.RedoLog(0)
			sh.hit(PointApplyMark)
			ring.Append(wal.Record{Type: wal.RecCommit, TxID: gid, LSN: sh.m.NextLSN()})
			writes := make(map[mem.Addr]mem.Line, len(ws[sh.id]))
			for _, w := range ws[sh.id] {
				sh.hit(PointApplyLine)
				img := w.Img
				st.WriteLine(w.Addr, &img)
				st.PersistLine(w.Addr, &img)
				writes[w.Addr] = img
				th.Advance(applyLatPerLine)
			}
			sh.m.NoteCommit(gid, 0, writes)
			if applied != nil {
				applied(sh.id, th)
			}
		})
	}) {
		c.halted = true
		return true, true
	}

	// Phase 4: resolution-cell advance + decision-log truncation. Ring
	// reclamation is left to the shards' ordinary background checkpoints
	// — replay of an already-applied cross transaction is idempotent
	// (same images).
	if c.fanout(c.shards[:1], func(sh *Shard) bool { return c.resolve(sh, seq) }) {
		c.halted = true
		return true, true
	}
	return true, false
}

// RecoverServing performs cluster-wide crash recovery from durable
// evidence alone — the serving counterpart of Recover, which leans on
// the canned driver's ground-truth wave record. Every shard's machine
// crashes and replays its own rings; then the coordinator's decision
// log drives a completion pass that finishes every decided-commit
// transaction on every participant from the durable prepare images
// (RecWrite records carry the full line image, so no other source is
// needed). Undecided prepared transactions vanish everywhere. The GID
// sequence is bumped past every durably observed sequence so new
// transactions never reuse an ID.
func (c *Cluster) RecoverServing() Recovery {
	rec := Recovery{
		DecidedCommit: make(map[uint64]bool),
		DecidedAbort:  make(map[uint64]bool),
	}

	// Power failure on every shard.
	for _, sh := range c.shards {
		sh.m.Crash()
	}

	maxSeq := c.seq
	if c.decLog != nil {
		st0 := c.shards[0].m.Store()
		rec.Cell = st0.ReadU64(c.cellAddr)
		if rec.Cell > maxSeq {
			maxSeq = rec.Cell
		}
		for _, r := range c.decLog.Records(true) {
			switch r.Type {
			case wal.RecCommit:
				rec.DecidedCommit[r.LSN] = true
			case wal.RecAbort:
				rec.DecidedAbort[r.LSN] = true
			}
			if r.LSN > maxSeq {
				maxSeq = r.LSN
			}
		}
	}

	// Per-shard durable evidence, collected before local replay appends
	// anything: apply marks and prepare images per GID. A later RecWrite
	// for the same line overrides an earlier one, matching replay order.
	durMark := make([]map[uint64]bool, len(c.shards))
	intents := make([]map[uint64][]LineWrite, len(c.shards))
	for k, sh := range c.shards {
		durMark[k] = make(map[uint64]bool)
		intents[k] = make(map[uint64][]LineWrite)
		for _, r := range sh.m.DurableRedoRecords() {
			if r.TxID < GIDBase {
				continue
			}
			if s := r.TxID &^ GIDBase; s > maxSeq {
				maxSeq = s
			}
			switch r.Type {
			case wal.RecCommit:
				durMark[k][r.TxID] = true
			case wal.RecWrite:
				intents[k][r.TxID] = append(intents[k][r.TxID], LineWrite{Addr: r.Addr, Img: r.Data})
			}
		}
	}

	// Local replay per shard: completes every transaction — local or
	// cross — whose commit/apply mark was durable.
	for _, sh := range c.shards {
		rec.PerShard = append(rec.PerShard, sh.m.Recover())
	}

	// Completion pass over decided commits above the cell, in sequence
	// order. A shard with neither mark nor prepare records was not a
	// writer for that transaction (or already resolved it), so it is
	// skipped — unlike Recover there is no ground truth to check that
	// against, which is exactly why prepare durably precedes decision.
	var seqs []uint64
	for s := range rec.DecidedCommit {
		if s > rec.Cell {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		gid := GIDBase | s
		for k, sh := range c.shards {
			ws := dedupLineWrites(intents[k][gid])
			if !durMark[k][gid] && len(ws) == 0 {
				continue
			}
			if inCommitLog(sh, gid) {
				continue // fully applied and registered before the crash
			}
			writes := make(map[mem.Addr]mem.Line, len(ws))
			for _, w := range ws {
				writes[w.Addr] = w.Img
			}
			if durMark[k][gid] {
				// Local replay already applied the images; only register.
				rec.Noted++
			} else {
				sh.m.RedoLog(0).Append(wal.Record{Type: wal.RecCommit, TxID: gid, LSN: sh.m.NextLSN()})
				st := sh.m.Store()
				for _, w := range ws {
					img := w.Img
					st.WriteLine(w.Addr, &img)
					st.PersistLine(w.Addr, &img)
				}
				rec.Completed++
			}
			sh.m.NoteCommit(gid, 0, writes)
		}
	}
	if c.seq < maxSeq {
		c.seq = maxSeq
	}
	c.mergeDecisionState(rec)
	c.halted = false
	return rec
}

// dedupLineWrites collapses repeated images of the same line to the
// last one, preserving first-seen line order (replay-equivalent).
func dedupLineWrites(ws []LineWrite) []LineWrite {
	if len(ws) < 2 {
		return ws
	}
	idx := make(map[mem.Addr]int, len(ws))
	out := ws[:0:0]
	for _, w := range ws {
		if i, ok := idx[w.Addr]; ok {
			out[i] = w
			continue
		}
		idx[w.Addr] = len(out)
		out = append(out, w)
	}
	return out
}
