package sim

import "testing"

// TestSequentialRuns drives one engine through several Run calls with
// fresh bodies spawned between them — the long-lived-session shape the
// server path depends on. Virtual time must carry across runs.
func TestSequentialRuns(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("a", func(th *Thread) { th.Advance(100); th.Sync() })
	if got := e.Run(); got != 100 {
		t.Fatalf("first run ended at %v, want 100ps", got)
	}
	th2 := e.Spawn("b", func(th *Thread) { th.Advance(50); th.Sync() })
	th2.Bump(e.Now()) // new arrival starts at current virtual time
	if got := e.Run(); got != 150 {
		t.Fatalf("second run ended at %v, want 150ps", got)
	}
}

// TestRecycleReusesIDs checks that finished-thread slots are handed out
// again, lowest first, and that unreclaimed slots are never reused.
func TestRecycleReusesIDs(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(th *Thread) { th.Advance(10) })
	}
	e.Run()
	if n := e.Recycle(); n != 3 {
		t.Fatalf("Recycle reclaimed %d slots, want 3", n)
	}
	a := e.Spawn("x", func(th *Thread) {})
	b := e.Spawn("y", func(th *Thread) {})
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("recycled IDs = %d,%d, want 0,1", a.ID(), b.ID())
	}
	c := e.Spawn("z", func(th *Thread) {})
	d := e.Spawn("grow", func(th *Thread) {})
	if c.ID() != 2 || d.ID() != 3 {
		t.Fatalf("IDs after free list drained = %d,%d, want 2,3", c.ID(), d.ID())
	}
	if len(e.Threads()) != 4 {
		t.Fatalf("thread table has %d slots, want 4", len(e.Threads()))
	}
	// Double Recycle must not re-reclaim already recycled slots.
	e.Run()
	if n := e.Recycle(); n != 4 {
		t.Fatalf("second Recycle reclaimed %d, want 4", n)
	}
	if n := e.Recycle(); n != 0 {
		t.Fatalf("third Recycle reclaimed %d, want 0", n)
	}
}

// TestRecycleBoundsCores runs many single-thread batches through a
// Recycle/Spawn/Run loop and checks the thread table never grows past
// one slot — the property that keeps a long-lived server within its
// machine's core count.
func TestRecycleBoundsCores(t *testing.T) {
	e := NewEngine(1)
	var total Time
	for i := 0; i < 100; i++ {
		th := e.Spawn("w", func(th *Thread) { th.Advance(7); th.Sync() })
		th.Bump(e.Now())
		e.Run()
		total += 7
		if got := e.Now(); got != total {
			t.Fatalf("batch %d: Now=%v, want %v", i, got, total)
		}
		if len(e.Threads()) != 1 {
			t.Fatalf("batch %d: %d thread slots, want 1", i, len(e.Threads()))
		}
		e.Recycle()
	}
}

// TestRestartAfterHaltNow models a power failure and reboot: HaltNow
// mid-run, Restart, then fresh bodies run on the same engine with
// virtual time preserved.
func TestRestartAfterHaltNow(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("victim", func(th *Thread) {
		th.Advance(40)
		th.Sync()
		e.HaltNow()
		t.Error("body continued past HaltNow")
	})
	e.Spawn("bystander", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(1)
			th.Sync()
		}
	})
	e.Run()
	if !e.Halted() {
		t.Fatal("engine not halted")
	}
	e.Restart()
	if e.Halted() {
		t.Fatal("Restart left the engine halted")
	}
	e.Recycle()
	ran := false
	th := e.Spawn("reboot", func(th *Thread) { ran = true; th.Advance(5) })
	th.Bump(e.Now())
	e.Run()
	if !ran {
		t.Fatal("post-restart body never ran")
	}
	if e.Now() < 40 {
		t.Fatalf("virtual time went backwards: %v", e.Now())
	}
}

// TestRestartAfterHaltAt checks the deadline-halt flavor: Restart must
// clear the deadline itself, or the next Run would halt immediately.
func TestRestartAfterHaltAt(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("w", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(10)
			th.Sync()
		}
	})
	e.HaltAt(35)
	e.Run()
	if !e.Halted() {
		t.Fatal("engine not halted at deadline")
	}
	e.Restart()
	e.Recycle()
	done := false
	th := e.Spawn("w2", func(th *Thread) { th.Advance(10); done = true })
	th.Bump(e.Now())
	e.Run()
	if !done {
		t.Fatal("post-restart body did not complete")
	}
}
