// Package sim provides the deterministic discrete-event engine that the
// UHTM reproduction runs on. It stands in for gem5's system-call
// emulation mode: every simulated hardware thread is a goroutine, but
// exactly one of them executes at any moment, and the scheduler always
// resumes the thread with the smallest virtual clock (ties broken by
// thread ID). Memory-system code called from a thread therefore needs no
// locking, interleavings are reproducible, and throughput numbers are a
// pure function of the workload, the configuration, and the seed.
//
// The protocol between a thread and the scheduler is:
//
//	t.Sync()        // yield; resume only when t is the min-clock thread
//	... perform an action against shared simulator state ...
//	t.Advance(lat)  // charge the action's latency to t's clock
//
// Actions thus occur in global virtual-time order.
//
// # Engines are self-contained
//
// An Engine and everything hanging off it (threads, the machine, the
// store, allocators, its RNG) form one isolated world: neither this
// package nor any simulator package below it keeps package-level
// mutable state. Distinct engines may therefore run concurrently on
// separate OS goroutines with no synchronization — internal/harness
// relies on this to fan experiment grids out across cores. The
// invariant callers must keep is the converse: a single engine is NOT
// internally parallel (Run is single-threaded by construction and
// asserts against reentrant use), and objects reachable from one
// engine must never be touched from another engine's world.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"uhtm/internal/trace"
)

// Time is a point in (or span of) virtual time, in picoseconds. The
// picosecond base keeps Table III's 1.5 ns L1 latency integral.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ErrHalted is delivered (via panic, recovered by the engine) to threads
// that are still live when the engine halts — e.g. at an injected power
// failure. Thread bodies should not catch it.
var ErrHalted = errors.New("sim: engine halted")

// Thread is one simulated hardware context. Thread methods must only be
// called from within the thread's own body function, except Suspend,
// Resume and Clock, which the (single) currently-running thread may call
// on any thread.
type Thread struct {
	id        int
	name      string
	eng       *Engine
	clock     Time
	resume    chan struct{}
	started   bool
	done      bool
	suspended bool
	body      func(*Thread)
}

// ID returns the thread's unique identifier (its core ID in the
// simulated machine).
func (t *Thread) ID() int { return t.id }

// Name returns the descriptive name given at spawn time.
func (t *Thread) Name() string { return t.name }

// Clock returns the thread's current virtual time.
func (t *Thread) Clock() Time { return t.clock }

// Engine returns the engine the thread belongs to.
func (t *Thread) Engine() *Engine { return t.eng }

// Advance charges d of computation or latency to the thread's clock
// without yielding control.
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	t.clock += d
}

// Sync yields to the scheduler and blocks until this thread is again the
// minimum-clock runnable thread. Every externally visible action (a
// memory access, a lock acquisition) must be preceded by Sync so that
// actions occur in virtual-time order.
func (t *Thread) Sync() {
	t.eng.yieldCh <- t
	_, ok := <-t.resume
	_ = ok
	if t.eng.halted {
		panic(haltSignal{})
	}
}

// WaitUntil repeatedly evaluates cond at poll intervals of the thread's
// virtual time until it reports true. It models spin-waiting (e.g. the
// pause loop in Algorithm 1 of the paper). cond runs while the thread
// holds the execution token, so it may read shared simulator state.
func (t *Thread) WaitUntil(cond func() bool, poll Time) {
	if poll <= 0 {
		poll = 10 * Nanosecond
	}
	for {
		t.Sync()
		if cond() {
			return
		}
		t.Advance(poll)
	}
}

// Bump charges d to t's clock from *outside* the thread — e.g. the abort
// protocol charging rollback latency to a victim transaction's core. It
// does not change suspension state.
func (t *Thread) Bump(d Time) {
	if d < 0 {
		panic("sim: negative bump")
	}
	t.clock += d
}

// Suspend marks t as descheduled (a context switch taking it off-core);
// the scheduler will not resume it until Resume is called. Suspending
// the currently-running thread takes effect at its next Sync.
func (t *Thread) Suspend() { t.suspended = true }

// Resume makes a suspended thread runnable again, no earlier than
// virtual time at. It is a no-op for running threads.
func (t *Thread) Resume(at Time) {
	t.suspended = false
	if t.clock < at {
		t.clock = at
	}
}

// Suspended reports whether the thread is currently descheduled.
func (t *Thread) Suspended() bool { return t.suspended }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.done }

type haltSignal struct{}

// Engine owns the simulated threads and the virtual-time scheduler.
type Engine struct {
	threads []*Thread
	yieldCh chan *Thread
	rng     *rand.Rand
	tracer  *trace.Recorder
	cur     *Thread
	halted  bool
	haltAt  Time
	now     Time
	running bool
}

// NewEngine returns an engine whose random decisions (backoff jitter,
// workload key choice) derive from seed. The same seed yields the same
// simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yieldCh: make(chan *Thread),
		rng:     rand.New(rand.NewSource(seed)),
		haltAt:  -1,
	}
}

// Rand returns the engine's deterministic random source. It must only be
// used from simulated threads (single-threaded access).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Now returns the clock of the most recently scheduled thread — the
// engine's notion of current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs (or, with nil, removes) the engine world's event
// recorder. Like the RNG, the recorder belongs to exactly one engine:
// it is written only while that engine's single running thread holds
// the execution token, so traces are deterministic and engine worlds
// stay isolated. Install before Run.
func (e *Engine) SetTracer(r *trace.Recorder) { e.tracer = r }

// Tracer returns the engine's event recorder; nil means tracing is
// disabled (the nil *Recorder is a valid no-op sink).
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// CurrentClock returns the live clock of the thread currently holding
// the execution token — finer than Now, which only advances at dispatch
// boundaries. Instrumentation uses it to stamp events with the exact
// virtual time a thread has accumulated mid-slice. Outside a dispatch
// it falls back to Now.
func (e *Engine) CurrentClock() Time {
	if e.cur != nil && !e.cur.done {
		return e.cur.clock
	}
	return e.now
}

// Spawn registers a new simulated thread. All threads must be spawned
// before Run is called.
func (e *Engine) Spawn(name string, body func(*Thread)) *Thread {
	if e.running {
		panic("sim: Spawn after Run")
	}
	t := &Thread{
		id:     len(e.threads),
		name:   name,
		eng:    e,
		resume: make(chan struct{}),
		body:   body,
	}
	e.threads = append(e.threads, t)
	return t
}

// Threads returns the spawned threads in ID order.
func (e *Engine) Threads() []*Thread { return e.threads }

// HaltAt schedules a hard stop (e.g. a power failure) the first time the
// scheduler would dispatch a thread at or beyond virtual time at.
func (e *Engine) HaltAt(at Time) { e.haltAt = at }

// HaltNow halts the engine immediately from within the currently running
// thread — an injected power failure at an exact protocol point, in
// contrast to HaltAt's time-based stop at a dispatch boundary. It
// unwinds the calling thread via the halt signal (so no simulator state
// past the call site is mutated); Run then unwinds every other live
// thread and returns. Must be called from simulated-thread context.
func (e *Engine) HaltNow() {
	if !e.running {
		panic("sim: HaltNow outside Run")
	}
	e.halted = true
	panic(haltSignal{})
}

// Halted reports whether the engine stopped before all threads finished.
func (e *Engine) Halted() bool { return e.halted }

// Run drives the simulation until every thread's body has returned, or
// until a halt deadline fires. It returns the final virtual time: the
// maximum clock reached by any thread. Run is not reentrant: one engine
// simulates one world, serially (parallelism across *engines* is safe —
// see the package comment).
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Engine.Run is not reentrant — use one engine per concurrent simulation")
	}
	e.running = true
	for {
		t := e.pick()
		if t == nil {
			break
		}
		if e.haltAt >= 0 && t.clock >= e.haltAt {
			e.halt()
			break
		}
		e.now = t.clock
		e.cur = t
		e.dispatch(t)
		if e.halted {
			// The dispatched thread called HaltNow: unwind the rest.
			e.halt()
			break
		}
	}
	e.running = false
	for _, t := range e.threads {
		if t.clock > e.now {
			e.now = t.clock
		}
	}
	return e.now
}

// pick returns the runnable thread with the smallest clock, or nil when
// every thread is done. It panics if the only remaining threads are
// suspended forever (a workload bug).
func (e *Engine) pick() *Thread {
	var best *Thread
	live := 0
	for _, t := range e.threads {
		if t.done {
			continue
		}
		live++
		if t.suspended {
			continue
		}
		if best == nil || t.clock < best.clock {
			best = t
		}
	}
	if best == nil && live > 0 {
		panic("sim: all live threads suspended — deadlock")
	}
	return best
}

// dispatch hands the execution token to t and waits for it to yield or
// finish.
func (e *Engine) dispatch(t *Thread) {
	if !t.started {
		t.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(haltSignal); !ok {
						panic(r)
					}
				}
				t.done = true
				e.yieldCh <- t
			}()
			t.body(t)
		}()
	} else {
		t.resume <- struct{}{}
	}
	<-e.yieldCh
}

// halt stops the engine: every live started thread is resumed once so it
// can unwind via the halt panic.
func (e *Engine) halt() {
	e.halted = true
	// Sort for determinism of unwind order (irrelevant to state, but
	// keeps goroutine scheduling tidy).
	ts := make([]*Thread, 0, len(e.threads))
	ts = append(ts, e.threads...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	for _, t := range ts {
		if t.started && !t.done {
			t.resume <- struct{}{}
			<-e.yieldCh
		}
	}
}
