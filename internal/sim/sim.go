// Package sim provides the deterministic discrete-event engine that the
// UHTM reproduction runs on. It stands in for gem5's system-call
// emulation mode: every simulated hardware thread is a goroutine, but
// exactly one of them executes at any moment, and the scheduler always
// resumes the thread with the smallest virtual clock (ties broken by
// thread ID). Memory-system code called from a thread therefore needs no
// locking, interleavings are reproducible, and throughput numbers are a
// pure function of the workload, the configuration, and the seed.
//
// The protocol between a thread and the scheduler is:
//
//	t.Sync()        // yield; resume only when t is the min-clock thread
//	... perform an action against shared simulator state ...
//	t.Advance(lat)  // charge the action's latency to t's clock
//
// Actions thus occur in global virtual-time order.
//
// # The flat run queue
//
// Dispatch order is maintained incrementally in an indexed min-heap of
// runnable threads keyed by (clock, id) — see runQueue — instead of
// being rediscovered by an O(threads) scan on every yield. The thread
// holding the execution token is never queued; threads enter the queue
// when they yield or are Resumed and leave it when dispatched or
// Suspended, and Bump re-keys its target in place.
//
// Sync has a fast path: when the yielding thread is still strictly
// first in dispatch order (and no halt deadline intervenes), it keeps
// the token and returns immediately — no channel operation, no
// goroutine switch. This covers the long low-contention stretches of
// every workload, where one thread performs many consecutive actions
// before another catches up. The slow path hands the token directly to
// the next thread over that thread's own park channel; the goroutine
// running Engine.Run only wakes for termination, halt, deadlock or a
// propagated panic. Engine.Syncs and Engine.Dispatches count both
// paths, so the fast-path elision rate is observable and benchmarked.
//
// # Engines are self-contained
//
// An Engine and everything hanging off it (threads, the machine, the
// store, allocators, its RNG) form one isolated world: neither this
// package nor any simulator package below it keeps package-level
// mutable state. Distinct engines may therefore run concurrently on
// separate OS goroutines with no synchronization — internal/harness
// relies on this to fan experiment grids out across cores. The
// invariant callers must keep is the converse: a single engine is NOT
// internally parallel (Run is single-threaded by construction and
// asserts against reentrant use), and objects reachable from one
// engine must never be touched from another engine's world.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"uhtm/internal/trace"
)

// Time is a point in (or span of) virtual time, in picoseconds. The
// picosecond base keeps Table III's 1.5 ns L1 latency integral.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the duration in the largest fitting unit (ms/us/ns/ps).
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ErrHalted is delivered (via panic, recovered by the engine) to threads
// that are still live when the engine halts — e.g. at an injected power
// failure. Thread bodies should not catch it.
var ErrHalted = errors.New("sim: engine halted")

// Thread is one simulated hardware context. Thread methods must only be
// called from within the thread's own body function, except Suspend,
// Resume, Bump and Clock, which the (single) currently-running thread
// may call on any thread.
type Thread struct {
	id        int
	name      string
	eng       *Engine
	clock     Time
	park      chan struct{} // capacity-1 token: one pending unpark
	qi        int           // index in the engine run queue; -1 when unqueued
	started   bool
	done      bool
	suspended bool
	recycled  bool // slot reclaimed by Engine.Recycle; a stale handle
	body      func(*Thread)
}

// ID returns the thread's unique identifier (its core ID in the
// simulated machine).
func (t *Thread) ID() int { return t.id }

// Name returns the descriptive name given at spawn time.
func (t *Thread) Name() string { return t.name }

// Clock returns the thread's current virtual time.
func (t *Thread) Clock() Time { return t.clock }

// Engine returns the engine the thread belongs to.
func (t *Thread) Engine() *Engine { return t.eng }

// Advance charges d of computation or latency to the thread's clock
// without yielding control. It must only be called by the thread on
// itself (cross-thread clock charges go through Bump, which re-keys the
// run queue).
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	t.clock += d
}

// before reports whether t precedes u in dispatch order.
func (t *Thread) before(u *Thread) bool {
	return t.clock < u.clock || (t.clock == u.clock && t.id < u.id)
}

// Sync yields to the scheduler and blocks until this thread is again the
// minimum-clock runnable thread. Every externally visible action (a
// memory access, a lock acquisition) must be preceded by Sync so that
// actions occur in virtual-time order.
//
// Fast path: when the thread is still strictly first in dispatch order,
// Sync keeps the execution token and returns without a handoff.
func (t *Thread) Sync() {
	e := t.eng
	e.syncs++
	if !t.suspended && !e.halted && (e.haltAt < 0 || t.clock < e.haltAt) {
		if m := e.runq.min(); m == nil || t.before(m) {
			e.now = t.clock
			return
		}
	}
	if e.halted {
		panic(haltSignal{})
	}
	if !t.suspended {
		e.runq.push(t)
	}
	e.passToken()
	<-t.park
	if e.halted {
		panic(haltSignal{})
	}
}

// WaitUntil repeatedly evaluates cond at poll intervals of the thread's
// virtual time until it reports true. It models spin-waiting (e.g. the
// pause loop in Algorithm 1 of the paper). cond runs while the thread
// holds the execution token, so it may read shared simulator state.
func (t *Thread) WaitUntil(cond func() bool, poll Time) {
	if poll <= 0 {
		poll = 10 * Nanosecond
	}
	for {
		t.Sync()
		if cond() {
			return
		}
		t.Advance(poll)
	}
}

// Bump charges d to t's clock from *outside* the thread — e.g. the abort
// protocol charging rollback latency to a victim transaction's core. It
// does not change suspension state. If t is queued, its dispatch
// position is re-keyed in place.
func (t *Thread) Bump(d Time) {
	if d < 0 {
		panic("sim: negative bump")
	}
	t.clock += d
	if t.qi >= 0 {
		t.eng.runq.fix(t)
	}
}

// Suspend marks t as descheduled (a context switch taking it off-core);
// the scheduler will not resume it until Resume is called. Suspending
// the currently-running thread takes effect at its next Sync.
func (t *Thread) Suspend() {
	if t.suspended || t.done {
		return
	}
	t.suspended = true
	t.eng.runq.remove(t)
}

// Resume makes a suspended thread runnable again, no earlier than
// virtual time at. It is a no-op for threads that are not suspended —
// in particular it never moves a running thread's clock forward.
func (t *Thread) Resume(at Time) {
	if !t.suspended || t.done {
		return
	}
	t.suspended = false
	if t.clock < at {
		t.clock = at
	}
	// The current thread re-enters the queue at its next Sync; queued
	// membership for everyone else is restored here. Before Run, the
	// queue does not exist yet — Run enqueues every runnable thread.
	if t.eng.running && t != t.eng.cur {
		t.eng.runq.push(t)
	}
}

// Suspended reports whether the thread is currently descheduled.
func (t *Thread) Suspended() bool { return t.suspended }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.done }

type haltSignal struct{}

// wake is the reason a thread woke the goroutine running Engine.Run.
type wake uint8

const (
	wakeDone     wake = iota // every thread's body has returned
	wakeHalt                 // the next dispatch would cross the HaltAt deadline
	wakeDeadlock             // every live thread is suspended
	wakeAck                  // one thread finished unwinding after a halt
	wakePanicked             // a thread body panicked; Engine.panicVal holds the value
)

// Engine owns the simulated threads and the virtual-time scheduler.
type Engine struct {
	threads []*Thread
	runq    runQueue
	engCh   chan wake // threads -> Run goroutine; capacity 1, at most one in flight
	rng     *rand.Rand
	tracer  *trace.Recorder
	cur     *Thread
	halted  bool
	haltAt  Time
	now     Time
	running bool
	// panicVal carries a thread body's panic value to the Run goroutine,
	// so workload bugs surface on the caller's stack (where the harness
	// wraps them with the grid cell's identity) instead of killing the
	// process from a bare goroutine.
	panicVal any
	syncs    uint64 // total Sync calls (fast path + handoffs)
	handoffs uint64 // slow-path dispatches: park/unpark goroutine switches
	// free holds thread IDs reclaimed by Recycle, ascending; Spawn
	// reuses them before growing the thread table, so a long-lived
	// engine serving many short-lived bodies keeps a bounded core count.
	free []int
}

// NewEngine returns an engine whose random decisions (backoff jitter,
// workload key choice) derive from seed. The same seed yields the same
// simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{
		engCh:  make(chan wake, 1),
		rng:    rand.New(rand.NewSource(seed)),
		haltAt: -1,
	}
}

// Rand returns the engine's deterministic random source. It must only be
// used from simulated threads (single-threaded access).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Now returns the clock of the most recently scheduled thread — the
// engine's notion of current virtual time.
func (e *Engine) Now() Time { return e.now }

// Syncs returns the total number of Sync calls across the simulation.
func (e *Engine) Syncs() uint64 { return e.syncs }

// Dispatches returns the number of slow-path scheduler handoffs — Sync
// calls (plus thread starts and finishes) that transferred the
// execution token between goroutines. Syncs minus Dispatches is the
// fast-path elision count; the ratio is a machine-independent measure
// of scheduler overhead.
func (e *Engine) Dispatches() uint64 { return e.handoffs }

// SetTracer installs (or, with nil, removes) the engine world's event
// recorder. Like the RNG, the recorder belongs to exactly one engine:
// it is written only while that engine's single running thread holds
// the execution token, so traces are deterministic and engine worlds
// stay isolated. Install before Run.
func (e *Engine) SetTracer(r *trace.Recorder) { e.tracer = r }

// Tracer returns the engine's event recorder; nil means tracing is
// disabled (the nil *Recorder is a valid no-op sink).
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// CurrentClock returns the live clock of the thread currently holding
// the execution token — finer than Now, which only advances at dispatch
// boundaries. Instrumentation uses it to stamp events with the exact
// virtual time a thread has accumulated mid-slice. Outside a dispatch
// it falls back to Now.
func (e *Engine) CurrentClock() Time {
	if e.cur != nil && !e.cur.done {
		return e.cur.clock
	}
	return e.now
}

// Spawn registers a new simulated thread. All threads must be spawned
// outside Run (an engine whose Run has returned may spawn again — see
// Recycle — before its next Run). IDs reclaimed by Recycle are reused,
// lowest first, before the thread table grows.
func (e *Engine) Spawn(name string, body func(*Thread)) *Thread {
	if e.running {
		panic("sim: Spawn after Run")
	}
	t := &Thread{
		name: name,
		eng:  e,
		park: make(chan struct{}, 1),
		qi:   -1,
		body: body,
	}
	if len(e.free) > 0 {
		t.id = e.free[0]
		e.free = e.free[1:]
		e.threads[t.id] = t
	} else {
		t.id = len(e.threads)
		e.threads = append(e.threads, t)
	}
	return t
}

// Recycle reclaims the slot (and therefore the ID) of every finished
// thread, making those IDs available to subsequent Spawns. It returns
// the number of slots reclaimed. This is what lets one long-lived
// engine serve an unbounded stream of short-lived bodies on a bounded
// set of simulated cores: between Runs, finished workers are recycled
// and fresh bodies take over their core IDs. Handles to recycled
// threads are stale — the engine no longer dispatches them, and
// Threads() reports the replacement once one is spawned. Must be
// called outside Run.
func (e *Engine) Recycle() int {
	if e.running {
		panic("sim: Recycle during Run")
	}
	n := 0
	for _, t := range e.threads {
		if t.done && !t.recycled {
			t.recycled = true
			e.free = append(e.free, t.id)
			n++
		}
	}
	if n > 0 {
		// Reclaimed IDs are handed out lowest-first for determinism.
		sortInts(e.free)
	}
	return n
}

// sortInts is a tiny insertion sort: the free list is short (bounded by
// the core count) and usually already ordered.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Cancel marks a thread that has never been dispatched as finished
// without running its body, so Recycle can reclaim its slot. After a
// halt unwinds a batch, the threads the scheduler never reached are
// exactly the ones Cancel is for — their work must not leak into the
// engine's next run. It is a no-op for started or already finished
// threads and must be called outside Run.
func (t *Thread) Cancel() {
	if t.eng.running {
		panic("sim: Cancel during Run")
	}
	if t.started || t.done {
		return
	}
	t.done = true
}

// Restart clears a halt so a stopped engine can run again — the
// simulated machine rebooting after a power failure (HaltNow or a
// HaltAt deadline). The halted run unwound every live thread, so
// post-restart work arrives as fresh bodies (typically spawned into
// Recycled slots); virtual time is preserved and keeps advancing from
// where the failure struck. Must be called outside Run.
func (e *Engine) Restart() {
	if e.running {
		panic("sim: Restart during Run")
	}
	e.halted = false
	e.haltAt = -1
}

// Threads returns the spawned threads in ID order.
func (e *Engine) Threads() []*Thread { return e.threads }

// HaltAt schedules a hard stop (e.g. a power failure) the first time the
// scheduler would dispatch a thread at or beyond virtual time at.
func (e *Engine) HaltAt(at Time) { e.haltAt = at }

// HaltNow halts the engine immediately from within the currently running
// thread — an injected power failure at an exact protocol point, in
// contrast to HaltAt's time-based stop at a dispatch boundary. It
// unwinds the calling thread via the halt signal (so no simulator state
// past the call site is mutated); Run then unwinds every other live
// thread and returns. Must be called from simulated-thread context.
func (e *Engine) HaltNow() {
	if !e.running {
		panic("sim: HaltNow outside Run")
	}
	e.halted = true
	panic(haltSignal{})
}

// Halted reports whether the engine stopped before all threads finished.
func (e *Engine) Halted() bool { return e.halted }

// Run drives the simulation until every thread's body has returned, or
// until a halt deadline fires. It returns the final virtual time: the
// maximum clock reached by any thread. Run is not reentrant: one engine
// simulates one world, serially (parallelism across *engines* is safe —
// see the package comment).
//
// A deadlock (every live thread suspended) or a panic escaping a thread
// body propagates as a panic from Run itself, on the caller's
// goroutine; the simulated threads parked at that moment are abandoned.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Engine.Run is not reentrant — use one engine per concurrent simulation")
	}
	e.running = true
	e.runq = e.runq[:0]
	for _, t := range e.threads {
		t.qi = -1
		if !t.done && !t.suspended {
			e.runq.push(t)
		}
	}
	switch u := e.runq.min(); {
	case u == nil:
		if e.liveCount() > 0 {
			panic(e.deadlockReport())
		}
		// Nothing to run (no threads, or all already done).
	case e.haltAt >= 0 && u.clock >= e.haltAt:
		e.halted = true // deadline before the first dispatch: nothing to unwind
	default:
		e.dispatch(e.runq.pop())
	loop:
		for {
			switch <-e.engCh {
			case wakeDone:
				break loop
			case wakeHalt, wakeAck: // wakeAck here: the HaltNow caller unwound itself
				e.halt()
				break loop
			case wakeDeadlock:
				panic(e.deadlockReport())
			case wakePanicked:
				panic(e.panicVal)
			}
		}
	}
	e.running = false
	e.cur = nil
	for _, t := range e.threads {
		if t.clock > e.now {
			e.now = t.clock
		}
	}
	return e.now
}

// liveCount counts threads whose bodies have not returned.
func (e *Engine) liveCount() int {
	n := 0
	for _, t := range e.threads {
		if !t.done {
			n++
		}
	}
	return n
}

// deadlockReport builds the all-live-threads-suspended panic message: a
// deterministic per-thread snapshot (ID order), so the harness's
// grid-cell panic wrapping produces a report that names the stuck
// threads instead of a bare one-liner.
func (e *Engine) deadlockReport() string {
	var b strings.Builder
	b.WriteString("sim: all live threads suspended — deadlock")
	for _, t := range e.threads {
		state := "runnable"
		switch {
		case t.done:
			state = "done"
		case t.suspended:
			state = "suspended"
		}
		fmt.Fprintf(&b, "\n  thread %d %q clock=%v state=%s", t.id, t.name, t.clock, state)
	}
	return b.String()
}

// passToken hands the execution token to the next queued thread, or
// wakes the Run goroutine when the simulation has finished, deadlocked,
// or reached the halt deadline. It is called by the thread currently
// holding the token, which must immediately park (Sync) or return
// (thread exit).
func (e *Engine) passToken() {
	u := e.runq.min()
	if u == nil {
		if e.liveCount() > 0 {
			e.engCh <- wakeDeadlock
		} else {
			e.engCh <- wakeDone
		}
		return
	}
	if e.haltAt >= 0 && u.clock >= e.haltAt {
		// Leave u queued: halt unwinds threads directly, not via the queue.
		e.engCh <- wakeHalt
		return
	}
	e.dispatch(e.runq.pop())
}

// dispatch gives the execution token to t, starting its goroutine on
// first dispatch and unparking it otherwise.
func (e *Engine) dispatch(t *Thread) {
	e.handoffs++
	e.now = t.clock
	e.cur = t
	if !t.started {
		t.started = true
		go e.threadMain(t)
		return
	}
	t.park <- struct{}{}
}

// threadMain is the goroutine body of a simulated thread: it runs the
// user body and, on return (normal, halt unwind, or panic), passes the
// token on or reports to the Run goroutine.
func (e *Engine) threadMain(t *Thread) {
	defer func() {
		r := recover()
		if _, ok := r.(haltSignal); ok {
			r = nil
		}
		t.done = true
		e.runq.remove(t) // unwinding threads may still be queued
		switch {
		case r != nil:
			e.panicVal = r
			e.engCh <- wakePanicked
		case e.halted:
			e.engCh <- wakeAck
		default:
			e.passToken()
		}
	}()
	t.body(t)
}

// halt stops the engine: every live started thread is unparked once, in
// thread-ID order (threads are spawned in ID order, so no sort is
// needed), so it can unwind via the halt panic; halt waits for each
// unwind to finish before waking the next thread. Threads never started
// are left unstarted.
func (e *Engine) halt() {
	e.halted = true
	for _, t := range e.threads {
		if t.started && !t.done {
			t.park <- struct{}{}
			if <-e.engCh == wakePanicked {
				// A body panicked while unwinding (it must not catch the
				// halt signal, but its own defers can fail): surface the
				// value on the caller's goroutine like any other body
				// panic, abandoning the threads not yet unwound.
				panic(e.panicVal)
			}
		}
	}
}
