package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestResumeNoOpOnRunningThread pins the documented Resume contract: a
// thread that was never suspended must be untouched — in particular its
// clock must not be clamped forward, which under the old scheduler
// could teleport a running thread past every other thread and reorder
// the whole simulation.
func TestResumeNoOpOnRunningThread(t *testing.T) {
	e := NewEngine(1)
	var worker *Thread
	var clocks []Time
	worker = e.Spawn("worker", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Sync()
			clocks = append(clocks, th.Clock())
			th.Advance(10 * Nanosecond)
		}
	})
	e.Spawn("ctrl", func(th *Thread) {
		th.Sync()
		th.Advance(5 * Nanosecond)
		th.Sync()
		// The worker is running (never suspended); this must change
		// nothing even though `at` is far in the future.
		worker.Resume(Second)
		for i := 0; i < 5; i++ {
			th.Sync()
			th.Advance(10 * Nanosecond)
		}
	})
	e.Run()
	want := []Time{0, 10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond, 40 * Nanosecond}
	if !reflect.DeepEqual(clocks, want) {
		t.Errorf("worker clocks = %v, want %v (Resume on a running thread must be a no-op)", clocks, want)
	}
	if got := worker.Clock(); got != 50*Nanosecond {
		t.Errorf("worker final clock = %v, want 50ns", got)
	}
}

// TestResumeDoneThreadNoOp: resuming a finished thread must not mark it
// runnable or queue it.
func TestResumeDoneThreadNoOp(t *testing.T) {
	e := NewEngine(1)
	var short *Thread
	short = e.Spawn("short", func(th *Thread) { th.Sync() })
	e.Spawn("long", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Sync()
			th.Advance(Nanosecond)
		}
		short.Resume(0)
	})
	e.Run()
	if !short.Done() || short.Suspended() {
		t.Errorf("short: done=%v suspended=%v after Resume on a done thread", short.Done(), short.Suspended())
	}
}

// TestDeadlockReportSnapshot asserts the all-suspended panic carries a
// deterministic per-thread snapshot, so the harness's grid-cell panic
// wrapping yields an actionable report.
func TestDeadlockReportSnapshot(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("alpha", func(th *Thread) {
		th.Sync()
		th.Advance(7 * Nanosecond)
		th.Suspend()
		th.Sync()
	})
	e.Spawn("beta", func(th *Thread) {
		th.Sync()
		th.Advance(3 * Nanosecond)
		th.Suspend()
		th.Sync()
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on all-suspended deadlock")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("deadlock panic value is %T, want string", r)
		}
		for _, want := range []string{
			"all live threads suspended",
			`thread 0 "alpha" clock=7.000ns state=suspended`,
			`thread 1 "beta" clock=3.000ns state=suspended`,
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock report missing %q:\n%s", want, msg)
			}
		}
	}()
	e.Run()
}

// TestDeadlockBeforeFirstDispatch: the snapshot must also cover the
// degenerate case where every thread is suspended before Run starts.
func TestDeadlockBeforeFirstDispatch(t *testing.T) {
	e := NewEngine(1)
	th := e.Spawn("stuck", func(th *Thread) { th.Sync() })
	th.Suspend()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic with every thread pre-suspended")
		}
		if msg, _ := r.(string); !strings.Contains(msg, `thread 0 "stuck"`) {
			t.Errorf("deadlock report missing thread snapshot: %v", r)
		}
	}()
	e.Run()
}

// TestBodyPanicSurfacesFromRun: a panic escaping a thread body must
// propagate out of Run on the caller's goroutine (where the harness
// wraps it), not kill the process from a bare goroutine.
func TestBodyPanicSurfacesFromRun(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("calm", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Sync()
			th.Advance(Nanosecond)
		}
	})
	e.Spawn("bomb", func(th *Thread) {
		th.Sync()
		th.Advance(5 * Nanosecond)
		th.Sync()
		panic("boom at 5ns")
	})
	defer func() {
		if r := recover(); r != "boom at 5ns" {
			t.Errorf("recovered %v, want the body's panic value", r)
		}
	}()
	e.Run()
}

// TestSyncFastPathElision: a single-thread engine must elide virtually
// every handoff — each Sync after the first finds the thread alone and
// strictly minimal, so the token never moves.
func TestSyncFastPathElision(t *testing.T) {
	e := NewEngine(1)
	const steps = 1000
	e.Spawn("solo", func(th *Thread) {
		for i := 0; i < steps; i++ {
			th.Sync()
			th.Advance(Nanosecond)
		}
	})
	e.Run()
	if e.Syncs() < steps {
		t.Errorf("Syncs = %d, want >= %d", e.Syncs(), steps)
	}
	// One dispatch to start the thread; everything else fast-paths.
	if e.Dispatches() != 1 {
		t.Errorf("Dispatches = %d, want 1 (start only)", e.Dispatches())
	}
}

// schedStressLog runs the randomized suspend/resume torture mix with the
// given seed and halt deadline (-1 for none) and returns the event log.
// Workers randomly advance, suspend their neighbor, or suspend
// themselves; a dedicated resumer thread (never suspended, so the
// engine cannot deadlock) wakes them back up until all workers finish.
func schedStressLog(seed int64, haltAt Time) (*Engine, []string) {
	e := NewEngine(seed)
	var log []string
	const nw = 6
	workers := make([]*Thread, nw)
	for i := 0; i < nw; i++ {
		i := i
		workers[i] = e.Spawn(fmt.Sprintf("w%d", i), func(th *Thread) {
			for j := 0; j < 120; j++ {
				th.Sync()
				log = append(log, fmt.Sprintf("w%d step %d @%v", i, j, th.Clock()))
				r := e.Rand().Intn(12)
				th.Advance(Time(r+1) * Nanosecond)
				switch r {
				case 0:
					workers[(i+1)%nw].Suspend()
				case 1:
					th.Suspend() // takes effect at the next Sync
				case 2:
					// Resume a random worker; a no-op unless suspended.
					workers[e.Rand().Intn(nw)].Resume(th.Clock())
				case 3:
					// Cross-thread clock charge re-keys the queue.
					workers[e.Rand().Intn(nw)].Bump(Time(e.Rand().Intn(5)) * Nanosecond)
				}
			}
		})
	}
	e.Spawn("resumer", func(th *Thread) {
		for {
			th.Sync()
			allDone := true
			for _, w := range workers {
				if w.Done() {
					continue
				}
				allDone = false
				if w.Suspended() {
					w.Resume(th.Clock())
				}
			}
			if allDone {
				return
			}
			th.Advance(2 * Nanosecond)
		}
	})
	if haltAt >= 0 {
		e.HaltAt(haltAt)
	}
	e.Run()
	return e, log
}

// TestSchedulerStress is the randomized torture test: the full
// suspend/resume/bump mix must terminate, be deterministic for a given
// seed, and produce a monotone virtual-time order — under `go test
// -race` this also proves the token discipline keeps the engine
// single-threaded.
func TestSchedulerStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		e, log := schedStressLog(seed, -1)
		for _, th := range e.Threads() {
			if !th.Done() {
				t.Fatalf("seed %d: thread %s not done", seed, th.Name())
			}
		}
		if e.Syncs() <= e.Dispatches() {
			t.Errorf("seed %d: no fast-path elisions (syncs=%d dispatches=%d)", seed, e.Syncs(), e.Dispatches())
		}
		_, again := schedStressLog(seed, -1)
		if !reflect.DeepEqual(log, again) {
			t.Fatalf("seed %d: two runs diverged (%d vs %d events)", seed, len(log), len(again))
		}
	}
}

// TestSchedulerStressHalt runs the same mix against a mid-run HaltAt:
// every started thread must unwind, and the run must stay deterministic.
func TestSchedulerStressHalt(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		e, log := schedStressLog(seed, 200*Nanosecond)
		if !e.Halted() {
			t.Fatalf("seed %d: engine did not halt", seed)
		}
		for _, th := range e.Threads() {
			if th.started && !th.Done() {
				t.Fatalf("seed %d: started thread %s not unwound", seed, th.Name())
			}
		}
		_, again := schedStressLog(seed, 200*Nanosecond)
		if !reflect.DeepEqual(log, again) {
			t.Fatalf("seed %d: halted runs diverged", seed)
		}
	}
}

// TestRunQueueOrder drives the heap through pushes, pops, removes and
// re-keys and asserts dispatch order always matches a naive scan.
func TestRunQueueOrder(t *testing.T) {
	mk := func(id int, clock Time) *Thread { return &Thread{id: id, clock: clock, qi: -1} }
	var q runQueue
	ts := []*Thread{
		mk(0, 50), mk(1, 10), mk(2, 10), mk(3, 70), mk(4, 0), mk(5, 30),
	}
	for _, th := range ts {
		q.push(th)
	}
	if q.min() != ts[4] {
		t.Fatalf("min = thread %d, want 4", q.min().id)
	}
	q.remove(ts[4])
	if ts[4].qi != -1 {
		t.Fatalf("removed thread keeps qi %d", ts[4].qi)
	}
	ts[3].clock = 5 // re-key to the front
	q.fix(ts[3])
	ts[5].clock = 100 // re-key to the back
	q.fix(ts[5])
	want := []int{3, 1, 2, 0, 5} // (5,id3) (10,id1) (10,id2) (50,id0) (100,id5)
	for i, id := range want {
		th := q.pop()
		if th.id != id {
			t.Fatalf("pop %d = thread %d (clock %v), want thread %d", i, th.id, th.clock, id)
		}
		if th.qi != -1 {
			t.Fatalf("popped thread %d keeps qi %d", th.id, th.qi)
		}
	}
	if q.min() != nil {
		t.Fatal("queue not empty after popping everything")
	}
	// remove on an unqueued thread is a no-op.
	q.remove(ts[0])
}
