package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{82 * Nanosecond, "82.000ns"},
		{3 * Microsecond, "3.000us"},
		{2 * Millisecond, "2.000ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Errorf("Nanoseconds = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v, want 2", got)
	}
}

// TestMinClockOrder verifies that actions interleave strictly by virtual
// time: each thread appends (its ID, clock) on every step, and the
// resulting global log must be sorted by clock (ties by thread ID).
func TestMinClockOrder(t *testing.T) {
	type ev struct {
		id    int
		clock Time
	}
	var log []ev
	e := NewEngine(1)
	// Thread i advances by a distinct stride so clocks interleave.
	strides := []Time{3, 5, 7, 11}
	for i := 0; i < 4; i++ {
		stride := strides[i]
		e.Spawn("t", func(th *Thread) {
			for j := 0; j < 50; j++ {
				th.Sync()
				log = append(log, ev{th.ID(), th.Clock()})
				th.Advance(stride * Nanosecond)
			}
		})
	}
	e.Run()
	if len(log) != 200 {
		t.Fatalf("got %d events, want 200", len(log))
	}
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if b.clock < a.clock || (b.clock == a.clock && b.id < a.id) {
			t.Fatalf("event %d (%v) out of order after %v", i, b, a)
		}
	}
}

func TestRunReturnsFinalTime(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("a", func(th *Thread) {
		th.Sync()
		th.Advance(100 * Nanosecond)
		th.Sync()
	})
	end := e.Run()
	if end != 100*Nanosecond {
		t.Errorf("final time = %v, want 100ns", end)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		var order []int
		e := NewEngine(42)
		for i := 0; i < 3; i++ {
			e.Spawn("t", func(th *Thread) {
				for j := 0; j < 20; j++ {
					th.Sync()
					order = append(order, th.ID())
					th.Advance(Time(e.Rand().Intn(10)+1) * Nanosecond)
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWaitUntil(t *testing.T) {
	e := NewEngine(1)
	ready := false
	var observed Time
	e.Spawn("setter", func(th *Thread) {
		th.Sync()
		th.Advance(500 * Nanosecond)
		th.Sync()
		ready = true
	})
	e.Spawn("waiter", func(th *Thread) {
		th.WaitUntil(func() bool { return ready }, 10*Nanosecond)
		observed = th.Clock()
	})
	e.Run()
	if observed < 500*Nanosecond {
		t.Errorf("waiter proceeded at %v, before condition set at 500ns", observed)
	}
}

func TestSuspendResume(t *testing.T) {
	e := NewEngine(1)
	var worker *Thread
	hits := 0
	worker = e.Spawn("worker", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Sync()
			hits++
			th.Advance(10 * Nanosecond)
		}
	})
	e.Spawn("ctrl", func(th *Thread) {
		th.Sync()
		worker.Suspend()
		th.Advance(1000 * Nanosecond)
		th.Sync()
		worker.Resume(th.Clock())
	})
	e.Run()
	if hits != 3 {
		t.Errorf("worker ran %d steps, want 3", hits)
	}
	if worker.Clock() < 1000*Nanosecond {
		t.Errorf("worker finished at %v; resume should have pushed it past 1000ns", worker.Clock())
	}
}

func TestHaltAt(t *testing.T) {
	e := NewEngine(1)
	steps := 0
	e.Spawn("t", func(th *Thread) {
		for {
			th.Sync()
			steps++
			th.Advance(10 * Nanosecond)
		}
	})
	e.HaltAt(105 * Nanosecond)
	e.Run()
	if !e.Halted() {
		t.Fatal("engine did not halt")
	}
	// Thread dispatches at clocks 0,10,...,100 then 110 >= 105 halts.
	if steps != 11 {
		t.Errorf("steps = %d, want 11", steps)
	}
}

func TestHaltUnwindsAllThreads(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 8; i++ {
		e.Spawn("t", func(th *Thread) {
			for {
				th.Sync()
				th.Advance(Nanosecond)
			}
		})
	}
	e.HaltAt(50 * Nanosecond)
	e.Run()
	for _, th := range e.Threads() {
		if !th.Done() {
			t.Errorf("thread %d not unwound after halt", th.ID())
		}
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("t", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Spawn during Run did not panic")
			}
		}()
		e.Spawn("late", func(*Thread) {})
	})
	e.Run()
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("t", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("negative Advance did not panic")
			}
		}()
		th.Advance(-1)
	})
	e.Run()
}

// Property: for any set of positive strides, the engine's final time is
// the maximum over threads of steps*stride, and every thread completes.
func TestQuickFinalTime(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		e := NewEngine(7)
		var max Time
		for _, r := range raw {
			stride := Time(int(r)%97+1) * Nanosecond
			total := stride * 10
			if total > max {
				max = total
			}
			e.Spawn("t", func(th *Thread) {
				for j := 0; j < 10; j++ {
					th.Sync()
					th.Advance(stride)
				}
			})
		}
		end := e.Run()
		if end != max {
			return false
		}
		for _, th := range e.Threads() {
			if !th.Done() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
