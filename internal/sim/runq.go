package sim

// runQueue is an indexed binary min-heap of runnable threads ordered by
// (clock, id) — the engine's dispatch order. Every queued thread caches
// its heap position in Thread.qi, so removal (Suspend) and re-keying
// after an external clock change (Bump) are O(log n) with no search;
// qi is -1 while a thread is unqueued (running, suspended or done).
// The backing slice is reused across pushes, so a warmed-up queue
// allocates nothing.
type runQueue []*Thread

// min returns the thread that would be dispatched next, or nil when the
// queue is empty. The queue is not modified.
func (q runQueue) min() *Thread {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// push enqueues t. t must not already be queued.
func (q *runQueue) push(t *Thread) {
	*q = append(*q, t)
	t.qi = len(*q) - 1
	q.up(t.qi)
}

// pop removes and returns the minimum thread. The queue must not be
// empty.
func (q *runQueue) pop() *Thread {
	h := *q
	t := h[0]
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		h[0].qi = 0
	}
	h[last] = nil
	*q = h[:last]
	if last > 0 {
		q.down(0)
	}
	t.qi = -1
	return t
}

// remove unlinks t from an arbitrary queue position; it is a no-op when
// t is not queued.
func (q *runQueue) remove(t *Thread) {
	i := t.qi
	if i < 0 {
		return
	}
	h := *q
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].qi = i
	}
	h[last] = nil
	*q = h[:last]
	if i != last {
		q.fix(h[i])
	}
	t.qi = -1
}

// fix restores heap order around t after its clock changed in place.
func (q runQueue) fix(t *Thread) {
	if !q.down(t.qi) {
		q.up(t.qi)
	}
}

func (q runQueue) less(i, j int) bool {
	a, b := q[i], q[j]
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (q runQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].qi, q[j].qi = i, j
}

func (q runQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts index i toward the leaves and reports whether it moved.
func (q runQueue) down(i int) bool {
	start := i
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q.swap(m, i)
		i = m
	}
	return i > start
}
