package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/wal"
)

// TestReclaimUnderSustainedCommitLoad is the liveness half of the
// reclamation-starvation fix: the old ReclaimLogs deferred wholesale
// whenever it observed any core mid-commit, so any schedule with
// overlapping commit windows could repeat the deferral until a redo
// ring filled and wal.Append panicked ("reclamation fell behind").
// Incremental reclamation never defers — the committed prefix below the
// low-water mark truncates on every pass — so tiny rings must survive a
// sustained all-core commit storm regardless of schedule, and a crash
// at the end must still recover the exact committed state. (The
// schedule-level discriminator against the old deferral is
// TestReclaimProgressWhileMidCommit below.)
func TestReclaimUnderSustainedCommitLoad(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	cfg := m.Config()
	// Shrink the redo rings so they would fill within a few dozen
	// commits per core without reclamation progress (the commit storm
	// below appends writesPerTx+1 records per commit). The undo rings
	// stay production-sized; they reclaim per transaction.
	const ringBytes = 8 << 10 // ~78 record slots per ring
	redoBase := mem.NVMLogBase + mem.LineSize + ckptRingBytes(cfg.Cores)
	m.redoRings = wal.NewRings(m.store, redoBase, mem.Addr(ringBytes*cfg.Cores), cfg.Cores, true)

	const txPerCore = 400
	const writesPerTx = 4
	al := mem.NewAllocator(mem.NVM)
	pools := make([]mem.Addr, cfg.Cores)
	for i := range pools {
		pools[i] = al.AllocLines(writesPerTx)
	}
	for core := 0; core < cfg.Cores; core++ {
		core := core
		eng.Spawn("w", func(th *sim.Thread) {
			// Stagger the cores so commit marks interleave across the
			// rings in global-LSN order rather than in lockstep waves —
			// the post-crash replay below then has to merge a non-aligned
			// LSN sequence from all four rings.
			th.Advance(sim.Time(core) * 977 * 1000)
			c := m.NewCtx(th, 0)
			for k := 0; k < txPerCore; k++ {
				k := k
				c.Run(func(tx *Tx) {
					for w := mem.Addr(0); w < writesPerTx; w++ {
						tx.WriteU64(pools[core]+w*mem.LineSize, uint64(core)<<32|uint64(k))
					}
				})
			}
		})
	}
	eng.Run() // a deferred pass would fill a ring and panic in here

	if got := int(m.Stats().Commits); got != cfg.Cores*txPerCore {
		t.Fatalf("commits = %d, want %d", got, cfg.Cores*txPerCore)
	}
	for i := 0; i < m.redoRings.Count(); i++ {
		ring := m.redoRings.ForCore(i)
		if ring.Len() >= ring.Slots() {
			t.Errorf("ring %d still full after run: %d/%d", i, ring.Len(), ring.Slots())
		}
	}

	m.Crash()
	m.Recover()
	for core := 0; core < cfg.Cores; core++ {
		want := uint64(core)<<32 | uint64(txPerCore-1)
		for w := mem.Addr(0); w < writesPerTx; w++ {
			if got := m.Store().ReadU64(pools[core] + w*mem.LineSize); got != want {
				t.Errorf("core %d line %d = %#x after recovery, want %#x", core, w, got, want)
			}
		}
	}
}

// TestReclaimProgressWhileMidCommit pins the incremental guarantee
// directly: a reclamation pass with one core mid-commit still truncates
// every other core's committed prefix — it no longer defers wholesale —
// while the mid-commit transaction's records survive above the
// checkpoint's low-water mark.
func TestReclaimProgressWhileMidCommit(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(4)

	// Core 0 commits a few transactions, filling its ring with dead
	// records.
	eng.Spawn("committed", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for k := 0; k < 4; k++ {
			k := k
			c.Run(func(tx *Tx) { tx.WriteU64(a, uint64(k)) })
		}
	})
	eng.Run()

	// Fake a mid-commit transaction on core 1: mark appended, write-set
	// not yet registered in pendingNVM (exactly the committing window).
	ring1 := m.redoRings.ForCore(1)
	ring1.Append(wal.Record{Type: wal.RecWrite, TxID: 999, Addr: a + mem.LineSize, Data: mem.Line{1}})
	lsn := m.NextLSN()
	ring1.Append(wal.Record{Type: wal.RecCommit, TxID: 999, LSN: lsn})
	tx := &Tx{id: 999, core: 1, committing: true, commitLSN: lsn}
	m.byCore[1] = tx

	ring0 := m.redoRings.ForCore(0)
	if ring0.Len() == 0 {
		t.Fatal("setup: core 0 ring empty")
	}
	m.ReclaimLogs()
	m.byCore[1] = nil

	if ring0.Len() != 0 {
		t.Errorf("core 0 ring kept %d records despite core 1 mid-commit", ring0.Len())
	}
	if ring1.Len() != 2 {
		t.Errorf("mid-commit records truncated: ring 1 has %d records, want 2", ring1.Len())
	}
	if ckpt := m.Checkpoint(); ckpt >= lsn {
		t.Errorf("checkpoint low-water %d covers the mid-commit LSN %d", ckpt, lsn)
	}
}

// TestRecoverReadsDurableOnly is the Recover-without-Crash regression
// test: recovery evidence (the checkpoint cell and the checkpoint ring)
// must be read from the durable image, so tampering with the *live*
// copies — state a real power failure would discard — changes nothing.
// The old code read the cell via the live image and was correct only
// because Crash() happened to reset live to durable first.
func TestRecoverReadsDurableOnly(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(2)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) { tx.WriteU64(a, 1) })
		c.Run(func(tx *Tx) { tx.WriteU64(a+mem.LineSize, 2) })
	})
	eng.Run()
	m.ReclaimLogs() // durable checkpoint covering both commits

	wantCkpt := m.Checkpoint()
	if wantCkpt == 0 {
		t.Fatal("setup: no durable checkpoint")
	}

	// Tamper with the live image only: clobber the cell and the first
	// checkpoint-ring record. PokeLine/WriteU64 never touch durability.
	m.Store().WriteU64(m.ckptAddr, 0xDEAD)
	var junk mem.Line
	for i := range junk {
		junk[i] = 0x5A
	}
	m.Store().PokeLine(mem.NVMLogBase+2*mem.LineSize, &junk)

	if got := m.Checkpoint(); got != wantCkpt {
		t.Errorf("Checkpoint() followed live tampering: got %d, want %d", got, wantCkpt)
	}
	pre := m.Recover() // no Crash: must act on durable evidence anyway
	if pre.CheckpointLSN != wantCkpt {
		t.Errorf("Recover without Crash used checkpoint %d, want %d", pre.CheckpointLSN, wantCkpt)
	}

	m.Crash()
	post := m.Recover()
	if pre.CheckpointLSN != post.CheckpointLSN || pre.ReplayStats != post.ReplayStats {
		t.Errorf("recovery differs across Crash: pre %+v, post %+v", pre, post)
	}
}
