package core

import (
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// installTracer caches the engine's recorder on the machine and wires
// it into the subsystems that emit their own events: the store (NVM
// persists), both log-ring sets (appends/truncations), the DRAM cache
// (fills/drains/drops), and lookup hooks on the L1s and LLC (hit/miss
// events). Called from NewMachine when the engine carries a recorder;
// tracing is observational only — it must never change simulated state
// or timing.
func (m *Machine) installTracer(tr *trace.Recorder) {
	m.tr = tr
	now := func() int64 { return int64(m.eng.CurrentClock()) }
	m.store.SetTracer(tr, now)
	m.undoRings.SetTracer(tr, now)
	m.redoRings.SetTracer(tr, now)
	m.dcache.SetTracer(tr, now)
	for i := range m.l1 {
		core := i
		m.l1[i].SetLookupHook(func(a mem.Addr, hit bool) {
			k := trace.EvL1Miss
			if hit {
				k = trace.EvL1Hit
			}
			tr.Emit(now(), core, k, 0, uint64(a), 0, 0)
		})
	}
	m.llc.SetLookupHook(func(a mem.Addr, hit bool) {
		k := trace.EvLLCMiss
		if hit {
			k = trace.EvLLCHit
		}
		tr.Emit(now(), -1, k, 0, uint64(a), 0, 0)
	})
}

// TraceEvents returns the machine's recorded event stream, or nil when
// tracing is disabled.
func (m *Machine) TraceEvents() []trace.Event { return m.tr.Events() }

// emit records one machine-level event at the current virtual time. A
// no-op when tracing is disabled; hot paths should still pre-check
// m.tr != nil when computing arguments costs anything.
func (m *Machine) emit(k trace.Kind, core int, txid uint64, addr mem.Addr, arg, arg2 uint64) {
	if m.tr == nil {
		return
	}
	m.tr.Emit(int64(m.eng.CurrentClock()), core, k, txid, uint64(addr), arg, arg2)
}

// noteSigOccupancy samples an overflowed transaction's signature fill
// ratios as it finishes (commit or abort): the write-filter decile
// feeds the stats histogram, and both ratios go to the trace. Must run
// before the signatures are cleared.
func (m *Machine) noteSigOccupancy(tx *Tx) {
	wf := tx.sig.Write.FillRatio()
	rf := tx.sig.Read.FillRatio()
	b := int(wf * 10)
	if b > 9 {
		b = 9
	}
	m.statsFor(tx.domain).SigOccupancy[b]++
	m.stats.SigOccupancy[b]++
	m.emit(trace.EvSigOccupancy, tx.core, tx.id, 0, uint64(wf*1e4), uint64(rf*1e4))
}

// noteAbort records one rollback's observability: the abort-chain depth
// bookkeeping (a victim whose enemy itself sits in a cascade goes one
// deeper than the enemy's chain), the signature-occupancy sample for
// overflowed attempts, and the abort event carrying cause and enemy.
func (m *Machine) noteAbort(tx *Tx) {
	st := tx.status
	depth := 1
	if st.abortEnemyCore >= 0 && st.abortEnemyCore < len(m.abortDepth) {
		if d := m.abortDepth[st.abortEnemyCore] + 1; d > depth {
			depth = d
		}
	}
	if depth > m.abortDepth[tx.core] {
		m.abortDepth[tx.core] = depth
	}
	if st.overflowed {
		m.noteSigOccupancy(tx)
	}
	m.emit(trace.EvTxAbort, tx.core, tx.id,
		mem.Addr(st.abortEnemyCore+1), uint64(st.abortCause), st.abortEnemy)
}

// noteCommitChain folds the core's accumulated abort-chain depth into
// the histogram at commit time and resets it.
func (m *Machine) noteCommitChain(tx *Tx, s *stats.Stats) {
	d := m.abortDepth[tx.core]
	m.abortDepth[tx.core] = 0
	b := d
	if b > 7 {
		b = 7
	}
	s.AbortChain[b]++
	m.stats.AbortChain[b]++
	if uint64(d) > s.AbortChainMax {
		s.AbortChainMax = uint64(d)
	}
	if uint64(d) > m.stats.AbortChainMax {
		m.stats.AbortChainMax = uint64(d)
	}
}

// noteSlowWait accounts virtual time a thread spent blocked on the
// domain's fallback lock — pausing before a fast-path attempt (acquire
// false) or acquiring the lock itself (acquire true).
func (m *Machine) noteSlowWait(c *Ctx, d sim.Time, acquire bool) {
	if d <= 0 {
		return
	}
	m.statsFor(c.domain).SlowPathWait += d
	m.stats.SlowPathWait += d
	var a uint64
	if acquire {
		a = 1
	}
	m.emit(trace.EvSlowPathWait, c.core, 0, 0, uint64(d), a)
}
