package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// TestResolutionOverflowPriority encodes Table II row 1/3: when exactly
// one of two conflicting transactions has overflowed, the non-overflowed
// one aborts — here the requester, because the victim overflowed.
func TestResolutionOverflowPriority(t *testing.T) {
	opts := DefaultOptions()
	opts.SigBits = signature.Bits16K // keep false positives out of the way
	opts.MaxRetries = 1000           // keep the requester off the slow path
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	lines := 2000 // > 1024-line LLC → overflows
	base := al.AllocLines(lines)
	target := base // first line: written by big tx, then evicted

	bigAborts, smallAborts := 0, 0
	bigOverflowed := false
	eng.Spawn("big", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 {
				bigAborts++
			}
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
			}
			bigOverflowed = tx.Overflowed()
			th.Advance(200 * sim.Microsecond) // hold the window open
			tx.ReadU64(base)
		})
	})
	eng.Spawn("small", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		// Collide only once the big transaction's footprint has left the
		// LLC, so the conflict is found off-chip against its signature.
		th.WaitUntil(func() bool { return bigOverflowed }, sim.Microsecond)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 {
				smallAborts++
			}
			tx.WriteU64(target, 2) // LLC-missed: big's line was evicted
		})
	})
	eng.Run()
	if bigAborts != 0 {
		t.Errorf("overflowed transaction aborted %d times; policy must protect it", bigAborts)
	}
	if smallAborts == 0 {
		t.Error("non-overflowed requester never aborted")
	}
	if m.Stats().Commits != 2 {
		t.Errorf("commits = %d", m.Stats().Commits)
	}
}

// TestResolutionRequesterWinsOnChip encodes Table II row 2: neither
// transaction overflowed, conflict in on-chip caches → the requester
// wins and the holder aborts.
func TestResolutionRequesterWinsOnChip(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(1)
	holderAborts := 0
	eng.Spawn("holder", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 {
				holderAborts++
			}
			tx.WriteU64(a, 1)
			th.Advance(10 * sim.Microsecond)
			tx.ReadU64(a + 8)
		})
	})
	eng.Spawn("requester", func(th *sim.Thread) {
		th.Advance(1 * sim.Microsecond)
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 2)
		})
	})
	eng.Run()
	if holderAborts == 0 {
		t.Error("on-chip conflict did not abort the holder (requester-wins)")
	}
}

// TestFalsePositiveAborts drives a 512-bit signature to saturation; a
// same-domain transaction touching disjoint data then suffers
// false-positive aborts — the Figure 7 phenomenon.
func TestFalsePositiveAborts(t *testing.T) {
	opts := DefaultOptions()
	opts.SigBits = signature.Bits512
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	lines := 3000
	base := al.AllocLines(lines)
	other := al.AllocLines(64) // disjoint working set

	eng.Spawn("big", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
			}
			th.Advance(500 * sim.Microsecond)
			tx.ReadU64(base)
		})
	})
	eng.Spawn("small", func(th *sim.Thread) {
		th.Advance(200 * sim.Microsecond)
		c := m.NewCtx(th, 0) // same domain
		for k := 0; k < 8; k++ {
			c.Run(func(tx *Tx) {
				for i := 0; i < 64; i++ {
					tx.WriteU64(other+mem.Addr(i)*mem.LineSize, uint64(k))
				}
			})
		}
	})
	eng.Run()
	if m.Stats().AbortsBy[stats.CauseFalsePositive] == 0 {
		t.Errorf("saturated 512-bit signature produced no false-positive aborts: %v", m.Stats())
	}
	if m.Stats().AbortsBy[stats.CauseTrueConflict] != 0 {
		t.Errorf("disjoint data recorded true conflicts: %v", m.Stats())
	}
}

// TestIsolationConfinesFalsePositives runs the same scenario across two
// conflict domains: with signature isolation the small domain never sees
// the big domain's saturated signature.
func TestIsolationConfinesFalsePositives(t *testing.T) {
	run := func(isolation bool) *stats.Stats {
		opts := DefaultOptions()
		opts.SigBits = signature.Bits512
		opts.Isolation = isolation
		eng, m := newTestMachine(opts)
		al := mem.NewAllocator(mem.DRAM)
		lines := 3000
		base := al.AllocLines(lines)
		other := al.AllocLines(64)
		eng.Spawn("big", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			c.Run(func(tx *Tx) {
				for i := 0; i < lines; i++ {
					tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
				}
				th.Advance(500 * sim.Microsecond)
				tx.ReadU64(base)
			})
		})
		eng.Spawn("small", func(th *sim.Thread) {
			th.Advance(200 * sim.Microsecond)
			c := m.NewCtx(th, 1) // DIFFERENT domain
			for k := 0; k < 8; k++ {
				c.Run(func(tx *Tx) {
					for i := 0; i < 64; i++ {
						tx.WriteU64(other+mem.Addr(i)*mem.LineSize, uint64(k))
					}
				})
			}
		})
		eng.Run()
		return m.Stats()
	}
	noIso := run(false)
	iso := run(true)
	if noIso.AbortsBy[stats.CauseFalsePositive] == 0 {
		t.Errorf("without isolation, expected cross-domain false positives: %v", noIso)
	}
	if iso.AbortsBy[stats.CauseFalsePositive] != 0 {
		t.Errorf("isolation did not confine false positives: %v", iso)
	}
}

// TestContextSwitchVirtualizedAbort: a transaction suspended mid-flight
// is aborted by a conflicting access (the TSS abort-flag path of Section
// IV-E), observes the flag on resume, retries, and commits.
func TestContextSwitchVirtualizedAbort(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(1)
	var cA *Ctx
	attempts := 0
	eng.Spawn("switcher", func(th *sim.Thread) {
		cA = m.NewCtx(th, 0)
		cA.Run(func(tx *Tx) {
			attempts++
			tx.WriteU64(a, 1)
			if tx.Attempt() == 0 {
				cA.ContextSwitchOut() // descheduled mid-transaction
			}
			tx.WriteU64(a+8, 2)
		})
	})
	eng.Spawn("conflictor", func(th *sim.Thread) {
		th.Advance(5 * sim.Microsecond)
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 99) // conflicts with the suspended transaction
		})
	})
	eng.Spawn("scheduler", func(th *sim.Thread) {
		th.WaitUntil(func() bool { return cA != nil && cA.Thread().Suspended() }, sim.Microsecond)
		th.Advance(20 * sim.Microsecond)
		th.Sync()
		cA.ContextSwitchIn(th.Clock())
	})
	eng.Run()
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (abort while suspended + retry)", attempts)
	}
	if m.Stats().Commits != 2 {
		t.Errorf("commits = %d", m.Stats().Commits)
	}
	// The retry ran after the conflictor committed, so both its writes
	// land last.
	if m.store.ReadU64(a) != 1 || m.store.ReadU64(a+8) != 2 {
		t.Errorf("final = %d,%d", m.store.ReadU64(a), m.store.ReadU64(a+8))
	}
}

// TestSerialReplayEquivalence: with commit tracking on, replaying the
// committed write images in commit order over the initial state must
// reproduce the final live memory — the serializability witness.
func TestSerialReplayEquivalence(t *testing.T) {
	opts := DefaultOptions()
	opts.TrackCommits = true
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.NVM)
	const slots = 32
	base := al.AllocLines(slots)
	baseline := m.store.SnapshotLive()

	for i := 0; i < 3; i++ {
		eng.Spawn("w", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			rng := eng.Rand()
			for k := 0; k < 40; k++ {
				c.Run(func(tx *Tx) {
					s1 := mem.Addr(rng.Intn(slots))
					s2 := mem.Addr(rng.Intn(slots))
					v := tx.ReadU64(base + s1*mem.LineSize)
					tx.WriteU64(base+s2*mem.LineSize, v+uint64(th.ID())+1)
				})
			}
		})
	}
	eng.Run()

	// Replay commits serially over the baseline.
	replay := make(map[mem.Addr]mem.Line, len(baseline))
	for a, l := range baseline {
		replay[a] = l
	}
	touched := map[mem.Addr]bool{}
	for _, ct := range m.CommitLog() {
		for la, img := range ct.Writes {
			replay[la] = img
			touched[la] = true
		}
	}
	for la := range touched {
		if got := m.store.PeekLine(la); got != replay[la] {
			t.Fatalf("line %#x: final state diverges from serial replay", uint64(la))
		}
	}
	if len(m.CommitLog()) != 120 {
		t.Errorf("commit log has %d entries, want 120", len(m.CommitLog()))
	}
}
