// Package core implements the UHTM machine of Section IV, plus the three
// comparison systems of Section V behind the same API: LLC-Bounded
// (DHTM-like), Signature-Only (Bulk/LogTM-SE-like), UHTM itself
// (staged detection, with and without signature isolation), and the
// Ideal unbounded HTM (perfect off-chip conflict detection).
//
// One Machine is one simulated 16-core node: per-core L1s, a shared LLC,
// the coherence directory with Tx-fields, per-core read/write address
// signatures, the DRAM cache and hardware undo/redo logs, the
// transaction status structure (TSS), and per-conflict-domain fallback
// locks for the Algorithm-1 slow path.
package core

import (
	"fmt"
	"sort"

	"uhtm/internal/cache"
	"uhtm/internal/coherence"
	"uhtm/internal/dramcache"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
	"uhtm/internal/wal"
)

// Detection selects the conflict-detection scheme — the axis of Table I.
type Detection int

const (
	// DetectLLCBounded: cache-coherence detection only; a transactional
	// line leaving the LLC is a capacity abort (DHTM [30]).
	DetectLLCBounded Detection = iota
	// DetectSignatureOnly: every access of every transaction goes into
	// its signatures and every request is checked against all of them
	// (Bulk [12], LogTM-SE [64] extended to NVM).
	DetectSignatureOnly
	// DetectStaged: UHTM — directory on-chip, signatures only for
	// LLC-overflowed lines, checked only by LLC-missed requests.
	DetectStaged
	// DetectIdeal: precise unbounded detection, no false positives.
	DetectIdeal
)

// String names the detection mode for tables and logs.
func (d Detection) String() string {
	switch d {
	case DetectLLCBounded:
		return "LLC-Bounded"
	case DetectSignatureOnly:
		return "Signature-Only"
	case DetectStaged:
		return "UHTM"
	case DetectIdeal:
		return "Ideal"
	default:
		return fmt.Sprintf("Detection(%d)", int(d))
	}
}

// DRAMLogKind selects version management for LLC-overflowed DRAM lines —
// the undo/redo comparison of Figure 10.
type DRAMLogKind int

const (
	// DRAMUndo: eager — old value to the log at eviction, in-place
	// update, fast commit, log-walk on abort (UHTM's choice).
	DRAMUndo DRAMLogKind = iota
	// DRAMRedo: lazy — new value stays in the log, reads of overflowed
	// lines pay an indirection, commit copies values in place.
	DRAMRedo
)

// String names the DRAM-log kind for logs and traces.
func (k DRAMLogKind) String() string {
	if k == DRAMUndo {
		return "undo"
	}
	return "redo"
}

// Options configures one Machine.
type Options struct {
	Detect    Detection
	SigBits   int         // signature size in bits (staged/signature-only)
	Isolation bool        // confine signature checks to the conflict domain
	DRAMLog   DRAMLogKind // version management for overflowed DRAM lines

	MaxRetries int // fast-path attempts before falling back to the lock

	// StreamLine overrides the default streamed-miss bandwidth cost when
	// positive (see Latencies.StreamLine).
	StreamLine sim.Time

	// Aging replaces the requester-wins/requester-loses tie-break with
	// an age-based policy: the younger transaction (higher ID) aborts.
	// The paper leaves the cyclic-abort livelock of requester policies
	// to future work ([2], [4], [51], [65]); aging is the classic
	// remedy, provided here as an ablation.
	Aging bool

	// NoDRAMCache removes the DRAM cache between LLC and NVM (the [28]
	// substrate): early-evicted persistent lines are re-read at NVM
	// latency instead of DRAM latency. Ablation for the hybrid logging
	// substrate's value.
	NoDRAMCache bool

	// SyncEvery controls scheduler-yield granularity: a thread yields to
	// the virtual-time scheduler every SyncEvery-th memory access
	// (default 1 = perfectly ordered interleaving). Larger values batch
	// a thread's accesses between yields — bounded causality skew traded
	// for simulation speed on the full-size figure runs. Determinism is
	// unaffected.
	SyncEvery int

	// Paranoid enables ground-truth validation on every access: a real
	// overlap between active same-domain transactions that the
	// configured detection scheme fails to report panics immediately.
	// Tests run with it on; benchmarks may turn it off.
	Paranoid bool

	// TrackCommits retains per-commit write images so tests can check
	// that the final memory state equals a serial replay in commit
	// order. Memory-hungry; off for benchmarks.
	TrackCommits bool

	// ReserveLogArea carves this many bytes off the top of the NVM log
	// area before the redo rings are laid out, leaving [NVMLogBase +
	// LogAreaSize - ReserveLogArea, NVMLogBase + LogAreaSize) to the
	// caller. internal/shard places its coordinator decision log there.
	// Zero (the default) keeps the original layout byte-identical.
	ReserveLogArea mem.Addr
}

// DefaultOptions returns UHTM with the paper's preferred configuration
// (staged detection, 4k-bit signatures, isolation on, undo for DRAM).
func DefaultOptions() Options {
	return Options{
		Detect:     DetectStaged,
		SigBits:    signature.Bits4K,
		Isolation:  true,
		DRAMLog:    DRAMUndo,
		MaxRetries: 8,
		Paranoid:   true,
	}
}

// Latencies groups the protocol costs that are not raw-medium accesses.
// Defaults model pipelined hardware paths; they matter only in so far as
// every compared system shares them.
type Latencies struct {
	RedoIssue     sim.Time // per redo-log record issued at commit
	FlushPerLine  sim.Time // per write-set line flushed at commit
	AbortPerLine  sim.Time // per on-chip line invalidated at abort
	PipelineFlush sim.Time // fixed abort cost
	BackoffBase   sim.Time // exponential backoff base
	BackoffCap    sim.Time
	// StreamLine is the per-line cost of a *streamed* miss: bulk
	// value reads/writes run behind hardware prefetchers at bandwidth,
	// not at per-miss latency (this is what makes a hash-table put of a
	// large value much faster than pointer chasing the same number of
	// lines).
	StreamLine sim.Time
}

// DefaultLatencies returns the standard protocol costs.
func DefaultLatencies() Latencies {
	return Latencies{
		RedoIssue:     200 * sim.Picosecond,
		FlushPerLine:  5 * sim.Nanosecond,
		AbortPerLine:  2 * sim.Nanosecond,
		PipelineFlush: 20 * sim.Nanosecond,
		BackoffBase:   150 * sim.Nanosecond,
		BackoffCap:    20 * sim.Microsecond,
		StreamLine:    8 * sim.Nanosecond,
	}
}

// txStatus is one TSS entry (Section IV-E): transaction ID, abort flag
// (with the cause the aborter recorded), and the overflow bit.
type txStatus struct {
	id         uint64
	core       int
	domain     int
	abortFlag  bool
	abortCause stats.AbortCause
	// abortEnemy/abortEnemyCore identify the transaction whose conflict
	// set the abort flag (trace arrows, abort-chain depth);
	// abortEnemyCore is -1 when there is no enemy (explicit aborts,
	// lock acquisitions).
	abortEnemy     uint64
	abortEnemyCore int
	overflowed     bool
	slowPath       bool
}

// committedTx is retained when Options.TrackCommits is set: enough to
// replay commits serially and compare memory images.
type committedTx struct {
	ID     uint64
	Domain int
	Writes map[mem.Addr]mem.Line // line → image at commit
}

// Machine is one simulated node.
type Machine struct {
	cfg  mem.Config
	opts Options
	lat  Latencies
	eng  *sim.Engine

	store  *mem.Store
	l1     []*cache.Cache
	llc    *cache.Cache
	dcache *dramcache.Cache
	dir    *coherence.Directory

	undoRings *wal.Rings // DRAM log area, per core
	redoRings *wal.Rings // NVM log area, per core

	// ckptAddr is the durable checkpoint cell: the first line of the NVM
	// log area. It holds 1 + the ckptLog ring sequence of the latest
	// complete fuzzy checkpoint record group (0 = no checkpoint yet).
	// Recovery decodes that group for the low-water LSN and ignores
	// commit records at or below it — they describe data already
	// persisted in place, and replaying a stale survivor would regress a
	// line past a newer truncated commit.
	ckptAddr mem.Addr
	// ckptLog is the dedicated durable ring the fuzzy checkpoint record
	// groups live on, right after the cell. Sized for three full groups
	// (ckptRingBytes) so the previous complete checkpoint always
	// survives a torn write of the current one.
	ckptLog *wal.Log
	// ckptSeq numbers checkpoints; lastCkptBegin is the previous group's
	// begin sequence (kept live across checkpoints so each pass can
	// truncate the group before it). ckptActScratch is the reusable
	// active-transaction-table buffer.
	ckptSeq        uint64
	lastCkptBegin  uint64
	ckptActScratch []wal.CkptActive

	// ringFate is the reusable per-ring transaction-fate table of
	// incremental reclamation (see reclaimRing).
	ringFate map[uint64]ringFate

	// prepareResolver, when set, is consulted by incremental reclamation
	// for record groups that carry a 2PC prepare mark but no local
	// decision: it reports whether the group's fate is durably decided
	// elsewhere (coordinator decision log or resolution cell), making the
	// records disposable. It must consult durable facts only. Nil keeps
	// prepared-but-undecided groups on the ring.
	prepareResolver func(txID uint64) bool

	txCounter  uint64
	lsnCounter uint64 // global commit sequence (log-serialization order)
	byCore     []*Tx  // current transaction per core (nil if none)
	// txPool holds each core's reusable Tx object (one live transaction
	// per core; only that core's thread begins transactions on it, so
	// the slot is recycled strictly after the previous attempt unwound).
	txPool []*Tx

	locks map[int]*domainLock // fallback lock per conflict domain

	stats       *stats.Stats
	domainStats map[int]*stats.Stats

	commitLog []committedTx

	// coreDomain maps each core to the conflict domain of the software
	// running on it (-1 when unregistered); non-transactional accesses
	// inherit it for signature-isolation scoping.
	coreDomain []int

	// pendingEvicts queues LLC victims during a fill so overflow
	// handling runs after the cache arrays are quiescent. evictHead
	// indexes the next victim to drain; the slice is re-sliced to keep
	// its capacity once drained.
	pendingEvicts []cache.Eviction
	evictHead     int

	// Sticky check-signature bits: on-chip lines that matched an
	// off-chip signature at fill time and therefore keep being checked
	// against signatures — the reconstruction of a sticky "check
	// signatures" directory bit that keeps the staged scheme sound after
	// re-fetches. A line is sticky when its page slot carries the
	// current stickyGen; clearing all bits is one generation bump.
	// stickyAny short-circuits probes while no bit is set.
	stickyGen   uint32
	stickyPages []*stickyPage
	stickyAny   bool

	activeScratch []*Tx // reusable buffer for activeInOrder

	// The pendingNVM set holds, per committed NVM line, the exact image
	// at the latest commit that wrote it. Log reclamation persists these
	// images before dropping redo records, so the durable update can
	// never pick up a newer *uncommitted* in-place write. pendingPages
	// maps line index → 1-based position in pendingAddrs/pendingImgs
	// (0 = absent); persistScratch is the reusable sort buffer for the
	// deterministic drain order.
	pendingPages   []*pendingPage
	pendingAddrs   []mem.Addr
	pendingImgs    []mem.Line
	persistScratch []mem.Addr

	// tr is the engine world's event recorder (nil = tracing disabled);
	// cached here so hot paths pay one pointer test. abortDepth tracks,
	// per core, the depth of the abort cascade the core is currently in
	// (reset when its transaction commits) — the source of the
	// abort-chain histogram.
	tr         *trace.Recorder
	abortDepth []int

	// crashpoint, when set, fires at every named step of the commit,
	// abort and reclamation protocols (the Point* constants in this
	// package, wal and mem). Installed by SetCrashpoint; used by the
	// crash framework (internal/crash) to kill the machine mid-protocol.
	crashpoint func(point string)

	// syncCount drives the SyncEvery yield granularity, per core.
	syncCount []int
}

// NewMachine builds a node with the given engine, configuration,
// options, and default protocol latencies.
func NewMachine(eng *sim.Engine, cfg mem.Config, opts Options) *Machine {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 8
	}
	if opts.SigBits == 0 {
		opts.SigBits = signature.Bits4K
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	lat := DefaultLatencies()
	if opts.StreamLine > 0 {
		lat.StreamLine = opts.StreamLine
	}
	m := &Machine{
		cfg:          cfg,
		opts:         opts,
		lat:          lat,
		eng:          eng,
		store:        mem.NewStore(cfg),
		dir:          coherence.NewDirectory(),
		byCore:       make([]*Tx, cfg.Cores),
		txPool:       make([]*Tx, cfg.Cores),
		locks:        make(map[int]*domainLock),
		stats:        &stats.Stats{},
		domainStats:  make(map[int]*stats.Stats),
		coreDomain:   make([]int, cfg.Cores),
		stickyGen:    1,
		stickyPages:  make([]*stickyPage, mem.PageCount),
		pendingPages: make([]*pendingPage, mem.PageCount),
		syncCount:    make([]int, cfg.Cores),
		abortDepth:   make([]int, cfg.Cores),
	}
	for i := range m.coreDomain {
		m.coreDomain[i] = -1
	}
	m.llc = cache.New("llc", cfg.LLCSize, cfg.LLCWays, m.onLLCEvict)
	for i := 0; i < cfg.Cores; i++ {
		core := i
		l1 := cache.New(fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways, func(e cache.Eviction) {
			m.onL1Evict(core, e)
		})
		// L1s take the brunt of inclusive-invalidation snoops (every LLC
		// eviction probes all of them); the presence filter lets those
		// probes skip caches that provably don't hold the victim. The LLC
		// is not filtered — nothing bulk-probes it.
		l1.EnableFilter()
		m.l1 = append(m.l1, l1)
	}
	m.dcache = dramcache.New(cfg.DRAMCacheSize, cfg.DRAMCacheWays)
	m.undoRings = wal.NewRings(m.store, mem.DRAMLogBase, mem.LogAreaSize, cfg.Cores, false)
	// NVM log-area layout: the checkpoint cell (one line, see ckptAddr),
	// then the checkpoint ring, then the per-core redo rings over the
	// rest (minus any caller reservation at the top).
	m.ckptAddr = mem.NVMLogBase
	ckptBytes := ckptRingBytes(cfg.Cores)
	m.ckptLog = wal.NewLog(m.store, mem.NVMLogBase+mem.LineSize, ckptBytes, true)
	m.ckptLog.SetPointPrefix(PointPrefixCkptRing)
	m.redoRings = wal.NewRings(m.store, mem.NVMLogBase+mem.LineSize+ckptBytes, mem.LogAreaSize-mem.LineSize-ckptBytes-opts.ReserveLogArea, cfg.Cores, true)
	if tr := eng.Tracer(); tr != nil {
		m.installTracer(tr)
	}
	return m
}

// Injection points fired by the Machine's protocol code, in protocol
// order. Between any two consecutive points one or more durability or
// bookkeeping steps execute; crashing at every point (plus the
// finer-grained wal.* and mem.* points those steps fire internally)
// therefore covers every reachable mid-protocol durable state. The
// naming scheme is <package>.<protocol>.<step>; see RECOVERY.md.
const (
	PointCommitBegin   = "core.commit.begin"   // protocol entered, nothing written
	PointCommitRecord  = "core.commit.record"  // before each redo RecWrite append
	PointCommitMark    = "core.commit.mark"    // before the RecCommit append (the durability point)
	PointCommitFlush   = "core.commit.flush"   // mark durable; before the write-set flush to the DRAM cache
	PointCommitDRAM    = "core.commit.dram"    // before the DRAM-side (undo/redo log) commit
	PointCommitCleanup = "core.commit.cleanup" // before volatile-state retirement (finishCommit)
	PointAbortBegin    = "core.abort.begin"    // rollback entered
	PointAbortUndo     = "core.abort.undo"     // before pre-images are restored
	PointAbortMark     = "core.abort.mark"     // before the RecAbort append
	PointAbortDone     = "core.abort.done"     // rollback complete
	PointReclaimBegin  = "core.reclaim.begin"  // reclamation pass entered
	PointReclaimImage  = "core.reclaim.image"  // before each pending in-place image persists
	PointReclaimDrain  = "core.reclaim.drain"  // before the DRAM cache drains
	PointReclaimCkpt   = "core.reclaim.ckpt"   // images durable; before the checkpoint group appends
	PointReclaimCell   = "core.reclaim.cell"   // group durable; before the checkpoint cell persists
	PointReclaimRings  = "core.reclaim.rings"  // cell durable; before the rings truncate incrementally
)

// PointPrefixCkptRing is the injection-point prefix of the checkpoint
// ring (wal.Log.SetPointPrefix), yielding wal.ckpt.append.record /
// append.ctrl / reclaim.ctrl — every durable step of a fuzzy checkpoint
// group write gets its own crash point.
const PointPrefixCkptRing = "wal.ckpt."

// ckptRingBytes sizes the checkpoint ring for a machine with the given
// core count: a fuzzy checkpoint group is at most cores+2 records (one
// active entry per core plus begin/end), and the ring must hold the
// previous complete group, the current one, and headroom for the next
// append before the previous is truncated — three groups, line-aligned.
func ckptRingBytes(cores int) mem.Addr {
	raw := mem.Addr(mem.LineSize) + mem.Addr(3*(cores+2)*wal.RecordSize)
	return (raw + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// SetCrashpoint installs (or, with nil, removes) the crash-injection
// hook on the machine, its store, and both log-ring sets. The hook runs
// synchronously on the simulated thread executing the protocol step and
// may halt the engine (sim.Engine.HaltNow) to model a power failure at
// exactly that step; it must not mutate simulator state.
func (m *Machine) SetCrashpoint(f func(point string)) {
	m.crashpoint = f
	m.store.SetCrashpoint(f)
	m.undoRings.SetCrashpoint(f)
	m.redoRings.SetCrashpoint(f)
	m.ckptLog.SetCrashpoint(f)
}

// SetPrepareResolver installs the callback incremental reclamation
// consults for prepared-but-undecided record groups (see the
// prepareResolver field). internal/shard installs one that answers from
// the coordinator's durable decision state.
func (m *Machine) SetPrepareResolver(f func(txID uint64) bool) { m.prepareResolver = f }

// hit fires one machine-level injection point.
func (m *Machine) hit(point string) {
	if m.crashpoint != nil {
		m.crashpoint(point)
	}
}

// DurableRedoRecords returns every validated record inside the durable
// recovery window of every core's redo ring — the evidence recovery
// would act on after a crash at this instant. Checkers use it to build
// the committed-prefix oracle independently of Replay.
func (m *Machine) DurableRedoRecords() []wal.Record {
	var out []wal.Record
	for i := 0; i < m.redoRings.Count(); i++ {
		out = append(out, m.redoRings.ForCore(i).Records(true)...)
	}
	return out
}

// Checkpoint returns the low-water LSN of the latest complete durable
// fuzzy checkpoint (0 when none has been written) — the replay filter
// recovery acts on. It reads durable evidence only: the cell and the
// checkpoint ring are decoded from the durable image, so the answer is
// identical before and after Crash.
func (m *Machine) Checkpoint() uint64 {
	ck, ok := m.durableCheckpoint()
	if !ok {
		return 0
	}
	return ck.LowWater
}

// durableCheckpoint resolves the latest complete checkpoint group from
// durable evidence alone: the cell points at the newest group; if that
// group is torn (a crash mid-append) the ring is scanned for the newest
// complete one — the previous checkpoint, which is always retained.
func (m *Machine) durableCheckpoint() (wal.Checkpoint, bool) {
	if cell := m.store.DurableU64(m.ckptAddr); cell != 0 {
		if ck, ok := m.ckptLog.CheckpointAt(cell-1, true); ok {
			return ck, true
		}
	}
	return m.ckptLog.LatestCheckpoint(true)
}

// CkptLog exposes the checkpoint ring (tests, tooling).
func (m *Machine) CkptLog() *wal.Log { return m.ckptLog }

// Store exposes the simulated memory (workload setup, checkers).
func (m *Machine) Store() *mem.Store { return m.store }

// Config returns the machine's memory configuration.
func (m *Machine) Config() mem.Config { return m.cfg }

// Options returns the machine's HTM options.
func (m *Machine) Options() Options { return m.opts }

// Stats returns the machine-wide counters.
func (m *Machine) Stats() *stats.Stats { return m.stats }

// DomainStats returns (creating if needed) the counters for one conflict
// domain.
func (m *Machine) DomainStats(domain int) *stats.Stats {
	s := m.domainStats[domain]
	if s == nil {
		s = &stats.Stats{}
		m.domainStats[domain] = s
	}
	return s
}

// CommitLog returns the retained per-commit write images (only populated
// when Options.TrackCommits is set).
func (m *Machine) CommitLog() []committedTx { return m.commitLog }

// NextLSN advances and returns the machine's global commit sequence
// number. The cross-shard commit protocol (internal/shard) stamps its
// per-shard apply marks with it so 2PC applies serialize into the same
// LSN order as local commits on this shard's rings.
func (m *Machine) NextLSN() uint64 {
	m.lsnCounter++
	return m.lsnCounter
}

// RedoLog returns core i's durable redo ring. internal/shard appends its
// 2PC prepare write sets and apply marks there so they share the local
// commit protocol's durability and recovery path.
func (m *Machine) RedoLog(core int) *wal.Log { return m.redoRings.ForCore(core) }

// NoteCommit registers an externally applied transaction (a cross-shard
// 2PC apply) with the machine's commit bookkeeping: each written line's
// image joins the pendingNVM set — so a later ReclaimLogs persists the
// applied value, not a stale image — and, under TrackCommits, the
// transaction is appended to the commit log. Lines are registered in
// ascending address order for determinism. The machine takes ownership
// of writes.
func (m *Machine) NoteCommit(id uint64, domain int, writes map[mem.Addr]mem.Line) {
	addrs := make([]mem.Addr, 0, len(writes))
	for la := range writes {
		addrs = append(addrs, la)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, la := range addrs {
		img := writes[la]
		m.pendingPut(la, img)
	}
	if m.opts.TrackCommits {
		m.commitLog = append(m.commitLog, committedTx{ID: id, Domain: domain, Writes: writes})
	}
}

// ActiveTxCount reports how many transactions are currently live.
func (m *Machine) ActiveTxCount() int {
	n := 0
	for _, t := range m.byCore {
		if t != nil {
			n++
		}
	}
	return n
}

// txByID returns the live transaction with the given ID, or nil. One
// live transaction per core makes the per-core table the authoritative
// ID index (a retiring transaction stays visible until its finish
// routine clears its core slot, mirroring the former by-ID map).
func (m *Machine) txByID(id uint64) *Tx {
	if id == 0 {
		return nil
	}
	for _, t := range m.byCore {
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// stickyPage is one page of the sticky check-signature bits: a line is
// sticky when its slot holds the machine's current stickyGen.
type stickyPage struct {
	gen [mem.PageLines]uint32
}

// pendingPage is one page of the pendingNVM index: 1-based position of
// the line in pendingAddrs/pendingImgs, 0 when absent.
type pendingPage struct {
	pos [mem.PageLines]int32
}

// ringFate summarizes one transaction's marks on one redo ring, built
// per reclamation pass (see reclaimRing).
type ringFate struct {
	commitLSN uint64
	committed bool
	aborted   bool
	prepared  bool
}

// pendingPut registers (or refreshes) the committed image of an NVM
// line awaiting its in-place durable update.
func (m *Machine) pendingPut(la mem.Addr, img mem.Line) {
	idx := mem.LineIndex(la)
	p := m.pendingPages[idx>>mem.PageShift]
	if p == nil {
		p = new(pendingPage)
		m.pendingPages[idx>>mem.PageShift] = p
	}
	o := idx & (mem.PageLines - 1)
	if q := p.pos[o]; q != 0 {
		m.pendingImgs[q-1] = img
		return
	}
	m.pendingAddrs = append(m.pendingAddrs, la)
	m.pendingImgs = append(m.pendingImgs, img)
	p.pos[o] = int32(len(m.pendingAddrs))
}

func (m *Machine) lock(domain int) *domainLock {
	l := m.locks[domain]
	if l == nil {
		l = &domainLock{}
		m.locks[domain] = l
	}
	return l
}

// domainLock is the per-conflict-domain fallback lock of Algorithm 1.
type domainLock struct {
	held   bool
	holder int // core ID
}
