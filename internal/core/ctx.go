package core

import (
	"fmt"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// Ctx binds a simulated thread to the machine and a conflict domain. It
// is the software-visible API: Run executes a durable transaction with
// the full Algorithm-1 retry/fallback discipline, and the NT* methods
// perform non-transactional accesses (which still travel the hierarchy,
// pollute the LLC, and are checked against signatures — the background
// false-conflict source of Section IV-D).
type Ctx struct {
	m      *Machine
	th     *sim.Thread
	core   int
	domain int
	inTx   bool
}

// NewCtx registers a thread with the machine. The thread's ID is its
// core; domain is the transaction group ID the modified pthread library
// of Section IV-D would assign (one per process).
func (m *Machine) NewCtx(th *sim.Thread, domain int) *Ctx {
	core := th.ID()
	if core >= m.cfg.Cores {
		panic(fmt.Sprintf("core: thread %d exceeds %d cores", core, m.cfg.Cores))
	}
	m.coreDomain[core] = domain
	return &Ctx{m: m, th: th, core: core, domain: domain}
}

// Thread returns the underlying simulated thread.
func (c *Ctx) Thread() *sim.Thread { return c.th }

// Core returns the context's core ID.
func (c *Ctx) Core() int { return c.core }

// Domain returns the conflict domain.
func (c *Ctx) Domain() int { return c.domain }

// Machine returns the machine the context runs on.
func (c *Ctx) Machine() *Machine { return c.m }

// Run executes body as one durable transaction, implementing Algorithm 1
// of the paper: fast-path attempts with exponential backoff, an
// immediate jump to the serialized slow path on a capacity abort (no
// retry — capacity overflows repeat), and the slow path after
// MaxRetries. body may run multiple times and must keep all of its state
// in simulated memory via the Tx it receives.
func (c *Ctx) Run(body func(*Tx)) {
	if c.inTx {
		panic("core: nested Ctx.Run")
	}
	c.inTx = true
	defer func() { c.inTx = false }()

	lock := c.m.lock(c.domain)
	for attempt := 0; attempt < c.m.opts.MaxRetries; attempt++ {
		// Lines 10–14: wait while a lock holder serializes the domain.
		waitStart := c.th.Clock()
		c.th.WaitUntil(func() bool { return !lock.held }, 50*sim.Nanosecond)
		c.m.noteSlowWait(c, c.th.Clock()-waitStart, false)
		tx := c.m.begin(c, attempt, false)
		ab := c.m.runBody(tx, body)
		if ab == nil {
			return
		}
		if ab.cause == stats.CauseCapacity {
			break // line 15–17: overflow ⇒ slow path without retrying
		}
		c.backoff(attempt)
	}

	// Slow path (line 22–24): serialize under the domain lock.
	c.m.acquireLock(c)
	tx := c.m.begin(c, c.m.opts.MaxRetries, true)
	if ab := c.m.runBody(tx, body); ab != nil {
		panic(fmt.Sprintf("core: slow-path transaction aborted (%v)", stats.AbortCause(ab.cause)))
	}
	c.m.releaseLock(c)
}

// runBody executes body and the commit protocol, converting the abort
// unwind into a result.
func (m *Machine) runBody(tx *Tx, body func(*Tx)) (ab *txAbort) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if a, ok := r.(*txAbort); ok {
			m.finishAbort(tx, *a)
			ab = a
			return
		}
		panic(r)
	}()
	body(tx)
	m.commit(tx)
	return nil
}

// backoff charges a randomized exponential delay before the next
// attempt (the paper's "random backoff delay to avoid subsequent
// aborts").
func (c *Ctx) backoff(attempt int) {
	shift := attempt
	if shift > 7 {
		shift = 7
	}
	d := c.m.lat.BackoffBase << uint(shift)
	d += sim.Time(c.m.eng.Rand().Int63n(int64(d) + 1))
	if d > c.m.lat.BackoffCap {
		d = c.m.lat.BackoffCap
	}
	c.th.Advance(d)
}

// acquireLock takes the domain's fallback lock. Acquiring it aborts
// every fast-path transaction in the domain — the hardware analogue of
// those transactions having the lock word in their read-sets.
func (m *Machine) acquireLock(c *Ctx) {
	l := m.lock(c.domain)
	waitStart := c.th.Clock()
	c.th.WaitUntil(func() bool { return !l.held }, 100*sim.Nanosecond)
	m.noteSlowWait(c, c.th.Clock()-waitStart, true)
	l.held = true
	l.holder = c.core
	for _, t := range m.activeInOrder() {
		if t.domain == c.domain && !t.slowPath && !t.status.abortFlag {
			m.abortVictim(t, stats.CauseLock, nil)
		}
	}
}

// releaseLock frees the domain lock.
func (m *Machine) releaseLock(c *Ctx) {
	l := m.lock(c.domain)
	if !l.held || l.holder != c.core {
		panic("core: releasing a lock not held by this core")
	}
	l.held = false
}

// NTReadU64 performs a non-transactional read of the word at a.
func (c *Ctx) NTReadU64(a mem.Addr) uint64 {
	c.m.access(c.th, c.core, nil, a, false)
	return c.m.store.ReadU64(a)
}

// NTWriteU64 performs a non-transactional write of the word at a.
func (c *Ctx) NTWriteU64(a mem.Addr, v uint64) {
	c.m.access(c.th, c.core, nil, a, true)
	c.m.store.WriteU64(a, v)
}

// NTReadBytes performs a non-transactional read of n bytes at a.
func (c *Ctx) NTReadBytes(a mem.Addr, n int) []byte {
	out := make([]byte, n)
	first := true
	c.m.rangeLines(a, n, func(la mem.Addr) {
		c.m.accessEx(c.th, c.core, nil, la, false, !first)
		first = false
	})
	c.m.copyOut(a, out)
	return out
}

// NTWriteBytes performs a non-transactional write of b at a.
func (c *Ctx) NTWriteBytes(a mem.Addr, b []byte) {
	first := true
	c.m.rangeLines(a, len(b), func(la mem.Addr) {
		c.m.accessEx(c.th, c.core, nil, la, true, !first)
		first = false
	})
	c.m.copyIn(a, b)
}

// NT returns a non-transactional accessor exposing the same method set
// as Tx, so data structures parameterized over an accessor can run
// inside or outside transactions.
func (c *Ctx) NT() *NTAccess { return &NTAccess{c} }

// NTAccess adapts a Ctx's non-transactional operations to the accessor
// shape shared with Tx.
type NTAccess struct{ c *Ctx }

// ReadU64 performs a non-transactional word read.
func (n *NTAccess) ReadU64(a mem.Addr) uint64 { return n.c.NTReadU64(a) }

// WriteU64 performs a non-transactional word write.
func (n *NTAccess) WriteU64(a mem.Addr, v uint64) { n.c.NTWriteU64(a, v) }

// ReadBytes performs a non-transactional byte-range read.
func (n *NTAccess) ReadBytes(a mem.Addr, ln int) []byte { return n.c.NTReadBytes(a, ln) }

// WriteBytes performs a non-transactional byte-range write.
func (n *NTAccess) WriteBytes(a mem.Addr, b []byte) { n.c.NTWriteBytes(a, b) }

// ContextSwitchOut models descheduling the thread (Section IV-E): the
// modified private-cache contents are flushed to the LLC (so a later
// commit or abort can locate them without the core) and the thread is
// suspended. A live transaction stays live — its ID-based directory and
// signature state is unaffected.
func (c *Ctx) ContextSwitchOut() {
	flushed := 0
	c.m.l1[c.core].ForEach(func(a mem.Addr, dirty bool) {
		if !c.m.llc.Contains(a) {
			c.m.llc.Insert(a)
		}
		if dirty {
			c.m.llc.MarkDirty(a)
		}
		flushed++
	})
	c.m.l1[c.core].Reset()
	c.m.drainEvictions(c.m.byCore[c.core])
	c.th.Advance(sim.Time(flushed) * c.m.lat.FlushPerLine)
	c.th.Suspend()
}

// ContextSwitchIn reschedules the thread at virtual time at.
func (c *Ctx) ContextSwitchIn(at sim.Time) { c.th.Resume(at) }
