package core

import (
	"fmt"
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// TestOracleAllDetections runs a randomized concurrent workload under
// every detection scheme with paranoid ground-truth checking on, and
// verifies the final memory equals a Go-map oracle built from the
// commit log — the strongest end-to-end serializability check in the
// suite.
func TestOracleAllDetections(t *testing.T) {
	for _, det := range []Detection{DetectLLCBounded, DetectSignatureOnly, DetectStaged, DetectIdeal} {
		det := det
		t.Run(det.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Detect = det
			opts.TrackCommits = true
			eng, m := newTestMachine(opts)
			dal := mem.NewAllocator(mem.DRAM)
			nal := mem.NewAllocator(mem.NVM)
			const slots = 24
			dbase := dal.AllocLines(slots)
			nbase := nal.AllocLines(slots)

			for i := 0; i < 4; i++ {
				eng.Spawn("w", func(th *sim.Thread) {
					c := m.NewCtx(th, 0)
					rng := eng.Rand()
					for k := 0; k < 30; k++ {
						d := dbase + mem.Addr(rng.Intn(slots))*mem.LineSize
						n := nbase + mem.Addr(rng.Intn(slots))*mem.LineSize
						c.Run(func(tx *Tx) {
							// Mixed DRAM/NVM transaction: move a token.
							v := tx.ReadU64(d)
							tx.WriteU64(d, v+1)
							tx.WriteU64(n, tx.ReadU64(n)+v+1)
						})
					}
				})
			}
			eng.Run()

			// Oracle: serial replay of commit images in commit order.
			oracle := map[mem.Addr]mem.Line{}
			for _, ct := range m.CommitLog() {
				for la, img := range ct.Writes {
					oracle[la] = img
				}
			}
			for la, want := range oracle {
				if got := m.store.PeekLine(la); got != want {
					t.Fatalf("%v: line %#x diverges from serial replay", det, uint64(la))
				}
			}
			if m.Stats().Commits != 120 {
				t.Errorf("commits = %d, want 120", m.Stats().Commits)
			}
		})
	}
}

// TestNTBulkAccessors: the NTAccess adapter and bulk byte operations
// round-trip through the hierarchy.
func TestNTBulkAccessors(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(4)
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		nt := c.NT()
		nt.WriteBytes(a+8, payload) // crosses line boundaries
		got := nt.ReadBytes(a+8, len(payload))
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("byte %d = %d, want %d", i, got[i], payload[i])
			}
		}
		nt.WriteU64(a, 77)
		if nt.ReadU64(a) != 77 {
			t.Error("NT word round-trip failed")
		}
	})
	eng.Run()
}

// TestTxBulkReadOwnWrites: transactional bulk writes are visible to
// bulk reads within the same transaction, across many lines.
func TestTxBulkReadOwnWrites(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(8)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			b := make([]byte, 8*mem.LineSize)
			for i := range b {
				b[i] = byte(i)
			}
			tx.WriteBytes(a, b)
			got := tx.ReadBytes(a, len(b))
			for i := range b {
				if got[i] != b[i] {
					t.Fatalf("byte %d mismatch", i)
				}
			}
		})
	})
	eng.Run()
}

// TestDomainStatsSeparation: per-domain counters track their own
// domains only.
func TestDomainStatsSeparation(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a0, a1 := al.AllocLines(1), al.AllocLines(1)
	eng.Spawn("d0", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for i := 0; i < 3; i++ {
			c.Run(func(tx *Tx) { tx.WriteU64(a0, uint64(i)) })
		}
	})
	eng.Spawn("d1", func(th *sim.Thread) {
		c := m.NewCtx(th, 1)
		for i := 0; i < 5; i++ {
			c.Run(func(tx *Tx) { tx.WriteU64(a1, uint64(i)) })
		}
	})
	eng.Run()
	if m.DomainStats(0).Commits != 3 || m.DomainStats(1).Commits != 5 {
		t.Errorf("domain commits = %d/%d, want 3/5",
			m.DomainStats(0).Commits, m.DomainStats(1).Commits)
	}
	if m.Stats().Commits != 8 {
		t.Errorf("global commits = %d", m.Stats().Commits)
	}
}

// TestNestedRunPanics: transactions do not nest.
func TestNestedRunPanics(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		defer func() {
			if recover() == nil {
				t.Error("nested Run did not panic")
			}
		}()
		c.Run(func(tx *Tx) {
			c.Run(func(*Tx) {})
		})
	})
	eng.Run()
}

// TestTooManyThreadsPanics: NewCtx refuses thread IDs beyond the core
// count.
func TestTooManyThreadsPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := testConfig()
	cfg.Cores = 1
	m := NewMachine(eng, cfg, DefaultOptions())
	eng.Spawn("ok", func(th *sim.Thread) { m.NewCtx(th, 0) })
	eng.Spawn("overflow", func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("NewCtx beyond core count did not panic")
			}
		}()
		m.NewCtx(th, 0)
	})
	eng.Run()
}

var _ = fmt.Sprintf // placate linters if debug prints are removed
