package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// testConfig shrinks the hierarchy so capacity effects are reachable in
// unit tests: 2 KB L1s, a 64 KB LLC (1024 lines), 4 cores.
func testConfig() mem.Config {
	c := mem.DefaultConfig()
	c.Cores = 4
	c.L1Size = 2 << 10
	c.LLCSize = 64 << 10
	c.DRAMCacheSize = 128 << 10
	return c
}

func newTestMachine(opts Options) (*sim.Engine, *Machine) {
	eng := sim.NewEngine(1)
	return eng, NewMachine(eng, testConfig(), opts)
}

func TestSingleTxCommit(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	d := mem.NewAllocator(mem.DRAM)
	n := mem.NewAllocator(mem.NVM)
	da, na := d.AllocLines(1), n.AllocLines(1)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(da, 41)
			tx.WriteU64(na, 42)
			if got := tx.ReadU64(da); got != 41 {
				t.Errorf("read-own-write DRAM = %d", got)
			}
		})
	})
	eng.Run()
	if m.store.ReadU64(da) != 41 || m.store.ReadU64(na) != 42 {
		t.Error("committed values missing")
	}
	s := m.Stats()
	if s.Commits != 1 || s.Aborts() != 0 {
		t.Errorf("stats = %v", s)
	}
}

func TestExplicitAbortRetries(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() == 0 {
				tx.WriteU64(a, 999) // must be rolled back
				tx.Abort()
			}
			if got := tx.ReadU64(a); got != 0 {
				t.Errorf("aborted write leaked: %d", got)
			}
			tx.WriteU64(a, 7)
		})
	})
	eng.Run()
	if m.store.ReadU64(a) != 7 {
		t.Errorf("final = %d", m.store.ReadU64(a))
	}
	s := m.Stats()
	if s.Commits != 1 || s.AbortsBy[stats.CauseExplicit] != 1 {
		t.Errorf("stats = %v", s)
	}
}

// TestConcurrentCounter is the fundamental atomicity test: two threads
// increment a shared counter transactionally; the final value must equal
// the number of commits (no lost updates, no double-applied retries).
func TestConcurrentCounter(t *testing.T) {
	for _, det := range []Detection{DetectLLCBounded, DetectSignatureOnly, DetectStaged, DetectIdeal} {
		det := det
		t.Run(det.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Detect = det
			eng, m := newTestMachine(opts)
			al := mem.NewAllocator(mem.NVM)
			ctr := al.AllocLines(1)
			const perThread = 50
			for i := 0; i < 2; i++ {
				eng.Spawn("inc", func(th *sim.Thread) {
					c := m.NewCtx(th, 0)
					for k := 0; k < perThread; k++ {
						c.Run(func(tx *Tx) {
							v := tx.ReadU64(ctr)
							tx.WriteU64(ctr, v+1)
						})
					}
				})
			}
			eng.Run()
			if got := m.store.ReadU64(ctr); got != 2*perThread {
				t.Errorf("counter = %d, want %d (stats %v)", got, 2*perThread, m.Stats())
			}
			if m.Stats().Commits != 2*perThread {
				t.Errorf("commits = %d", m.Stats().Commits)
			}
		})
	}
}

// TestConflictClassifiedTrue checks a genuine collision is recorded as a
// true conflict.
func TestConflictClassifiedTrue(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(1)
	// Thread 0 holds a long transaction writing a; thread 1 collides.
	eng.Spawn("holder", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 1)
			th.Advance(10 * sim.Microsecond) // stay open
			tx.ReadU64(a + 8)
		})
	})
	eng.Spawn("attacker", func(th *sim.Thread) {
		th.Advance(1 * sim.Microsecond) // start inside holder's window
		c := m.NewCtx(th, 1)
		_ = c
		c2 := m.NewCtx(th, 0) // same domain: shared data
		c2.Run(func(tx *Tx) {
			tx.WriteU64(a, 2)
		})
	})
	eng.Run()
	total := m.Stats().AbortsBy[stats.CauseTrueConflict]
	if total == 0 {
		t.Errorf("no true-conflict abort recorded: %v", m.Stats())
	}
}

// TestCapacityAbortAndSlowPath: under the LLC-bounded scheme a
// transaction larger than the LLC aborts with a capacity overflow and
// completes via the serialized slow path, exactly once, without retries.
func TestCapacityAbortAndSlowPath(t *testing.T) {
	opts := DefaultOptions()
	opts.Detect = DetectLLCBounded
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.NVM)
	lines := 3000 // 3000 lines ≫ 1024-line LLC
	base := al.AllocLines(lines)
	eng.Spawn("big", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, uint64(i))
			}
		})
	})
	eng.Run()
	s := m.Stats()
	if s.AbortsBy[stats.CauseCapacity] != 1 {
		t.Errorf("capacity aborts = %d, want 1 (no retry on capacity)", s.AbortsBy[stats.CauseCapacity])
	}
	if s.SlowPath != 1 || s.Commits != 1 {
		t.Errorf("slow=%d commits=%d", s.SlowPath, s.Commits)
	}
	// Data committed via the slow path.
	for i := 0; i < lines; i += 517 {
		if got := m.store.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i) {
			t.Fatalf("line %d = %d", i, got)
		}
	}
}

// TestUnboundedSurvivesOverflow: the same footprint commits on the fast
// path under staged detection, with the TSS overflow bit set.
func TestUnboundedSurvivesOverflow(t *testing.T) {
	for _, det := range []Detection{DetectStaged, DetectIdeal} {
		det := det
		t.Run(det.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Detect = det
			eng, m := newTestMachine(opts)
			al := mem.NewAllocator(mem.NVM)
			lines := 3000
			base := al.AllocLines(lines)
			overflowed := false
			eng.Spawn("big", func(th *sim.Thread) {
				c := m.NewCtx(th, 0)
				c.Run(func(tx *Tx) {
					for i := 0; i < lines; i++ {
						tx.WriteU64(base+mem.Addr(i)*mem.LineSize, uint64(i)+1)
					}
					overflowed = tx.Overflowed()
				})
			})
			eng.Run()
			s := m.Stats()
			if s.Commits != 1 || s.AbortsBy[stats.CauseCapacity] != 0 || s.SlowPath != 0 {
				t.Errorf("stats = %v", s)
			}
			if !overflowed {
				t.Error("overflow bit not set")
			}
			for i := 0; i < lines; i += 331 {
				if got := m.store.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i)+1 {
					t.Fatalf("line %d = %d", i, got)
				}
			}
		})
	}
}

// TestOverflowAbortRollsBackOffChipLines: an overflowed transaction that
// aborts must restore LLC-evicted DRAM lines from the undo log.
func TestOverflowAbortRollsBackOffChipLines(t *testing.T) {
	opts := DefaultOptions()
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	lines := 3000
	base := al.AllocLines(lines)
	// Pre-fill with a pattern.
	for i := 0; i < lines; i++ {
		m.store.WriteU64(base+mem.Addr(i)*mem.LineSize, 0xABC)
	}
	eng.Spawn("big", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() == 0 {
				for i := 0; i < lines; i++ {
					tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 0xDEAD)
				}
				tx.Abort()
			}
			// Second attempt: everything must read the original pattern.
			for i := 0; i < lines; i += 97 {
				if got := tx.ReadU64(base + mem.Addr(i)*mem.LineSize); got != 0xABC {
					t.Fatalf("line %d = %#x after rollback", i, got)
				}
			}
		})
	})
	eng.Run()
}

// TestSlowPathAfterMaxRetries: persistent explicit aborts exhaust the
// fast path and the body completes serialized.
func TestSlowPathAfterMaxRetries(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRetries = 3
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if !tx.SlowPath() {
				tx.Abort()
			}
			tx.WriteU64(a, 5)
		})
	})
	eng.Run()
	s := m.Stats()
	if s.SlowPath != 1 || s.Commits != 1 || s.AbortsBy[stats.CauseExplicit] != 3 {
		t.Errorf("stats = %v", s)
	}
	if m.store.ReadU64(a) != 5 {
		t.Error("slow-path write missing")
	}
}

// TestLockAcquisitionAbortsFastPath: a slow-path entry aborts running
// fast-path transactions in its domain (they "read the lock word").
func TestLockAcquisitionAbortsFastPath(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRetries = 1
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	a, b := al.AllocLines(1), al.AllocLines(1)
	eng.Spawn("victim", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 1)
			th.Advance(50 * sim.Microsecond) // long transaction
			tx.WriteU64(a+8, 2)
		})
	})
	eng.Spawn("serializer", func(th *sim.Thread) {
		th.Advance(2 * sim.Microsecond)
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if !tx.SlowPath() {
				tx.Abort() // exhaust the single retry → slow path
			}
			tx.WriteU64(b, 3)
		})
	})
	eng.Run()
	s := m.Stats()
	if s.AbortsBy[stats.CauseLock] == 0 {
		t.Errorf("no lock-cause abort: %v", s)
	}
	if s.Commits != 2 {
		t.Errorf("commits = %d", s.Commits)
	}
}

// TestNonTxAbortsConflictingTx: a non-transactional store to a line in a
// transaction's write-set aborts the transaction.
func TestNonTxAbortsConflictingTx(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(1)
	eng.Spawn("tx", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 10)
			th.Advance(10 * sim.Microsecond)
			tx.ReadU64(a + 8)
			tx.WriteU64(a, 11)
		})
	})
	eng.Spawn("nt", func(th *sim.Thread) {
		th.Advance(1 * sim.Microsecond)
		c := m.NewCtx(th, 0)
		c.NTWriteU64(a, 99)
	})
	eng.Run()
	if m.Stats().AbortsBy[stats.CauseTrueConflict] == 0 {
		t.Errorf("transaction survived non-tx conflicting store: %v", m.Stats())
	}
	// Final value: the tx retried after the NT write and committed 11.
	if got := m.store.ReadU64(a); got != 11 {
		t.Errorf("final = %d", got)
	}
}

// TestLogAreaAccessPanics: software must not touch the reserved log
// areas.
func TestLogAreaAccessPanics(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		defer func() {
			if recover() == nil {
				t.Error("log-area access did not panic")
			}
		}()
		c.NTReadU64(mem.DRAMLogBase)
	})
	eng.Run()
}
