package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// TestDRAMRedoCorrectness runs an overflowing volatile transaction under
// lazy (redo) DRAM version management: abort must still roll back, a
// later commit must stick, and reads of overflowed lines must return
// the transaction's own writes (through the modeled log indirection).
func TestDRAMRedoCorrectness(t *testing.T) {
	opts := DefaultOptions()
	opts.DRAMLog = DRAMRedo
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	lines := 3000 // ≫ 1024-line LLC
	base := al.AllocLines(lines)
	for i := 0; i < lines; i++ {
		m.store.WriteU64(base+mem.Addr(i)*mem.LineSize, 7)
	}
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() == 0 {
				for i := 0; i < lines; i++ {
					tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 0xBAD)
				}
				tx.Abort()
			}
			// Rollback restored the pre-images.
			for i := 0; i < lines; i += 111 {
				if got := tx.ReadU64(base + mem.Addr(i)*mem.LineSize); got != 7 {
					t.Fatalf("line %d = %#x after redo-mode rollback", i, got)
				}
			}
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, uint64(i))
			}
			// Read-own-writes through overflowed lines.
			if got := tx.ReadU64(base); got != 0 {
				t.Fatalf("read-own-write = %d", got)
			}
		})
	})
	eng.Run()
	for i := 0; i < lines; i += 97 {
		if got := m.store.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i) {
			t.Fatalf("line %d = %d after commit", i, got)
		}
	}
	if m.Stats().Commits != 1 || m.Stats().Overflows == 0 {
		t.Errorf("stats = %v", m.Stats())
	}
}

// TestRedoCommitSlowerThanUndo: the Figure 10 mechanism in isolation —
// identical overflowing volatile transactions commit faster under undo
// logging (commit mark) than redo logging (copy-back per line).
func TestRedoCommitSlowerThanUndo(t *testing.T) {
	run := func(kind DRAMLogKind) sim.Time {
		opts := DefaultOptions()
		opts.DRAMLog = kind
		eng, m := newTestMachine(opts)
		al := mem.NewAllocator(mem.DRAM)
		lines := 3000
		base := al.AllocLines(lines)
		eng.Spawn("t", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			for k := 0; k < 3; k++ {
				c.Run(func(tx *Tx) {
					for i := 0; i < lines; i++ {
						tx.WriteU64(base+mem.Addr(i)*mem.LineSize, uint64(k))
					}
				})
			}
		})
		return eng.Run()
	}
	undo, redo := run(DRAMUndo), run(DRAMRedo)
	if undo >= redo {
		t.Errorf("undo elapsed %v not faster than redo %v", undo, redo)
	}
}

// TestUndoLogRecordsOnEviction: LLC-evicted transactional DRAM lines
// append old-value records to the per-core undo ring, and commit
// reclaims them.
func TestUndoLogRecordsOnEviction(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.DRAM)
	lines := 3000
	base := al.AllocLines(lines)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
			}
			if m.undoRings.ForCore(0).Len() == 0 {
				t.Error("no undo records while overflowed")
			}
		})
	})
	eng.Run()
	ring := m.undoRings.ForCore(0)
	if ring.Appends == 0 {
		t.Error("undo ring never written")
	}
	if ring.Len() != 0 {
		t.Errorf("undo ring holds %d records after commit (not reclaimed)", ring.Len())
	}
}

// TestStickyRefetchSoundness reconstructs the staged-detection corner
// case: transaction A's read of X is evicted to its signature; another
// core re-fetches X on-chip; a *later* write to the now-resident line
// must still find A's signature (via the sticky check bit) and resolve
// the conflict. Paranoid mode would panic if the conflict were missed.
func TestStickyRefetchSoundness(t *testing.T) {
	opts := DefaultOptions() // paranoid on
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	x := al.AllocLines(1)
	filler := al.AllocLines(3000)
	phase := 0
	eng.Spawn("A", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 {
				return // aborted by the detected conflict: scenario over
			}
			tx.ReadU64(x) // X in A's read-set
			// Evict X by touching a huge range (A overflows, X moves to
			// A's read signature).
			for i := 0; i < 3000; i++ {
				tx.ReadU64(filler + mem.Addr(i)*mem.LineSize)
			}
			phase = 1
			// Hold the transaction open while B and C act.
			th.WaitUntil(func() bool { return phase == 3 || tx.status.abortFlag }, sim.Microsecond)
			tx.checkAbortFlag()
		})
	})
	eng.Spawn("B", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		th.WaitUntil(func() bool { return phase == 1 }, sim.Microsecond)
		c.NTReadU64(x) // refetches X on-chip (read vs read: no conflict)
		phase = 2
	})
	aborted := false
	eng.Spawn("C", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		th.WaitUntil(func() bool { return phase == 2 }, sim.Microsecond)
		c.Run(func(tx *Tx) {
			tx.WriteU64(x, 99) // LLC hit — must still probe A's signature
		})
		phase = 3
	})
	_ = aborted
	eng.Run()
	// The WAR conflict must have been detected: someone aborted.
	if m.Stats().Aborts() == 0 {
		t.Errorf("refetched-line write conflicted with nobody: %v", m.Stats())
	}
}

// TestAgingResolution: with age-based resolution the older transaction
// survives a symmetric conflict, and atomicity still holds under
// contention.
func TestAgingResolution(t *testing.T) {
	opts := DefaultOptions()
	opts.Aging = true
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	a := al.AllocLines(1)
	olderAborted := false
	eng.Spawn("older", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 {
				olderAborted = true
			}
			tx.WriteU64(a, 1)
			th.Advance(10 * sim.Microsecond)
			tx.ReadU64(a + 8)
		})
	})
	eng.Spawn("younger", func(th *sim.Thread) {
		th.Advance(1 * sim.Microsecond)
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(a, 2)
		})
	})
	eng.Run()
	if olderAborted {
		t.Error("aging policy aborted the older transaction")
	}
	if m.Stats().Commits != 2 || m.Stats().Aborts() == 0 {
		t.Errorf("stats = %v", m.Stats())
	}
	// The younger retried after the older committed: final value 2.
	if got := m.store.ReadU64(a); got != 2 {
		t.Errorf("final = %d", got)
	}
}

// TestAgingCounterAtomicity: the ablation policy preserves atomicity
// under a contended counter.
func TestAgingCounterAtomicity(t *testing.T) {
	opts := DefaultOptions()
	opts.Aging = true
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.NVM)
	ctr := al.AllocLines(1)
	for i := 0; i < 3; i++ {
		eng.Spawn("inc", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			for k := 0; k < 30; k++ {
				c.Run(func(tx *Tx) {
					tx.WriteU64(ctr, tx.ReadU64(ctr)+1)
				})
			}
		})
	}
	eng.Run()
	if got := m.store.ReadU64(ctr); got != 90 {
		t.Errorf("counter = %d, want 90 (%v)", got, m.Stats())
	}
}

// TestNoDRAMCacheStillCorrect: disabling the DRAM cache is a latency
// ablation only; correctness (overflow, commit, recovery) is unchanged.
func TestNoDRAMCacheStillCorrect(t *testing.T) {
	opts := DefaultOptions()
	opts.NoDRAMCache = true
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.NVM)
	lines := 3000
	base := al.AllocLines(lines)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, uint64(i))
			}
			// Re-read spilled lines (would hit the DRAM cache if present).
			for i := 0; i < lines; i += 97 {
				if got := tx.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i) {
					t.Fatalf("line %d = %d", i, got)
				}
			}
		})
	})
	eng.Run()
	m.Crash()
	m.Recover()
	for i := 0; i < lines; i += 313 {
		if got := m.store.ReadU64(base + mem.Addr(i)*mem.LineSize); got != uint64(i) {
			t.Fatalf("line %d = %d after recovery", i, got)
		}
	}
}

// TestDRAMCacheReadLatency pins down the [28] substrate's latency
// benefit directly: a pointer-granularity read of an early-evicted
// (DRAM-cache-resident) NVM line costs DRAM latency with the cache and
// NVM read latency without it.
func TestDRAMCacheReadLatency(t *testing.T) {
	measure := func(noCache bool) sim.Time {
		opts := DefaultOptions()
		opts.NoDRAMCache = noCache
		eng, m := newTestMachine(opts)
		al := mem.NewAllocator(mem.NVM)
		lines := 3000
		base := al.AllocLines(lines)
		var delta sim.Time
		eng.Spawn("t", func(th *sim.Thread) {
			c := m.NewCtx(th, 0)
			c.Run(func(tx *Tx) {
				for i := 0; i < lines; i++ {
					tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
				}
			})
			// Probe a line that was evicted from the LLC (more than 1024
			// lines were written after it) but is recent enough to still
			// sit in the 2048-line test DRAM cache.
			probe := base + mem.Addr(lines-1300)*mem.LineSize
			before := th.Clock()
			c.NTReadU64(probe)
			delta = th.Clock() - before
		})
		eng.Run()
		return delta
	}
	with, without := measure(false), measure(true)
	cfg := testConfig()
	if with >= without {
		t.Errorf("DRAM-cache read (%v) not faster than NVM read (%v)", with, without)
	}
	if without-with != cfg.NVMReadLatency-cfg.DRAMLatency {
		t.Errorf("latency delta = %v, want %v (NVM read − DRAM)",
			without-with, cfg.NVMReadLatency-cfg.DRAMLatency)
	}
}

// TestNonIsolatedNTTrafficAbortsViaFalsePositive: without isolation, a
// foreign domain's non-transactional miss traffic can abort a saturated
// transaction through a signature false positive — the effect signature
// isolation removes (Section IV-D).
func TestNonIsolatedNTTrafficAbortsViaFalsePositive(t *testing.T) {
	opts := DefaultOptions()
	opts.SigBits = 512
	opts.Isolation = false
	eng, m := newTestMachine(opts)
	al := mem.NewAllocator(mem.DRAM)
	lines := 3000
	base := al.AllocLines(lines)
	foreign := al.AllocLines(512)
	saturated := false
	eng.Spawn("big", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			if tx.Attempt() > 0 || tx.SlowPath() {
				return // aborted once: scenario complete
			}
			for i := 0; i < lines; i++ {
				tx.WriteU64(base+mem.Addr(i)*mem.LineSize, 1)
			}
			saturated = true
			th.WaitUntil(func() bool { return tx.status.abortFlag }, sim.Microsecond)
			tx.checkAbortFlag() // unwinds with the FP cause
		})
	})
	eng.Spawn("foreign", func(th *sim.Thread) {
		c := m.NewCtx(th, 1) // different domain, non-transactional
		th.WaitUntil(func() bool { return saturated }, sim.Microsecond)
		for i := 0; i < 512; i++ {
			c.NTReadU64(foreign + mem.Addr(i)*mem.LineSize)
		}
	})
	eng.Run()
	if m.Stats().AbortsBy[stats.CauseFalsePositive] == 0 {
		t.Errorf("foreign NT traffic never false-positively aborted the saturated tx: %v", m.Stats())
	}
}
