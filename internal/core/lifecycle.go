package core

import (
	"fmt"
	"slices"

	"uhtm/internal/coherence"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/trace"
	"uhtm/internal/wal"
)

// walWrite builds a RecWrite record.
func walWrite(txID uint64, la mem.Addr, data mem.Line) wal.Record {
	return wal.Record{Type: wal.RecWrite, TxID: txID, Addr: la, Data: data}
}

// beginCost models xbegin plus TSS setup.
const beginCost = 5 * 1000 // 5ns in picoseconds

// begin allocates a transaction ID (the monotonically increasing global
// counter of Section IV-C), resets the core's pooled Tx and its TSS
// entry, and hands out the live Tx.
func (m *Machine) begin(c *Ctx, attempt int, slow bool) *Tx {
	m.txCounter++
	id := m.txCounter
	tx := m.txPool[c.core]
	if tx == nil {
		tx = &Tx{
			m:     m,
			core:  c.core,
			sig:   signature.NewPair(m.opts.SigBits),
			pages: make([]*trackPage, mem.PageCount),
		}
		m.txPool[c.core] = tx
	}
	tx.th = c.th
	tx.id = id
	tx.domain = c.domain
	tx.attempt = attempt
	tx.slowPath = slow
	tx.rolledBack = false
	tx.finished = false
	tx.committing = false
	tx.statusVal = txStatus{id: id, core: c.core, domain: c.domain, slowPath: slow, abortEnemyCore: -1}
	tx.status = &tx.statusVal
	tx.sig.Clear()
	tx.resetTracking()
	m.byCore[c.core] = tx
	c.th.Advance(beginCost)
	if m.tr != nil {
		var slowBit uint64
		if slow {
			slowBit = 1
		}
		m.emit(trace.EvTxBegin, c.core, id, 0, uint64(attempt)+1, uint64(c.domain)<<1|slowBit)
	}
	return tx
}

// commit runs the parallel commit protocol of Section IV-B: the NVM side
// waits for redo-log durability and flushes the persistent write-set
// toward the DRAM cache; the DRAM side places the commit mark on the
// undo log (or copies redo values in place under DRAMRedo). The two
// sides are charged in parallel (max).
func (m *Machine) commit(tx *Tx) {
	tx.th.Sync()
	tx.checkAbortFlag()
	m.hit(PointCommitBegin)
	m.emit(trace.EvTxCommitBegin, tx.core, tx.id, 0, 0, 0)
	tx.committing = true
	cfg := m.cfg

	var nvmLat, dramLat int64

	// --- NVM side ---
	if len(tx.nvmList) > 0 {
		ring := m.redoRings.ForCore(tx.core)
		nvmAddrs := append(tx.commitScratch[:0], tx.nvmList...)
		slices.Sort(nvmAddrs) // deterministic log layout
		tx.commitScratch = nvmAddrs
		for _, la := range nvmAddrs {
			img := m.store.PeekLine(la)
			m.hit(PointCommitRecord)
			ring.Append(walWrite(tx.id, la, img))
			nvmLat += int64(m.lat.RedoIssue)
		}
		m.lsnCounter++
		m.hit(PointCommitMark)
		ring.Append(wal.Record{Type: wal.RecCommit, TxID: tx.id, LSN: m.lsnCounter})
		m.emit(trace.EvTxCommitMark, tx.core, tx.id, 0, m.lsnCounter, 0)
		// The log writes were issued asynchronously during execution;
		// the critical-path wait is the commit mark reaching the ADR
		// domain.
		nvmLat += int64(cfg.NVMWriteLatency)
		// Flush the on-chip persistent write-set toward the DRAM cache,
		// guided by the overflow list (one DRAM-cache access to read it
		// when non-empty).
		m.hit(PointCommitFlush)
		if tx.ovfListCount > 0 {
			nvmLat += int64(cfg.DRAMLatency)
		}
		for _, la := range nvmAddrs {
			if m.llc.Contains(la) || m.l1[tx.core].Contains(la) {
				m.dcache.Insert(la, tx.id)
				nvmLat += int64(m.lat.FlushPerLine)
			}
		}
		m.dcache.CommitTx(tx.id)
	}

	// --- DRAM side ---
	m.hit(PointCommitDRAM)
	if tx.ovfDRAMCount > 0 {
		switch m.opts.DRAMLog {
		case DRAMUndo:
			// Fast commit: one commit mark on the DRAM log.
			m.undoRings.ForCore(tx.core).Append(wal.Record{Type: wal.RecCommit, TxID: tx.id})
			dramLat += int64(cfg.DRAMLatency)
		case DRAMRedo:
			// Lazy commit: copy every overflowed line from the log to
			// its in-place location (the slow commit of Fig. 4c).
			dramLat += int64(tx.ovfDRAMCount) * 2 * int64(cfg.DRAMLatency)
			dramLat += int64(cfg.DRAMLatency) // mark
		}
	}

	if nvmLat > dramLat {
		tx.th.Advance(sim.Time(nvmLat))
	} else {
		tx.th.Advance(sim.Time(dramLat))
	}

	// --- Cleanup ---
	m.hit(PointCommitCleanup)
	m.finishCommit(tx)
}

// finishCommit retires the transaction's hardware state and records
// statistics.
func (m *Machine) finishCommit(tx *Tx) {
	tx.finished = true
	if tx.status.overflowed {
		m.noteSigOccupancy(tx)
	}
	m.dir.ClearTx(tx.id)
	// Undo-log records of this transaction are dead; the per-core ring
	// reclaims to its head (one live transaction per core).
	m.undoRings.ForCore(tx.core).Reclaim(m.undoRings.ForCore(tx.core).Head())

	// The write-set must be registered for in-place persistence BEFORE
	// any reclamation may run: reclaiming first would erase this
	// transaction's redo records while its images are still volatile —
	// a crash then loses an acknowledged commit. (Found by the crash
	// sweep; see RECOVERY.md.)
	for _, la := range tx.nvmList {
		m.pendingPut(la, m.store.PeekLine(la))
	}
	tx.committing = false
	m.maybeReclaimRedo(tx.core)
	m.clearSticky()

	s := m.statsFor(tx.domain)
	s.Commits++
	s.ReadLines += uint64(tx.readCount)
	s.WriteLines += uint64(len(tx.writeList))
	m.stats.Commits++
	if tx.slowPath {
		s.SlowPath++
		m.stats.SlowPath++
	}
	m.noteCommitChain(tx, s)
	m.emit(trace.EvTxCommitDone, tx.core, tx.id, 0, 0, 0)

	if m.opts.TrackCommits {
		writes := make(map[mem.Addr]mem.Line, len(tx.writeList))
		for _, la := range tx.writeList {
			writes[la] = m.store.PeekLine(la)
		}
		m.commitLog = append(m.commitLog, committedTx{ID: tx.id, Domain: tx.domain, Writes: writes})
	}

	if m.byCore[tx.core] == tx {
		m.byCore[tx.core] = nil
	}
}

// rollback reverts every written line to its pre-transaction image
// (modeling cache invalidation on-chip, the undo-log walk for overflowed
// DRAM lines, and the DRAM-cache invalidate bit for NVM lines), clears
// the transaction's hardware tracking, and returns the latency the abort
// protocol costs its core.
func (m *Machine) rollback(tx *Tx) (cost sim.Time) {
	if tx.rolledBack {
		return 0
	}
	tx.rolledBack = true
	tx.finished = true
	m.noteAbort(tx)
	m.hit(PointAbortBegin)
	cfg := m.cfg

	cost = m.lat.PipelineFlush
	m.hit(PointAbortUndo)
	onChip := 0
	for i := range tx.undo {
		e := &tx.undo[i]
		m.store.PokeLine(e.la, &e.img)
		// Invalidate cached copies of speculative data.
		if p, _ := m.llc.Invalidate(e.la); p {
			onChip++
		}
		for _, l1 := range m.l1 {
			l1.Invalidate(e.la)
		}
	}
	cost += sim.Time(onChip) * m.lat.AbortPerLine

	if tx.ovfDRAMCount > 0 {
		if m.opts.DRAMLog == DRAMUndo {
			// Walk the undo log: read each entry and write it in place.
			cost += sim.Time(tx.ovfDRAMCount) * 2 * cfg.DRAMLatency
		}
		// DRAMRedo aborts are cheap: the log is simply dropped.
	}
	if tx.ovfListCount > 0 {
		cost += cfg.DRAMLatency // read the overflow list
	}

	// NVM side: invalidate-bit on DRAM-cache lines; redo-log deletion is
	// deferred to background reclamation (Section IV-C), so only the
	// abort mark is charged when any redo state exists.
	if m.dcache.InvalidateTx(tx.id) > 0 || len(tx.nvmList) > 0 {
		m.hit(PointAbortMark)
		m.redoRings.ForCore(tx.core).Append(wal.Record{Type: wal.RecAbort, TxID: tx.id})
		cost += cfg.NVMWriteLatency
	}

	m.dir.ClearTx(tx.id)
	m.undoRings.ForCore(tx.core).Reclaim(m.undoRings.ForCore(tx.core).Head())
	tx.sig.Clear()
	m.clearSticky()

	if m.byCore[tx.core] == tx {
		m.byCore[tx.core] = nil
	}
	m.hit(PointAbortDone)
	return cost
}

// finishAbort completes an unwound attempt on its own thread: performs
// the rollback unless a remote aborter already did, and records the
// abort cause. The unwind signal's enemy fields are copied onto the TSS
// before rollback so the trace's abort event carries them (a remote
// aborter already filled them in via abortVictim).
func (m *Machine) finishAbort(tx *Tx, ab txAbort) {
	if !tx.rolledBack {
		tx.status.abortCause = ab.cause
		tx.status.abortEnemy = ab.enemyID
		tx.status.abortEnemyCore = ab.enemyCore
	}
	cost := m.rollback(tx)
	tx.th.Advance(cost)

	s := m.statsFor(tx.domain)
	s.AbortsBy[ab.cause]++
	m.stats.AbortsBy[ab.cause]++
}

// clearSticky drops all sticky check-signature bits once no live
// transaction is overflowed — stale bits only cost extra checks, so a
// coarse clearing point suffices. The scan deliberately includes the
// retiring transaction still parked in its core slot: an overflowed
// finisher keeps the bits, exactly as the former live-set scan did.
func (m *Machine) clearSticky() {
	if !m.stickyAny {
		return
	}
	for _, t := range m.byCore {
		if t != nil && t.status.overflowed {
			return
		}
	}
	m.stickyReset()
}

// stickyReset invalidates every sticky bit in O(1) by bumping the
// generation.
func (m *Machine) stickyReset() {
	m.stickyGen++
	if m.stickyGen == 0 {
		// Generation wrap: wipe the pages so stale slots cannot collide,
		// and skip 0 (the page zero value).
		for _, p := range m.stickyPages {
			if p != nil {
				*p = stickyPage{}
			}
		}
		m.stickyGen = 1
	}
	m.stickyAny = false
}

// maybeReclaimRedo keeps the per-core redo rings from filling: past the
// high-water mark, every committed NVM line that may not have drained is
// persisted in place, after which all log records are dead (committed
// data durable in place; aborted and live transactions have no records —
// records are only appended at commit) and the rings reclaim wholesale.
// This is the background log-reclamation of [28]/Section IV-C, so it
// charges no latency to any core.
func (m *Machine) maybeReclaimRedo(core int) {
	ring := m.redoRings.ForCore(core)
	if ring.Len() < ring.Slots()/2 {
		return
	}
	m.ReclaimLogs()
}

// ReclaimLogs runs one full background reclamation pass: committed NVM
// images are persisted in place, the DRAM cache drains, and every redo
// ring reclaims to its head. Safe at any quiescent point; a crash right
// after it recovers from the durable in-place data alone.
func (m *Machine) ReclaimLogs() {
	m.hit(PointReclaimBegin)
	m.persistPending()
	m.hit(PointReclaimDrain)
	m.dcache.DrainAll()
	// Truncation must defer while any core is mid-commit: such a
	// transaction's durability rests solely on its log records (its
	// write-set is not yet registered in pendingNVM), so its mark must
	// survive — and a checkpoint covering it would filter it at replay.
	// (Found by the crash sweep; see RECOVERY.md.)
	for _, t := range m.byCore {
		if t != nil && t.committing {
			return
		}
	}
	// Durably advance the checkpoint BEFORE truncating any ring. Ring
	// truncations are per-core durable updates and cannot be atomic as a
	// group: a crash between them would otherwise leave stale committed
	// records on the surviving rings, and replaying those would regress
	// lines past newer commits whose records were already truncated.
	// With the checkpoint durable first, recovery ignores every commit
	// record at or below it — all such data is persisted in place by the
	// persistPending above. (Found by the crash sweep; see RECOVERY.md.)
	m.hit(PointReclaimCkpt)
	m.setCheckpoint(m.lsnCounter)
	m.hit(PointReclaimRings)
	for i := 0; i < m.redoRings.Count(); i++ {
		r := m.redoRings.ForCore(i)
		r.Reclaim(r.Head())
	}
}

// setCheckpoint durably records lsn as the redo-log truncation point —
// a single-line (hence crash-atomic) durable update.
func (m *Machine) setCheckpoint(lsn uint64) {
	m.store.WriteU64(m.ckptAddr, lsn)
	l := m.store.PeekLine(m.ckptAddr)
	m.store.PersistLine(m.ckptAddr, &l)
	m.emit(trace.EvWALCheckpoint, -1, 0, 0, lsn, 0)
}

// persistPending force-drains the committed image of every NVM line
// still ahead of its in-place durable update. Addresses are walked in
// sorted order so a crash at the k-th image always tears the same
// prefix — the crash sweep's replays stay bit-reproducible. (A crash
// mid-walk leaves the in-memory set undrained where the old map-based
// code deleted entries incrementally; the difference is unobservable —
// a halted machine's pending set is never consulted again, and only
// the durable PersistLine order matters to the sweep.)
func (m *Machine) persistPending() {
	if len(m.pendingAddrs) == 0 {
		return
	}
	s := append(m.persistScratch[:0], m.pendingAddrs...)
	slices.Sort(s)
	for _, la := range s {
		idx := mem.LineIndex(la)
		q := m.pendingPages[idx>>mem.PageShift].pos[idx&(mem.PageLines-1)]
		l := m.pendingImgs[q-1]
		m.hit(PointReclaimImage)
		m.store.PersistLine(la, &l)
	}
	for _, la := range m.pendingAddrs {
		idx := mem.LineIndex(la)
		m.pendingPages[idx>>mem.PageShift].pos[idx&(mem.PageLines-1)] = 0
	}
	m.pendingAddrs = m.pendingAddrs[:0]
	m.pendingImgs = m.pendingImgs[:0]
	m.persistScratch = s[:0]
}

// Recover performs post-crash recovery (Section IV-C): it replays the
// committed redo records of every core's NVM log onto the durable image,
// ignoring records already covered by the durable checkpoint (their data
// is persisted in place; see ReclaimLogs). DRAM contents and the undo
// logs are gone; the programmer keeps recovery-relevant structures in
// NVM. Call after Crash, so the checkpoint read sees the durable image.
func (m *Machine) Recover() wal.ReplayStats {
	return m.redoRings.ReplayAll(m.store.ReadU64(m.ckptAddr))
}

// Crash simulates a power failure on the machine's store and resets the
// volatile hardware structures. Call Recover afterwards.
func (m *Machine) Crash() {
	m.store.Crash()
	m.dir = coherence.NewDirectory()
	m.llc.Reset()
	for _, l1 := range m.l1 {
		l1.Reset()
	}
	for i := range m.byCore {
		m.byCore[i] = nil
	}
	m.stickyReset()
}

// DrainToNVM forces all committed NVM data to the durable image — a
// clean shutdown, used by tests that compare durable images.
func (m *Machine) DrainToNVM() {
	m.persistPending()
	m.dcache.DrainAll()
}

func init() {
	// Guard against accidental divergence of the record framing the
	// recovery path depends on.
	if wal.RecordSize%8 != 0 {
		panic(fmt.Sprintf("core: wal.RecordSize %d not 8-byte aligned", wal.RecordSize))
	}
}
