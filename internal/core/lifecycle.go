package core

import (
	"fmt"
	"slices"
	"time"

	"uhtm/internal/coherence"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/trace"
	"uhtm/internal/wal"
)

// walWrite builds a RecWrite record.
func walWrite(txID uint64, la mem.Addr, data mem.Line) wal.Record {
	return wal.Record{Type: wal.RecWrite, TxID: txID, Addr: la, Data: data}
}

// beginCost models xbegin plus TSS setup.
const beginCost = 5 * 1000 // 5ns in picoseconds

// begin allocates a transaction ID (the monotonically increasing global
// counter of Section IV-C), resets the core's pooled Tx and its TSS
// entry, and hands out the live Tx.
func (m *Machine) begin(c *Ctx, attempt int, slow bool) *Tx {
	m.txCounter++
	id := m.txCounter
	tx := m.txPool[c.core]
	if tx == nil {
		tx = &Tx{
			m:     m,
			core:  c.core,
			sig:   signature.NewPair(m.opts.SigBits),
			pages: make([]*trackPage, mem.PageCount),
		}
		m.txPool[c.core] = tx
	}
	tx.th = c.th
	tx.id = id
	tx.domain = c.domain
	tx.attempt = attempt
	tx.slowPath = slow
	tx.rolledBack = false
	tx.finished = false
	tx.committing = false
	tx.commitLSN = 0
	tx.statusVal = txStatus{id: id, core: c.core, domain: c.domain, slowPath: slow, abortEnemyCore: -1}
	tx.status = &tx.statusVal
	tx.sig.Clear()
	tx.resetTracking()
	m.byCore[c.core] = tx
	c.th.Advance(beginCost)
	if m.tr != nil {
		var slowBit uint64
		if slow {
			slowBit = 1
		}
		m.emit(trace.EvTxBegin, c.core, id, 0, uint64(attempt)+1, uint64(c.domain)<<1|slowBit)
	}
	return tx
}

// commit runs the parallel commit protocol of Section IV-B: the NVM side
// waits for redo-log durability and flushes the persistent write-set
// toward the DRAM cache; the DRAM side places the commit mark on the
// undo log (or copies redo values in place under DRAMRedo). The two
// sides are charged in parallel (max).
func (m *Machine) commit(tx *Tx) {
	tx.th.Sync()
	tx.checkAbortFlag()
	m.hit(PointCommitBegin)
	m.emit(trace.EvTxCommitBegin, tx.core, tx.id, 0, 0, 0)
	tx.committing = true
	cfg := m.cfg

	var nvmLat, dramLat int64

	// --- NVM side ---
	if len(tx.nvmList) > 0 {
		ring := m.redoRings.ForCore(tx.core)
		nvmAddrs := append(tx.commitScratch[:0], tx.nvmList...)
		slices.Sort(nvmAddrs) // deterministic log layout
		tx.commitScratch = nvmAddrs
		for _, la := range nvmAddrs {
			img := m.store.PeekLine(la)
			m.hit(PointCommitRecord)
			ring.Append(walWrite(tx.id, la, img))
			nvmLat += int64(m.lat.RedoIssue)
		}
		m.lsnCounter++
		tx.commitLSN = m.lsnCounter
		m.hit(PointCommitMark)
		ring.Append(wal.Record{Type: wal.RecCommit, TxID: tx.id, LSN: m.lsnCounter})
		m.emit(trace.EvTxCommitMark, tx.core, tx.id, 0, m.lsnCounter, 0)
		// The log writes were issued asynchronously during execution;
		// the critical-path wait is the commit mark reaching the ADR
		// domain.
		nvmLat += int64(cfg.NVMWriteLatency)
		// Flush the on-chip persistent write-set toward the DRAM cache,
		// guided by the overflow list (one DRAM-cache access to read it
		// when non-empty).
		m.hit(PointCommitFlush)
		if tx.ovfListCount > 0 {
			nvmLat += int64(cfg.DRAMLatency)
		}
		for _, la := range nvmAddrs {
			if m.llc.Contains(la) || m.l1[tx.core].Contains(la) {
				m.dcache.Insert(la, tx.id)
				nvmLat += int64(m.lat.FlushPerLine)
			}
		}
		m.dcache.CommitTx(tx.id)
	}

	// --- DRAM side ---
	m.hit(PointCommitDRAM)
	if tx.ovfDRAMCount > 0 {
		switch m.opts.DRAMLog {
		case DRAMUndo:
			// Fast commit: one commit mark on the DRAM log.
			m.undoRings.ForCore(tx.core).Append(wal.Record{Type: wal.RecCommit, TxID: tx.id})
			dramLat += int64(cfg.DRAMLatency)
		case DRAMRedo:
			// Lazy commit: copy every overflowed line from the log to
			// its in-place location (the slow commit of Fig. 4c).
			dramLat += int64(tx.ovfDRAMCount) * 2 * int64(cfg.DRAMLatency)
			dramLat += int64(cfg.DRAMLatency) // mark
		}
	}

	if nvmLat > dramLat {
		tx.th.Advance(sim.Time(nvmLat))
	} else {
		tx.th.Advance(sim.Time(dramLat))
	}

	// --- Cleanup ---
	m.hit(PointCommitCleanup)
	m.finishCommit(tx)
}

// finishCommit retires the transaction's hardware state and records
// statistics.
func (m *Machine) finishCommit(tx *Tx) {
	tx.finished = true
	if tx.status.overflowed {
		m.noteSigOccupancy(tx)
	}
	m.dir.ClearTx(tx.id)
	// Undo-log records of this transaction are dead; the per-core ring
	// reclaims to its head (one live transaction per core).
	m.undoRings.ForCore(tx.core).Reclaim(m.undoRings.ForCore(tx.core).Head())

	// The write-set must be registered for in-place persistence BEFORE
	// any reclamation may run: reclaiming first would erase this
	// transaction's redo records while its images are still volatile —
	// a crash then loses an acknowledged commit. (Found by the crash
	// sweep; see RECOVERY.md.)
	for _, la := range tx.nvmList {
		m.pendingPut(la, m.store.PeekLine(la))
	}
	tx.committing = false
	m.maybeReclaimRedo(tx.core)
	m.clearSticky()

	s := m.statsFor(tx.domain)
	s.Commits++
	s.ReadLines += uint64(tx.readCount)
	s.WriteLines += uint64(len(tx.writeList))
	m.stats.Commits++
	if tx.slowPath {
		s.SlowPath++
		m.stats.SlowPath++
	}
	m.noteCommitChain(tx, s)
	m.emit(trace.EvTxCommitDone, tx.core, tx.id, 0, 0, 0)

	if m.opts.TrackCommits {
		writes := make(map[mem.Addr]mem.Line, len(tx.writeList))
		for _, la := range tx.writeList {
			writes[la] = m.store.PeekLine(la)
		}
		m.commitLog = append(m.commitLog, committedTx{ID: tx.id, Domain: tx.domain, Writes: writes})
	}

	if m.byCore[tx.core] == tx {
		m.byCore[tx.core] = nil
	}
}

// rollback reverts every written line to its pre-transaction image
// (modeling cache invalidation on-chip, the undo-log walk for overflowed
// DRAM lines, and the DRAM-cache invalidate bit for NVM lines), clears
// the transaction's hardware tracking, and returns the latency the abort
// protocol costs its core.
func (m *Machine) rollback(tx *Tx) (cost sim.Time) {
	if tx.rolledBack {
		return 0
	}
	tx.rolledBack = true
	tx.finished = true
	m.noteAbort(tx)
	m.hit(PointAbortBegin)
	cfg := m.cfg

	cost = m.lat.PipelineFlush
	m.hit(PointAbortUndo)
	onChip := 0
	for i := range tx.undo {
		e := &tx.undo[i]
		m.store.PokeLine(e.la, &e.img)
		// Invalidate cached copies of speculative data.
		if p, _ := m.llc.Invalidate(e.la); p {
			onChip++
		}
		for _, l1 := range m.l1 {
			l1.Invalidate(e.la)
		}
	}
	cost += sim.Time(onChip) * m.lat.AbortPerLine

	if tx.ovfDRAMCount > 0 {
		if m.opts.DRAMLog == DRAMUndo {
			// Walk the undo log: read each entry and write it in place.
			cost += sim.Time(tx.ovfDRAMCount) * 2 * cfg.DRAMLatency
		}
		// DRAMRedo aborts are cheap: the log is simply dropped.
	}
	if tx.ovfListCount > 0 {
		cost += cfg.DRAMLatency // read the overflow list
	}

	// NVM side: invalidate-bit on DRAM-cache lines; redo-log deletion is
	// deferred to background reclamation (Section IV-C), so only the
	// abort mark is charged when any redo state exists.
	if m.dcache.InvalidateTx(tx.id) > 0 || len(tx.nvmList) > 0 {
		m.hit(PointAbortMark)
		m.redoRings.ForCore(tx.core).Append(wal.Record{Type: wal.RecAbort, TxID: tx.id})
		cost += cfg.NVMWriteLatency
	}

	m.dir.ClearTx(tx.id)
	m.undoRings.ForCore(tx.core).Reclaim(m.undoRings.ForCore(tx.core).Head())
	tx.sig.Clear()
	m.clearSticky()

	if m.byCore[tx.core] == tx {
		m.byCore[tx.core] = nil
	}
	m.hit(PointAbortDone)
	return cost
}

// finishAbort completes an unwound attempt on its own thread: performs
// the rollback unless a remote aborter already did, and records the
// abort cause. The unwind signal's enemy fields are copied onto the TSS
// before rollback so the trace's abort event carries them (a remote
// aborter already filled them in via abortVictim).
func (m *Machine) finishAbort(tx *Tx, ab txAbort) {
	if !tx.rolledBack {
		tx.status.abortCause = ab.cause
		tx.status.abortEnemy = ab.enemyID
		tx.status.abortEnemyCore = ab.enemyCore
	}
	cost := m.rollback(tx)
	tx.th.Advance(cost)

	s := m.statsFor(tx.domain)
	s.AbortsBy[ab.cause]++
	m.stats.AbortsBy[ab.cause]++
}

// clearSticky drops all sticky check-signature bits once no live
// transaction is overflowed — stale bits only cost extra checks, so a
// coarse clearing point suffices. The scan deliberately includes the
// retiring transaction still parked in its core slot: an overflowed
// finisher keeps the bits, exactly as the former live-set scan did.
func (m *Machine) clearSticky() {
	if !m.stickyAny {
		return
	}
	for _, t := range m.byCore {
		if t != nil && t.status.overflowed {
			return
		}
	}
	m.stickyReset()
}

// stickyReset invalidates every sticky bit in O(1) by bumping the
// generation.
func (m *Machine) stickyReset() {
	m.stickyGen++
	if m.stickyGen == 0 {
		// Generation wrap: wipe the pages so stale slots cannot collide,
		// and skip 0 (the page zero value).
		for _, p := range m.stickyPages {
			if p != nil {
				*p = stickyPage{}
			}
		}
		m.stickyGen = 1
	}
	m.stickyAny = false
}

// maybeReclaimRedo keeps the per-core redo rings from filling: past the
// high-water mark, every committed NVM line that may not have drained is
// persisted in place, after which the committed prefix of every ring is
// dead (committed data durable in place) and reclaims incrementally.
// This is the background log-reclamation of [28]/Section IV-C, so it
// charges no latency to any core.
func (m *Machine) maybeReclaimRedo(core int) {
	ring := m.redoRings.ForCore(core)
	if ring.Len() < ring.Slots()/2 {
		return
	}
	m.ReclaimLogs()
}

// ReclaimLogs runs one incremental background reclamation pass: pending
// committed NVM images are persisted in place, the DRAM cache drains, a
// fuzzy checkpoint (low-water LSN + active-transaction table) is written
// durably, and each redo ring truncates its disposable prefix. The pass
// never waits for quiescence — a mid-commit transaction merely lowers
// the low-water mark so its records survive — so reclamation always
// makes progress under sustained commit load. (The previous design
// deferred wholesale whenever any core was committing; under saturation
// the rings filled until wal.Append panicked. See RECOVERY.md.)
//
// At a quiescent point the low-water mark equals the global LSN and
// every group is disposable, so the rings truncate fully — a crash right
// after recovers from the durable in-place data alone.
func (m *Machine) ReclaimLogs() {
	m.hit(PointReclaimBegin)
	dirty := len(m.pendingAddrs)
	m.persistPending()
	m.hit(PointReclaimDrain)
	m.dcache.DrainAll()
	// The checkpoint must be durable BEFORE any ring truncates. Ring
	// truncations are per-core durable updates and cannot be atomic as a
	// group: a crash between them would otherwise leave stale committed
	// records on the surviving rings, and replaying those would regress
	// lines past newer commits whose records were already truncated.
	// With the checkpoint durable first, recovery ignores every commit
	// record at or below its low-water LSN — all such data is persisted
	// in place by the persistPending above. (Found by the crash sweep;
	// see RECOVERY.md.)
	low := m.lowWaterLSN()
	m.hit(PointReclaimCkpt)
	m.writeCheckpoint(low, dirty)
	m.hit(PointReclaimRings)
	for i := 0; i < m.redoRings.Count(); i++ {
		m.reclaimRing(m.redoRings.ForCore(i), low)
	}
}

// lowWaterLSN returns the highest LSN safe to truncate at: the global
// commit LSN, lowered below the commit mark of any mid-commit
// transaction. Such a transaction's durability rests solely on its log
// records (its write-set is not yet registered in pendingNVM), so its
// mark must survive truncation and stay above the checkpoint's replay
// filter. A committing transaction whose mark is not yet appended needs
// no lowering: its eventual LSN is above the current global counter.
func (m *Machine) lowWaterLSN() uint64 {
	low := m.lsnCounter
	for _, t := range m.byCore {
		if t != nil && t.committing && t.commitLSN != 0 && t.commitLSN-1 < low {
			low = t.commitLSN - 1
		}
	}
	return low
}

// writeCheckpoint cuts one fuzzy checkpoint: the previous-but-one group
// is truncated (the previous complete group is retained as the fallback
// for a torn write of this one), the new group is appended durably, and
// only then does the cell flip to it — a single-line, crash-atomic
// pointer update. A crash anywhere in between leaves the cell on the
// previous complete group.
func (m *Machine) writeCheckpoint(low uint64, dirty int) {
	m.ckptLog.Reclaim(m.lastCkptBegin)
	act := m.ckptActScratch[:0]
	for _, t := range m.byCore {
		if t != nil && !t.finished {
			act = append(act, wal.CkptActive{TxID: t.id, CommitLSN: t.commitLSN})
		}
	}
	m.ckptActScratch = act
	m.ckptSeq++
	begin := m.ckptLog.AppendCheckpoint(wal.Checkpoint{
		Seq:        m.ckptSeq,
		LowWater:   low,
		DirtyLines: dirty,
		Active:     act,
	})
	m.hit(PointReclaimCell)
	m.store.WriteU64(m.ckptAddr, begin+1)
	l := m.store.PeekLine(m.ckptAddr)
	m.store.PersistLine(m.ckptAddr, &l)
	m.emit(trace.EvWALCheckpoint, -1, 0, 0, low, 0)
	m.lastCkptBegin = begin
}

// reclaimRing truncates ring's disposable prefix: record groups whose
// transaction is aborted, committed at or below the low-water mark, or
// 2PC-prepared with a durably decided fate (prepareResolver). The walk
// stops at the first record that must survive — a mid-commit
// transaction's group, a commit above the mark, or an undecided prepare
// — so truncation never splits a group (a transaction's records are
// contiguous on its ring and fate is uniform per transaction).
func (m *Machine) reclaimRing(ring *wal.Log, low uint64) {
	if m.ringFate == nil {
		m.ringFate = make(map[uint64]ringFate)
	}
	clear(m.ringFate)
	head := ring.Head()
	for seq := ring.Tail(); seq < head; seq++ {
		r, ok := ring.Read(seq)
		if !ok {
			continue
		}
		f := m.ringFate[r.TxID]
		switch r.Type {
		case wal.RecCommit:
			f.committed = true
			f.commitLSN = r.LSN
		case wal.RecAbort:
			f.aborted = true
		case wal.RecPrepare:
			f.prepared = true
		}
		m.ringFate[r.TxID] = f
	}
	stop := ring.Tail()
	for seq := stop; seq < head; seq++ {
		r, ok := ring.Read(seq)
		if !ok {
			break // undecodable live slot: keep everything from here on
		}
		f := m.ringFate[r.TxID]
		disposable := false
		switch {
		case f.aborted && !f.committed:
			disposable = true
		case f.committed:
			disposable = f.commitLSN <= low
		case f.prepared:
			disposable = m.prepareResolver != nil && m.prepareResolver(r.TxID)
		}
		if !disposable {
			break
		}
		stop = seq + 1
	}
	ring.Reclaim(stop)
}

// persistPending force-drains the committed image of every NVM line
// still ahead of its in-place durable update. Addresses are walked in
// sorted order so a crash at the k-th image always tears the same
// prefix — the crash sweep's replays stay bit-reproducible. (A crash
// mid-walk leaves the in-memory set undrained where the old map-based
// code deleted entries incrementally; the difference is unobservable —
// a halted machine's pending set is never consulted again, and only
// the durable PersistLine order matters to the sweep.)
func (m *Machine) persistPending() {
	if len(m.pendingAddrs) == 0 {
		return
	}
	s := append(m.persistScratch[:0], m.pendingAddrs...)
	slices.Sort(s)
	for _, la := range s {
		idx := mem.LineIndex(la)
		q := m.pendingPages[idx>>mem.PageShift].pos[idx&(mem.PageLines-1)]
		l := m.pendingImgs[q-1]
		m.hit(PointReclaimImage)
		m.store.PersistLine(la, &l)
	}
	for _, la := range m.pendingAddrs {
		idx := mem.LineIndex(la)
		m.pendingPages[idx>>mem.PageShift].pos[idx&(mem.PageLines-1)] = 0
	}
	m.pendingAddrs = m.pendingAddrs[:0]
	m.pendingImgs = m.pendingImgs[:0]
	m.persistScratch = s[:0]
}

// RecoveryStats reports what one recovery pass examined and applied,
// plus a modeled per-phase latency breakdown. The simulated-time phase
// costs are derived from the machine's medium latencies (scan reads
// every in-window log slot; replay and persist each write every applied
// line) and are fully deterministic; Wall is the host time the pass took
// and is the only nondeterministic field.
type RecoveryStats struct {
	wal.ReplayStats
	CheckpointLSN uint64 // low-water LSN the replay filtered against
	CkptRecords   int    // checkpoint-ring records decoded to find it

	ScanPS    sim.Time // modeled log-scan phase (read every slot)
	ReplayPS  sim.Time // modeled redo-apply phase (write applied lines)
	PersistPS sim.Time // modeled in-place persist phase
	Wall      time.Duration
}

// Recover performs post-crash recovery (Section IV-C): it resolves the
// latest complete durable fuzzy checkpoint, then replays the committed
// redo records of every core's NVM log onto the durable image, ignoring
// records at or below the checkpoint's low-water LSN (their data is
// persisted in place; see ReclaimLogs). DRAM contents and the undo logs
// are gone; the programmer keeps recovery-relevant structures in NVM.
// All evidence is read from the durable image, so calling it without a
// preceding Crash gives the same answer a real power failure would.
func (m *Machine) Recover() RecoveryStats {
	start := time.Now()
	var st RecoveryStats
	if ck, ok := m.durableCheckpoint(); ok {
		st.CheckpointLSN = ck.LowWater
		st.CkptRecords = len(ck.Active) + 2
	}
	st.ReplayStats = m.redoRings.ReplayAll(st.CheckpointLSN)
	st.ScanPS = sim.Time(st.ScannedRecs+st.CkptRecords) * 2 * m.cfg.NVMReadLatency
	st.ReplayPS = sim.Time(st.AppliedLines) * m.cfg.NVMWriteLatency
	st.PersistPS = sim.Time(st.AppliedLines) * m.cfg.NVMWriteLatency
	st.Wall = time.Since(start)
	return st
}

// Crash simulates a power failure on the machine's store and resets the
// volatile hardware structures. Call Recover afterwards.
func (m *Machine) Crash() {
	m.store.Crash()
	m.dir = coherence.NewDirectory()
	m.llc.Reset()
	for _, l1 := range m.l1 {
		l1.Reset()
	}
	for i := range m.byCore {
		m.byCore[i] = nil
	}
	m.stickyReset()
}

// DrainToNVM forces all committed NVM data to the durable image — a
// clean shutdown, used by tests that compare durable images.
func (m *Machine) DrainToNVM() {
	m.persistPending()
	m.dcache.DrainAll()
}

func init() {
	// Guard against accidental divergence of the record framing the
	// recovery path depends on.
	if wal.RecordSize%8 != 0 {
		panic(fmt.Sprintf("core: wal.RecordSize %d not 8-byte aligned", wal.RecordSize))
	}
}
