package core

import (
	"runtime"
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/wal"
)

// measureTxAllocs runs warmup transactions until the pooled structures
// (Tx tracking pages, scratch buffers, WAL rings, store pages, engine
// event queues) reach steady state, then counts heap allocations over
// the measured transactions. It reports allocations per transaction.
func measureTxAllocs(t *testing.T, warmup, measured int, body func(tx *Tx, i int)) float64 {
	t.Helper()
	opts := DefaultOptions()
	opts.Paranoid = false     // paranoid ground-truth checks are test-only scaffolding
	opts.TrackCommits = false // commit-image retention is an oracle feature, allocates by design
	eng := sim.NewEngine(1)
	cfg := testConfig()
	cfg.Cores = 1
	m := NewMachine(eng, cfg, opts)
	// The production rings span the whole 64 MiB log area; their heads
	// advance monotonically and materialize a fresh store page every few
	// hundred transactions until they wrap — amortized zero, but a full
	// wrap is ~200k transactions. Shrink the rings so the warmup phase
	// wraps them completely and the measured window sees true steady
	// state.
	const ringBytes = 256 << 10
	m.undoRings = wal.NewRings(m.store, mem.DRAMLogBase, ringBytes, cfg.Cores, false)
	// The redo override must sit past the checkpoint cell AND the
	// checkpoint ring, exactly like the production layout.
	redoBase := mem.NVMLogBase + mem.LineSize + ckptRingBytes(cfg.Cores)
	m.redoRings = wal.NewRings(m.store, redoBase, ringBytes-mem.LineSize, cfg.Cores, true)
	var perTx float64
	eng.Spawn("alloc", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		i := 0
		run := func(tx *Tx) { body(tx, i) }
		for i = 0; i < warmup; i++ {
			c.Run(run)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i = warmup; i < warmup+measured; i++ {
			c.Run(run)
		}
		runtime.ReadMemStats(&after)
		perTx = float64(after.Mallocs-before.Mallocs) / float64(measured)
	})
	eng.Run()
	return perTx
}

// strayAllocBudget tolerates a handful of allocations in the whole
// measured window that are not per-transaction costs (runtime
// background activity such as timer and scavenger bookkeeping shows up
// in Mallocs). Anything that allocates once per transaction — or even
// once per hundred transactions — still fails loudly.
const strayAllocBudget = 4.0 / 2048

// TestCommitPathZeroAllocs extends the "zero overhead when tracing is
// disabled" guard (internal/trace's TestEmitDisabledAllocatesNothing)
// to the whole commit path: with tracing off, a steady-state durable
// transaction — begin, DRAM + NVM writes and reads, commit protocol,
// redo-log append, pending-persist registration and log reclamation —
// must not allocate at all. The pooled flat structures (generation-
// tagged tracking pages, scratch sort buffers, recycled index lists)
// exist precisely to make this hold; a regression here reintroduces
// GC pressure on the simulator's hottest loop.
func TestCommitPathZeroAllocs(t *testing.T) {
	d := mem.NewAllocator(mem.DRAM)
	n := mem.NewAllocator(mem.NVM)
	da, na := d.AllocLines(4), n.AllocLines(4)
	perTx := measureTxAllocs(t, 2500, 2048, func(tx *Tx, i int) {
		for l := 0; l < 4; l++ {
			off := mem.Addr(l) * mem.LineSize
			tx.WriteU64(da+off, uint64(i))
			tx.WriteU64(na+off, uint64(i))
			tx.ReadU64(da + off)
		}
	})
	if perTx > strayAllocBudget {
		t.Errorf("commit path allocates %.4f times per transaction, want 0", perTx)
	}
}

// TestRollbackPathZeroAllocs pins the abort/rollback path: an explicit
// abort on the first attempt exercises undo restore, WAL abort records,
// sticky clearing and the retry machinery. The pre-allocated panic
// value (Tx.abortScratch) keeps the unwind itself allocation-free, so
// the whole cycle — one abort plus one commit — must not allocate in
// steady state.
func TestRollbackPathZeroAllocs(t *testing.T) {
	d := mem.NewAllocator(mem.DRAM)
	n := mem.NewAllocator(mem.NVM)
	da, na := d.AllocLines(2), n.AllocLines(2)
	perTx := measureTxAllocs(t, 2500, 2048, func(tx *Tx, i int) {
		tx.WriteU64(da, uint64(i))
		tx.WriteU64(na, uint64(i))
		if tx.Attempt() == 0 {
			tx.Abort()
		}
	})
	if perTx > strayAllocBudget {
		t.Errorf("rollback+retry cycle allocates %.4f times per transaction, want 0", perTx)
	}
}
