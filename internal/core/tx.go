package core

import (
	"fmt"

	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// Per-line tracking flags of one transaction attempt (trackPage.flags).
const (
	fRead     uint8 = 1 << iota // in the precise read footprint
	fWrite                      // in the precise write footprint
	fUndo                       // first-touch pre-image captured (undoIdx valid)
	fOvfList                    // on the hardware overflow list
	fOvfDRAM                    // overflowed DRAM line (hybrid versioning)
	fNVMWrite                   // in the NVM write-set
)

// trackPage is one page of a transaction's per-line tracking table.
// Entries are generation-tagged: a slot belongs to the current attempt
// only when its gen matches the transaction's, which makes resetting
// the whole footprint between attempts O(1).
type trackPage struct {
	gen     [mem.PageLines]uint32
	flags   [mem.PageLines]uint8
	undoIdx [mem.PageLines]int32 // into Tx.undo, valid when fUndo is set
}

// undoEnt is one first-touch pre-image — the content the DRAM undo log
// and cache invalidation restore on abort.
type undoEnt struct {
	la  mem.Addr
	img mem.Line
}

// Tx is one running hardware transaction. Workload code obtains a Tx
// from Ctx.Run and performs all shared-memory accesses through it; any
// access may unwind the body with an internal abort signal, after which
// Run rolls the transaction back and retries, so bodies must keep all
// cross-attempt state in simulated memory.
//
// Tx objects are pooled per core: each core has exactly one live
// transaction at a time, and its core's thread is the only one that
// begins transactions on it, so the slot is reused only after the
// previous attempt has fully unwound.
type Tx struct {
	m      *Machine
	th     *sim.Thread
	id     uint64
	core   int
	domain int
	status *txStatus
	// statusVal backs status — one TSS entry per core, reset per attempt.
	statusVal txStatus

	// sig carries the hardware read/write signatures: overflowed lines
	// only under staged detection, every access under signature-only.
	// Its precise shadows double as the Ideal detector's overflow sets.
	sig *signature.Pair

	// gen/pages hold the per-line tracking table (footprints, undo
	// capture, overflow membership) for the current attempt; see
	// trackPage. The side lists below carry what needs iteration:
	// undo pre-images, the unique write-set, and the NVM write-set —
	// all reset by re-slicing between attempts.
	gen   uint32
	pages []*trackPage

	undo      []undoEnt
	writeList []mem.Addr
	nvmList   []mem.Addr

	readCount    int // unique read lines (stats)
	ovfListCount int // hardware overflow-list entries
	ovfDRAMCount int // overflowed DRAM lines

	// commitScratch is the reusable buffer the commit protocol sorts the
	// NVM write-set into (deterministic log layout without a per-commit
	// allocation).
	commitScratch []mem.Addr

	// abortScratch backs the abort-unwind panic value: panicking with
	// a pointer into the pooled Tx keeps the rollback path
	// allocation-free (boxing a txAbort value would allocate on every
	// abort). It is consumed synchronously by runBody's recover before
	// the Tx can be reused.
	abortScratch txAbort

	attempt    int
	slowPath   bool
	rolledBack bool // victim-abort already performed rollback
	finished   bool
	// committing is set while the commit protocol is between its first
	// redo-log append and the registration of the write-set in
	// pendingNVM: in that window the transaction's durability rests
	// solely on its log records, so incremental reclamation must keep
	// them — the fuzzy checkpoint's low-water LSN stops below this
	// transaction's commit mark.
	committing bool
	// commitLSN is the LSN stamped on this transaction's RecCommit
	// record, 0 until the mark is appended. While committing is set it
	// bounds the reclamation low-water mark (see Machine.lowWaterLSN).
	commitLSN uint64
}

// slot returns la's tracking-table slot, materializing its page and
// resetting the slot if it belongs to an earlier attempt.
func (tx *Tx) slot(la mem.Addr) (*trackPage, uint64) {
	idx := mem.LineIndex(la)
	pi := idx >> mem.PageShift
	p := tx.pages[pi]
	if p == nil {
		p = new(trackPage)
		tx.pages[pi] = p
	}
	o := idx & (mem.PageLines - 1)
	if p.gen[o] != tx.gen {
		p.gen[o] = tx.gen
		p.flags[o] = 0
	}
	return p, o
}

// flagsOf returns la's tracking flags for the current attempt (0 when
// untouched) without materializing anything.
func (tx *Tx) flagsOf(la mem.Addr) uint8 {
	idx := mem.LineIndex(la)
	p := tx.pages[idx>>mem.PageShift]
	if p == nil {
		return 0
	}
	o := idx & (mem.PageLines - 1)
	if p.gen[o] != tx.gen {
		return 0
	}
	return p.flags[o]
}

// resetTracking prepares the pooled Tx for a new attempt: bump the
// generation (invalidating every tracking slot at once) and re-slice
// the side lists.
func (tx *Tx) resetTracking() {
	tx.gen++
	if tx.gen == 0 {
		// Generation wrap: stale slots from 2^32 attempts ago could
		// collide; wipe the table once and restart at 1 (page zero value
		// means "gen 0", which must stay invalid).
		for _, p := range tx.pages {
			if p != nil {
				*p = trackPage{}
			}
		}
		tx.gen = 1
	}
	tx.undo = tx.undo[:0]
	tx.writeList = tx.writeList[:0]
	tx.nvmList = tx.nvmList[:0]
	tx.readCount, tx.ovfListCount, tx.ovfDRAMCount = 0, 0, 0
}

// txAbort is the unwind signal for an aborting transaction. It carries
// the enemy — the transaction whose conflict triggered the abort — for
// trace arrows and abort-chain accounting (enemyCore is -1 when there
// is none, e.g. explicit aborts).
type txAbort struct {
	cause     stats.AbortCause
	enemyID   uint64
	enemyCore int
}

// ID returns the transaction's globally unique identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// Core returns the core the transaction runs on.
func (tx *Tx) Core() int { return tx.core }

// Domain returns the transaction's conflict domain.
func (tx *Tx) Domain() int { return tx.domain }

// Overflowed reports whether the transaction's footprint has left the
// LLC (the TSS overflow bit).
func (tx *Tx) Overflowed() bool { return tx.status.overflowed }

// Attempt returns the zero-based retry count of this execution.
func (tx *Tx) Attempt() int { return tx.attempt }

// SlowPath reports whether this execution runs serialized under the
// domain's fallback lock.
func (tx *Tx) SlowPath() bool { return tx.slowPath }

// unwind aborts the current attempt: it stores the abort descriptor in
// the Tx's pre-allocated scratch and panics with a pointer to it, which
// runBody's recover converts back into a result.
func (tx *Tx) unwind(cause stats.AbortCause, enemyID uint64, enemyCore int) {
	tx.abortScratch = txAbort{cause: cause, enemyID: enemyID, enemyCore: enemyCore}
	panic(&tx.abortScratch)
}

// checkAbortFlag unwinds if another transaction (or the lock holder)
// marked this transaction aborted in the TSS.
func (tx *Tx) checkAbortFlag() {
	if tx.status.abortFlag {
		tx.unwind(tx.status.abortCause, tx.status.abortEnemy, tx.status.abortEnemyCore)
	}
}

// ReadU64 performs a transactional read of the 8-byte word at a.
func (tx *Tx) ReadU64(a mem.Addr) uint64 {
	tx.m.access(tx.th, tx.core, tx, a, false)
	return tx.m.store.ReadU64(a)
}

// WriteU64 performs a transactional write of the 8-byte word at a.
func (tx *Tx) WriteU64(a mem.Addr, v uint64) {
	tx.m.access(tx.th, tx.core, tx, a, true)
	tx.m.store.WriteU64(a, v)
}

// ReadBytes transactionally reads n bytes starting at a into a fresh
// slice, touching every covered line.
func (tx *Tx) ReadBytes(a mem.Addr, n int) []byte {
	out := make([]byte, n)
	first := true
	tx.m.rangeLines(a, n, func(la mem.Addr) {
		tx.m.accessEx(tx.th, tx.core, tx, la, false, !first)
		first = false
	})
	tx.m.copyOut(a, out)
	return out
}

// WriteBytes transactionally writes b starting at a.
func (tx *Tx) WriteBytes(a mem.Addr, b []byte) {
	first := true
	tx.m.rangeLines(a, len(b), func(la mem.Addr) {
		tx.m.accessEx(tx.th, tx.core, tx, la, true, !first)
		first = false
	})
	tx.m.copyIn(a, b)
}

// Abort explicitly aborts the current attempt (xabort-style). Run will
// retry the body.
func (tx *Tx) Abort() {
	tx.unwind(stats.CauseExplicit, 0, -1)
}

// rangeLines invokes fn for each line of [a, a+n).
func (m *Machine) rangeLines(a mem.Addr, n int, fn func(mem.Addr)) {
	if n <= 0 {
		return
	}
	for la := mem.LineOf(a); la < a+mem.Addr(n); la += mem.LineSize {
		fn(la)
	}
}

// copyOut reads bytes from the live store without access accounting.
func (m *Machine) copyOut(a mem.Addr, dst []byte) {
	for i := range dst {
		addr := a + mem.Addr(i)
		l := m.store.PeekLine(addr)
		dst[i] = l[mem.LineOffset(addr)]
	}
}

// copyIn writes bytes to the live store without access accounting.
func (m *Machine) copyIn(a mem.Addr, src []byte) {
	i := 0
	for i < len(src) {
		addr := a + mem.Addr(i)
		la := mem.LineOf(addr)
		off := mem.LineOffset(addr)
		l := m.store.PeekLine(la)
		n := copy(l[off:], src[i:])
		m.store.PokeLine(la, &l)
		i += n
	}
}

// String identifies the transaction (id, core, domain) for logs.
func (tx *Tx) String() string {
	return fmt.Sprintf("tx%d(core=%d,domain=%d)", tx.id, tx.core, tx.domain)
}
