package core

import (
	"fmt"

	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// Tx is one running hardware transaction. Workload code obtains a Tx
// from Ctx.Run and performs all shared-memory accesses through it; any
// access may unwind the body with an internal abort signal, after which
// Run rolls the transaction back and retries, so bodies must keep all
// cross-attempt state in simulated memory.
type Tx struct {
	m      *Machine
	th     *sim.Thread
	id     uint64
	core   int
	domain int
	status *txStatus

	// sig carries the hardware read/write signatures: overflowed lines
	// only under staged detection, every access under signature-only.
	// Its precise shadows double as the Ideal detector's overflow sets.
	sig *signature.Pair

	// Full precise footprints (ground truth, Ideal detection, stats).
	readLines  signature.Set
	writeLines signature.Set

	// undoImages holds the first-touch pre-image of every written line —
	// the content the DRAM undo log and cache invalidation restore.
	undoImages map[mem.Addr]mem.Line

	// overflowList mirrors the hardware overflow list: L1-evicted lines
	// of this transaction's write-set (locates the write-set in
	// LLC/DRAM-cache at commit/abort without scanning).
	overflowList map[mem.Addr]struct{}

	// overflowedDRAM is the subset of the write-set that left the LLC
	// and belongs to DRAM — the lines hybrid version management
	// undo-logs (or redo-logs under DRAMRedo).
	overflowedDRAM map[mem.Addr]struct{}

	// nvmWrites is the NVM write-set (redo-logged, flushed at commit).
	nvmWrites map[mem.Addr]struct{}

	attempt    int
	slowPath   bool
	rolledBack bool // victim-abort already performed rollback
	finished   bool
	// committing is set while the commit protocol is between its first
	// redo-log append and the registration of the write-set in
	// pendingNVM: in that window the transaction's durability rests
	// solely on its log records, so ReclaimLogs must not reclaim its
	// core's ring.
	committing bool
}

// txAbort is the unwind signal for an aborting transaction. It carries
// the enemy — the transaction whose conflict triggered the abort — for
// trace arrows and abort-chain accounting (enemyCore is -1 when there
// is none, e.g. explicit aborts).
type txAbort struct {
	cause     stats.AbortCause
	enemyID   uint64
	enemyCore int
}

// ID returns the transaction's globally unique identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// Core returns the core the transaction runs on.
func (tx *Tx) Core() int { return tx.core }

// Domain returns the transaction's conflict domain.
func (tx *Tx) Domain() int { return tx.domain }

// Overflowed reports whether the transaction's footprint has left the
// LLC (the TSS overflow bit).
func (tx *Tx) Overflowed() bool { return tx.status.overflowed }

// Attempt returns the zero-based retry count of this execution.
func (tx *Tx) Attempt() int { return tx.attempt }

// SlowPath reports whether this execution runs serialized under the
// domain's fallback lock.
func (tx *Tx) SlowPath() bool { return tx.slowPath }

// checkAbortFlag unwinds if another transaction (or the lock holder)
// marked this transaction aborted in the TSS.
func (tx *Tx) checkAbortFlag() {
	if tx.status.abortFlag {
		panic(txAbort{
			cause:     tx.status.abortCause,
			enemyID:   tx.status.abortEnemy,
			enemyCore: tx.status.abortEnemyCore,
		})
	}
}

// ReadU64 performs a transactional read of the 8-byte word at a.
func (tx *Tx) ReadU64(a mem.Addr) uint64 {
	tx.m.access(tx.th, tx.core, tx, a, false)
	return tx.m.store.ReadU64(a)
}

// WriteU64 performs a transactional write of the 8-byte word at a.
func (tx *Tx) WriteU64(a mem.Addr, v uint64) {
	tx.m.access(tx.th, tx.core, tx, a, true)
	tx.m.store.WriteU64(a, v)
}

// ReadBytes transactionally reads n bytes starting at a into a fresh
// slice, touching every covered line.
func (tx *Tx) ReadBytes(a mem.Addr, n int) []byte {
	out := make([]byte, n)
	first := true
	tx.m.rangeLines(a, n, func(la mem.Addr) {
		tx.m.accessEx(tx.th, tx.core, tx, la, false, !first)
		first = false
	})
	tx.m.copyOut(a, out)
	return out
}

// WriteBytes transactionally writes b starting at a.
func (tx *Tx) WriteBytes(a mem.Addr, b []byte) {
	first := true
	tx.m.rangeLines(a, len(b), func(la mem.Addr) {
		tx.m.accessEx(tx.th, tx.core, tx, la, true, !first)
		first = false
	})
	tx.m.copyIn(a, b)
}

// Abort explicitly aborts the current attempt (xabort-style). Run will
// retry the body.
func (tx *Tx) Abort() {
	panic(txAbort{cause: stats.CauseExplicit, enemyCore: -1})
}

// rangeLines invokes fn for each line of [a, a+n).
func (m *Machine) rangeLines(a mem.Addr, n int, fn func(mem.Addr)) {
	if n <= 0 {
		return
	}
	for la := mem.LineOf(a); la < a+mem.Addr(n); la += mem.LineSize {
		fn(la)
	}
}

// copyOut reads bytes from the live store without access accounting.
func (m *Machine) copyOut(a mem.Addr, dst []byte) {
	for i := range dst {
		addr := a + mem.Addr(i)
		l := m.store.PeekLine(addr)
		dst[i] = l[mem.LineOffset(addr)]
	}
}

// copyIn writes bytes to the live store without access accounting.
func (m *Machine) copyIn(a mem.Addr, src []byte) {
	i := 0
	for i < len(src) {
		addr := a + mem.Addr(i)
		la := mem.LineOf(addr)
		off := mem.LineOffset(addr)
		l := m.store.PeekLine(la)
		n := copy(l[off:], src[i:])
		m.store.PokeLine(la, &l)
		i += n
	}
}

func (tx *Tx) String() string {
	return fmt.Sprintf("tx%d(core=%d,domain=%d)", tx.id, tx.core, tx.domain)
}
