package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// TestContextSwitchInNeverSuspended pins the Thread.Resume no-op
// contract at the machine level: ContextSwitchIn on a core that was
// never switched out must not clamp the thread's clock forward. Under
// the pre-run-queue scheduler Resume cleared `suspended`
// unconditionally and advanced the clock, so a stray switch-in (e.g. an
// OS model rescheduling a thread it never descheduled) teleported the
// core past every other thread and reordered the simulation.
func TestContextSwitchInNeverSuspended(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	var commitClock sim.Time
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		before := th.Clock()
		c.ContextSwitchIn(sim.Second) // never switched out: must be a no-op
		if th.Suspended() {
			t.Error("ContextSwitchIn suspended a running thread")
		}
		if got := th.Clock(); got != before {
			t.Errorf("ContextSwitchIn moved a running core's clock %v -> %v", before, got)
		}
		c.Run(func(tx *Tx) { tx.WriteU64(a, 1) })
		commitClock = th.Clock()
	})
	eng.Run()
	if commitClock >= sim.Second {
		t.Errorf("commit finished at %v; the stray switch-in leaked into the clock", commitClock)
	}
	if s := m.Stats(); s.Commits != 1 {
		t.Errorf("commits = %d, want 1", s.Commits)
	}
}

// TestContextSwitchRoundTrip: the intended pairing still works — switch
// out suspends and flushes, switch in resumes no earlier than `at`.
func TestContextSwitchRoundTrip(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	var worker *sim.Thread
	var resumedAt sim.Time
	worker = eng.Spawn("worker", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) { tx.WriteU64(a, 7) })
		c.ContextSwitchOut()
		th.Sync() // parks until the scheduler thread switches us back in
		resumedAt = th.Clock()
	})
	eng.Spawn("os", func(th *sim.Thread) {
		th.WaitUntil(func() bool { return worker.Suspended() }, 5*sim.Nanosecond)
		th.Advance(100 * sim.Microsecond)
		th.Sync()
		c := m.NewCtx(worker, 0)
		c.ContextSwitchIn(th.Clock())
	})
	eng.Run()
	if resumedAt < 100*sim.Microsecond {
		t.Errorf("worker resumed at %v, before the 100us switch-in point", resumedAt)
	}
}
