package core

import (
	"testing"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// TestRecoveryDiscardsUncommitted: a power failure in the middle of a
// transaction leaves no trace of it after recovery.
func TestRecoveryDiscardsUncommitted(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(4)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := mem.Addr(0); i < 4; i++ {
				tx.WriteU64(a+i*mem.LineSize, 0xBAD)
			}
			th.Advance(sim.Millisecond) // crash lands here
			tx.ReadU64(a)
		})
	})
	eng.HaltAt(500 * sim.Microsecond)
	eng.Run()
	if !eng.Halted() {
		t.Fatal("engine did not halt")
	}
	m.Crash()
	st := m.Recover()
	if st.CommittedTx != 0 || st.AppliedLines != 0 {
		t.Errorf("replay stats = %+v, want nothing applied", st)
	}
	for i := mem.Addr(0); i < 4; i++ {
		if got := m.Store().ReadU64(a + i*mem.LineSize); got != 0 {
			t.Errorf("uncommitted write survived crash: line %d = %#x", i, got)
		}
	}
}

// TestRecoveryAppliesCommitted: a committed transaction survives a crash
// even though its in-place NVM data never drained.
func TestRecoveryAppliesCommitted(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(4)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			for i := mem.Addr(0); i < 4; i++ {
				tx.WriteU64(a+i*mem.LineSize, uint64(0x1000+i))
			}
		})
	})
	eng.Run()
	// No DrainToNVM: in-place durable NVM is still stale; only the log
	// carries the committed values.
	m.Crash()
	st := m.Recover()
	if st.CommittedTx != 1 || st.AppliedLines != 4 {
		t.Errorf("replay stats = %+v", st)
	}
	for i := mem.Addr(0); i < 4; i++ {
		if got := m.Store().ReadU64(a + i*mem.LineSize); got != uint64(0x1000+i) {
			t.Errorf("line %d = %#x after recovery", i, got)
		}
	}
}

// TestRecoveryPairInvariant is the failure-atomicity sweep: transactions
// keep pairs of NVM lines equal; whenever the crash lands, recovery must
// restore a state where every pair is consistent.
func TestRecoveryPairInvariant(t *testing.T) {
	const pairs = 16
	for _, crashAt := range []sim.Time{
		50 * sim.Microsecond,
		200 * sim.Microsecond,
		500 * sim.Microsecond,
		900 * sim.Microsecond,
	} {
		eng, m := newTestMachine(DefaultOptions())
		al := mem.NewAllocator(mem.NVM)
		left := al.AllocLines(pairs)
		right := al.AllocLines(pairs)
		for i := 0; i < 2; i++ {
			eng.Spawn("w", func(th *sim.Thread) {
				c := m.NewCtx(th, 0)
				rng := eng.Rand()
				for k := 0; k < 200; k++ {
					c.Run(func(tx *Tx) {
						p := mem.Addr(rng.Intn(pairs)) * mem.LineSize
						v := tx.ReadU64(left+p) + 1
						tx.WriteU64(left+p, v)
						tx.WriteU64(right+p, v)
					})
				}
			})
		}
		eng.HaltAt(crashAt)
		eng.Run()
		m.Crash()
		m.Recover()
		for i := mem.Addr(0); i < pairs; i++ {
			l := m.Store().ReadU64(left + i*mem.LineSize)
			r := m.Store().ReadU64(right + i*mem.LineSize)
			if l != r {
				t.Errorf("crash@%v: pair %d torn after recovery: %d != %d", crashAt, i, l, r)
			}
		}
	}
}

// TestRecoveryAfterReclaim: once logs are reclaimed (with the committed
// images persisted in place), recovery with an empty log still yields
// the committed state.
func TestRecoveryAfterReclaim(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(8)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		for k := 0; k < 8; k++ {
			k := k
			c.Run(func(tx *Tx) {
				tx.WriteU64(a+mem.Addr(k)*mem.LineSize, uint64(100+k))
			})
		}
	})
	eng.Run()
	m.ReclaimLogs()
	m.Crash()
	st := m.Recover()
	if st.AppliedLines != 0 {
		t.Errorf("replay applied %d lines from reclaimed logs", st.AppliedLines)
	}
	for k := 0; k < 8; k++ {
		if got := m.Store().ReadU64(a + mem.Addr(k)*mem.LineSize); got != uint64(100+k) {
			t.Errorf("line %d = %d after reclaim+crash", k, got)
		}
	}
}

// TestRecoveryOverwriteOrder: two committed transactions write the same
// line; recovery must surface the later value.
func TestRecoveryOverwriteOrder(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	al := mem.NewAllocator(mem.NVM)
	a := al.AllocLines(1)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) { tx.WriteU64(a, 1) })
		c.Run(func(tx *Tx) { tx.WriteU64(a, 2) })
	})
	eng.Run()
	m.Crash()
	m.Recover()
	if got := m.Store().ReadU64(a); got != 2 {
		t.Errorf("recovered %d, want 2 (later commit wins)", got)
	}
}

// TestDRAMIsVolatile: committed DRAM data does not survive a crash —
// durability is an NVM property only.
func TestDRAMIsVolatile(t *testing.T) {
	eng, m := newTestMachine(DefaultOptions())
	d := mem.NewAllocator(mem.DRAM)
	n := mem.NewAllocator(mem.NVM)
	da, na := d.AllocLines(1), n.AllocLines(1)
	eng.Spawn("t", func(th *sim.Thread) {
		c := m.NewCtx(th, 0)
		c.Run(func(tx *Tx) {
			tx.WriteU64(da, 11)
			tx.WriteU64(na, 22)
		})
	})
	eng.Run()
	m.Crash()
	m.Recover()
	if got := m.Store().ReadU64(da); got != 0 {
		t.Errorf("DRAM value %d survived crash", got)
	}
	if got := m.Store().ReadU64(na); got != 22 {
		t.Errorf("NVM value = %d after recovery", got)
	}
}
