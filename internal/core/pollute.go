package core

import (
	"math/rand"

	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// PolluteLLC models one bandwidth-bound phase of a memory-intensive
// application (the paper's graph500 observation: a single such app can
// consume the whole shared LLC). n random lines of the private window
// [base, base+window) stream into the LLC in one batch — hardware
// prefetchers keep many fills in flight, so the per-line cost is a
// bandwidth figure (64 B / 1.5 ns ≈ 40 GB/s), not a miss latency.
//
// Each fill is LLC-miss traffic, so it is checked against the address
// signatures in scope exactly like any other miss: without signature
// isolation a saturated transaction signature in another conflict domain
// false-positively aborts on this traffic (the +17 % effect of Section
// IV-D); with isolation the pollution is invisible to other domains. The
// window must be private to this application (its own arena), so
// directory conflicts cannot arise and are not checked.
func (c *Ctx) PolluteLLC(base mem.Addr, window, n int, perLine sim.Time, rng *rand.Rand) {
	m := c.m
	c.th.Sync()
	lines := window / mem.LineSize
	for i := 0; i < n; i++ {
		la := base + mem.Addr(rng.Intn(lines))*mem.LineSize
		if !m.llc.Touch(la) {
			// LLC-missed request: signature check in scope.
			if m.opts.Detect != DetectLLCBounded {
				vs, _ := m.probeOffChip(c.core, la, nil, c.domain, false)
				for _, v := range vs {
					if !v.tx.status.abortFlag && !v.tx.slowPath {
						m.abortVictim(v.tx, v.cause, nil)
					}
				}
			}
			m.llc.Insert(la)
		}
	}
	c.th.Advance(sim.Time(n) * perLine)
	m.drainEvictions(nil)
}
