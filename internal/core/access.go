package core

import (
	"fmt"

	"uhtm/internal/cache"
	"uhtm/internal/coherence"
	"uhtm/internal/mem"
	"uhtm/internal/signature"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
	"uhtm/internal/trace"
)

// victim pairs a conflicting transaction with the classification of the
// conflict (directory conflicts are always true; signature conflicts may
// be false positives).
type victim struct {
	tx    *Tx
	cause stats.AbortCause
}

// access is the heart of the machine: one load or store by core, inside
// transaction tx (nil for non-transactional accesses). It performs, in
// order: TSS abort-flag check, staged conflict detection and resolution
// (which may unwind self or roll back victims), the cache-hierarchy walk
// with latency accounting and eviction/overflow handling, and footprint
// tracking (directory Tx-fields, signatures, undo capture).
func (m *Machine) access(th *sim.Thread, core int, tx *Tx, a mem.Addr, write bool) {
	m.accessEx(th, core, tx, a, write, false)
}

// accessEx is access with a streamed flag: streamed misses (bulk value
// transfers behind prefetchers) charge bandwidth cost instead of miss
// latency; detection and cache state are identical.
func (m *Machine) accessEx(th *sim.Thread, core int, tx *Tx, a mem.Addr, write, streamed bool) {
	m.syncCount[core]++
	if m.syncCount[core] >= m.opts.SyncEvery {
		m.syncCount[core] = 0
		th.Sync()
	}
	if tx != nil {
		tx.checkAbortFlag()
	}
	la := mem.LineOf(a)
	if mem.InLogArea(la) {
		panic(fmt.Sprintf("core: software access to reserved log area %#x", uint64(la)))
	}

	llcResident := m.llc.Contains(la) || m.l1[core].Contains(la)

	// --- Conflict detection (Section IV-D) ---
	var victims []victim
	selfID := uint64(0)
	var domain = -1
	if tx != nil {
		selfID = tx.id
		domain = tx.domain
	} else if c := m.ntDomain(core); c >= 0 {
		domain = c
	}

	// On-chip: the directory is authoritative and precise.
	if m.usesDirectory() {
		var dcs []coherence.Conflict
		if write {
			dcs = m.dir.CheckWrite(la, selfID)
		} else {
			dcs = m.dir.CheckRead(la, selfID)
		}
		for _, c := range dcs {
			if v := m.txByID(c.With); v != nil {
				victims = append(victims, victim{tx: v, cause: stats.CauseTrueConflict})
			}
		}
	}

	// Off-chip: address signatures (or precise sets for Ideal).
	probe := false
	switch m.opts.Detect {
	case DetectSignatureOnly:
		probe = true // all coherence traffic reaches the signatures
	case DetectStaged, DetectIdeal:
		// Only LLC-missed requests reach the memory-bus signatures,
		// plus lines whose directory entry carries the sticky
		// check-signatures bit (set when a fill matched a signature).
		probe = !llcResident || m.stickyHas(la)
	}
	if probe {
		vs, matched := m.probeOffChip(core, la, tx, domain, write)
		victims = append(victims, vs...)
		if matched && !llcResident {
			m.stickySet(la)
		}
	}

	// --- Conflict resolution (Table II) ---
	if len(victims) > 0 {
		onChip := llcResident
		m.resolve(tx, victims, onChip)
	}

	// Ground truth: after resolution, no other live transaction that
	// shares data may still hold a conflicting footprint on this line.
	if m.opts.Paranoid {
		m.paranoidCheck(tx, la, write)
	}

	// --- Cache walk ---
	m.walk(th, core, la, tx, write, streamed)

	// A capacity overflow of the requester's own footprint during the
	// walk marks its TSS flag; unwind before recording the access.
	if tx != nil {
		tx.checkAbortFlag()
	}

	// --- Footprint tracking ---
	if tx != nil {
		m.track(tx, la, write)
	}
}

// usesDirectory reports whether the configured detection consults the
// coherence directory (all schemes except pure signature checking).
func (m *Machine) usesDirectory() bool {
	return m.opts.Detect != DetectSignatureOnly
}

// ntDomain returns the conflict domain of non-transactional accesses
// from a core, or -1 when none was registered.
func (m *Machine) ntDomain(core int) int {
	if core < len(m.coreDomain) {
		return m.coreDomain[core]
	}
	return -1
}

// probeOffChip checks the request against other transactions'
// signatures. Scope follows the isolation option: with isolation only
// same-domain signatures are consulted; without it, every signature in
// the machine is (the consolidated-environment false-conflict source the
// optimization removes). It returns conflicting victims and whether any
// signature matched at all (for the sticky bit).
func (m *Machine) probeOffChip(core int, la mem.Addr, tx *Tx, domain int, write bool) ([]victim, bool) {
	var out []victim
	matched := false
	reqID := uint64(0)
	if tx != nil {
		reqID = tx.id
	}
	for _, other := range m.activeInOrder() {
		if tx != nil && other.id == tx.id {
			continue
		}
		if other.slowPath {
			continue // serialized; cannot conflict within its domain
		}
		if m.opts.Isolation && other.domain != domain {
			continue // signature isolation: different conflict domain
		}
		m.statsFor(other.domain).SigChecks++
		var kind signature.CheckKind
		switch m.opts.Detect {
		case DetectIdeal:
			kind = m.idealCheck(other, la, write)
			// Sticky on any precise membership: a read that hits another
			// transaction's read-set is not a conflict, but the line must
			// keep being checked once resident (a later write would be).
			if other.sig.PreciseRead.Contains(la) || other.sig.PreciseWrite.Contains(la) {
				matched = true
			}
		default:
			if write {
				kind = other.sig.CheckWrite(la)
			} else {
				kind = other.sig.CheckRead(la)
			}
			// Same sticky rule at filter granularity: read-filter hits on
			// a read request set the check bit without aborting anyone.
			if kind != signature.NoConflict ||
				other.sig.Read.MayContain(la) || other.sig.Write.MayContain(la) {
				matched = true
			}
		}
		if m.tr != nil {
			var verdict uint64
			switch kind {
			case signature.TrueConflict:
				verdict = 1
			case signature.FalsePositive:
				verdict = 2
			}
			m.emit(trace.EvSigProbe, core, reqID, la, verdict, other.id)
		}
		switch kind {
		case signature.TrueConflict:
			out = append(out, victim{tx: other, cause: stats.CauseTrueConflict})
		case signature.FalsePositive:
			out = append(out, victim{tx: other, cause: stats.CauseFalsePositive})
		}
	}
	return out, matched
}

// idealCheck consults the precise overflow shadows — perfect detection.
func (m *Machine) idealCheck(other *Tx, la mem.Addr, write bool) signature.CheckKind {
	if write {
		if other.sig.PreciseRead.Contains(la) || other.sig.PreciseWrite.Contains(la) {
			return signature.TrueConflict
		}
	} else if other.sig.PreciseWrite.Contains(la) {
		return signature.TrueConflict
	}
	return signature.NoConflict
}

// activeInOrder returns live transactions in ascending ID order so
// victim processing is deterministic.
func (m *Machine) activeInOrder() []*Tx {
	out := m.activeScratch[:0]
	for _, t := range m.byCore {
		if t != nil && !t.finished {
			out = append(out, t)
		}
	}
	m.activeScratch = out
	return out
}

// resolve applies Table II: if exactly one side overflowed, the
// non-overflowed side aborts; otherwise requester-wins on-chip and
// requester-aborts off-chip. Non-transactional requesters and slow-path
// transactions never abort. If the requester must abort it unwinds here;
// otherwise every victim is rolled back in place.
func (m *Machine) resolve(tx *Tx, victims []victim, onChip bool) {
	selfAbort := false
	var selfCause stats.AbortCause
	var enemy *Tx // the victim that wins against the requester
	for _, v := range victims {
		if v.tx.slowPath {
			// The lock holder never aborts; a (cross-domain
			// false-positive) conflict with it aborts the requester.
			if tx != nil && !tx.slowPath {
				selfAbort, selfCause, enemy = true, v.cause, v.tx
				break
			}
			continue
		}
		if tx == nil || tx.slowPath {
			continue // requester cannot abort; victim will
		}
		reqOvf := tx.status.overflowed
		vicOvf := v.tx.status.overflowed
		switch {
		case vicOvf && !reqOvf:
			selfAbort, selfCause, enemy = true, v.cause, v.tx
		case reqOvf && !vicOvf:
			// victim aborts
		case m.opts.Aging: // ablation: the younger transaction aborts
			if tx.id > v.tx.id {
				selfAbort, selfCause, enemy = true, v.cause, v.tx
			}
		default: // none or both overflowed
			if !onChip {
				// requester-aborts (no extra inter-processor traffic)
				selfAbort, selfCause, enemy = true, v.cause, v.tx
			}
			// on-chip: requester-wins → victim aborts
		}
		if selfAbort {
			break
		}
	}
	if selfAbort {
		tx.unwind(selfCause, enemy.id, enemy.core)
	}
	for _, v := range victims {
		if v.tx.status.abortFlag || v.tx.slowPath {
			continue // already marked this round / unabortable
		}
		m.abortVictim(v.tx, v.cause, tx)
	}
}

// abortVictim marks v aborted in the TSS, performs its rollback (the
// hardware abort protocol runs regardless of whether v's thread is
// scheduled — Section IV-E's context-switch handling), and charges the
// rollback latency to v's core. v's thread observes the flag at its next
// transactional operation and unwinds. enemy is the transaction whose
// conflict caused the abort (nil when none exists, e.g. a
// non-transactional requester or a lock acquisition).
func (m *Machine) abortVictim(v *Tx, cause stats.AbortCause, enemy *Tx) {
	v.status.abortFlag = true
	v.status.abortCause = cause
	if enemy != nil {
		v.status.abortEnemy = enemy.id
		v.status.abortEnemyCore = enemy.core
	} else {
		v.status.abortEnemy = 0
		v.status.abortEnemyCore = -1
	}
	cost := m.rollback(v)
	v.th.Bump(cost)
}

// paranoidCheck panics if ground truth says a conflicting footprint
// survived detection — the simulator's safety net for the staged scheme.
func (m *Machine) paranoidCheck(tx *Tx, la mem.Addr, write bool) {
	for _, other := range m.activeInOrder() {
		if other.slowPath || (tx != nil && other.id == tx.id) {
			continue
		}
		if other.status.abortFlag {
			continue // already aborted, footprint dead
		}
		of := other.flagsOf(la)
		if of&fWrite != 0 || (write && of&fRead != 0) {
			reqID := uint64(0)
			if tx != nil {
				reqID = tx.id
			}
			panic(fmt.Sprintf("core: missed conflict on %#x between requester tx %d and tx %d (detect=%v, resident=%v, sticky=%v, otherOvf=%v, otherWsig=%v)",
				uint64(la), reqID, other.id, m.opts.Detect,
				m.llc.Contains(la), m.stickyHas(la), other.status.overflowed,
				other.sig.Write.MayContain(la)))
		}
	}
}

// walk models the two-level hierarchy plus hybrid memory: L1 → LLC →
// (DRAM | DRAM-cache | NVM), charging Table III latencies and letting
// fills evict (which feeds the overflow machinery).
func (m *Machine) walk(th *sim.Thread, core int, la mem.Addr, tx *Tx, write, streamed bool) {
	cfg := m.cfg
	txid := uint64(0)
	if tx != nil {
		txid = tx.id
	}
	lat := cfg.L1Latency
	if !m.l1[core].Lookup(la) {
		lat += cfg.LLCLatency
		if m.llc.Lookup(la) {
			m.l1[core].Insert(la)
		} else if streamed {
			// Bulk transfer: the prefetcher hides the miss latency; the
			// line costs bandwidth only.
			lat = cfg.L1Latency + m.lat.StreamLine
			m.dcache.Lookup(la) // keep DRAM-cache LRU state honest
			m.llc.Insert(la)
			m.l1[core].Insert(la)
			m.emit(trace.EvMemFill, core, txid, la, trace.MemStreamed, uint64(m.lat.StreamLine))
		} else {
			// Memory access.
			var fillLat sim.Time
			src := uint64(trace.MemNVM)
			switch {
			case mem.KindOf(la) == mem.DRAM:
				fillLat = cfg.DRAMLatency
				// Lazy (redo) DRAM versioning pays a log indirection to
				// find the new value of an overflowed line (Fig. 4b).
				if m.opts.DRAMLog == DRAMRedo && tx != nil {
					if tx.flagsOf(la)&fOvfDRAM != 0 {
						fillLat += cfg.DRAMLatency
					}
				}
				src = trace.MemDRAM
			case !m.opts.NoDRAMCache && m.dcache.Lookup(la):
				fillLat = cfg.DRAMLatency // early-evicted block: DRAM speed
				src = trace.MemDRAMCache
			default:
				fillLat = cfg.NVMReadLatency
			}
			lat += fillLat
			m.llc.Insert(la)
			m.l1[core].Insert(la)
			m.emit(trace.EvMemFill, core, txid, la, src, uint64(fillLat))
		}
	}
	if write {
		m.l1[core].MarkDirty(la)
		m.llc.MarkDirty(la) // keep LLC aware for write-back modeling
	}
	th.Advance(lat)
	m.drainEvictions(tx)
}

// onL1Evict handles an L1 victim: dirty lines write back into the LLC,
// and L1-evicted lines of a transaction's write-set go to its overflow
// list (Section IV-B, "locating the write-set").
func (m *Machine) onL1Evict(core int, e cache.Eviction) {
	// If the LLC has just chosen this same line as its own victim (still
	// queued for drainEvictions), re-inserting it would resurrect it
	// on-chip AFTER the drain surrenders its directory entry — leaving a
	// resident line tracked only by an off-chip signature that resident
	// accesses never probe: an undetectable conflict window. The drain's
	// overflow handling owns the line now; drop the L1 writeback.
	if m.evictionPending(e.Addr) {
		return
	}
	if !m.llc.Contains(e.Addr) {
		m.llc.Insert(e.Addr)
	}
	if e.Dirty {
		m.llc.MarkDirty(e.Addr)
	}
	if owner, _ := m.dir.TxInfo(e.Addr); owner != 0 {
		if t := m.txByID(owner); t != nil {
			p, o := t.slot(e.Addr)
			if p.flags[o]&fOvfList == 0 {
				p.flags[o] |= fOvfList
				t.ovfListCount++
			}
		}
	}
}

// onLLCEvict queues the victim; overflow handling runs after the current
// fill completes (drainEvictions) to keep cache internals reentrant-free.
func (m *Machine) onLLCEvict(e cache.Eviction) {
	m.pendingEvicts = append(m.pendingEvicts, e)
}

// evictionPending reports whether la is an LLC victim queued for
// drainEvictions — already off-chip for tracking purposes.
func (m *Machine) evictionPending(la mem.Addr) bool {
	for _, e := range m.pendingEvicts[m.evictHead:] {
		if e.Addr == la {
			return true
		}
	}
	return false
}

// drainEvictions processes queued LLC victims: inclusive invalidation of
// L1 copies, write-back of dirty data, and the transaction-overflow
// machinery of Section IV-B.
func (m *Machine) drainEvictions(requester *Tx) {
	for m.evictHead < len(m.pendingEvicts) {
		e := m.pendingEvicts[m.evictHead]
		m.evictHead++
		la := e.Addr
		// Inclusive LLC: drop L1 copies. The presence filter turns the
		// common all-absent case into len(l1) array reads instead of
		// len(l1) way scans.
		for _, l1 := range m.l1 {
			if l1.MaybeContains(la) {
				l1.Invalidate(la)
			}
		}
		owner, sharers := m.dir.SurrenderLine(la)
		if m.tr != nil {
			var dirty uint64
			if e.Dirty {
				dirty = 1
			}
			m.emit(trace.EvLLCEvict, -1, owner, la, dirty, 0)
		}
		// Non-transactional dirty write-back.
		if e.Dirty && owner == 0 {
			if mem.KindOf(la) == mem.NVM {
				// Non-transactional NVM data drains through the DRAM
				// cache (immediately eligible).
				m.dcache.Insert(la, 0)
			}
			// DRAM data: the live image is already current.
		}
		for _, sh := range sharers {
			if t := m.txByID(sh); t != nil && !t.status.abortFlag {
				m.overflowRead(t, la, requester)
			}
		}
		if owner != 0 {
			if t := m.txByID(owner); t != nil && !t.status.abortFlag {
				m.overflowWrite(t, la, requester)
			}
		}
	}
	// Fully drained: rewind the queue so its capacity is reused.
	m.pendingEvicts = m.pendingEvicts[:0]
	m.evictHead = 0
}

// overflowRead moves a transactional read of la from directory tracking
// to t's read signature (or aborts t under the LLC-bounded scheme).
// Serialized transactions exceed the LLC freely — that is the point of
// the slow path — and need no conflict tracking.
func (m *Machine) overflowRead(t *Tx, la mem.Addr, requester *Tx) {
	if t.slowPath {
		return
	}
	if m.opts.Detect == DetectLLCBounded {
		m.capacityAbort(t, requester)
		return
	}
	m.markOverflowed(t)
	t.sig.AddRead(la)
}

// overflowWrite moves a transactional write of la off-chip: into the
// write signature, plus the hybrid version management — DRAM lines are
// undo-logged (old value) before the in-place update becomes the only
// on-DRAM copy; NVM lines land in the DRAM cache as early-evicted
// blocks.
func (m *Machine) overflowWrite(t *Tx, la mem.Addr, requester *Tx) {
	if t.slowPath {
		// No conflict tracking, but uncommitted NVM data still must not
		// bypass the DRAM cache on its way off-chip.
		if mem.KindOf(la) == mem.NVM {
			m.dcache.Insert(la, t.id)
		}
		return
	}
	if m.opts.Detect == DetectLLCBounded {
		m.capacityAbort(t, requester)
		return
	}
	m.markOverflowed(t)
	t.sig.AddWrite(la)
	p, o := t.slot(la)
	if p.flags[o]&fOvfDRAM != 0 {
		return
	}
	switch mem.KindOf(la) {
	case mem.DRAM:
		p.flags[o] |= fOvfDRAM
		t.ovfDRAMCount++
		if m.opts.DRAMLog == DRAMUndo {
			var old mem.Line
			if p.flags[o]&fUndo != 0 {
				old = t.undo[p.undoIdx[o]].img
			}
			m.undoRings.ForCore(t.core).Append(walWrite(t.id, la, old))
		}
		// DRAMRedo: the new value notionally stays in the log; reads pay
		// the indirection in walk and commit pays the copy-back.
	case mem.NVM:
		m.dcache.Insert(la, t.id)
	}
}

// capacityAbort implements the LLC-bounded scheme's response to a
// transactional line leaving the LLC. When the overflowing transaction
// is the requester itself the unwind is deferred to the end of the walk
// via its own TSS flag (the access path re-checks it).
func (m *Machine) capacityAbort(t *Tx, requester *Tx) {
	if !t.status.overflowed {
		m.statsFor(t.domain).Overflows++
		m.stats.Overflows++
		m.emit(trace.EvTxOverflow, t.core, t.id, 0, 0, 0)
	}
	t.status.overflowed = true
	if t == requester {
		t.status.abortFlag = true
		t.status.abortCause = stats.CauseCapacity
		t.status.abortEnemy = 0
		t.status.abortEnemyCore = -1
		return
	}
	m.abortVictim(t, stats.CauseCapacity, requester)
}

// markOverflowed sets the TSS overflow bit (first time) and counts it.
func (m *Machine) markOverflowed(t *Tx) {
	if !t.status.overflowed {
		t.status.overflowed = true
		m.statsFor(t.domain).Overflows++
		m.stats.Overflows++
		m.emit(trace.EvTxOverflow, t.core, t.id, 0, 0, 0)
	}
}

// track records the access in the directory Tx-fields, the precise
// footprint, undo images for writes, and — under signature-only
// detection — the signatures themselves. Slow-path transactions also use
// directory tracking: their write-set must stay identifiable so that an
// eviction routes uncommitted NVM lines into the DRAM cache (not
// straight to durable NVM) — failure-atomicity holds for the serialized
// path too.
func (m *Machine) track(tx *Tx, la mem.Addr, write bool) {
	if m.tr != nil {
		k := trace.EvTxRead
		if write {
			k = trace.EvTxWrite
		}
		m.emit(k, tx.core, tx.id, la, 0, 0)
	}
	if write {
		p, o := tx.slot(la)
		if p.flags[o]&fUndo == 0 {
			p.flags[o] |= fUndo
			p.undoIdx[o] = int32(len(tx.undo))
			tx.undo = append(tx.undo, undoEnt{la: la, img: m.store.PeekLine(la)})
		}
		if p.flags[o]&fWrite == 0 {
			p.flags[o] |= fWrite
			tx.writeList = append(tx.writeList, la)
		}
		if mem.KindOf(la) == mem.NVM && p.flags[o]&fNVMWrite == 0 {
			p.flags[o] |= fNVMWrite
			tx.nvmList = append(tx.nvmList, la)
		}
		if m.usesDirectory() || tx.slowPath {
			m.dir.AddWrite(la, tx.id)
		}
		if m.opts.Detect == DetectSignatureOnly && !tx.slowPath {
			tx.sig.AddWrite(la)
		}
	} else {
		p, o := tx.slot(la)
		if p.flags[o]&fRead == 0 {
			p.flags[o] |= fRead
			tx.readCount++
		}
		if m.usesDirectory() || tx.slowPath {
			m.dir.AddRead(la, tx.id)
		}
		if m.opts.Detect == DetectSignatureOnly && !tx.slowPath {
			tx.sig.AddRead(la)
		}
	}
}

// stickyHas reports whether la carries the sticky check-signatures bit.
func (m *Machine) stickyHas(la mem.Addr) bool {
	if !m.stickyAny {
		return false
	}
	idx := mem.LineIndex(la)
	p := m.stickyPages[idx>>mem.PageShift]
	return p != nil && p.gen[idx&(mem.PageLines-1)] == m.stickyGen
}

// stickySet marks a line as requiring signature checks while on-chip.
func (m *Machine) stickySet(la mem.Addr) {
	idx := mem.LineIndex(la)
	p := m.stickyPages[idx>>mem.PageShift]
	if p == nil {
		p = new(stickyPage)
		m.stickyPages[idx>>mem.PageShift] = p
	}
	p.gen[idx&(mem.PageLines-1)] = m.stickyGen
	m.stickyAny = true
}

// statsFor returns the per-domain counters (machine-wide stats update on
// commit/abort events elsewhere).
func (m *Machine) statsFor(domain int) *stats.Stats {
	return m.DomainStats(domain)
}
