// Package stats collects and formats the metrics the paper's evaluation
// reports: commit/abort counts with abort-cause decomposition (true
// conflict, signature false positive, capacity overflow — the stacked
// bars of Figure 7), overflow counts, slow-path serializations, and
// throughput.
package stats

import (
	"encoding/json"
	"fmt"
	"strings"

	"uhtm/internal/sim"
)

// AbortCause classifies why a transaction aborted.
type AbortCause int

const (
	// CauseTrueConflict: a real data conflict (directory hit, or a
	// signature hit confirmed by ground truth).
	CauseTrueConflict AbortCause = iota
	// CauseFalsePositive: a signature hit refuted by ground truth — the
	// aborts UHTM's staged detection and isolation exist to eliminate.
	CauseFalsePositive
	// CauseCapacity: an LLC capacity overflow in a bounded HTM.
	CauseCapacity
	// CauseLock: aborted because the fallback lock of the conflict
	// domain was acquired (Algorithm 1 serialization).
	CauseLock
	// CauseExplicit: the body requested an abort (xabort-style).
	CauseExplicit
	numCauses
)

// String names the abort cause; it is the key used in JSON records.
func (c AbortCause) String() string {
	switch c {
	case CauseTrueConflict:
		return "true-conflict"
	case CauseFalsePositive:
		return "false-positive"
	case CauseCapacity:
		return "capacity"
	case CauseLock:
		return "lock"
	case CauseExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortCause(%d)", int(c))
	}
}

// Causes lists all abort causes in presentation order.
func Causes() []AbortCause {
	return []AbortCause{CauseTrueConflict, CauseFalsePositive, CauseCapacity, CauseLock, CauseExplicit}
}

// Stats accumulates transaction-level metrics.
type Stats struct {
	Commits  uint64
	AbortsBy [numCauses]uint64

	SlowPath  uint64 // transactions that ran serialized under the lock
	Overflows uint64 // transaction attempts that overflowed the LLC

	ReadLines  uint64 // distinct lines read by committed transactions
	WriteLines uint64 // distinct lines written by committed transactions

	SigChecks uint64 // signature probe count (bus traffic proxy)

	// SigOccupancy histograms the write-signature fill ratio of
	// overflowed transactions sampled when each finishes: bucket i
	// covers [i*10%, (i+1)*10%). High buckets mean the configured
	// signature size is saturating (false positives follow).
	SigOccupancy [10]uint64

	// AbortChain histograms commits by the abort-chain depth that
	// preceded them on their core: bucket 0 = committed with no
	// preceding abort cascade, bucket d = a chain of d cascading aborts
	// (a victim whose aborter itself was aborted counts one deeper);
	// bucket 7 aggregates depth >= 7. AbortChainMax is the deepest chain
	// observed.
	AbortChain    [8]uint64
	AbortChainMax uint64

	// SlowPathWait totals virtual time threads spent waiting on fallback
	// locks (both pausing while a holder drains and acquiring the lock).
	SlowPathWait sim.Time

	Elapsed sim.Time // simulated wall-clock covered by this Stats
}

// Aborts returns the total abort count across causes.
func (s *Stats) Aborts() uint64 {
	var n uint64
	for _, v := range s.AbortsBy {
		n += v
	}
	return n
}

// Attempts returns commits + aborts (each retry counts once).
func (s *Stats) Attempts() uint64 { return s.Commits + s.Aborts() }

// AbortRate returns aborts / attempts, the y-axis of Figure 7.
func (s *Stats) AbortRate() float64 {
	a := s.Attempts()
	if a == 0 {
		return 0
	}
	return float64(s.Aborts()) / float64(a)
}

// CauseShare returns the fraction of attempts aborted for cause c.
func (s *Stats) CauseShare(c AbortCause) float64 {
	a := s.Attempts()
	if a == 0 {
		return 0
	}
	return float64(s.AbortsBy[c]) / float64(a)
}

// Throughput returns committed transactions per simulated second.
func (s *Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Commits) / s.Elapsed.Seconds()
}

// Add merges o into s (Elapsed takes the max: parallel threads).
func (s *Stats) Add(o *Stats) {
	s.Commits += o.Commits
	for i := range s.AbortsBy {
		s.AbortsBy[i] += o.AbortsBy[i]
	}
	s.SlowPath += o.SlowPath
	s.Overflows += o.Overflows
	s.ReadLines += o.ReadLines
	s.WriteLines += o.WriteLines
	s.SigChecks += o.SigChecks
	for i := range s.SigOccupancy {
		s.SigOccupancy[i] += o.SigOccupancy[i]
	}
	for i := range s.AbortChain {
		s.AbortChain[i] += o.AbortChain[i]
	}
	if o.AbortChainMax > s.AbortChainMax {
		s.AbortChainMax = o.AbortChainMax
	}
	s.SlowPathWait += o.SlowPathWait
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// statsJSON is the wire form of Stats: the abort decomposition keyed by
// cause name rather than array position, plus the derived totals the
// paper's figures report. Map keys are emitted sorted by encoding/json,
// so identical Stats marshal to identical bytes.
type statsJSON struct {
	Commits    uint64            `json:"commits"`
	Aborts     uint64            `json:"aborts"`
	AbortsBy   map[string]uint64 `json:"aborts_by"`
	AbortRate  float64           `json:"abort_rate"`
	SlowPath   uint64            `json:"slow_path"`
	Overflows  uint64            `json:"overflows"`
	ReadLines  uint64            `json:"read_lines"`
	WriteLines uint64            `json:"write_lines"`
	SigChecks  uint64            `json:"sig_checks"`

	SigOccupancy   [10]uint64 `json:"sig_occupancy"`
	AbortChain     [8]uint64  `json:"abort_chain"`
	AbortChainMax  uint64     `json:"abort_chain_max"`
	SlowPathWaitPS int64      `json:"slow_path_wait_ps"`

	ElapsedPS int64 `json:"elapsed_ps"`
}

// MarshalJSON emits the named-cause wire form (see statsJSON).
func (s Stats) MarshalJSON() ([]byte, error) {
	by := make(map[string]uint64, len(s.AbortsBy))
	for _, c := range Causes() {
		if v := s.AbortsBy[c]; v != 0 {
			by[c.String()] = v
		}
	}
	return json.Marshal(statsJSON{
		Commits:        s.Commits,
		Aborts:         s.Aborts(),
		AbortsBy:       by,
		AbortRate:      s.AbortRate(),
		SlowPath:       s.SlowPath,
		Overflows:      s.Overflows,
		ReadLines:      s.ReadLines,
		WriteLines:     s.WriteLines,
		SigChecks:      s.SigChecks,
		SigOccupancy:   s.SigOccupancy,
		AbortChain:     s.AbortChain,
		AbortChainMax:  s.AbortChainMax,
		SlowPathWaitPS: int64(s.SlowPathWait),
		ElapsedPS:      int64(s.Elapsed),
	})
}

// UnmarshalJSON reverses MarshalJSON; derived fields (aborts,
// abort_rate) are recomputed from the decomposition, not trusted.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var w statsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Stats{
		Commits:       w.Commits,
		SlowPath:      w.SlowPath,
		Overflows:     w.Overflows,
		ReadLines:     w.ReadLines,
		WriteLines:    w.WriteLines,
		SigChecks:     w.SigChecks,
		SigOccupancy:  w.SigOccupancy,
		AbortChain:    w.AbortChain,
		AbortChainMax: w.AbortChainMax,
		SlowPathWait:  sim.Time(w.SlowPathWaitPS),
		Elapsed:       sim.Time(w.ElapsedPS),
	}
	for _, c := range Causes() {
		s.AbortsBy[c] = w.AbortsBy[c.String()]
	}
	return nil
}

// String is a one-line human-readable summary of the counters.
func (s *Stats) String() string {
	return fmt.Sprintf("commits=%d aborts=%d (true=%d fp=%d cap=%d lock=%d) slow=%d ovf=%d rate=%.1f%%",
		s.Commits, s.Aborts(),
		s.AbortsBy[CauseTrueConflict], s.AbortsBy[CauseFalsePositive],
		s.AbortsBy[CauseCapacity], s.AbortsBy[CauseLock],
		s.SlowPath, s.Overflows, 100*s.AbortRate())
}

// Table renders rows of labelled values as an aligned text table; the
// CLI uses it to print each figure's series.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table with right-aligned columns (first column
// left-aligned).
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i == 0 {
			b.WriteString(strings.Repeat("-", w))
		} else {
			b.WriteString("  " + strings.Repeat("-", w))
		}
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
