package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uhtm/internal/sim"
)

func TestAbortAccounting(t *testing.T) {
	var s Stats
	s.Commits = 90
	s.AbortsBy[CauseTrueConflict] = 4
	s.AbortsBy[CauseFalsePositive] = 5
	s.AbortsBy[CauseCapacity] = 1
	if s.Aborts() != 10 {
		t.Errorf("Aborts = %d", s.Aborts())
	}
	if s.Attempts() != 100 {
		t.Errorf("Attempts = %d", s.Attempts())
	}
	if got := s.AbortRate(); got != 0.10 {
		t.Errorf("AbortRate = %v", got)
	}
	if got := s.CauseShare(CauseFalsePositive); got != 0.05 {
		t.Errorf("CauseShare(fp) = %v", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.AbortRate() != 0 || s.Throughput() != 0 || s.CauseShare(CauseLock) != 0 {
		t.Error("zero stats produced non-zero rates")
	}
}

func TestThroughput(t *testing.T) {
	s := Stats{Commits: 500, Elapsed: 250 * sim.Millisecond}
	if got := s.Throughput(); got != 2000 {
		t.Errorf("Throughput = %v", got)
	}
}

func TestAdd(t *testing.T) {
	a := Stats{Commits: 10, Elapsed: 5 * sim.Microsecond, SigChecks: 3}
	a.AbortsBy[CauseLock] = 2
	b := Stats{Commits: 20, Elapsed: 9 * sim.Microsecond, Overflows: 7}
	b.AbortsBy[CauseLock] = 1
	a.Add(&b)
	if a.Commits != 30 || a.AbortsBy[CauseLock] != 3 || a.Overflows != 7 || a.SigChecks != 3 {
		t.Errorf("Add result: %+v", a)
	}
	if a.Elapsed != 9*sim.Microsecond {
		t.Errorf("Elapsed = %v, want max", a.Elapsed)
	}
}

func TestCauseStrings(t *testing.T) {
	want := map[AbortCause]string{
		CauseTrueConflict:  "true-conflict",
		CauseFalsePositive: "false-positive",
		CauseCapacity:      "capacity",
		CauseLock:          "lock",
		CauseExplicit:      "explicit",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), w)
		}
	}
	if len(Causes()) != int(numCauses) {
		t.Errorf("Causes() lists %d of %d causes", len(Causes()), int(numCauses))
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Commits = 3
	s.AbortsBy[CauseCapacity] = 1
	out := s.String()
	for _, frag := range []string{"commits=3", "cap=1", "rate=25.0%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() = %q missing %q", out, frag)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{
		Commits:    40,
		SlowPath:   2,
		Overflows:  5,
		ReadLines:  100,
		WriteLines: 60,
		SigChecks:  9,
		Elapsed:    3 * sim.Microsecond,
	}
	s.AbortsBy[CauseTrueConflict] = 1
	s.AbortsBy[CauseFalsePositive] = 7
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"commits":40`, `"aborts":8`, `"false-positive":7`, `"abort_rate":`, `"elapsed_ps":3000000`} {
		if !strings.Contains(string(b), frag) {
			t.Errorf("JSON %s missing %q", b, frag)
		}
	}
	// Zero causes are omitted from the decomposition.
	if strings.Contains(string(b), "capacity") {
		t.Errorf("JSON %s includes zero-valued cause", b)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round-trip mismatch:\n in  %+v\n out %+v", s, back)
	}
}

// TestStatsJSONDeterministic: identical stats marshal to identical
// bytes — the property the -par determinism guarantee rests on.
func TestStatsJSONDeterministic(t *testing.T) {
	mk := func() Stats {
		var s Stats
		s.Commits = 11
		s.AbortsBy[CauseLock] = 2
		s.AbortsBy[CauseExplicit] = 3
		s.Elapsed = sim.Millisecond
		return s
	}
	a, _ := json.Marshal(mk())
	b, _ := json.Marshal(mk())
	if !bytes.Equal(a, b) {
		t.Errorf("same stats marshalled differently:\n%s\n%s", a, b)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[2]) && len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("missing separator: %q", lines[1])
	}
}
