package stats

import (
	"strings"
	"testing"

	"uhtm/internal/sim"
)

func TestAbortAccounting(t *testing.T) {
	var s Stats
	s.Commits = 90
	s.AbortsBy[CauseTrueConflict] = 4
	s.AbortsBy[CauseFalsePositive] = 5
	s.AbortsBy[CauseCapacity] = 1
	if s.Aborts() != 10 {
		t.Errorf("Aborts = %d", s.Aborts())
	}
	if s.Attempts() != 100 {
		t.Errorf("Attempts = %d", s.Attempts())
	}
	if got := s.AbortRate(); got != 0.10 {
		t.Errorf("AbortRate = %v", got)
	}
	if got := s.CauseShare(CauseFalsePositive); got != 0.05 {
		t.Errorf("CauseShare(fp) = %v", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.AbortRate() != 0 || s.Throughput() != 0 || s.CauseShare(CauseLock) != 0 {
		t.Error("zero stats produced non-zero rates")
	}
}

func TestThroughput(t *testing.T) {
	s := Stats{Commits: 500, Elapsed: 250 * sim.Millisecond}
	if got := s.Throughput(); got != 2000 {
		t.Errorf("Throughput = %v", got)
	}
}

func TestAdd(t *testing.T) {
	a := Stats{Commits: 10, Elapsed: 5 * sim.Microsecond, SigChecks: 3}
	a.AbortsBy[CauseLock] = 2
	b := Stats{Commits: 20, Elapsed: 9 * sim.Microsecond, Overflows: 7}
	b.AbortsBy[CauseLock] = 1
	a.Add(&b)
	if a.Commits != 30 || a.AbortsBy[CauseLock] != 3 || a.Overflows != 7 || a.SigChecks != 3 {
		t.Errorf("Add result: %+v", a)
	}
	if a.Elapsed != 9*sim.Microsecond {
		t.Errorf("Elapsed = %v, want max", a.Elapsed)
	}
}

func TestCauseStrings(t *testing.T) {
	want := map[AbortCause]string{
		CauseTrueConflict:  "true-conflict",
		CauseFalsePositive: "false-positive",
		CauseCapacity:      "capacity",
		CauseLock:          "lock",
		CauseExplicit:      "explicit",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), w)
		}
	}
	if len(Causes()) != int(numCauses) {
		t.Errorf("Causes() lists %d of %d causes", len(Causes()), int(numCauses))
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Commits = 3
	s.AbortsBy[CauseCapacity] = 1
	out := s.String()
	for _, frag := range []string{"commits=3", "cap=1", "rate=25.0%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() = %q missing %q", out, frag)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[2]) && len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("missing separator: %q", lines[1])
	}
}
