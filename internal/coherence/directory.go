// Package coherence models the directory extension of Section IV-D: each
// directory entry gains a Tx-bit, a Tx-Owner (the transaction that wrote
// the line) and Tx-Sharers (transactions that read it). Fields hold
// *transaction IDs*, not core IDs, so conflict detection survives
// context switches. The directory is authoritative for on-chip
// transactional data only — when a line leaves the LLC its entry is
// surrendered to the address signatures (the staged detection scheme).
package coherence

import (
	"fmt"
	"sort"

	"uhtm/internal/mem"
)

// ConflictKind classifies a detected on-chip conflict, following the
// paper's taxonomy for incoming GetS/GetM requests.
type ConflictKind int

const (
	// WriteAfterWrite: an exclusive request hit a line with a Tx-Owner.
	WriteAfterWrite ConflictKind = iota
	// WriteAfterRead: an exclusive request hit a line with Tx-Sharers.
	WriteAfterRead
	// ReadAfterWrite: a shared request hit a line with a Tx-Owner.
	ReadAfterWrite
)

func (k ConflictKind) String() string {
	switch k {
	case WriteAfterWrite:
		return "WAW"
	case WriteAfterRead:
		return "WAR"
	default:
		return "RAW"
	}
}

// Conflict names one transaction an incoming request collides with.
type Conflict struct {
	With uint64 // transaction ID
	Kind ConflictKind
}

type entry struct {
	txOwner   uint64 // 0 = none
	txSharers map[uint64]struct{}
}

func (e *entry) empty() bool { return e.txOwner == 0 && len(e.txSharers) == 0 }

// Directory tracks transactional ownership of on-chip lines.
type Directory struct {
	entries map[mem.Addr]*entry
	// byTx is the reverse index used to clear a transaction's footprint
	// in O(its size) at commit/abort.
	byTx map[uint64]map[mem.Addr]struct{}
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		entries: make(map[mem.Addr]*entry),
		byTx:    make(map[uint64]map[mem.Addr]struct{}),
	}
}

func (d *Directory) entryFor(a mem.Addr) *entry {
	la := mem.LineOf(a)
	e := d.entries[la]
	if e == nil {
		e = &entry{txSharers: make(map[uint64]struct{})}
		d.entries[la] = e
	}
	return e
}

func (d *Directory) index(tx uint64, a mem.Addr) {
	s := d.byTx[tx]
	if s == nil {
		s = make(map[mem.Addr]struct{})
		d.byTx[tx] = s
	}
	s[mem.LineOf(a)] = struct{}{}
}

// CheckWrite returns the transactions an exclusive (GetM-style) request
// for a by transaction self conflicts with. self == 0 denotes a
// non-transactional requester.
func (d *Directory) CheckWrite(a mem.Addr, self uint64) []Conflict {
	e := d.entries[mem.LineOf(a)]
	if e == nil {
		return nil
	}
	var out []Conflict
	if e.txOwner != 0 && e.txOwner != self {
		out = append(out, Conflict{With: e.txOwner, Kind: WriteAfterWrite})
	}
	for tx := range e.txSharers {
		if tx != self {
			out = append(out, Conflict{With: tx, Kind: WriteAfterRead})
		}
	}
	sortConflicts(out)
	return out
}

// CheckRead returns the transactions a shared (GetS-style) request for a
// by transaction self conflicts with.
func (d *Directory) CheckRead(a mem.Addr, self uint64) []Conflict {
	e := d.entries[mem.LineOf(a)]
	if e == nil {
		return nil
	}
	if e.txOwner != 0 && e.txOwner != self {
		return []Conflict{{With: e.txOwner, Kind: ReadAfterWrite}}
	}
	return nil
}

func sortConflicts(cs []Conflict) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].With < cs[j].With })
}

// AddRead records that transaction tx read line a (sets the Tx-bit and
// adds tx to Tx-Sharers).
func (d *Directory) AddRead(a mem.Addr, tx uint64) {
	if tx == 0 {
		return
	}
	e := d.entryFor(a)
	if e.txOwner == tx {
		return // owner's reads are subsumed
	}
	e.txSharers[tx] = struct{}{}
	d.index(tx, a)
}

// AddWrite records that transaction tx wrote line a (sets Tx-Owner).
// Eager conflict detection guarantees at most one owner; a second owner
// is a harness bug and panics.
func (d *Directory) AddWrite(a mem.Addr, tx uint64) {
	if tx == 0 {
		return
	}
	e := d.entryFor(a)
	if e.txOwner != 0 && e.txOwner != tx {
		panic(fmt.Sprintf("coherence: two transactional owners for line %#x: %d and %d", uint64(mem.LineOf(a)), e.txOwner, tx))
	}
	e.txOwner = tx
	delete(e.txSharers, tx) // promotion from sharer to owner
	d.index(tx, a)
}

// TxInfo reports the transactional state of line a: its owner (0 if
// none) and its sharers in ascending ID order.
func (d *Directory) TxInfo(a mem.Addr) (owner uint64, sharers []uint64) {
	e := d.entries[mem.LineOf(a)]
	if e == nil {
		return 0, nil
	}
	for tx := range e.txSharers {
		sharers = append(sharers, tx)
	}
	sort.Slice(sharers, func(i, j int) bool { return sharers[i] < sharers[j] })
	return e.txOwner, sharers
}

// SurrenderLine removes and returns the transactional state of line a.
// The HTM layer calls this on LLC eviction, transferring responsibility
// for the line to the evicted transactions' address signatures.
func (d *Directory) SurrenderLine(a mem.Addr) (owner uint64, sharers []uint64) {
	la := mem.LineOf(a)
	e := d.entries[la]
	if e == nil {
		return 0, nil
	}
	owner, sharers = d.TxInfo(la)
	for _, tx := range sharers {
		delete(d.byTx[tx], la)
	}
	if owner != 0 {
		delete(d.byTx[owner], la)
	}
	delete(d.entries, la)
	return owner, sharers
}

// ClearTx removes transaction tx from every entry it appears in (done
// when tx commits or aborts) and returns the lines it owned, in
// ascending order — the on-chip write-set the commit/abort protocol must
// process.
func (d *Directory) ClearTx(tx uint64) (owned []mem.Addr) {
	for la := range d.byTx[tx] {
		e := d.entries[la]
		if e == nil {
			continue
		}
		if e.txOwner == tx {
			e.txOwner = 0
			owned = append(owned, la)
		}
		delete(e.txSharers, tx)
		if e.empty() {
			delete(d.entries, la)
		}
	}
	delete(d.byTx, tx)
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	return owned
}

// LinesOf returns every line tx currently appears on, ascending.
func (d *Directory) LinesOf(tx uint64) []mem.Addr {
	out := make([]mem.Addr, 0, len(d.byTx[tx]))
	for la := range d.byTx[tx] {
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entries returns the number of lines with live transactional state.
func (d *Directory) Entries() int { return len(d.entries) }
