// Package coherence models the directory extension of Section IV-D: each
// directory entry gains a Tx-bit, a Tx-Owner (the transaction that wrote
// the line) and Tx-Sharers (transactions that read it). Fields hold
// *transaction IDs*, not core IDs, so conflict detection survives
// context switches. The directory is authoritative for on-chip
// transactional data only — when a line leaves the LLC its entry is
// surrendered to the address signatures (the staged detection scheme).
//
// The implementation is flat and allocation-free in steady state:
// per-line state lives in lazily materialized pages indexed by
// mem.LineIndex, sharer sets are singly linked lists in a pooled node
// arena, and the per-transaction reverse index is an append-only line
// list validated lazily on consumption (a stale entry — the line was
// surrendered and possibly re-adopted — is simply skipped). Methods
// that return slices (CheckWrite, CheckRead, TxInfo, SurrenderLine,
// ClearTx) return reusable scratch buffers that are valid only until
// the next call on the Directory; callers must not retain them.
package coherence

import (
	"fmt"
	"slices"

	"uhtm/internal/mem"
)

// ConflictKind classifies a detected on-chip conflict, following the
// paper's taxonomy for incoming GetS/GetM requests.
type ConflictKind int

const (
	// WriteAfterWrite: an exclusive request hit a line with a Tx-Owner.
	WriteAfterWrite ConflictKind = iota
	// WriteAfterRead: an exclusive request hit a line with Tx-Sharers.
	WriteAfterRead
	// ReadAfterWrite: a shared request hit a line with a Tx-Owner.
	ReadAfterWrite
)

// String names the conflict kind for logs and traces.
func (k ConflictKind) String() string {
	switch k {
	case WriteAfterWrite:
		return "WAW"
	case WriteAfterRead:
		return "WAR"
	default:
		return "RAW"
	}
}

// Conflict names one transaction an incoming request collides with.
type Conflict struct {
	With uint64 // transaction ID
	Kind ConflictKind
}

// dirPage holds one page of per-line directory state: the owning
// transaction (0 = none) and the head of the line's sharer list
// (1-based index into the node arena, 0 = empty).
type dirPage struct {
	owner  [mem.PageLines]uint64
	shHead [mem.PageLines]int32
}

// shNode is one sharer-list element in the pooled arena.
type shNode struct {
	tx   uint64
	next int32 // next node, or freelist link; 0 terminates
}

// Directory tracks transactional ownership of on-chip lines.
type Directory struct {
	pages []*dirPage
	// nodes is the sharer-node arena; index 0 is reserved as the list
	// terminator. free heads the freelist threaded through next.
	nodes []shNode
	free  int32
	// live counts lines with transactional state (Entries).
	live int
	// byTx is the reverse index used to clear a transaction's footprint
	// in O(its size) at commit/abort: an append-only line list whose
	// entries are validated against the current per-line state when
	// consumed. Lists are recycled through freeLists.
	byTx      map[uint64][]mem.Addr
	freeLists [][]mem.Addr

	ownedScratch []mem.Addr
	shScratch    []uint64
	cfScratch    []Conflict
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		pages: make([]*dirPage, mem.PageCount),
		nodes: make([]shNode, 1), // slot 0 reserved
		byTx:  make(map[uint64][]mem.Addr),
	}
}

// page materializes la's page.
func (d *Directory) page(la mem.Addr) (*dirPage, uint64) {
	idx := mem.LineIndex(la)
	pi := idx >> mem.PageShift
	p := d.pages[pi]
	if p == nil {
		p = new(dirPage)
		d.pages[pi] = p
	}
	return p, idx & (mem.PageLines - 1)
}

// peek returns la's page without materializing (nil when untouched).
func (d *Directory) peek(la mem.Addr) (*dirPage, uint64) {
	idx := mem.LineIndex(la)
	return d.pages[idx>>mem.PageShift], idx & (mem.PageLines - 1)
}

// allocNode pops the freelist or grows the arena.
func (d *Directory) allocNode(tx uint64, next int32) int32 {
	if n := d.free; n != 0 {
		d.free = d.nodes[n].next
		d.nodes[n] = shNode{tx: tx, next: next}
		return n
	}
	d.nodes = append(d.nodes, shNode{tx: tx, next: next})
	return int32(len(d.nodes) - 1)
}

func (d *Directory) freeNode(n int32) {
	d.nodes[n].next = d.free
	d.free = n
}

// sharerHas walks o's sharer list for tx.
func (d *Directory) sharerHas(p *dirPage, o uint64, tx uint64) bool {
	for n := p.shHead[o]; n != 0; n = d.nodes[n].next {
		if d.nodes[n].tx == tx {
			return true
		}
	}
	return false
}

// removeSharer unlinks tx from o's sharer list, reporting whether it
// was present.
func (d *Directory) removeSharer(p *dirPage, o uint64, tx uint64) bool {
	prev := int32(0)
	for n := p.shHead[o]; n != 0; n = d.nodes[n].next {
		if d.nodes[n].tx == tx {
			if prev == 0 {
				p.shHead[o] = d.nodes[n].next
			} else {
				d.nodes[prev].next = d.nodes[n].next
			}
			d.freeNode(n)
			return true
		}
		prev = n
	}
	return false
}

// index appends la to tx's reverse-index list (called only when tx was
// absent from the line, so a live list never holds duplicates for a
// line tx still occupies).
func (d *Directory) index(tx uint64, la mem.Addr) {
	s, ok := d.byTx[tx]
	if !ok && len(d.freeLists) > 0 {
		s = d.freeLists[len(d.freeLists)-1]
		d.freeLists = d.freeLists[:len(d.freeLists)-1]
	}
	d.byTx[tx] = append(s, la)
}

// releaseList recycles tx's reverse-index list.
func (d *Directory) releaseList(tx uint64) {
	if s, ok := d.byTx[tx]; ok {
		delete(d.byTx, tx)
		d.freeLists = append(d.freeLists, s[:0])
	}
}

// CheckWrite returns the transactions an exclusive (GetM-style) request
// for a by transaction self conflicts with, ascending by ID. self == 0
// denotes a non-transactional requester. The returned slice is scratch,
// valid until the next Directory call.
func (d *Directory) CheckWrite(a mem.Addr, self uint64) []Conflict {
	p, o := d.peek(mem.LineOf(a))
	if p == nil {
		return nil
	}
	out := d.cfScratch[:0]
	if own := p.owner[o]; own != 0 && own != self {
		out = append(out, Conflict{With: own, Kind: WriteAfterWrite})
	}
	for n := p.shHead[o]; n != 0; n = d.nodes[n].next {
		if tx := d.nodes[n].tx; tx != self {
			out = append(out, Conflict{With: tx, Kind: WriteAfterRead})
		}
	}
	d.cfScratch = out
	if len(out) == 0 {
		return nil
	}
	slices.SortFunc(out, func(x, y Conflict) int {
		switch {
		case x.With < y.With:
			return -1
		case x.With > y.With:
			return 1
		}
		return 0
	})
	return out
}

// CheckRead returns the transactions a shared (GetS-style) request for a
// by transaction self conflicts with. The returned slice is scratch,
// valid until the next Directory call.
func (d *Directory) CheckRead(a mem.Addr, self uint64) []Conflict {
	p, o := d.peek(mem.LineOf(a))
	if p == nil {
		return nil
	}
	if own := p.owner[o]; own != 0 && own != self {
		d.cfScratch = append(d.cfScratch[:0], Conflict{With: own, Kind: ReadAfterWrite})
		return d.cfScratch
	}
	return nil
}

// hasState reports whether the slot carries any transactional state.
func hasState(p *dirPage, o uint64) bool { return p.owner[o] != 0 || p.shHead[o] != 0 }

// AddRead records that transaction tx read line a (sets the Tx-bit and
// adds tx to Tx-Sharers).
func (d *Directory) AddRead(a mem.Addr, tx uint64) {
	if tx == 0 {
		return
	}
	p, o := d.page(mem.LineOf(a))
	if p.owner[o] == tx {
		return // owner's reads are subsumed
	}
	if d.sharerHas(p, o, tx) {
		return
	}
	if !hasState(p, o) {
		d.live++
	}
	p.shHead[o] = d.allocNode(tx, p.shHead[o])
	d.index(tx, mem.LineOf(a))
}

// AddWrite records that transaction tx wrote line a (sets Tx-Owner).
// Eager conflict detection guarantees at most one owner; a second owner
// is a harness bug and panics.
func (d *Directory) AddWrite(a mem.Addr, tx uint64) {
	if tx == 0 {
		return
	}
	la := mem.LineOf(a)
	p, o := d.page(la)
	switch own := p.owner[o]; {
	case own == tx:
		return
	case own != 0:
		panic(fmt.Sprintf("coherence: two transactional owners for line %#x: %d and %d", uint64(la), own, tx))
	}
	if !hasState(p, o) {
		d.live++
	}
	p.owner[o] = tx
	// Promotion from sharer to owner keeps the existing index entry;
	// a brand-new occupant is indexed now.
	if !d.removeSharer(p, o, tx) {
		d.index(tx, la)
	}
}

// TxInfo reports the transactional state of line a: its owner (0 if
// none) and its sharers in ascending ID order. The sharers slice is
// scratch, valid until the next Directory call.
func (d *Directory) TxInfo(a mem.Addr) (owner uint64, sharers []uint64) {
	p, o := d.peek(mem.LineOf(a))
	if p == nil {
		return 0, nil
	}
	sh := d.shScratch[:0]
	for n := p.shHead[o]; n != 0; n = d.nodes[n].next {
		sh = append(sh, d.nodes[n].tx)
	}
	d.shScratch = sh
	if len(sh) == 0 {
		return p.owner[o], nil
	}
	slices.Sort(sh)
	return p.owner[o], sh
}

// SurrenderLine removes and returns the transactional state of line a
// (sharers ascending). The HTM layer calls this on LLC eviction,
// transferring responsibility for the line to the evicted transactions'
// address signatures. Reverse-index entries for the line go stale and
// are skipped when their transaction is cleared. The sharers slice is
// scratch, valid until the next Directory call.
func (d *Directory) SurrenderLine(a mem.Addr) (owner uint64, sharers []uint64) {
	p, o := d.peek(mem.LineOf(a))
	if p == nil {
		return 0, nil
	}
	if !hasState(p, o) {
		return 0, nil
	}
	sh := d.shScratch[:0]
	for n := p.shHead[o]; n != 0; {
		next := d.nodes[n].next
		sh = append(sh, d.nodes[n].tx)
		d.freeNode(n)
		n = next
	}
	d.shScratch = sh
	owner = p.owner[o]
	p.owner[o] = 0
	p.shHead[o] = 0
	d.live--
	if len(sh) > 0 {
		slices.Sort(sh)
		sharers = sh
	}
	return owner, sharers
}

// ClearTx removes transaction tx from every entry it appears in (done
// when tx commits or aborts) and returns the lines it owned, in
// ascending order — the on-chip write-set the commit/abort protocol must
// process. The returned slice is scratch, valid until the next
// Directory call.
func (d *Directory) ClearTx(tx uint64) (owned []mem.Addr) {
	owned = d.ownedScratch[:0]
	for _, la := range d.byTx[tx] {
		p, o := d.peek(la)
		if p == nil || !hasState(p, o) {
			continue // surrendered since it was indexed
		}
		if p.owner[o] == tx {
			p.owner[o] = 0
			owned = append(owned, la)
		} else if !d.removeSharer(p, o, tx) {
			continue // stale entry: tx no longer on this line
		}
		if !hasState(p, o) {
			d.live--
		}
	}
	d.releaseList(tx)
	d.ownedScratch = owned
	slices.Sort(owned)
	return owned
}

// LinesOf returns every line tx currently appears on, ascending (a
// freshly allocated slice — this is a test/debug helper, not a hot
// path).
func (d *Directory) LinesOf(tx uint64) []mem.Addr {
	var out []mem.Addr
	for _, la := range d.byTx[tx] {
		p, o := d.peek(la)
		if p == nil {
			continue
		}
		if p.owner[o] == tx || d.sharerHas(p, o, tx) {
			out = append(out, la)
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// Entries returns the number of lines with live transactional state.
func (d *Directory) Entries() int { return d.live }
