package coherence

import (
	"testing"
	"testing/quick"

	"uhtm/internal/mem"
)

const (
	lineA = mem.Addr(0x1000)
	lineB = mem.Addr(0x2000)
)

func TestNoConflictOnCleanLine(t *testing.T) {
	d := NewDirectory()
	if cs := d.CheckWrite(lineA, 1); cs != nil {
		t.Errorf("CheckWrite on empty dir = %v", cs)
	}
	if cs := d.CheckRead(lineA, 1); cs != nil {
		t.Errorf("CheckRead on empty dir = %v", cs)
	}
}

func TestWAWConflict(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	cs := d.CheckWrite(lineA, 2)
	if len(cs) != 1 || cs[0].With != 1 || cs[0].Kind != WriteAfterWrite {
		t.Errorf("CheckWrite = %v, want WAW with tx1", cs)
	}
}

func TestWARConflict(t *testing.T) {
	d := NewDirectory()
	d.AddRead(lineA, 1)
	d.AddRead(lineA, 3)
	cs := d.CheckWrite(lineA, 2)
	if len(cs) != 2 {
		t.Fatalf("CheckWrite = %v, want two WAR conflicts", cs)
	}
	if cs[0].With != 1 || cs[1].With != 3 || cs[0].Kind != WriteAfterRead {
		t.Errorf("CheckWrite = %v", cs)
	}
}

func TestRAWConflict(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 5)
	cs := d.CheckRead(lineA, 6)
	if len(cs) != 1 || cs[0].With != 5 || cs[0].Kind != ReadAfterWrite {
		t.Errorf("CheckRead = %v, want RAW with tx5", cs)
	}
}

func TestSelfAccessIsNotConflict(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	d.AddRead(lineB, 1)
	if cs := d.CheckWrite(lineA, 1); cs != nil {
		t.Errorf("own write-set conflicts: %v", cs)
	}
	if cs := d.CheckRead(lineA, 1); cs != nil {
		t.Errorf("own write-set conflicts on read: %v", cs)
	}
	if cs := d.CheckWrite(lineB, 1); cs != nil {
		t.Errorf("own read-set conflicts: %v", cs)
	}
}

func TestSharedReadersNoConflict(t *testing.T) {
	d := NewDirectory()
	d.AddRead(lineA, 1)
	d.AddRead(lineA, 2)
	if cs := d.CheckRead(lineA, 3); cs != nil {
		t.Errorf("readers conflict with readers: %v", cs)
	}
}

func TestNonTransactionalRequester(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	// A non-transactional write (self=0) still conflicts with tx1 — it
	// must abort the transaction to proceed safely.
	cs := d.CheckWrite(lineA, 0)
	if len(cs) != 1 || cs[0].With != 1 {
		t.Errorf("non-tx requester conflicts = %v", cs)
	}
}

func TestPromotionReaderToOwner(t *testing.T) {
	d := NewDirectory()
	d.AddRead(lineA, 1)
	d.AddWrite(lineA, 1)
	owner, sharers := d.TxInfo(lineA)
	if owner != 1 || len(sharers) != 0 {
		t.Errorf("TxInfo = (%d, %v), want (1, [])", owner, sharers)
	}
	// Owner's subsequent reads don't re-add it as a sharer.
	d.AddRead(lineA, 1)
	if _, sharers = d.TxInfo(lineA); len(sharers) != 0 {
		t.Errorf("owner re-listed as sharer: %v", sharers)
	}
}

func TestDoubleOwnerPanics(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	defer func() {
		if recover() == nil {
			t.Error("second owner did not panic")
		}
	}()
	d.AddWrite(lineA, 2)
}

func TestSurrenderLine(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	d.AddRead(lineA, 2)
	owner, sharers := d.SurrenderLine(lineA)
	if owner != 1 || len(sharers) != 1 || sharers[0] != 2 {
		t.Errorf("SurrenderLine = (%d, %v)", owner, sharers)
	}
	// After surrender the directory no longer reports conflicts.
	if cs := d.CheckWrite(lineA, 3); cs != nil {
		t.Errorf("conflicts after surrender: %v", cs)
	}
	if d.Entries() != 0 {
		t.Errorf("Entries = %d after surrender", d.Entries())
	}
	// And the reverse index is clean: clearing the txs returns nothing.
	if owned := d.ClearTx(1); len(owned) != 0 {
		t.Errorf("ClearTx(1) = %v after surrender", owned)
	}
}

func TestClearTxReturnsWriteSet(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineA, 1)
	d.AddWrite(lineB, 1)
	d.AddRead(0x3000, 1)
	owned := d.ClearTx(1)
	if len(owned) != 2 || owned[0] != lineA || owned[1] != lineB {
		t.Errorf("ClearTx = %v, want [lineA lineB]", owned)
	}
	if d.Entries() != 0 {
		t.Errorf("entries remain: %d", d.Entries())
	}
}

func TestClearTxLeavesOthers(t *testing.T) {
	d := NewDirectory()
	d.AddRead(lineA, 1)
	d.AddRead(lineA, 2)
	d.ClearTx(1)
	cs := d.CheckWrite(lineA, 3)
	if len(cs) != 1 || cs[0].With != 2 {
		t.Errorf("after ClearTx(1), conflicts = %v, want tx2 only", cs)
	}
}

func TestLinesOf(t *testing.T) {
	d := NewDirectory()
	d.AddWrite(lineB, 7)
	d.AddRead(lineA, 7)
	lines := d.LinesOf(7)
	if len(lines) != 2 || lines[0] != lineA || lines[1] != lineB {
		t.Errorf("LinesOf = %v", lines)
	}
}

func TestConflictKindString(t *testing.T) {
	if WriteAfterWrite.String() != "WAW" || WriteAfterRead.String() != "WAR" || ReadAfterWrite.String() != "RAW" {
		t.Error("ConflictKind strings wrong")
	}
}

// Property: after any sequence of reads/writes (with per-line owner
// uniqueness respected) followed by ClearTx of every tx, the directory
// is empty — no leaked entries or index residue.
func TestQuickClearLeavesEmpty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory()
		owners := map[mem.Addr]uint64{}
		for _, op := range ops {
			tx := uint64(op%7) + 1
			a := mem.Addr(op%32) * mem.LineSize
			if op%2 == 0 {
				if o, ok := owners[a]; ok && o != tx {
					continue // respect single-owner invariant
				}
				d.AddWrite(a, tx)
				owners[a] = tx
			} else {
				d.AddRead(a, tx)
			}
		}
		for tx := uint64(1); tx <= 7; tx++ {
			d.ClearTx(tx)
		}
		return d.Entries() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: CheckWrite reports exactly the other transactions present on
// the line.
func TestQuickCheckWriteComplete(t *testing.T) {
	f := func(readers []uint8, ownerSel uint8) bool {
		d := NewDirectory()
		a := lineA
		want := map[uint64]bool{}
		owner := uint64(ownerSel%5) + 10
		d.AddWrite(a, owner)
		want[owner] = true
		for _, r := range readers {
			tx := uint64(r%5) + 1 // disjoint from owner range
			d.AddRead(a, tx)
			want[tx] = true
		}
		self := uint64(3)
		delete(want, self)
		got := map[uint64]bool{}
		for _, c := range d.CheckWrite(a, self) {
			got[c.With] = true
		}
		if len(got) != len(want) {
			return false
		}
		for tx := range want {
			if !got[tx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
