package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// The wire protocol is a RESP (REdis Serialization Protocol) subset:
// requests are either RESP arrays of bulk strings (what client
// libraries and the load generator send) or inline commands — a single
// space-separated line, nc/telnet friendly. Replies use the five RESP
// reply kinds: simple string (+OK), error (-ERR ...), integer (:1),
// bulk string ($n\r\n...\r\n, with $-1 as nil) and array (*n followed
// by n replies). SERVING.md is the operator-facing reference; a drift
// test asserts it documents every command in this table.

// Command describes one wire command: its name, argument synopsis,
// whether it may be queued inside a MULTI block, and a one-line
// description. Commands() is the single source of truth the server
// dispatch, SERVING.md drift test and usage text all derive from.
type Command struct {
	Name    string
	Args    string // synopsis, e.g. "key value"
	InMulti bool   // may appear between MULTI and EXEC
	Desc    string
}

// commandTable lists every command the server implements.
var commandTable = []Command{
	{"PING", "", false, "liveness probe; replies +PONG"},
	{"GET", "key", true, "read one key; bulk value or nil when absent"},
	{"PUT", "key value", true, "insert or update one key; +OK"},
	{"SET", "key value", true, "alias of PUT (redis-cli compatibility)"},
	{"DEL", "key", true, "remove one key; :1 if it existed, :0 otherwise"},
	{"SCAN", "start count", true, "up to count keys >= start in order; array of key,value pairs"},
	{"MULTI", "", false, "open a batch; queued ops run as ONE durable transaction at EXEC"},
	{"EXEC", "", false, "commit the queued batch atomically; array of per-op replies"},
	{"DISCARD", "", false, "drop the queued batch; +OK"},
	{"STATS", "", false, "server counters as a JSON bulk string"},
	{"CRASH", "", false, "simulated power failure + recovery (testing/ops drill); +OK"},
	{"QUIT", "", false, "close the connection; +OK"},
}

// Commands returns the command table (copy).
func Commands() []Command {
	out := make([]Command, len(commandTable))
	copy(out, commandTable)
	return out
}

// lookupCommand resolves an (upper-cased) command name.
func lookupCommand(name string) (Command, bool) {
	for _, c := range commandTable {
		if c.Name == name {
			return c, true
		}
	}
	return Command{}, false
}

// Protocol limits: a single oversized frame must not let one connection
// exhaust the process.
const (
	// MaxArgs bounds the element count of a request array.
	MaxArgs = 1 << 16
	// MaxBulk bounds one bulk-string payload (1 MB).
	MaxBulk = 1 << 20
	// MaxInline bounds one inline command line.
	MaxInline = 1 << 16
)

// errProtocol wraps unrecoverable framing errors: after one of these
// the byte stream position is unknown and the connection must close.
var errProtocol = errors.New("protocol error")

// IsProtocolError reports whether err is an unrecoverable framing
// error (the connection cannot be resynchronized).
func IsProtocolError(err error) bool { return errors.Is(err, errProtocol) }

// ReadRequest reads one request — a RESP array of bulk strings or an
// inline command line — returning the argument vector. io errors pass
// through; framing violations return an error satisfying
// IsProtocolError.
func ReadRequest(r *bufio.Reader) ([][]byte, error) {
	first, err := r.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == '*' {
		return readArray(r)
	}
	return readInline(r)
}

// readLine reads up to CRLF (LF tolerated for inline/nc use),
// returning the line without its terminator.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) > max {
		return nil, fmt.Errorf("%w: line exceeds %d bytes", errProtocol, max)
	}
	line = bytes.TrimSuffix(line, []byte("\n"))
	line = bytes.TrimSuffix(line, []byte("\r"))
	return line, nil
}

// readInline parses a space-separated command line. Empty lines yield
// a nil argv (callers skip them — they keep nc sessions forgiving).
func readInline(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r, MaxInline)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	return fields, nil
}

// readArray parses *N\r\n followed by N bulk strings.
func readArray(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r, MaxInline)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > MaxArgs {
		return nil, fmt.Errorf("%w: bad array header %q", errProtocol, line)
	}
	argv := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		arg, err := readBulk(r)
		if err != nil {
			return nil, err
		}
		argv = append(argv, arg)
	}
	return argv, nil
}

// readBulk parses $len\r\n<len bytes>\r\n.
func readBulk(r *bufio.Reader) ([]byte, error) {
	line, err := readLine(r, MaxInline)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, fmt.Errorf("%w: expected bulk string, got %q", errProtocol, line)
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > MaxBulk {
		return nil, fmt.Errorf("%w: bad bulk length %q", errProtocol, line)
	}
	buf := make([]byte, n+2)
	if _, err := readFull(r, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk string not CRLF-terminated", errProtocol)
	}
	return buf[:n], nil
}

// readFull fills buf from r (bufio.Reader has no ReadFull; io.ReadFull
// would bypass its buffer accounting on some paths — keep it explicit).
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteRequest writes argv as a RESP array of bulk strings — the
// client-side encoder the load generator uses; ReadRequest is its
// inverse (round-trip tested).
func WriteRequest(w *bufio.Writer, argv [][]byte) error {
	if _, err := fmt.Fprintf(w, "*%d\r\n", len(argv)); err != nil {
		return err
	}
	for _, a := range argv {
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(a)); err != nil {
			return err
		}
		if _, err := w.Write(a); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return nil
}

// Reply is one decoded server reply: exactly one kind is populated.
type Reply struct {
	Kind  ReplyKind
	Str   string  // Simple and Err text, e.g. "OK"
	Int   int64   // Int replies
	Bulk  []byte  // Bulk replies; nil for the nil bulk
	Nil   bool    // Bulk: distinguishes $-1 from $0
	Array []Reply // Array replies
}

// ReplyKind discriminates the RESP reply kinds.
type ReplyKind int

// The RESP reply kinds.
const (
	// ReplySimple is +text.
	ReplySimple ReplyKind = iota
	// ReplyErr is -text.
	ReplyErr
	// ReplyInt is :n.
	ReplyInt
	// ReplyBulk is $n payload (or the $-1 nil).
	ReplyBulk
	// ReplyArray is *n nested replies.
	ReplyArray
)

// WriteReply encodes one reply.
func WriteReply(w *bufio.Writer, rep Reply) error {
	switch rep.Kind {
	case ReplySimple:
		_, err := fmt.Fprintf(w, "+%s\r\n", rep.Str)
		return err
	case ReplyErr:
		_, err := fmt.Fprintf(w, "-%s\r\n", rep.Str)
		return err
	case ReplyInt:
		_, err := fmt.Fprintf(w, ":%d\r\n", rep.Int)
		return err
	case ReplyBulk:
		if rep.Nil {
			_, err := w.WriteString("$-1\r\n")
			return err
		}
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(rep.Bulk)); err != nil {
			return err
		}
		if _, err := w.Write(rep.Bulk); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case ReplyArray:
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(rep.Array)); err != nil {
			return err
		}
		for _, el := range rep.Array {
			if err := WriteReply(w, el); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("server: unknown reply kind %d", rep.Kind)
	}
}

// ReadReply decodes one reply — the client-side decoder.
func ReadReply(r *bufio.Reader) (Reply, error) {
	line, err := readLine(r, MaxInline)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, fmt.Errorf("%w: empty reply line", errProtocol)
	}
	switch line[0] {
	case '+':
		return Reply{Kind: ReplySimple, Str: string(line[1:])}, nil
	case '-':
		return Reply{Kind: ReplyErr, Str: string(line[1:])}, nil
	case ':':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("%w: bad integer reply %q", errProtocol, line)
		}
		return Reply{Kind: ReplyInt, Int: n}, nil
	case '$':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n > MaxBulk {
			return Reply{}, fmt.Errorf("%w: bad bulk header %q", errProtocol, line)
		}
		if n < 0 {
			return Reply{Kind: ReplyBulk, Nil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := readFull(r, buf); err != nil {
			return Reply{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Reply{}, fmt.Errorf("%w: bulk reply not CRLF-terminated", errProtocol)
		}
		return Reply{Kind: ReplyBulk, Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < 0 || n > MaxArgs {
			return Reply{}, fmt.Errorf("%w: bad array header %q", errProtocol, line)
		}
		out := Reply{Kind: ReplyArray, Array: make([]Reply, 0, n)}
		for i := 0; i < n; i++ {
			el, err := ReadReply(r)
			if err != nil {
				return Reply{}, err
			}
			out.Array = append(out.Array, el)
		}
		return out, nil
	default:
		return Reply{}, fmt.Errorf("%w: unknown reply type %q", errProtocol, line[0])
	}
}

// Convenience reply constructors.

// OK is the +OK reply.
func OK() Reply { return Reply{Kind: ReplySimple, Str: "OK"} }

// Errf builds an -ERR reply.
func Errf(format string, a ...any) Reply {
	return Reply{Kind: ReplyErr, Str: "ERR " + fmt.Sprintf(format, a...)}
}

// BulkString builds a bulk reply from b (nil b is the nil bulk).
func BulkString(b []byte) Reply {
	if b == nil {
		return Reply{Kind: ReplyBulk, Nil: true}
	}
	return Reply{Kind: ReplyBulk, Bulk: b}
}

// Int builds an integer reply.
func Int(n int64) Reply { return Reply{Kind: ReplyInt, Int: n} }

// parseKey parses a wire key: keys are decimal unsigned 64-bit
// integers (the txds structures key by uint64; SERVING.md documents
// the restriction).
func parseKey(b []byte) (uint64, error) {
	k, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("key %q is not a decimal uint64", b)
	}
	return k, nil
}
