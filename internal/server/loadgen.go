package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"uhtm/internal/shard"
	"uhtm/internal/stats"
)

// The open-loop load generator. Closed-loop clients (send, wait, send)
// hide saturation: when the server slows down, a closed-loop client
// slows its own arrival rate and latency looks flat. Open-loop
// generation schedules request send times from the target rate alone
// and measures latency from the *scheduled* send time, so queueing
// delay during overload shows up in the percentiles instead of
// disappearing into a depressed arrival rate. EXPERIMENTS.md describes
// the methodology; SERVING.md the knobs.

// Key distributions the generator offers.
const (
	// DistZipf draws keys Zipf(s)-skewed over the key space (hot keys).
	DistZipf = "zipf"
	// DistUniform draws keys uniformly over the key space.
	DistUniform = "uniform"
)

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	// Addr is the server to drive.
	Addr string
	// Conns is the connection (worker) count. Default 4.
	Conns int
	// QPS is the total target request rate across all connections.
	// Default 2000.
	QPS float64
	// Duration bounds the run. Default 2s.
	Duration time.Duration
	// KeySpace draws keys from [1, KeySpace]. Default 10000.
	KeySpace uint64
	// Dist is DistZipf or DistUniform. Default DistZipf.
	Dist string
	// ZipfS is the Zipf skew parameter (>1). Default 1.2.
	ZipfS float64
	// ReadFrac is the GET fraction; the rest are PUTs (with an
	// occasional SCAN when ScanFrac > 0). Default 0.8.
	ReadFrac float64
	// ReadFracSet marks ReadFrac as explicitly chosen, so 0 means a
	// write-only workload instead of "use the default" — the same
	// sentinel split the CLI applies to -seed 0.
	ReadFracSet bool
	// CrossFrac is the fraction of requests issued as MULTI…EXEC
	// batches whose keys are forced onto at least two shards, exercising
	// the server's 2PC path. Requires a sharded server. Default 0.
	CrossFrac float64
	// ScanFrac carves SCANs out of the read fraction. Default 0.
	ScanFrac float64
	// ScanCount is the count argument SCANs use. Default 10.
	ScanCount int
	// ValueSizes is the PUT value-size mix, drawn uniformly. Default
	// {64, 256, 1024}.
	ValueSizes []int
	// BatchSize > 1 wraps each request in MULTI..EXEC with BatchSize
	// ops — one durable transaction per request either way, but larger
	// transactions. Default 1 (plain single-op commands).
	BatchSize int
	// Seed seeds key/op choice. Default 1.
	Seed int64
	// Out, when set, receives the report as one JSON line.
	Out io.Writer
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.QPS <= 0 {
		c.QPS = 2000
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.KeySpace == 0 {
		c.KeySpace = 10000
	}
	if c.Dist == "" {
		c.Dist = DistZipf
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 || (c.ReadFrac == 0 && !c.ReadFracSet) {
		// Out-of-range always falls back; a zero only when it is the
		// unset zero value, so an explicit ReadFrac 0 (write-only
		// workload) survives.
		c.ReadFrac = 0.8
	}
	if c.ScanCount <= 0 {
		c.ScanCount = 10
	}
	if len(c.ValueSizes) == 0 {
		c.ValueSizes = []int{64, 256, 1024}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadReport is the run summary, emitted as one JSON line (the record
// schema EXPERIMENTS.md documents).
type LoadReport struct {
	Kind        string  `json:"kind"` // always "loadgen"
	Addr        string  `json:"addr"`
	Conns       int     `json:"conns"`
	Dist        string  `json:"dist"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	KeySpace    uint64  `json:"key_space"`
	ReadFrac    float64 `json:"read_frac"`
	ScanFrac    float64 `json:"scan_frac"`
	CrossFrac   float64 `json:"cross_frac,omitempty"`
	BatchSize   int     `json:"batch_size"`
	TargetQPS   float64 `json:"target_qps"`
	DurationS   float64 `json:"duration_s"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	AchievedQPS float64 `json:"achieved_qps"`
	// Saturated: the generator could not hold the target rate (or lost
	// workers) — achieved throughput is the saturation throughput at
	// this configuration, or invalid if workers died.
	Saturated bool `json:"saturated"`
	// WorkersDied counts workers that exited early on a connection or
	// issue error; any nonzero value also marks the run Saturated, since
	// the surviving workers cannot hold the configured rate.
	WorkersDied int `json:"workers_died,omitempty"`
	// LastError carries the most recent worker error (died workers
	// included), for diagnosing invalid runs.
	LastError string `json:"last_error,omitempty"`

	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`

	// Server-side transaction counters over the run window (STATS
	// delta): commits, aborts and the abort rate the offered load
	// induced inside the simulated machine.
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`

	// Cross-shard 2PC counters over the run window (STATS delta);
	// nonzero only against a sharded server with CrossFrac > 0.
	CrossCommits uint64 `json:"cross_commits,omitempty"`
	CrossAborts  uint64 `json:"cross_aborts,omitempty"`
}

// statsDoc mirrors the STATS reply shape for decoding.
type statsDoc struct {
	Server  serverStats `json:"server"`
	Machine stats.Stats `json:"machine"`
}

// fetchStats issues STATS on a fresh connection and decodes it.
func fetchStats(addr string) (statsDoc, error) {
	var doc statsDoc
	c, err := Dial(addr)
	if err != nil {
		return doc, err
	}
	defer c.Close()
	rep, err := c.DoStrings("STATS")
	if err != nil {
		return doc, err
	}
	if rep.Kind != ReplyBulk {
		return doc, fmt.Errorf("STATS replied %+v", rep)
	}
	err = json.Unmarshal(rep.Bulk, &doc)
	return doc, err
}

// worker is one load connection's state.
type worker struct {
	id      int
	lat     []float64 // latencies, µs
	sent    uint64
	errs    uint64
	behind  bool // fell behind its open-loop schedule
	died    bool // exited early on a connection/issue error
	lastErr error
}

// RunLoad drives the server at cfg's target rate and returns the
// report. Request latency is measured from each request's scheduled
// send time, so under overload the growing backlog appears as latency,
// not as a silently reduced rate.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	before, err := fetchStats(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: server not reachable: %w", err)
	}
	shards := before.Server.Shards
	if shards < 1 {
		shards = 1
	}
	if cfg.CrossFrac > 0 && shards < 2 {
		return nil, fmt.Errorf("loadgen: cross-shard fraction %.2f requires a sharded server (server has %d shard)", cfg.CrossFrac, shards)
	}
	interval := time.Duration(float64(cfg.Conns) / cfg.QPS * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	workers := make([]*worker, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i := 0; i < cfg.Conns; i++ {
		w := &worker{id: i}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(cfg, w, shards, start, deadline, interval)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	after, err := fetchStats(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: post-run STATS failed: %w", err)
	}

	var all []float64
	var sent, errs uint64
	saturated := false
	died := 0
	var lastErr error
	for _, w := range workers {
		all = append(all, w.lat...)
		sent += w.sent
		errs += w.errs
		saturated = saturated || w.behind
		if w.died {
			died++
		}
		if w.lastErr != nil {
			lastErr = w.lastErr
		}
	}
	if sent == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("loadgen: no requests completed: %w", lastErr)
		}
		return nil, fmt.Errorf("loadgen: no requests completed")
	}
	sort.Float64s(all)
	commits := after.Machine.Commits - before.Machine.Commits
	aborts := after.Machine.Aborts() - before.Machine.Aborts()
	rep := &LoadReport{
		Kind:        "loadgen",
		Addr:        cfg.Addr,
		Conns:       cfg.Conns,
		Dist:        cfg.Dist,
		KeySpace:    cfg.KeySpace,
		ReadFrac:    cfg.ReadFrac,
		ScanFrac:    cfg.ScanFrac,
		CrossFrac:   cfg.CrossFrac,
		BatchSize:   cfg.BatchSize,
		TargetQPS:   cfg.QPS,
		DurationS:   elapsed.Seconds(),
		Requests:    sent,
		Errors:      errs,
		AchievedQPS: float64(sent) / elapsed.Seconds(),
		Saturated:   saturated,
		P50us:       percentile(all, 0.50),
		P99us:       percentile(all, 0.99),
		P999us:      percentile(all, 0.999),
		MaxUs:       all[len(all)-1],
		Commits:     commits,
		Aborts:      aborts,
	}
	if cfg.Dist == DistZipf {
		rep.ZipfS = cfg.ZipfS
	}
	if commits+aborts > 0 {
		rep.AbortRate = float64(aborts) / float64(commits+aborts)
	}
	if rep.AchievedQPS < 0.9*cfg.QPS {
		rep.Saturated = true
	}
	rep.CrossCommits = after.Server.CrossCommits - before.Server.CrossCommits
	rep.CrossAborts = after.Server.CrossAborts - before.Server.CrossAborts
	if died > 0 {
		// A dead worker stops issuing its share of the schedule: the run
		// cannot have held the target rate and its numbers are suspect.
		rep.WorkersDied = died
		rep.Saturated = true
	}
	if lastErr != nil {
		rep.LastError = lastErr.Error()
	}
	if cfg.Out != nil {
		b, err := json.Marshal(rep)
		if err != nil {
			return rep, err
		}
		if _, err := fmt.Fprintf(cfg.Out, "%s\n", b); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runWorker runs one connection's open-loop schedule.
func runWorker(cfg LoadConfig, w *worker, shards int, start, deadline time.Time, interval time.Duration) {
	c, err := Dial(cfg.Addr)
	if err != nil {
		w.lastErr = err
		w.died = true
		w.errs++
		return
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w.id)*7919))
	var zipf *rand.Zipf
	if cfg.Dist == DistZipf {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, cfg.KeySpace-1)
	}
	// Stagger workers so their schedules interleave instead of pulsing.
	offset := time.Duration(w.id) * interval / time.Duration(cfg.Conns)
	for i := 0; ; i++ {
		sched := start.Add(offset + time.Duration(i)*interval)
		if sched.After(deadline) {
			return
		}
		now := time.Now()
		if sched.After(now) {
			time.Sleep(sched.Sub(now))
		} else if now.Sub(sched) > interval {
			w.behind = true // open-loop backlog: cannot hold the rate
		}
		cmds := buildRequest(cfg, rng, zipf, shards)
		ok, err := issue(c, cmds)
		if err != nil {
			// The connection is gone; stop this worker, but leave the
			// evidence — a silently vanished worker makes the report lie
			// about the offered rate.
			w.lastErr = err
			w.died = true
			w.errs++
			return
		}
		w.sent++
		if !ok {
			w.errs++
		}
		w.lat = append(w.lat, float64(time.Since(sched).Microseconds()))
	}
}

// pickKey draws one key in [1, KeySpace].
func pickKey(cfg LoadConfig, rng *rand.Rand, zipf *rand.Zipf) uint64 {
	if zipf != nil {
		return zipf.Uint64() + 1
	}
	return uint64(rng.Int63n(int64(cfg.KeySpace))) + 1
}

// buildOp builds one random data command. noScan suppresses SCAN (keeps
// it for MULTI groups on a sharded server, where SCAN is rejected
// inside transactions) by reclassifying the draw as a GET.
func buildOp(cfg LoadConfig, rng *rand.Rand, zipf *rand.Zipf, noScan bool) [][]byte {
	return buildOpKey(cfg, rng, pickKey(cfg, rng, zipf), noScan)
}

// buildOpKey builds one random data command against a chosen key.
func buildOpKey(cfg LoadConfig, rng *rand.Rand, key uint64, noScan bool) [][]byte {
	ks := strconv.FormatUint(key, 10)
	r := rng.Float64()
	switch {
	case !noScan && r < cfg.ReadFrac*cfg.ScanFrac:
		return [][]byte{[]byte("SCAN"), []byte(ks), []byte(strconv.Itoa(cfg.ScanCount))}
	case r < cfg.ReadFrac:
		return [][]byte{[]byte("GET"), []byte(ks)}
	default:
		size := cfg.ValueSizes[rng.Intn(len(cfg.ValueSizes))]
		val := make([]byte, size)
		for i := range val {
			val[i] = byte('a' + rng.Intn(26))
		}
		return [][]byte{[]byte("PUT"), []byte(ks), val}
	}
}

// buildRequest assembles one request: a single command, a MULTI..EXEC
// group when BatchSize > 1, or — with probability CrossFrac against a
// sharded server — a MULTI..EXEC group whose keys are forced onto at
// least two shards, guaranteeing the request exercises the 2PC path.
func buildRequest(cfg LoadConfig, rng *rand.Rand, zipf *rand.Zipf, shards int) [][][]byte {
	if shards > 1 && cfg.CrossFrac > 0 && rng.Float64() < cfg.CrossFrac {
		return buildCross(cfg, rng, zipf, shards)
	}
	if cfg.BatchSize <= 1 {
		return [][][]byte{buildOp(cfg, rng, zipf, false)}
	}
	noScan := shards > 1
	cmds := make([][][]byte, 0, cfg.BatchSize+2)
	cmds = append(cmds, [][]byte{[]byte("MULTI")})
	for i := 0; i < cfg.BatchSize; i++ {
		cmds = append(cmds, buildOp(cfg, rng, zipf, noScan))
	}
	cmds = append(cmds, [][]byte{[]byte("EXEC")})
	return cmds
}

// buildCross assembles one guaranteed-cross-shard MULTI..EXEC group of
// max(BatchSize, 2) ops: the first key is drawn normally, the second is
// redrawn until its home shard differs (bounded scan of the key space
// as a last resort — ShardOf is deterministic, so the generator can
// route without asking the server), and the rest are unconstrained.
func buildCross(cfg LoadConfig, rng *rand.Rand, zipf *rand.Zipf, shards int) [][][]byte {
	n := cfg.BatchSize
	if n < 2 {
		n = 2
	}
	k0 := pickKey(cfg, rng, zipf)
	home := shard.ShardOf(k0, shards)
	k1 := pickKey(cfg, rng, zipf)
	for tries := 0; shard.ShardOf(k1, shards) == home && tries < 64; tries++ {
		k1 = pickKey(cfg, rng, zipf)
	}
	for delta := uint64(1); shard.ShardOf(k1, shards) == home; delta++ {
		k1 = k0 + delta // deterministic fallback sweep over adjacent keys
	}
	cmds := make([][][]byte, 0, n+2)
	cmds = append(cmds, [][]byte{[]byte("MULTI")})
	cmds = append(cmds, buildOpKey(cfg, rng, k0, true))
	cmds = append(cmds, buildOpKey(cfg, rng, k1, true))
	for i := 2; i < n; i++ {
		cmds = append(cmds, buildOp(cfg, rng, zipf, true))
	}
	cmds = append(cmds, [][]byte{[]byte("EXEC")})
	return cmds
}

// issue sends one request (pipelined if it is a MULTI group) and
// reports whether every reply was non-error.
func issue(c *Client, cmds [][][]byte) (ok bool, err error) {
	reps, err := c.Pipeline(cmds)
	if err != nil {
		return false, err
	}
	for _, rep := range reps {
		if rep.Kind == ReplyErr {
			return false, nil
		}
	}
	return true, nil
}

// percentile reads the p-quantile from sorted (ascending) samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
