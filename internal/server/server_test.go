package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"uhtm/internal/core"
	"uhtm/internal/crash"
	"uhtm/internal/harness"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
)

// testGeometry shrinks the machine so transactions overflow the cache
// hierarchy (exercising logs and slow paths) and tests stay fast.
func testGeometry() *mem.Config {
	cfg := mem.DefaultConfig()
	cfg.L1Size = 8 * mem.LineSize
	cfg.L1Ways = 2
	cfg.LLCSize = 8 * mem.LineSize
	cfg.LLCWays = 4
	cfg.DRAMCacheSize = 64 * mem.LineSize
	cfg.DRAMCacheWays = 4
	return &cfg
}

// testOptions enables commit tracking so the committed-prefix oracle
// has ground truth.
func testOptions() *core.Options {
	o := core.DefaultOptions()
	o.Paranoid = false
	o.TrackCommits = true
	return &o
}

// startServer boots a small server on a random port and registers
// cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Geometry == nil {
		cfg.Geometry = testGeometry()
	}
	if cfg.Options == nil {
		cfg.Options = testOptions()
	}
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 64
	}
	s := New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialT(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// mustDo issues one command and fails the test on transport errors.
func mustDo(t *testing.T, c *Client, args ...string) Reply {
	t.Helper()
	rep, err := c.DoStrings(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return rep
}

// TestServeEndToEnd drives every command over a real TCP connection.
func TestServeEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)

	if rep := mustDo(t, c, "PING"); rep.Kind != ReplySimple || rep.Str != "PONG" {
		t.Fatalf("PING → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "5"); rep.Kind != ReplyBulk || !rep.Nil {
		t.Fatalf("GET missing key → %+v, want nil bulk", rep)
	}
	if rep := mustDo(t, c, "PUT", "5", "hello"); rep.Kind != ReplySimple || rep.Str != "OK" {
		t.Fatalf("PUT → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "5"); rep.Kind != ReplyBulk || string(rep.Bulk) != "hello" {
		t.Fatalf("GET → %+v, want hello", rep)
	}
	if rep := mustDo(t, c, "SET", "6", "world"); rep.Str != "OK" {
		t.Fatalf("SET → %+v", rep)
	}
	for _, k := range []string{"2", "9"} {
		mustDo(t, c, "PUT", k, "v"+k)
	}
	// SCAN from 2: keys 2,5,6,9 in order.
	rep := mustDo(t, c, "SCAN", "2", "10")
	if rep.Kind != ReplyArray || len(rep.Array) != 8 {
		t.Fatalf("SCAN → %+v, want 4 key,value pairs", rep)
	}
	wantKeys := []string{"2", "5", "6", "9"}
	for i, k := range wantKeys {
		if got := string(rep.Array[2*i].Bulk); got != k {
			t.Fatalf("SCAN key %d = %q, want %q", i, got, k)
		}
	}
	// SCAN respects count.
	if rep := mustDo(t, c, "SCAN", "2", "2"); len(rep.Array) != 4 {
		t.Fatalf("SCAN count 2 returned %d elements, want 4", len(rep.Array))
	}
	if rep := mustDo(t, c, "DEL", "5"); rep.Kind != ReplyInt || rep.Int != 1 {
		t.Fatalf("DEL existing → %+v", rep)
	}
	if rep := mustDo(t, c, "DEL", "5"); rep.Int != 0 {
		t.Fatalf("DEL missing → %+v", rep)
	}
	// Deleted key is filtered out of scans (stale index entries must
	// not leak).
	if rep := mustDo(t, c, "SCAN", "2", "10"); len(rep.Array) != 6 {
		t.Fatalf("SCAN after DEL returned %d elements, want 6", len(rep.Array))
	}

	// MULTI..EXEC: one durable transaction, per-op replies in order.
	mustDo(t, c, "MULTI")
	if rep := mustDo(t, c, "PUT", "100", "batched"); rep.Str != "QUEUED" {
		t.Fatalf("queued PUT → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "100"); rep.Str != "QUEUED" {
		t.Fatalf("queued GET → %+v", rep)
	}
	if rep := mustDo(t, c, "STATS"); rep.Kind != ReplyErr {
		t.Fatalf("STATS inside MULTI → %+v, want error", rep)
	}
	rep = mustDo(t, c, "EXEC")
	if rep.Kind != ReplyArray || len(rep.Array) != 2 {
		t.Fatalf("EXEC → %+v", rep)
	}
	if rep.Array[0].Str != "OK" || string(rep.Array[1].Bulk) != "batched" {
		t.Fatalf("EXEC replies = %+v: queued GET must see the queued PUT", rep.Array)
	}

	// DISCARD drops the queue.
	mustDo(t, c, "MULTI")
	mustDo(t, c, "PUT", "200", "dropped")
	mustDo(t, c, "DISCARD")
	if rep := mustDo(t, c, "GET", "200"); !rep.Nil {
		t.Fatalf("GET after DISCARD → %+v, want nil", rep)
	}
	// A parse error inside MULTI poisons the batch.
	mustDo(t, c, "MULTI")
	if rep := mustDo(t, c, "PUT", "notakey", "x"); rep.Kind != ReplyErr {
		t.Fatalf("bad queued PUT → %+v", rep)
	}
	mustDo(t, c, "PUT", "201", "fine")
	if rep := mustDo(t, c, "EXEC"); rep.Kind != ReplyErr || !strings.Contains(rep.Str, "EXECABORT") {
		t.Fatalf("EXEC after poisoned queue → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "201"); !rep.Nil {
		t.Fatalf("poisoned batch still committed: %+v", rep)
	}

	// Error isolation: bad commands answer -ERR and the connection
	// keeps working.
	if rep := mustDo(t, c, "NOSUCH"); rep.Kind != ReplyErr {
		t.Fatalf("unknown command → %+v", rep)
	}
	if rep := mustDo(t, c, "GET"); rep.Kind != ReplyErr {
		t.Fatalf("GET with no key → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "xyz"); rep.Kind != ReplyErr {
		t.Fatalf("GET with non-numeric key → %+v", rep)
	}
	if rep := mustDo(t, c, "PING"); rep.Str != "PONG" {
		t.Fatalf("connection dead after errors: %+v", rep)
	}

	// STATS returns a JSON document with both halves.
	rep = mustDo(t, c, "STATS")
	if rep.Kind != ReplyBulk {
		t.Fatalf("STATS → %+v", rep)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rep.Bulk, &doc); err != nil {
		t.Fatalf("STATS is not JSON: %v\n%s", err, rep.Bulk)
	}
	for _, k := range []string{"server", "machine"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("STATS lacks %q:\n%s", k, rep.Bulk)
		}
	}
	if rep := mustDo(t, c, "QUIT"); rep.Str != "OK" {
		t.Fatalf("QUIT → %+v", rep)
	}
}

// TestInlineOverWire drives the nc-style inline form through a raw
// connection.
func TestInlineOverWire(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	c.w.WriteString("PUT 3 inlineval\r\nGET 3\r\n\r\nPING\r\n")
	c.w.Flush()
	if rep, err := ReadReply(c.r); err != nil || rep.Str != "OK" {
		t.Fatalf("inline PUT → %+v, %v", rep, err)
	}
	if rep, err := ReadReply(c.r); err != nil || string(rep.Bulk) != "inlineval" {
		t.Fatalf("inline GET → %+v, %v", rep, err)
	}
	// The blank line was skipped; PING answers next.
	if rep, err := ReadReply(c.r); err != nil || rep.Str != "PONG" {
		t.Fatalf("PING after blank line → %+v, %v", rep, err)
	}
}

// TestConcurrentClients hammers the server from several connections and
// checks every acked write is readable.
func TestConcurrentClients(t *testing.T) {
	s := startServer(t, Config{Cores: 4})
	const conns, perConn = 4, 25
	errCh := make(chan error, conns)
	for w := 0; w < conns; w++ {
		go func(w int) {
			c, err := Dial(s.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perConn; i++ {
				key := strconv.Itoa(1000*w + i)
				val := fmt.Sprintf("w%d-%d", w, i)
				if rep, err := c.DoStrings("PUT", key, val); err != nil || rep.Str != "OK" {
					errCh <- fmt.Errorf("PUT %s: %+v %v", key, rep, err)
					return
				}
				if rep, err := c.DoStrings("GET", key); err != nil || string(rep.Bulk) != val {
					errCh <- fmt.Errorf("GET %s: %+v %v", key, rep, err)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < conns; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// serverOps is a deterministic op sequence shared by the equivalence
// test's two paths.
func serverOps() []Op {
	var ops []Op
	for i := 0; i < 40; i++ {
		k := uint64(i%13 + 1)
		switch i % 5 {
		case 0, 1, 3:
			val := bytes.Repeat([]byte{byte('a' + i%26)}, 24+i%40)
			ops = append(ops, Op{Kind: OpPut, Key: k, Val: val})
		case 2:
			ops = append(ops, Op{Kind: OpGet, Key: k})
		case 4:
			ops = append(ops, Op{Kind: OpDel, Key: k})
		}
	}
	return ops
}

// TestServerPathMatchesOneShotPath is the regression for the central
// refactor: the same op sequence produces a byte-identical durable NVM
// data image whether it is applied through the long-lived server (TCP,
// sessions, recycled threads, one request per op) or through the
// one-shot harness path (fresh engine, one run, one transaction per
// op). If session recycling or the server batching path ever perturbs
// allocation order or commit content, the images diverge.
func TestServerPathMatchesOneShotPath(t *testing.T) {
	ops := serverOps()

	// Path A: over the wire through a live server, one request per op.
	s := startServer(t, Config{Cores: 2, Buckets: 64})
	c := dialT(t, s)
	for _, op := range ops {
		key := strconv.FormatUint(op.Key, 10)
		var err error
		switch op.Kind {
		case OpPut:
			_, err = c.Do([]byte("PUT"), []byte(key), op.Val)
		case OpGet:
			_, err = c.Do([]byte("GET"), []byte(key))
		case OpDel:
			_, err = c.Do([]byte("DEL"), []byte(key))
		}
		if err != nil {
			t.Fatalf("op %v over wire: %v", op.Kind, err)
		}
	}
	c.Close()
	s.Close() // graceful: drains and checkpoints
	imgServer := crash.Baseline(s.Machine())

	// Path B: the one-shot harness path — fresh engine, one Run, same
	// ops as individual transactions on one thread.
	results := harness.Execute([]harness.Spec[map[mem.Addr]mem.Line]{{
		Experiment: "equivalence", System: "uhtm", Bench: "server-ops", Seed: 42,
		Run: func() map[mem.Addr]mem.Line {
			eng := sim.NewEngine(42)
			m := core.NewMachine(eng, *testGeometry(), *testOptions())
			st := NewStore(m, 64)
			eng.Spawn("oneshot", func(th *sim.Thread) {
				ctx := m.NewCtx(th, 0)
				for _, op := range ops {
					st.Apply(ctx, []Op{op})
				}
			})
			eng.Run()
			m.ReclaimLogs()
			return crash.Baseline(m)
		},
	}}, 1)
	imgOneShot := results[0]

	if len(imgServer) != len(imgOneShot) {
		t.Fatalf("durable image sizes differ: server %d lines, one-shot %d", len(imgServer), len(imgOneShot))
	}
	for a, l := range imgOneShot {
		if imgServer[a] != l {
			t.Fatalf("line %#x differs: server %x, one-shot %x", uint64(a), imgServer[a], l)
		}
	}
}

// TestCrashCommandRecovery drives traffic, fires the CRASH command
// mid-run, and verifies the recovered durable image with the
// committed-prefix oracle plus read-your-acked-writes.
func TestCrashCommandRecovery(t *testing.T) {
	s := startServer(t, Config{Cores: 2, Buckets: 64, Prepopulate: 8})
	baseline := crash.Baseline(s.Machine())
	c := dialT(t, s)

	acked := map[uint64]string{}
	for i := 0; i < 30; i++ {
		k := uint64(i%11 + 1)
		v := fmt.Sprintf("pre-crash-%d", i)
		if rep := mustDo(t, c, "PUT", strconv.FormatUint(k, 10), v); rep.Str != "OK" {
			t.Fatalf("PUT → %+v", rep)
		}
		acked[k] = v
	}
	if rep := mustDo(t, c, "CRASH"); rep.Str != "OK" {
		t.Fatalf("CRASH → %+v", rep)
	}
	// The machine crashed and recovered; the reply ordering guarantees
	// the recovery finished before we inspect.
	if detail := crash.VerifyRecovered(s.Machine(), 2, baseline); detail != "" {
		t.Fatalf("committed-prefix oracle: %s", detail)
	}
	// Acked writes survived (durability of acknowledged commits).
	for k, v := range acked {
		rep := mustDo(t, c, "GET", strconv.FormatUint(k, 10))
		if string(rep.Bulk) != v {
			t.Fatalf("key %d after recovery = %q, want %q", k, rep.Bulk, v)
		}
	}
	// The drill's measured recovery pass is surfaced by STATS: the logs
	// were scanned and the pre-crash commits replayed.
	var doc struct {
		Server struct {
			Crashes         uint64 `json:"crashes"`
			RecoveryScanned int    `json:"recovery_scanned"`
			RecoveryApplied int    `json:"recovery_applied"`
			RecoveryPS      int64  `json:"recovery_ps"`
		} `json:"server"`
	}
	if rep := mustDo(t, c, "STATS"); json.Unmarshal(rep.Bulk, &doc) != nil {
		t.Fatalf("STATS is not JSON:\n%s", rep.Bulk)
	}
	if doc.Server.Crashes != 1 || doc.Server.RecoveryScanned == 0 ||
		doc.Server.RecoveryApplied == 0 || doc.Server.RecoveryPS == 0 {
		t.Errorf("STATS after drill = %+v, want crashes=1 and a non-zero recovery pass", doc.Server)
	}
	// Prepopulated keys the run never overwrote are intact, and the
	// rebuilt index still serves ordered scans.
	rep := mustDo(t, c, "SCAN", "1", "100")
	if rep.Kind != ReplyArray || len(rep.Array) == 0 {
		t.Fatalf("SCAN after recovery → %+v", rep)
	}
	var prev uint64
	for i := 0; i < len(rep.Array); i += 2 {
		k, err := strconv.ParseUint(string(rep.Array[i].Bulk), 10, 64)
		if err != nil || k <= prev {
			t.Fatalf("SCAN order broken after recovery at element %d (%q)", i, rep.Array[i].Bulk)
		}
		prev = k
	}
	// And the server still takes writes.
	if rep := mustDo(t, c, "PUT", "999", "post-crash"); rep.Str != "OK" {
		t.Fatalf("PUT after recovery → %+v", rep)
	}
}

// TestHaltMidBatchRecovery injects a power failure that lands inside a
// serving batch (HaltAt on virtual time): in-flight requests answer
// with an error, the machine recovers, the oracle holds, and serving
// resumes — the kill-and-restart path without the courtesy of a batch
// boundary.
func TestHaltMidBatchRecovery(t *testing.T) {
	s := New(Config{Cores: 2, Buckets: 64, Geometry: testGeometry(), Options: testOptions()})
	baseline := crash.Baseline(s.Machine())
	// Halt deep inside the traffic below (virtual time accumulates per
	// transaction, so a few dozen PUTs pass 1µs of simulated time).
	s.Engine().HaltAt(1 * sim.Microsecond)
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer s.Close()
	c := dialT(t, s)

	sawPowerLoss := false
	for i := 0; i < 400; i++ {
		rep, err := c.DoStrings("PUT", strconv.Itoa(i%17+1), fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatalf("PUT %d transport error: %v", i, err)
		}
		if rep.Kind == ReplyErr {
			if !strings.Contains(rep.Str, "lost power") {
				t.Fatalf("PUT %d unexpected error: %+v", i, rep)
			}
			sawPowerLoss = true
			break
		}
	}
	if !sawPowerLoss {
		t.Fatal("the injected halt never surfaced as a lost-power error")
	}
	if detail := crash.VerifyRecovered(s.Machine(), 2, baseline); detail != "" {
		t.Fatalf("committed-prefix oracle after mid-batch halt: %s", detail)
	}
	// Service resumed.
	if rep := mustDo(t, c, "PUT", "888", "after-halt"); rep.Str != "OK" {
		t.Fatalf("PUT after halt recovery → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", "888"); string(rep.Bulk) != "after-halt" {
		t.Fatalf("GET after halt recovery → %+v", rep)
	}
}

// TestGracefulShutdownCheckpoints: Close must leave a durable image
// that recovers with zero replay work — the final WAL checkpoint
// covered everything.
func TestGracefulShutdownCheckpoints(t *testing.T) {
	s := startServer(t, Config{Cores: 2, Buckets: 64})
	c := dialT(t, s)
	for i := 1; i <= 20; i++ {
		mustDo(t, c, "PUT", strconv.Itoa(i), "shutdown-test")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m := s.Machine()
	m.Crash()
	replay := m.Recover()
	if replay.AppliedLines != 0 {
		t.Fatalf("recovery after graceful shutdown replayed %d lines, want 0 (checkpoint must cover all commits)", replay.AppliedLines)
	}
	// The data really is in the durable image.
	got, ok := s.KV().Table().Get(m.Store(), 20)
	if !ok || string(got) != "shutdown-test" {
		t.Fatalf("durable table after shutdown: %q, %v", got, ok)
	}
}

// TestLoadgenSmoke runs the open-loop generator briefly against a live
// server and sanity-checks the report and its JSONL form.
func TestLoadgenSmoke(t *testing.T) {
	s := startServer(t, Config{Cores: 4, Prepopulate: 64})
	var out bytes.Buffer
	rep, err := RunLoad(LoadConfig{
		Addr:     s.Addr().String(),
		Conns:    2,
		QPS:      400,
		Duration: 300 * time.Millisecond,
		KeySpace: 64,
		ReadFrac: 0.5,
		Out:      &out,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Commits == 0 {
		t.Fatal("loadgen drove no commits through the machine")
	}
	if rep.P50us <= 0 || rep.P99us < rep.P50us || rep.P999us < rep.P99us {
		t.Fatalf("percentiles not monotone: %+v", rep)
	}
	line := out.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("Out got %q, want exactly one JSON line", line)
	}
	var back LoadReport
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("report line is not JSON: %v", err)
	}
	if back.Kind != "loadgen" || back.Requests != rep.Requests {
		t.Fatalf("round-tripped report %+v != %+v", back, rep)
	}
}

// TestLoadgenBatchedAndCrash runs MULTI-batched load concurrently with
// a CRASH, proving the wire-level recovery drill works under load.
func TestLoadgenBatchedAndCrash(t *testing.T) {
	s := startServer(t, Config{Cores: 4, Prepopulate: 32})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := Dial(s.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		time.Sleep(50 * time.Millisecond)
		c.DoStrings("CRASH")
	}()
	rep, err := RunLoad(LoadConfig{
		Addr:      s.Addr().String(),
		Conns:     2,
		QPS:       300,
		Duration:  250 * time.Millisecond,
		KeySpace:  32,
		BatchSize: 3,
		ReadFrac:  0.5,
	})
	<-done
	if err != nil {
		t.Fatalf("RunLoad with concurrent CRASH: %v", err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed around the crash")
	}
	// The store still serves coherent data.
	c := dialT(t, s)
	if rep := mustDo(t, c, "PUT", "77", "post"); rep.Str != "OK" {
		t.Fatalf("PUT after crash-under-load → %+v", rep)
	}
}
