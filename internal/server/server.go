package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"uhtm/internal/core"
	"uhtm/internal/harness"
	"uhtm/internal/mem"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// Config parameterizes one server.
type Config struct {
	// Addr is the TCP listen address; ":0" picks a free port.
	Addr string
	// Cores bounds how many requests execute concurrently as simulated
	// threads in one engine batch (the machine's core count). Default 4.
	Cores int
	// Buckets sizes the NVM hash table. Default 1<<15.
	Buckets int
	// Seed seeds the engine's deterministic RNG. Default 42.
	Seed int64
	// Prepopulate inserts keys 1..Prepopulate before serving.
	Prepopulate int
	// PrepopValueSize sizes prepopulated values (default 64).
	PrepopValueSize int
	// Geometry overrides the Table III machine configuration (tests use
	// a shrunken hierarchy). Cores is always taken from Config.Cores.
	Geometry *mem.Config
	// Options overrides the machine's HTM options (default:
	// core.DefaultOptions with Paranoid off — the server is a service,
	// not a test vehicle).
	Options *core.Options
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 15
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.PrepopValueSize <= 0 {
		c.PrepopValueSize = 64
	}
	return c
}

// reqKind discriminates engine-loop requests.
type reqKind int

const (
	reqOps   reqKind = iota // execute ops as one durable transaction
	reqStats                // marshal server+machine counters
	reqCrash                // simulated power failure + recovery
)

// request is one unit of work funneled to the engine loop. The loop
// fills results/statsJSON/err and closes done.
type request struct {
	kind      reqKind
	ops       []Op
	results   []OpResult
	applied   bool
	statsJSON []byte
	err       error
	done      chan struct{}
}

// errLostPower is the per-request error for work in flight when a
// simulated power failure struck.
var errLostPower = errors.New("server lost power mid-request; state recovered, retry")

// errShuttingDown rejects work submitted after shutdown began.
var errShuttingDown = errors.New("server shutting down")

// Server owns the long-lived simulated machine and serves the wire
// protocol on a TCP listener. All simulation state (engine, machine,
// store) is owned exclusively by the engine-loop goroutine; connection
// handlers communicate with it only through requests, so the engine
// stays the single-threaded world sim.Engine requires.
type Server struct {
	cfg   Config
	eng   *sim.Engine
	m     *core.Machine
	sess  *harness.Session
	store *Store

	ln        net.Listener
	reqCh     chan *request
	closing   chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	start time.Time

	// Engine-loop-owned counters (reported by STATS).
	batches  uint64
	requests uint64
	crashes  uint64
}

// New builds the simulated machine and durable store (prepopulated if
// configured) without listening yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	mc := mem.DefaultConfig()
	if cfg.Geometry != nil {
		mc = *cfg.Geometry
	}
	mc.Cores = cfg.Cores
	opts := core.DefaultOptions()
	opts.Paranoid = false
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	eng := sim.NewEngine(cfg.Seed)
	m := core.NewMachine(eng, mc, opts)
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		m:        m,
		sess:     harness.NewSession(eng),
		store:    NewStore(m, cfg.Buckets),
		reqCh:    make(chan *request, 4*cfg.Cores),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.Prepopulate > 0 {
		s.store.Prepopulate(cfg.Prepopulate, cfg.PrepopValueSize)
	}
	return s
}

// Machine exposes the underlying machine (tests, recovery checks).
// Callers must not touch it while the server is listening — the engine
// loop owns it.
func (s *Server) Machine() *core.Machine { return s.m }

// KV exposes the durable store (tests). Same ownership caveat as
// Machine.
func (s *Server) KV() *Store { return s.store }

// Engine exposes the engine (tests: halt injection before Listen).
// Same ownership caveat as Machine.
func (s *Server) Engine() *sim.Engine { return s.eng }

// Listen binds the configured address and starts serving. It returns
// once the listener is live; Addr then reports the bound address.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.start = time.Now()
	go s.engineLoop()
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down gracefully: stop accepting, sever
// connections (requests already submitted still complete), drain the
// request queue, and run a final log-reclamation pass so the durable
// image carries a fresh WAL checkpoint. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		if s.ln != nil {
			s.closeErr = s.ln.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.reqCh)
		if s.ln != nil {
			<-s.loopDone
		}
	})
	return s.closeErr
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal accept error
		}
		s.connMu.Lock()
		select {
		case <-s.closing:
			s.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		go s.handleConn(conn)
	}
}

// engineLoop is the single goroutine that drives the simulation: it
// gathers pending requests into batches of at most Cores, runs each
// batch as one engine run (one simulated thread per request), and
// completes the requests. It exits when the request channel closes,
// after a final reclamation pass (the shutdown WAL checkpoint).
func (s *Server) engineLoop() {
	defer close(s.loopDone)
	for req := range s.reqCh {
		switch req.kind {
		case reqStats:
			req.statsJSON = s.statsJSON()
			close(req.done)
		case reqCrash:
			s.powerFail()
			close(req.done)
		case reqOps:
			batch := s.gather(req)
			s.runBatch(batch)
		}
	}
	// Shutdown: persist committed images in place and checkpoint the
	// redo logs, so a post-shutdown image recovers instantly.
	s.m.ReclaimLogs()
}

// gather collects additional ready ops requests (without blocking)
// until the batch fills the machine's cores. Non-ops requests stop the
// gather — they need the machine quiescent — and are pushed back via
// immediate handling after the batch by re-queueing on a goroutine.
func (s *Server) gather(first *request) []*request {
	batch := []*request{first}
	for len(batch) < s.cfg.Cores {
		select {
		case r, ok := <-s.reqCh:
			if !ok {
				return batch
			}
			if r.kind != reqOps {
				// Handle after this batch: requeue without blocking the
				// loop (the channel may be full of ops requests).
				go func() {
					select {
					case s.reqCh <- r:
					case <-s.closing:
						r.err = errShuttingDown
						close(r.done)
					}
				}()
				return batch
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// runBatch executes one batch: each request's ops become one durable
// transaction on its own simulated thread (all in conflict domain 0 —
// one store, one application). On an injected power failure the batch's
// unapplied requests fail with errLostPower and the machine recovers
// before the next batch.
func (s *Server) runBatch(batch []*request) {
	bodies := make([]func(*sim.Thread), len(batch))
	for i, r := range batch {
		r := r
		bodies[i] = func(th *sim.Thread) {
			c := s.m.NewCtx(th, 0)
			r.results = s.store.Apply(c, r.ops)
			r.applied = true
		}
	}
	s.batches++
	s.requests += uint64(len(batch))
	_, halted := s.sess.Do("serve", bodies...)
	if halted {
		// A crashpoint hook fired mid-batch (test-injected power
		// failure). Recover the machine, then fail what was lost.
		s.recoverAfterHalt()
		for _, r := range batch {
			if !r.applied {
				r.err = errLostPower
			}
		}
	}
	for _, r := range batch {
		close(r.done)
	}
}

// powerFail models an operator-triggered power failure (the CRASH
// command): volatile state is lost, the redo logs replay, the DRAM
// index is rebuilt. Runs between batches, so no request is in flight.
func (s *Server) powerFail() {
	s.crashes++
	s.m.Crash()
	s.m.Recover()
	s.store.Recover()
}

// recoverAfterHalt is powerFail for a failure that struck mid-batch:
// the engine halted, so the session must also restart.
func (s *Server) recoverAfterHalt() {
	s.powerFail()
	s.sess.Restart()
}

// statsJSON marshals the STATS reply.
func (s *Server) statsJSON() []byte {
	ms := *s.m.Stats()
	ms.Elapsed = s.eng.Now()
	doc := struct {
		Server  serverStats  `json:"server"`
		Machine *stats.Stats `json:"machine"`
	}{
		Server: serverStats{
			UptimeS:  time.Since(s.start).Seconds(),
			VirtualS: s.eng.Now().Seconds(),
			Batches:  s.batches,
			Requests: s.requests,
			Crashes:  s.crashes,
			Keys:     s.store.table.Len(s.m.Store()),
		},
		Machine: &ms,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err))
	}
	return b
}

// serverStats is the server half of the STATS document (the machine
// half is the stats.Stats JSON shared with the experiment records).
type serverStats struct {
	UptimeS  float64 `json:"uptime_s"`
	VirtualS float64 `json:"virtual_s"`
	Batches  uint64  `json:"batches"`
	Requests uint64  `json:"requests"`
	Crashes  uint64  `json:"crashes"`
	Keys     int     `json:"keys"`
}

// submit hands one request to the engine loop and waits for it.
func (s *Server) submit(req *request) error {
	req.done = make(chan struct{})
	select {
	case s.reqCh <- req:
	case <-s.closing:
		return errShuttingDown
	}
	<-req.done
	return req.err
}

// submitOps executes ops as one durable transaction.
func (s *Server) submitOps(ops []Op) ([]OpResult, error) {
	req := &request{kind: reqOps, ops: ops}
	if err := s.submit(req); err != nil {
		return nil, err
	}
	return req.results, nil
}

// maxScanCount caps one SCAN's result size.
const maxScanCount = 10000

// connState is the per-connection protocol state: the MULTI queue.
type connState struct {
	inMulti  bool
	queued   []Op
	multiErr bool // a queued command failed to parse; EXEC must refuse
}

// handleConn runs one connection's request loop. Errors are isolated
// to the connection: parse errors get -ERR replies (framing errors
// additionally close the connection, since the stream position is
// lost), and a panic in command handling closes this connection only.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		recover() // isolate: a handler bug kills the connection, not the server
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	st := &connState{}
	for {
		argv, err := ReadRequest(r)
		if err != nil {
			if IsProtocolError(err) {
				WriteReply(w, Errf("%v", err))
				w.Flush()
			}
			return // io error (client gone, shutdown) or unsyncable stream
		}
		if len(argv) == 0 {
			continue // blank inline line
		}
		rep, quit := s.dispatch(st, argv)
		if err := WriteReply(w, rep); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command against the connection state,
// returning the reply and whether the connection should close.
func (s *Server) dispatch(st *connState, argv [][]byte) (rep Reply, quit bool) {
	name := strings.ToUpper(string(argv[0]))
	cmd, ok := lookupCommand(name)
	if !ok {
		return Errf("unknown command %q (see SERVING.md)", name), false
	}
	if st.inMulti && !cmd.InMulti {
		switch name {
		case "EXEC", "DISCARD", "QUIT":
			// control commands allowed below
		default:
			return Errf("%s is not allowed inside MULTI", name), false
		}
	}
	switch name {
	case "PING":
		return Reply{Kind: ReplySimple, Str: "PONG"}, false
	case "QUIT":
		return OK(), true
	case "MULTI":
		if st.inMulti {
			return Errf("MULTI calls can not be nested"), false
		}
		st.inMulti, st.queued, st.multiErr = true, nil, false
		return OK(), false
	case "DISCARD":
		if !st.inMulti {
			return Errf("DISCARD without MULTI"), false
		}
		st.inMulti, st.queued, st.multiErr = false, nil, false
		return OK(), false
	case "EXEC":
		if !st.inMulti {
			return Errf("EXEC without MULTI"), false
		}
		ops := st.queued
		bad := st.multiErr
		st.inMulti, st.queued, st.multiErr = false, nil, false
		if bad {
			return Errf("EXECABORT transaction discarded because of previous errors"), false
		}
		results, err := s.submitOps(ops)
		if err != nil {
			return Errf("%v", err), false
		}
		out := Reply{Kind: ReplyArray, Array: make([]Reply, len(ops))}
		for i, op := range ops {
			out.Array[i] = opReply(op, results[i])
		}
		return out, false
	case "STATS":
		req := &request{kind: reqStats}
		if err := s.submit(req); err != nil {
			return Errf("%v", err), false
		}
		return BulkString(req.statsJSON), false
	case "CRASH":
		req := &request{kind: reqCrash}
		if err := s.submit(req); err != nil {
			return Errf("%v", err), false
		}
		return OK(), false
	default: // the data ops: GET PUT SET DEL SCAN
		op, err := parseOp(name, argv)
		if err != nil {
			if st.inMulti {
				st.multiErr = true
			}
			return Errf("%v", err), false
		}
		if st.inMulti {
			st.queued = append(st.queued, op)
			return Reply{Kind: ReplySimple, Str: "QUEUED"}, false
		}
		results, err := s.submitOps([]Op{op})
		if err != nil {
			return Errf("%v", err), false
		}
		return opReply(op, results[0]), false
	}
}

// parseOp builds the store op for one data command.
func parseOp(name string, argv [][]byte) (Op, error) {
	switch name {
	case "GET", "DEL":
		if len(argv) != 2 {
			return Op{}, fmt.Errorf("wrong number of arguments for %s (want: %s key)", name, name)
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		kind := OpGet
		if name == "DEL" {
			kind = OpDel
		}
		return Op{Kind: kind, Key: k}, nil
	case "PUT", "SET":
		if len(argv) != 3 {
			return Op{}, fmt.Errorf("wrong number of arguments for %s (want: %s key value)", name, name)
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		if len(argv[2]) > MaxBulk {
			return Op{}, fmt.Errorf("value exceeds %d bytes", MaxBulk)
		}
		// Copy: argv aliases the read buffer only within one request,
		// but ops outlive the dispatch (MULTI queues, engine batches).
		v := append([]byte(nil), argv[2]...)
		return Op{Kind: OpPut, Key: k, Val: v}, nil
	case "SCAN":
		if len(argv) != 3 {
			return Op{}, fmt.Errorf("wrong number of arguments for SCAN (want: SCAN start count)")
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		n, err := strconv.Atoi(string(argv[2]))
		if err != nil || n <= 0 {
			return Op{}, fmt.Errorf("SCAN count %q is not a positive integer", argv[2])
		}
		if n > maxScanCount {
			n = maxScanCount
		}
		return Op{Kind: OpScan, Key: k, N: n}, nil
	default:
		return Op{}, fmt.Errorf("unknown data command %q", name)
	}
}

// opReply renders one op's result as its wire reply.
func opReply(op Op, res OpResult) Reply {
	switch op.Kind {
	case OpGet:
		if !res.Found {
			return BulkString(nil)
		}
		return BulkString(res.Val)
	case OpPut:
		return OK()
	case OpDel:
		if res.Found {
			return Int(1)
		}
		return Int(0)
	case OpScan:
		out := Reply{Kind: ReplyArray, Array: make([]Reply, 0, 2*len(res.Keys))}
		for i, k := range res.Keys {
			out.Array = append(out.Array,
				BulkString([]byte(strconv.FormatUint(k, 10))),
				BulkString(res.Vals[i]))
		}
		return out
	default:
		return Errf("unrenderable op %v", op.Kind)
	}
}

// Dial is a minimal protocol client used by the load generator, the
// CLI and tests: one connection, synchronous request/reply.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Do sends one command (RESP-framed) and reads its reply.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	if err := WriteRequest(c.w, args); err != nil {
		return Reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Reply{}, err
	}
	return ReadReply(c.r)
}

// DoStrings is Do with string arguments.
func (c *Client) DoStrings(args ...string) (Reply, error) {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Do(bs...)
}

// Pipeline sends several commands before reading any reply — one
// network round trip for the whole group. It returns one reply per
// command.
func (c *Client) Pipeline(cmds [][][]byte) ([]Reply, error) {
	for _, argv := range cmds {
		if err := WriteRequest(c.w, argv); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]Reply, 0, len(cmds))
	for range cmds {
		rep, err := ReadReply(c.r)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
