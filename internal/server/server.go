package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/shard"
	"uhtm/internal/sim"
	"uhtm/internal/stats"
)

// Config parameterizes one server.
type Config struct {
	// Addr is the TCP listen address; ":0" picks a free port.
	Addr string
	// Cores bounds how many requests execute concurrently as simulated
	// threads in one engine batch per shard (each machine's core
	// count). Default 4.
	Cores int
	// Shards partitions the key space across this many engine+machine
	// shards (shard.ShardOf key hashing). 1 — the default — serves the
	// single-machine fast path, bit-identical to a pre-sharding server;
	// N > 1 routes MULTI…EXEC batches that straddle shards through the
	// cross-shard 2PC coordinator.
	Shards int
	// Buckets sizes the NVM hash table. Default 1<<15.
	Buckets int
	// Seed seeds the engine's deterministic RNG. Default 42.
	Seed int64
	// Prepopulate inserts keys 1..Prepopulate before serving.
	Prepopulate int
	// PrepopValueSize sizes prepopulated values (default 64).
	PrepopValueSize int
	// Geometry overrides the Table III machine configuration (tests use
	// a shrunken hierarchy). Cores is always taken from Config.Cores.
	Geometry *mem.Config
	// Options overrides the machine's HTM options (default:
	// core.DefaultOptions with Paranoid off — the server is a service,
	// not a test vehicle).
	Options *core.Options
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 15
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.PrepopValueSize <= 0 {
		c.PrepopValueSize = 64
	}
	return c
}

// reqKind discriminates engine-loop requests.
type reqKind int

const (
	reqOps     reqKind = iota // single-shard ops as one durable transaction
	reqCross                  // multi-shard ops through the 2PC coordinator
	reqScanAll                // SCAN broadcast across every shard, merged
	reqStats                  // marshal server+machine counters
	reqCrash                  // simulated cluster power failure + recovery
)

// request is one unit of work funneled to the engine loop. The loop
// fills results/statsJSON/err and closes done.
type request struct {
	kind      reqKind
	shard     int // reqOps: home shard of every op
	ops       []Op
	results   []OpResult
	applied   bool
	statsJSON []byte
	err       error
	done      chan struct{}
}

// errLostPower is the per-request error for work in flight when a
// simulated power failure struck.
var errLostPower = errors.New("server lost power mid-request; state recovered, retry")

// errShuttingDown rejects work submitted after shutdown began.
var errShuttingDown = errors.New("server shutting down")

// Server owns a long-lived simulated cluster — one engine+machine
// shard by default, N key-hashed shards when Config.Shards > 1 — and
// serves the wire protocol on a TCP listener. All simulation state
// (engines, machines, stores, the 2PC coordinator) is owned exclusively
// by the engine-loop goroutine; connection handlers communicate with it
// only through requests, so every engine stays the single-threaded
// world sim.Engine requires (shard fan-out inside a wave goes through
// the harness worker pool, one shard per OS thread, never two threads
// in one shard).
type Server struct {
	cfg     Config
	cluster *shard.Cluster
	shards  []*shard.Shard
	stores  []*Store

	ln        net.Listener
	reqCh     chan *request
	closing   chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	start time.Time

	// Engine-loop-owned counters (reported by STATS).
	batches  uint64
	requests uint64
	crashes  uint64

	// Last CRASH drill's recovery summary, summed over the shards
	// (reported by STATS; zero until the first drill).
	recScanned int
	recApplied int
	recPS      sim.Time
}

// New builds the simulated cluster and its durable per-shard stores
// (prepopulated if configured) without listening yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	opts := core.DefaultOptions()
	opts.Paranoid = false
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	cl := shard.NewServing(shard.Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.Cores,
		Seed:          cfg.Seed,
		Opts:          opts,
		Geom:          cfg.Geometry,
	})
	s := &Server{
		cfg:      cfg,
		cluster:  cl,
		shards:   cl.Shards(),
		reqCh:    make(chan *request, 4*cfg.Cores*cfg.Shards),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, sh := range s.shards {
		s.stores = append(s.stores, NewStore(sh.Machine(), cfg.Buckets))
	}
	if cfg.Prepopulate > 0 {
		s.prepopulate()
	}
	return s
}

// prepopulate inserts keys 1..Prepopulate, each on its home shard, and
// persists every shard's formatted image. With one shard this is
// exactly Store.Prepopulate.
func (s *Server) prepopulate() {
	if len(s.shards) == 1 {
		s.stores[0].Prepopulate(s.cfg.Prepopulate, s.cfg.PrepopValueSize)
		return
	}
	for k := 1; k <= s.cfg.Prepopulate; k++ {
		s.stores[shard.ShardOf(uint64(k), len(s.shards))].PrepopulateOne(uint64(k), s.cfg.PrepopValueSize)
	}
	for _, st := range s.stores {
		st.m.Store().PersistLiveNVM()
	}
}

// Machine exposes shard 0's machine (tests, recovery checks; with one
// shard, the machine). Callers must not touch it while the server is
// listening — the engine loop owns it.
func (s *Server) Machine() *core.Machine { return s.shards[0].Machine() }

// KV exposes shard 0's durable store (tests). Same ownership caveat as
// Machine.
func (s *Server) KV() *Store { return s.stores[0] }

// Engine exposes shard 0's engine (tests: halt injection before
// Listen). Same ownership caveat as Machine.
func (s *Server) Engine() *sim.Engine { return s.shards[0].Engine() }

// Cluster exposes the shard cluster (tests: per-shard baselines, hook
// installation before Listen). Same ownership caveat as Machine.
func (s *Server) Cluster() *shard.Cluster { return s.cluster }

// Listen binds the configured address and starts serving. It returns
// once the listener is live; Addr then reports the bound address.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.start = time.Now()
	go s.engineLoop()
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down gracefully: stop accepting, sever
// connections (requests already submitted still complete), drain the
// request queue, and run a final log-reclamation pass so the durable
// image carries a fresh WAL checkpoint. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		if s.ln != nil {
			s.closeErr = s.ln.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.reqCh)
		if s.ln != nil {
			<-s.loopDone
		}
	})
	return s.closeErr
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal accept error
		}
		s.connMu.Lock()
		select {
		case <-s.closing:
			s.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		go s.handleConn(conn)
	}
}

// engineLoop is the single goroutine that drives the simulation. It
// keeps a loop-local FIFO of accepted requests: the channel is drained
// without blocking into the queue, then the queue's head decides the
// step — a per-shard wave of single-shard batches, or one quiescent
// request (STATS, CRASH, cross-shard EXEC, cluster SCAN) alone. Nothing
// is ever re-sent on the public channel, so shutdown cannot race a
// pushback against the channel close (the old requeue-goroutine bug).
// The loop exits when the channel closes and the queue is empty, after
// a final reclamation pass on every shard (the shutdown WAL
// checkpoint).
func (s *Server) engineLoop() {
	defer close(s.loopDone)
	var pending []*request
	open := true
	for open || len(pending) > 0 {
		if len(pending) == 0 {
			r, ok := <-s.reqCh
			if !ok {
				break
			}
			pending = append(pending, r)
		}
		if open {
		drain:
			for {
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						open = false
						break drain
					}
					pending = append(pending, r)
				default:
					break drain
				}
			}
		}
		pending = s.step(pending)
	}
	// Shutdown: persist committed images in place and checkpoint the
	// redo logs on every shard, so a post-shutdown image recovers
	// instantly.
	for _, sh := range s.shards {
		sh.Machine().ReclaimLogs()
	}
}

// step executes the queue's head — a wave of single-shard ops requests,
// or one quiescent request — and returns the remaining queue.
func (s *Server) step(pending []*request) []*request {
	head := pending[0]
	switch head.kind {
	case reqStats:
		head.statsJSON = s.statsJSON()
		close(head.done)
		return pending[1:]
	case reqCrash:
		s.powerFail(head)
		close(head.done)
		return pending[1:]
	case reqCross:
		s.runCross(head)
		return pending[1:]
	case reqScanAll:
		s.runScanAll(head)
		return pending[1:]
	default:
		return s.runWave(pending)
	}
}

// runWave takes the longest prefix of single-shard ops requests off the
// queue — capped at Cores per shard, leaving excess and everything
// after the first quiescent request queued in order — and runs it as
// one wave: every involved shard executes its group as one session
// batch (one durable transaction per request, each on its own simulated
// thread in conflict domain 0), shards in parallel on the harness
// worker pool. On an injected power failure the wave's unapplied
// requests fail with errLostPower and the cluster recovers before the
// next step.
func (s *Server) runWave(pending []*request) []*request {
	groups := make([][]*request, len(s.shards))
	var taken []*request
	var rest []*request
	for i, r := range pending {
		if r.kind != reqOps {
			rest = append(rest, pending[i:]...)
			break
		}
		if len(groups[r.shard]) >= s.cfg.Cores {
			rest = append(rest, r)
			continue
		}
		groups[r.shard] = append(groups[r.shard], r)
		taken = append(taken, r)
	}
	var active []*shard.Shard
	for _, sh := range s.shards {
		if len(groups[sh.ID()]) > 0 {
			active = append(active, sh)
		}
	}
	s.batches++
	s.requests += uint64(len(taken))
	halted := s.cluster.Fanout(active, func(sh *shard.Shard) bool {
		grp := groups[sh.ID()]
		st := s.stores[sh.ID()]
		bodies := make([]func(*sim.Thread), len(grp))
		for i, r := range grp {
			r := r
			bodies[i] = func(th *sim.Thread) {
				c := sh.Machine().NewCtx(th, 0)
				r.results = st.Apply(c, r.ops)
				r.applied = true
			}
		}
		return sh.Do("serve", bodies...)
	})
	if halted {
		// A crashpoint hook fired mid-wave (test-injected power
		// failure). Recover the cluster, then fail what was lost.
		s.recoverAfterHalt()
		for _, r := range taken {
			if !r.applied {
				r.err = errLostPower
			}
		}
	}
	for _, r := range taken {
		close(r.done)
	}
	return rest
}

// powerFail models an operator-triggered power failure (the CRASH
// command): every shard loses volatile state, the redo logs replay, the
// coordinator's completion pass finishes decided cross-shard
// transactions, and the DRAM indexes are rebuilt. Runs between steps,
// so no request is in flight. A protocol-invariant violation found by
// recovery fails the CRASH request loudly instead of serving corrupt
// state.
func (s *Server) powerFail(req *request) {
	s.crashes++
	rec := s.cluster.RecoverServing()
	s.recScanned, s.recApplied, s.recPS = 0, 0, 0
	for _, rs := range rec.PerShard {
		s.recScanned += rs.ScannedRecs
		s.recApplied += rs.AppliedLines
		if ps := rs.ScanPS + rs.ReplayPS + rs.PersistPS; ps > s.recPS {
			s.recPS = ps // shards recover in parallel: slowest dominates
		}
	}
	for _, st := range s.stores {
		st.Recover()
	}
	if req != nil && len(rec.Inconsistent) > 0 {
		req.err = fmt.Errorf("recovery invariant violated: %s", rec.Inconsistent[0])
	}
}

// recoverAfterHalt is powerFail for a failure that struck mid-wave: the
// engines halted, so every shard's session must also restart.
func (s *Server) recoverAfterHalt() {
	s.powerFail(nil)
	for _, sh := range s.shards {
		sh.Restart()
	}
}

// statsJSON marshals the STATS reply. The machine half aggregates every
// shard (stats.Stats.Add, virtual time = the latest shard); with one
// shard it is that machine's counters verbatim.
func (s *Server) statsJSON() []byte {
	var ms stats.Stats
	keys := 0
	var now sim.Time
	for i, sh := range s.shards {
		if i == 0 {
			ms = *sh.Machine().Stats()
		} else {
			ms.Add(sh.Machine().Stats())
		}
		if t := sh.Engine().Now(); t > now {
			now = t
		}
		keys += s.stores[i].table.Len(sh.Machine().Store())
	}
	ms.Elapsed = now
	doc := struct {
		Server  serverStats  `json:"server"`
		Machine *stats.Stats `json:"machine"`
	}{
		Server: serverStats{
			UptimeS:      time.Since(s.start).Seconds(),
			VirtualS:     now.Seconds(),
			Shards:       len(s.shards),
			Batches:      s.batches,
			Requests:     s.requests,
			Crashes:      s.crashes,
			Keys:         keys,
			CrossCommits: s.cluster.CrossCommits(),
			CrossAborts:  s.cluster.CrossAborts(),

			RecoveryScanned: s.recScanned,
			RecoveryApplied: s.recApplied,
			RecoveryPS:      int64(s.recPS),
		},
		Machine: &ms,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err))
	}
	return b
}

// serverStats is the server half of the STATS document (the machine
// half is the stats.Stats JSON shared with the experiment records).
type serverStats struct {
	UptimeS      float64 `json:"uptime_s"`
	VirtualS     float64 `json:"virtual_s"`
	Shards       int     `json:"shards"`
	Batches      uint64  `json:"batches"`
	Requests     uint64  `json:"requests"`
	Crashes      uint64  `json:"crashes"`
	Keys         int     `json:"keys"`
	CrossCommits uint64  `json:"cross_commits"`
	CrossAborts  uint64  `json:"cross_aborts"`

	// Last CRASH drill's recovery pass, summed over the shards (the
	// modeled latency takes the slowest shard — they replay in
	// parallel). Zero until the first drill.
	RecoveryScanned int   `json:"recovery_scanned"`
	RecoveryApplied int   `json:"recovery_applied"`
	RecoveryPS      int64 `json:"recovery_ps"`
}

// submit hands one request to the engine loop and waits for it.
func (s *Server) submit(req *request) error {
	req.done = make(chan struct{})
	select {
	case s.reqCh <- req:
	case <-s.closing:
		return errShuttingDown
	}
	<-req.done
	return req.err
}

// submitOps executes ops as one durable transaction, routed by key:
// with one shard (or all keys on one home shard) the fast single-shard
// path, a lone SCAN on a sharded server the cluster broadcast, anything
// straddling shards the 2PC coordinator.
func (s *Server) submitOps(ops []Op) ([]OpResult, error) {
	req := s.route(ops)
	if err := s.submit(req); err != nil {
		return nil, err
	}
	return req.results, nil
}

// route classifies one op batch into its engine-loop request kind.
func (s *Server) route(ops []Op) *request {
	n := len(s.shards)
	if n == 1 {
		return &request{kind: reqOps, ops: ops}
	}
	if len(ops) == 1 && ops[0].Kind == OpScan {
		return &request{kind: reqScanAll, ops: ops}
	}
	home := shard.ShardOf(ops[0].Key, n)
	for _, op := range ops[1:] {
		if shard.ShardOf(op.Key, n) != home {
			return &request{kind: reqCross, ops: ops}
		}
	}
	return &request{kind: reqOps, shard: home, ops: ops}
}

// maxScanCount caps one SCAN's result size.
const maxScanCount = 10000

// connState is the per-connection protocol state: the MULTI queue.
type connState struct {
	inMulti  bool
	queued   []Op
	multiErr bool // a queued command failed to parse; EXEC must refuse
}

// handleConn runs one connection's request loop. Errors are isolated
// to the connection: parse errors get -ERR replies (framing errors
// additionally close the connection, since the stream position is
// lost), and a panic in command handling closes this connection only.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		recover() // isolate: a handler bug kills the connection, not the server
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	st := &connState{}
	for {
		argv, err := ReadRequest(r)
		if err != nil {
			if IsProtocolError(err) {
				WriteReply(w, Errf("%v", err))
				w.Flush()
			}
			return // io error (client gone, shutdown) or unsyncable stream
		}
		if len(argv) == 0 {
			continue // blank inline line
		}
		rep, quit := s.dispatch(st, argv)
		if err := WriteReply(w, rep); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command against the connection state,
// returning the reply and whether the connection should close.
func (s *Server) dispatch(st *connState, argv [][]byte) (rep Reply, quit bool) {
	name := strings.ToUpper(string(argv[0]))
	cmd, ok := lookupCommand(name)
	if !ok {
		return Errf("unknown command %q (see SERVING.md)", name), false
	}
	if st.inMulti && !cmd.InMulti {
		switch name {
		case "EXEC", "DISCARD", "QUIT":
			// control commands allowed below
		default:
			return Errf("%s is not allowed inside MULTI", name), false
		}
	}
	switch name {
	case "PING":
		return Reply{Kind: ReplySimple, Str: "PONG"}, false
	case "QUIT":
		return OK(), true
	case "MULTI":
		if st.inMulti {
			return Errf("MULTI calls can not be nested"), false
		}
		st.inMulti, st.queued, st.multiErr = true, nil, false
		return OK(), false
	case "DISCARD":
		if !st.inMulti {
			return Errf("DISCARD without MULTI"), false
		}
		st.inMulti, st.queued, st.multiErr = false, nil, false
		return OK(), false
	case "EXEC":
		if !st.inMulti {
			return Errf("EXEC without MULTI"), false
		}
		ops := st.queued
		bad := st.multiErr
		st.inMulti, st.queued, st.multiErr = false, nil, false
		if bad {
			return Errf("EXECABORT transaction discarded because of previous errors"), false
		}
		if len(ops) == 0 {
			// Nothing queued: answer the empty array directly instead of
			// occupying a simulated core with a zero-op transaction.
			return Reply{Kind: ReplyArray}, false
		}
		results, err := s.submitOps(ops)
		if err != nil {
			return Errf("%v", err), false
		}
		out := Reply{Kind: ReplyArray, Array: make([]Reply, len(ops))}
		for i, op := range ops {
			out.Array[i] = opReply(op, results[i])
		}
		return out, false
	case "STATS":
		req := &request{kind: reqStats}
		if err := s.submit(req); err != nil {
			return Errf("%v", err), false
		}
		return BulkString(req.statsJSON), false
	case "CRASH":
		req := &request{kind: reqCrash}
		if err := s.submit(req); err != nil {
			return Errf("%v", err), false
		}
		return OK(), false
	default: // the data ops: GET PUT SET DEL SCAN
		op, err := parseOp(name, argv)
		if err != nil {
			if st.inMulti {
				st.multiErr = true
			}
			return Errf("%v", err), false
		}
		if st.inMulti {
			if op.Kind == OpScan && len(s.shards) > 1 {
				// A scan has no single home shard, so it cannot join a
				// (potentially cross-shard) transaction; reject at queue
				// time and poison the batch like a parse error.
				st.multiErr = true
				return Errf("SCAN is not allowed inside MULTI on a sharded server"), false
			}
			st.queued = append(st.queued, op)
			return Reply{Kind: ReplySimple, Str: "QUEUED"}, false
		}
		results, err := s.submitOps([]Op{op})
		if err != nil {
			return Errf("%v", err), false
		}
		return opReply(op, results[0]), false
	}
}

// parseOp builds the store op for one data command.
func parseOp(name string, argv [][]byte) (Op, error) {
	switch name {
	case "GET", "DEL":
		if len(argv) != 2 {
			return Op{}, fmt.Errorf("wrong number of arguments for %s (want: %s key)", name, name)
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		kind := OpGet
		if name == "DEL" {
			kind = OpDel
		}
		return Op{Kind: kind, Key: k}, nil
	case "PUT", "SET":
		if len(argv) != 3 {
			return Op{}, fmt.Errorf("wrong number of arguments for %s (want: %s key value)", name, name)
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		if len(argv[2]) > MaxBulk {
			return Op{}, fmt.Errorf("value exceeds %d bytes", MaxBulk)
		}
		// Copy: argv aliases the read buffer only within one request,
		// but ops outlive the dispatch (MULTI queues, engine batches).
		v := append([]byte(nil), argv[2]...)
		return Op{Kind: OpPut, Key: k, Val: v}, nil
	case "SCAN":
		if len(argv) != 3 {
			return Op{}, fmt.Errorf("wrong number of arguments for SCAN (want: SCAN start count)")
		}
		k, err := parseKey(argv[1])
		if err != nil {
			return Op{}, err
		}
		n, err := strconv.Atoi(string(argv[2]))
		if err != nil || n <= 0 {
			return Op{}, fmt.Errorf("SCAN count %q is not a positive integer", argv[2])
		}
		if n > maxScanCount {
			n = maxScanCount
		}
		return Op{Kind: OpScan, Key: k, N: n}, nil
	default:
		return Op{}, fmt.Errorf("unknown data command %q", name)
	}
}

// opReply renders one op's result as its wire reply.
func opReply(op Op, res OpResult) Reply {
	switch op.Kind {
	case OpGet:
		if !res.Found {
			return BulkString(nil)
		}
		return BulkString(res.Val)
	case OpPut:
		return OK()
	case OpDel:
		if res.Found {
			return Int(1)
		}
		return Int(0)
	case OpScan:
		out := Reply{Kind: ReplyArray, Array: make([]Reply, 0, 2*len(res.Keys))}
		for i, k := range res.Keys {
			out.Array = append(out.Array,
				BulkString([]byte(strconv.FormatUint(k, 10))),
				BulkString(res.Vals[i]))
		}
		return out
	default:
		return Errf("unrenderable op %v", op.Kind)
	}
}

// Dial is a minimal protocol client used by the load generator, the
// CLI and tests: one connection, synchronous request/reply.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Do sends one command (RESP-framed) and reads its reply.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	if err := WriteRequest(c.w, args); err != nil {
		return Reply{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Reply{}, err
	}
	return ReadReply(c.r)
}

// DoStrings is Do with string arguments.
func (c *Client) DoStrings(args ...string) (Reply, error) {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Do(bs...)
}

// Pipeline sends several commands before reading any reply — one
// network round trip for the whole group. It returns one reply per
// command.
func (c *Client) Pipeline(cmds [][][]byte) ([]Reply, error) {
	for _, argv := range cmds {
		if err := WriteRequest(c.w, argv); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]Reply, 0, len(cmds))
	for range cmds {
		rep, err := ReadReply(c.r)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
