package server

import (
	"encoding/json"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"
)

// The regression tests for the PR's satellite bug fixes: the shutdown
// send-on-closed-channel race, the ReadFrac-zero sentinel clobber, the
// zero-op EXEC transaction, and silently vanishing loadgen workers.

// TestShutdownUnderLoadRace closes the server while several connections
// hammer it with data ops, STATS barriers and CRASH drills. The bug this
// pins down: the old engine-loop requeue goroutine could send deferred
// requests back on the request channel after Close had closed it —
// a panic the race detector and this test both catch. Clients may see
// "shutting down" errors or severed connections; the server must never
// panic and Close must return cleanly.
func TestShutdownUnderLoadRace(t *testing.T) {
	for round := 0; round < 3; round++ {
		s := startServer(t, Config{Cores: 2, Buckets: 64, Prepopulate: 16})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := Dial(s.Addr().String())
				if err != nil {
					return
				}
				defer c.Close()
				for i := 0; ; i++ {
					var err error
					switch {
					case w == 0 && i%25 == 24:
						_, err = c.DoStrings("CRASH")
					case i%3 == 0:
						_, err = c.DoStrings("PUT", strconv.Itoa(i%31+1), "x")
					case i%3 == 1:
						_, err = c.DoStrings("GET", strconv.Itoa(i%31+1))
					default:
						_, err = c.DoStrings("STATS")
					}
					if err != nil {
						return // connection severed by shutdown
					}
				}
			}(w)
		}
		time.Sleep(30 * time.Millisecond)
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: Close under load: %v", round, err)
		}
		wg.Wait()
	}
}

// TestEmptyExecNoTransaction: EXEC on an empty MULTI queue answers an
// empty array without submitting a zero-op durable transaction to the
// machine.
func TestEmptyExecNoTransaction(t *testing.T) {
	s := startServer(t, Config{Cores: 2, Buckets: 64})
	c := dialT(t, s)

	commits := func() uint64 {
		rep := mustDo(t, c, "STATS")
		var doc statsDoc
		if err := json.Unmarshal(rep.Bulk, &doc); err != nil {
			t.Fatalf("STATS: %v", err)
		}
		return doc.Machine.Commits
	}

	before := commits()
	mustDo(t, c, "MULTI")
	rep := mustDo(t, c, "EXEC")
	if rep.Kind != ReplyArray || len(rep.Array) != 0 || rep.Nil {
		t.Fatalf("empty EXEC → %+v, want empty array", rep)
	}
	if after := commits(); after != before {
		t.Fatalf("empty EXEC ran %d transaction(s) on the machine", after-before)
	}
	// The connection's transaction state is clean: a following MULTI
	// batch works normally.
	mustDo(t, c, "MULTI")
	mustDo(t, c, "PUT", "5", "after-empty")
	if rep := mustDo(t, c, "EXEC"); rep.Kind != ReplyArray || len(rep.Array) != 1 {
		t.Fatalf("EXEC after empty EXEC → %+v", rep)
	}
}

// TestLoadConfigReadFracSentinel: an explicit ReadFrac of 0 (write-only
// workload) survives withDefaults; only the unset zero value and
// out-of-range values fall back to the 0.8 default.
func TestLoadConfigReadFracSentinel(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   LoadConfig
		want float64
	}{
		{"unset-defaults", LoadConfig{}, 0.8},
		{"explicit-zero", LoadConfig{ReadFrac: 0, ReadFracSet: true}, 0},
		{"explicit-one", LoadConfig{ReadFrac: 1}, 1},
		{"mid", LoadConfig{ReadFrac: 0.3}, 0.3},
		{"negative", LoadConfig{ReadFrac: -0.5, ReadFracSet: true}, 0.8},
		{"above-one", LoadConfig{ReadFrac: 1.5}, 0.8},
	} {
		if got := tc.in.withDefaults().ReadFrac; got != tc.want {
			t.Errorf("%s: ReadFrac = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBuildOpReadFracExtremes: ReadFrac 0 generates a pure-write stream,
// ReadFrac 1 (ScanFrac 0) a pure-read stream.
func TestBuildOpReadFracExtremes(t *testing.T) {
	writeOnly := LoadConfig{ReadFrac: 0, ReadFracSet: true}.withDefaults()
	readOnly := LoadConfig{ReadFrac: 1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if cmd := string(buildOp(writeOnly, rng, nil, false)[0]); cmd != "PUT" {
			t.Fatalf("write-only workload generated %s", cmd)
		}
		if cmd := string(buildOp(readOnly, rng, nil, false)[0]); cmd != "GET" {
			t.Fatalf("read-only workload generated %s", cmd)
		}
	}
}

// TestLoadgenWorkerDeathSurfaced severs every worker connection mid-run
// and checks the report confesses: workers_died set, the run marked
// saturated (its numbers are invalid), and the last error carried for
// diagnosis. The bug this pins down: a worker dying on a connection
// error used to silently disappear, leaving a clean-looking report at a
// fraction of the offered rate.
func TestLoadgenWorkerDeathSurfaced(t *testing.T) {
	s := startServer(t, Config{Cores: 2, Buckets: 64, Prepopulate: 16})
	go func() {
		// Let the workers establish connections and issue a few requests,
		// then cut every live connection server-side.
		time.Sleep(150 * time.Millisecond)
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	}()
	rep, err := RunLoad(LoadConfig{
		Addr:     s.Addr().String(),
		Conns:    2,
		QPS:      300,
		Duration: 500 * time.Millisecond,
		KeySpace: 16,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.WorkersDied == 0 {
		t.Fatalf("severed workers not reported: %+v", rep)
	}
	if !rep.Saturated {
		t.Fatalf("run with dead workers not marked saturated: %+v", rep)
	}
	if rep.LastError == "" {
		t.Fatalf("report carries no last_error: %+v", rep)
	}
	if rep.Errors == 0 {
		t.Fatalf("dead workers did not count as errors: %+v", rep)
	}
}
