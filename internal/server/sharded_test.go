package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"uhtm/internal/crash"
	"uhtm/internal/mem"
	"uhtm/internal/shard"
)

// keysOnShard returns the first n keys at or above start whose home
// shard (under the server's routing hash) is sh.
func keysOnShard(sh, shards, n int, start uint64) []uint64 {
	var out []uint64
	for k := start; len(out) < n; k++ {
		if shard.ShardOf(k, shards) == sh {
			out = append(out, k)
		}
	}
	return out
}

// shardBaselines captures every shard's durable NVM data image.
func shardBaselines(s *Server) []map[mem.Addr]mem.Line {
	out := make([]map[mem.Addr]mem.Line, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, crash.Baseline(sh.Machine()))
	}
	return out
}

// TestShardedEndToEnd drives a 4-shard server over the wire: routed
// single-key ops, the all-shard SCAN merge, a cross-shard MULTI through
// 2PC, and the sharded STATS fields.
func TestShardedEndToEnd(t *testing.T) {
	s := startServer(t, Config{Shards: 4, Cores: 2, Buckets: 64})
	c := dialT(t, s)

	for k := uint64(1); k <= 40; k++ {
		ks := strconv.FormatUint(k, 10)
		if rep := mustDo(t, c, "PUT", ks, "v"+ks); rep.Str != "OK" {
			t.Fatalf("PUT %s → %+v", ks, rep)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		ks := strconv.FormatUint(k, 10)
		if rep := mustDo(t, c, "GET", ks); string(rep.Bulk) != "v"+ks {
			t.Fatalf("GET %s → %+v", ks, rep)
		}
	}
	if rep := mustDo(t, c, "DEL", "7"); rep.Kind != ReplyInt || rep.Int != 1 {
		t.Fatalf("DEL → %+v", rep)
	}

	// SCAN merges every shard's slice into one ascending result.
	rep := mustDo(t, c, "SCAN", "1", "100")
	if rep.Kind != ReplyArray || len(rep.Array) != 2*39 {
		t.Fatalf("SCAN → kind=%v len=%d, want 39 pairs", rep.Kind, len(rep.Array))
	}
	var prev uint64
	for i := 0; i < len(rep.Array); i += 2 {
		k, err := strconv.ParseUint(string(rep.Array[i].Bulk), 10, 64)
		if err != nil || k <= prev || k == 7 {
			t.Fatalf("merged SCAN broken at element %d (%q, prev %d)", i, rep.Array[i].Bulk, prev)
		}
		prev = k
	}
	// And respects the count cap across shards.
	if rep := mustDo(t, c, "SCAN", "1", "5"); len(rep.Array) != 10 {
		t.Fatalf("SCAN count 5 returned %d elements, want 10", len(rep.Array))
	}

	// A MULTI whose keys straddle shards commits through 2PC and reads
	// its own writes back.
	k0 := keysOnShard(0, 4, 1, 1000)[0]
	k3 := keysOnShard(3, 4, 1, 1000)[0]
	mustDo(t, c, "MULTI")
	mustDo(t, c, "PUT", strconv.FormatUint(k0, 10), "cross-a")
	mustDo(t, c, "PUT", strconv.FormatUint(k3, 10), "cross-b")
	rep = mustDo(t, c, "EXEC")
	if rep.Kind != ReplyArray || len(rep.Array) != 2 {
		t.Fatalf("cross EXEC → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", strconv.FormatUint(k0, 10)); string(rep.Bulk) != "cross-a" {
		t.Fatalf("GET after cross EXEC → %+v", rep)
	}
	if rep := mustDo(t, c, "GET", strconv.FormatUint(k3, 10)); string(rep.Bulk) != "cross-b" {
		t.Fatalf("GET after cross EXEC → %+v", rep)
	}

	// SCAN cannot join a transaction on a sharded server.
	mustDo(t, c, "MULTI")
	if rep := mustDo(t, c, "SCAN", "1", "5"); rep.Kind != ReplyErr || !strings.Contains(rep.Str, "SCAN is not allowed inside MULTI") {
		t.Fatalf("SCAN in MULTI → %+v, want rejection", rep)
	}
	if rep := mustDo(t, c, "EXEC"); rep.Kind != ReplyErr || !strings.Contains(rep.Str, "EXECABORT") {
		t.Fatalf("EXEC after rejected SCAN → %+v", rep)
	}

	// STATS reports the shard count and the 2PC counters.
	var doc statsDoc
	if rep := mustDo(t, c, "STATS"); json.Unmarshal(rep.Bulk, &doc) != nil {
		t.Fatalf("STATS not decodable: %+v", rep)
	}
	if doc.Server.Shards != 4 {
		t.Fatalf("STATS shards = %d, want 4", doc.Server.Shards)
	}
	if doc.Server.CrossCommits < 1 {
		t.Fatalf("STATS cross_commits = %d, want >= 1", doc.Server.CrossCommits)
	}
	if doc.Machine.Commits == 0 {
		t.Fatal("aggregated machine stats show no commits")
	}
}

// TestCrossShardMultiAtomicityUnderCrash commits a stream of cross-shard
// MULTIs, power-fails the whole cluster via CRASH, and verifies every
// shard against the committed-prefix oracle plus read-your-acked-writes
// — the cluster-level acked-implies-durable drill.
func TestCrossShardMultiAtomicityUnderCrash(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Cores: 2, Buckets: 64, Prepopulate: 16})
	baselines := shardBaselines(s)
	c := dialT(t, s)

	k0s := keysOnShard(0, 2, 20, 100)
	k1s := keysOnShard(1, 2, 20, 100)
	acked := map[uint64]string{}
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("cross-%d", i)
		mustDo(t, c, "MULTI")
		mustDo(t, c, "PUT", strconv.FormatUint(k0s[i], 10), v+"a")
		mustDo(t, c, "PUT", strconv.FormatUint(k1s[i], 10), v+"b")
		rep := mustDo(t, c, "EXEC")
		if rep.Kind != ReplyArray {
			t.Fatalf("cross EXEC %d → %+v", i, rep)
		}
		acked[k0s[i]] = v + "a"
		acked[k1s[i]] = v + "b"
	}
	if rep := mustDo(t, c, "CRASH"); rep.Str != "OK" {
		t.Fatalf("CRASH → %+v", rep)
	}
	for k, sh := range s.shards {
		if d := crash.VerifyRecovered(sh.Machine(), 4, baselines[k]); d != "" {
			t.Fatalf("shard %d committed-prefix oracle: %s", k, d)
		}
	}
	for k, v := range acked {
		rep := mustDo(t, c, "GET", strconv.FormatUint(k, 10))
		if string(rep.Bulk) != v {
			t.Fatalf("acked key %d after cluster recovery = %q, want %q", k, rep.Bulk, v)
		}
	}
	// The cluster serves — including new cross transactions — after
	// recovery.
	mustDo(t, c, "MULTI")
	mustDo(t, c, "PUT", strconv.FormatUint(k0s[0], 10), "post-crash-a")
	mustDo(t, c, "PUT", strconv.FormatUint(k1s[0], 10), "post-crash-b")
	if rep := mustDo(t, c, "EXEC"); rep.Kind != ReplyArray {
		t.Fatalf("cross EXEC after recovery → %+v", rep)
	}
}

// TestHaltMidCrossRecovery injects power failures inside the 2PC
// protocol itself from the serving path: before the decision the request
// fails and leaves no trace; after the decision the request is acked and
// recovery completes it everywhere.
func TestHaltMidCrossRecovery(t *testing.T) {
	k0 := keysOnShard(0, 2, 1, 500)[0]
	k1 := keysOnShard(1, 2, 1, 500)[0]

	t.Run("before-decision", func(t *testing.T) {
		s := startServer(t, Config{Shards: 2, Cores: 2, Buckets: 64})
		in := crash.Arm(crash.Injection{Point: shard.PointPrepareLogged, Visit: 1})
		in.SetHalt(s.Cluster().Shards()[1].Engine().HaltNow)
		s.Cluster().SetHook(1, in.Hit)
		c := dialT(t, s)

		mustDo(t, c, "MULTI")
		mustDo(t, c, "PUT", strconv.FormatUint(k0, 10), "doomed-a")
		mustDo(t, c, "PUT", strconv.FormatUint(k1, 10), "doomed-b")
		rep := mustDo(t, c, "EXEC")
		if rep.Kind != ReplyErr || !strings.Contains(rep.Str, "lost power") {
			t.Fatalf("EXEC across the halt → %+v, want lost-power error", rep)
		}
		if !in.Fired() {
			t.Fatal("injection never fired")
		}
		in.Disarm()

		// The undecided transaction vanished on both shards.
		for _, k := range []uint64{k0, k1} {
			if rep := mustDo(t, c, "GET", strconv.FormatUint(k, 10)); !rep.Nil {
				t.Fatalf("unacked key %d visible after recovery: %+v", k, rep)
			}
		}
		// The retry commits.
		mustDo(t, c, "MULTI")
		mustDo(t, c, "PUT", strconv.FormatUint(k0, 10), "retry-a")
		mustDo(t, c, "PUT", strconv.FormatUint(k1, 10), "retry-b")
		if rep := mustDo(t, c, "EXEC"); rep.Kind != ReplyArray {
			t.Fatalf("retry EXEC → %+v", rep)
		}
		if rep := mustDo(t, c, "GET", strconv.FormatUint(k1, 10)); string(rep.Bulk) != "retry-b" {
			t.Fatalf("GET after retry → %+v", rep)
		}
	})

	t.Run("after-decision", func(t *testing.T) {
		s := startServer(t, Config{Shards: 2, Cores: 2, Buckets: 64})
		in := crash.Arm(crash.Injection{Point: shard.PointApplyMark, Visit: 1})
		in.SetHalt(s.Cluster().Shards()[1].Engine().HaltNow)
		s.Cluster().SetHook(1, in.Hit)
		c := dialT(t, s)

		mustDo(t, c, "MULTI")
		mustDo(t, c, "PUT", strconv.FormatUint(k0, 10), "decided-a")
		mustDo(t, c, "PUT", strconv.FormatUint(k1, 10), "decided-b")
		rep := mustDo(t, c, "EXEC")
		if rep.Kind != ReplyArray {
			t.Fatalf("EXEC with a durable decision → %+v, want success (recovery completes it)", rep)
		}
		if !in.Fired() {
			t.Fatal("injection never fired")
		}
		in.Disarm()

		// The acked transaction is applied on both shards.
		if rep := mustDo(t, c, "GET", strconv.FormatUint(k0, 10)); string(rep.Bulk) != "decided-a" {
			t.Fatalf("GET %d → %+v", k0, rep)
		}
		if rep := mustDo(t, c, "GET", strconv.FormatUint(k1, 10)); string(rep.Bulk) != "decided-b" {
			t.Fatalf("GET %d → %+v", k1, rep)
		}
	})
}

// TestLoadgenCrossFrac drives the generator's cross-shard knob against a
// sharded server and checks the report's 2PC counters; against a
// single-shard server the knob is a configuration error.
func TestLoadgenCrossFrac(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Cores: 2, Buckets: 64, Prepopulate: 32})
	rep, err := RunLoad(LoadConfig{
		Addr:      s.Addr().String(),
		Conns:     2,
		QPS:       300,
		Duration:  300 * time.Millisecond,
		KeySpace:  64,
		CrossFrac: 1,
		ReadFrac:  0.5,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.CrossFrac != 1 {
		t.Fatalf("report cross_frac = %v, want 1", rep.CrossFrac)
	}
	if rep.CrossCommits == 0 {
		t.Fatalf("cross_frac 1 drove no cross-shard commits: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("cross-shard load saw %d request errors", rep.Errors)
	}

	single := startServer(t, Config{Cores: 2, Buckets: 64})
	if _, err := RunLoad(LoadConfig{
		Addr:      single.Addr().String(),
		Duration:  50 * time.Millisecond,
		CrossFrac: 0.5,
	}); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("CrossFrac on a single-shard server: err = %v, want sharded-server error", err)
	}
}
