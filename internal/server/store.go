// Package server puts a network front-end on the durable key-value
// machinery: a long-lived simulated machine (engine + core.Machine +
// NVM-backed store) behind a line-oriented RESP-subset TCP protocol,
// plus an open-loop load generator for driving it. Where the workload
// drivers in internal/workload build a fresh engine per closed-loop
// run, the server keeps one engine alive for its whole lifetime and
// maps externally arriving requests onto durable transactions through
// a harness.Session — the paper's Table IV stores promoted from
// simulation subjects to a service. See SERVING.md for the wire
// protocol and operational reference.
package server

import (
	"fmt"

	"uhtm/internal/core"
	"uhtm/internal/mem"
	"uhtm/internal/txds"
)

// OpKind names one store operation a request can carry.
type OpKind int

// The store operations. Every op in a request executes inside the same
// durable transaction.
const (
	// OpGet reads one key.
	OpGet OpKind = iota
	// OpPut inserts or updates one key.
	OpPut
	// OpDel removes one key.
	OpDel
	// OpScan walks up to N keys in ascending key order starting at Key.
	OpScan
)

// String names the op kind; it matches the wire command name.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one store operation.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  []byte // OpPut only
	N    int    // OpScan only: max keys to return
}

// OpResult is one op's outcome.
type OpResult struct {
	Val     []byte   // OpGet: the value (nil when absent)
	Found   bool     // OpGet: key present; OpDel: key existed
	Keys    []uint64 // OpScan: keys in ascending order
	Vals    [][]byte // OpScan: matching values
	Written bool     // OpPut: always true on commit
}

// Store is the durable KV the server fronts: an NVM HashMap holding
// the authoritative key→value mapping (the durable truth recovery
// restores) and a DRAM B-Tree index giving SCAN its ordered walk —
// the HiKV split of the paper's Hybrid-Index workload, with both sides
// updated in one durable transaction per request. Deletes remove the
// table entry only; the index keeps a stale key until the next rebuild
// and scans filter through the table, so a deleted key is never served.
type Store struct {
	m     *core.Machine
	table *txds.HashMap // NVM: durable truth
	index *txds.BTree   // DRAM: ordered scan index, rebuilt on recovery
	nal   *mem.Allocator
	dal   *mem.Allocator
}

// NewStore formats a fresh store on the machine: allocators over the
// full NVM and DRAM data regions, an empty table and index. The setup
// writes go straight to the memory image (no transaction — this is the
// pre-crash formatted heap, like the workload prepopulation paths) and
// are made durable before the store serves traffic.
func NewStore(m *core.Machine, buckets int) *Store {
	s := &Store{
		m:   m,
		nal: mem.NewAllocator(mem.NVM),
		dal: mem.NewAllocator(mem.DRAM),
	}
	st := m.Store()
	s.table = txds.NewHashMap(st, s.nal, buckets)
	s.index = txds.NewBTree(st, s.dal)
	st.PersistLiveNVM()
	return s
}

// Machine returns the machine the store lives on.
func (s *Store) Machine() *core.Machine { return s.m }

// Table returns the NVM hash map (tests and recovery checks).
func (s *Store) Table() *txds.HashMap { return s.table }

// Prepopulate inserts keys 1..n with deterministic valSize-byte values,
// outside any transaction, and persists them — initial state for load
// generation, mirroring the workload drivers' prepopulation.
func (s *Store) Prepopulate(n, valSize int) {
	for k := 1; k <= n; k++ {
		s.PrepopulateOne(uint64(k), valSize)
	}
	s.m.Store().PersistLiveNVM()
}

// PrepopulateOne inserts one key with its deterministic valSize-byte
// value, outside any transaction and without persisting — the sharded
// server routes each key to its home shard's store this way and
// persists every shard once at the end.
func (s *Store) PrepopulateOne(k uint64, valSize int) {
	st := s.m.Store()
	v := make([]byte, valSize)
	for i := range v {
		v[i] = byte(k + uint64(i))
	}
	s.table.Put(st, k, v)
	s.index.Put(st, k, nil)
}

// Apply executes ops as one durable transaction on the given context
// and returns one result per op. GET/SCAN results are copied out of
// simulated memory before the transaction ends, so callers may hold
// them across engine runs.
func (s *Store) Apply(c *core.Ctx, ops []Op) []OpResult {
	results := make([]OpResult, len(ops))
	c.Run(func(tx *core.Tx) {
		for i := range results {
			results[i] = OpResult{}
		}
		for i, op := range ops {
			switch op.Kind {
			case OpGet:
				v, ok := s.table.Get(tx, op.Key)
				results[i] = OpResult{Val: v, Found: ok}
			case OpPut:
				s.table.Put(tx, op.Key, op.Val)
				s.index.Put(tx, op.Key, nil)
				results[i] = OpResult{Written: true}
			case OpDel:
				ok := s.table.Delete(tx, op.Key)
				results[i] = OpResult{Found: ok}
			case OpScan:
				r := OpResult{}
				s.index.Scan(tx, op.Key, func(k uint64, _ mem.Addr) bool {
					if v, ok := s.table.Get(tx, k); ok {
						r.Keys = append(r.Keys, k)
						r.Vals = append(r.Vals, v)
					}
					return len(r.Keys) < op.N
				})
				results[i] = r
			default:
				panic(fmt.Sprintf("server: unknown op kind %v", op.Kind))
			}
		}
	})
	return results
}

// Recover brings the store back after a power failure: the machine has
// already replayed its redo logs (core.Machine.Recover), which restored
// the NVM table; the DRAM index is gone — DRAM does not survive — so it
// is rebuilt from the table's keys on a fresh DRAM arena. Mirrors the
// programmer's obligation from the paper: recovery-relevant structures
// live in NVM, everything volatile is reconstructable.
func (s *Store) Recover() {
	st := s.m.Store()
	s.dal = mem.NewAllocator(mem.DRAM)
	s.index = txds.NewBTree(st, s.dal)
	for _, k := range s.table.Keys(st) {
		s.index.Put(st, k, nil)
	}
}
