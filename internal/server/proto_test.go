package server

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestRequestRoundTrip checks WriteRequest/ReadRequest are inverses
// over arbitrary binary argument vectors.
func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6)
		argv := make([][]byte, n)
		for i := range argv {
			arg := make([]byte, rng.Intn(64))
			rng.Read(arg)
			argv[i] = arg
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteRequest(w, argv); err != nil {
			t.Fatalf("trial %d: WriteRequest: %v", trial, err)
		}
		w.Flush()
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("trial %d: ReadRequest: %v", trial, err)
		}
		if len(got) != len(argv) {
			t.Fatalf("trial %d: %d args round-tripped to %d", trial, len(argv), len(got))
		}
		for i := range argv {
			if !bytes.Equal(got[i], argv[i]) {
				t.Fatalf("trial %d arg %d: %q != %q", trial, got[i], argv[i], argv[i])
			}
		}
	}
}

// TestInlineRequests checks the nc-friendly inline form.
func TestInlineRequests(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"PING\r\n", []string{"PING"}},
		{"GET 42\n", []string{"GET", "42"}},
		{"PUT 7   hello\r\n", []string{"PUT", "7", "hello"}},
		{"  \r\n", nil}, // blank line → nil argv, connection stays up
		{"\n", nil},
	}
	for _, c := range cases {
		got, err := ReadRequest(bufio.NewReader(strings.NewReader(c.in)))
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		var gs []string
		for _, a := range got {
			gs = append(gs, string(a))
		}
		if !reflect.DeepEqual(gs, c.want) {
			t.Errorf("%q parsed to %v, want %v", c.in, gs, c.want)
		}
	}
}

// TestRequestFraming checks framing violations surface as protocol
// errors (connection must close) rather than panics or silent garbage.
func TestRequestFraming(t *testing.T) {
	bad := []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // array element is not a bulk string
		"*-1\r\n",                   // negative array length
		"*1\r\n$-5\r\n",             // negative bulk length
		"*1\r\n$3\r\nGETxx",         // bulk not CRLF-terminated
		"*999999999\r\n",            // array length over MaxArgs
		"*1\r\n$99999999\r\n",       // bulk length over MaxBulk
	}
	for _, in := range bad {
		_, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("%q: no error", in)
			continue
		}
		if !IsProtocolError(err) {
			t.Errorf("%q: error %v is not a protocol error", in, err)
		}
	}
}

// TestReplyRoundTrip checks WriteReply/ReadReply are inverses for every
// reply kind, including nesting and the nil bulk.
func TestReplyRoundTrip(t *testing.T) {
	replies := []Reply{
		OK(),
		{Kind: ReplySimple, Str: "PONG"},
		Errf("boom %d", 7),
		Int(0),
		Int(-12345),
		BulkString(nil),
		BulkString([]byte{}),
		BulkString([]byte("hello\nworld\r\nwith framing bytes $*:")),
		{Kind: ReplyArray},
		{Kind: ReplyArray, Array: []Reply{
			BulkString([]byte("1")),
			BulkString(nil),
			Int(9),
			{Kind: ReplyArray, Array: []Reply{OK()}},
		}},
	}
	for i, rep := range replies {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteReply(w, rep); err != nil {
			t.Fatalf("reply %d: write: %v", i, err)
		}
		w.Flush()
		got, err := ReadReply(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("reply %d: read: %v", i, err)
		}
		if !replyEqual(got, rep) {
			t.Errorf("reply %d: %+v round-tripped to %+v", i, rep, got)
		}
	}
}

// replyEqual compares replies treating empty and nil slices alike
// (the wire cannot distinguish an empty array from a nil one).
func replyEqual(a, b Reply) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case ReplySimple, ReplyErr:
		return a.Str == b.Str
	case ReplyInt:
		return a.Int == b.Int
	case ReplyBulk:
		return a.Nil == b.Nil && bytes.Equal(a.Bulk, b.Bulk)
	case ReplyArray:
		if len(a.Array) != len(b.Array) {
			return false
		}
		for i := range a.Array {
			if !replyEqual(a.Array[i], b.Array[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// TestCommandTable sanity-checks the registry the dispatch, docs and
// drift tests all hang off.
func TestCommandTable(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Commands() {
		if c.Name != strings.ToUpper(c.Name) {
			t.Errorf("command %q is not upper-case", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("command %q listed twice", c.Name)
		}
		seen[c.Name] = true
		if c.Desc == "" {
			t.Errorf("command %q has no description", c.Name)
		}
		if _, ok := lookupCommand(c.Name); !ok {
			t.Errorf("command %q not resolvable via lookupCommand", c.Name)
		}
	}
	for _, name := range []string{"GET", "PUT", "SET", "DEL", "SCAN"} {
		c, ok := lookupCommand(name)
		if !ok || !c.InMulti {
			t.Errorf("data command %q must be queueable in MULTI", name)
		}
	}
	if c, _ := lookupCommand("EXEC"); c.InMulti {
		t.Error("EXEC must not itself be queueable")
	}
}

// FuzzReadRequest feeds arbitrary bytes to the request parser: it must
// never panic and never allocate beyond the protocol limits.
func FuzzReadRequest(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\n5\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("*1\r\n$100\r\nshort\r\n"))
	f.Add([]byte("*99999999999999999999\r\n"))
	f.Add([]byte{'*', 0, '\r', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			argv, err := ReadRequest(r)
			if err != nil {
				return
			}
			for _, a := range argv {
				if len(a) > MaxBulk {
					t.Fatalf("argument of %d bytes exceeds MaxBulk", len(a))
				}
			}
		}
	})
}

// FuzzReadReply feeds arbitrary bytes to the client-side reply parser.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR nope\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("*2\r\n$1\r\na\r\n:1\r\n"))
	f.Add([]byte("*3\r\n*2\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			if _, err := ReadReply(r); err != nil {
				return
			}
		}
	})
}

// replyWireSafe reports whether a reply (recursively) avoids CR/LF in
// its line-framed string fields.
func replyWireSafe(rep Reply) bool {
	if strings.ContainsAny(rep.Str, "\r\n") {
		return false
	}
	for _, el := range rep.Array {
		if !replyWireSafe(el) {
			return false
		}
	}
	return true
}

// FuzzReplyWireRoundTrip: any reply the reader accepts must re-encode
// and re-decode to the same value (the codec is self-consistent on the
// full set of parseable inputs, not just the ones our server emits).
func FuzzReplyWireRoundTrip(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n:1\r\n$-1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadReply(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Simple/error strings containing CR/LF cannot survive the wire;
		// the server never emits them, so skip those inputs.
		if !replyWireSafe(rep) {
			return
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteReply(w, rep); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		w.Flush()
		back, err := ReadReply(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !replyEqual(rep, back) {
			t.Fatalf("%+v re-round-tripped to %+v", rep, back)
		}
	})
}
