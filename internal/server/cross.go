package server

import (
	"sort"

	"uhtm/internal/mem"
	"uhtm/internal/shard"
	"uhtm/internal/sim"
)

// This file executes the requests that need more than one shard: a
// MULTI…EXEC whose keys straddle home shards commits through the
// cluster's 2PC coordinator (runCross), and a SCAN on a sharded server
// broadcasts to every shard and merges (runScanAll).
//
// The cross path cannot use core.Ctx.Run — an HTM transaction is bound
// to one machine — so each participant executes its share of the ops
// against a captureMem: a txds.Mem over the shard's store that buffers
// every write as a full line image. The buffered images become the 2PC
// prepare records and the apply write set, which is exactly the
// contract shard.SubmitCross needs to make the batch crash-atomic
// across machines. Only NVM table state goes through the capture; DRAM
// index maintenance runs in the apply callback, after the decision, so
// redo records never address volatile memory (the committed-prefix
// oracle rejects that).

// captureMem is a txds.Mem over a store that serves reads through its
// pending write set and buffers writes as full line images, in
// first-write order. It mirrors mem.Store's accessor semantics exactly
// (little-endian U64, 8-byte alignment panic, byte-at-a-time spanning
// reads/writes) so data-structure code behaves identically under it.
type captureMem struct {
	st    *mem.Store
	imgs  map[mem.Addr]*mem.Line
	order []mem.Addr
}

// newCaptureMem wraps one shard's store.
func newCaptureMem(st *mem.Store) *captureMem {
	return &captureMem{st: st, imgs: make(map[mem.Addr]*mem.Line)}
}

// line returns the current image of the line containing a: the pending
// write if one exists, the live store image otherwise.
func (c *captureMem) line(la mem.Addr) mem.Line {
	if img, ok := c.imgs[la]; ok {
		return *img
	}
	return c.st.PeekLine(la)
}

// dirty returns the writable pending image for the line containing a,
// creating it from the live image on first write.
func (c *captureMem) dirty(la mem.Addr) *mem.Line {
	if img, ok := c.imgs[la]; ok {
		return img
	}
	ln := c.st.PeekLine(la)
	img := &ln
	c.imgs[la] = img
	c.order = append(c.order, la)
	return img
}

// ReadU64 reads a little-endian u64 (8-byte aligned, like mem.Store).
func (c *captureMem) ReadU64(a mem.Addr) uint64 {
	if a%8 != 0 {
		panic("server: unaligned ReadU64 through captureMem")
	}
	ln := c.line(mem.LineOf(a))
	off := mem.LineOffset(a)
	var v uint64
	for b := 0; b < 8; b++ {
		v |= uint64(ln[off+b]) << (8 * b)
	}
	return v
}

// WriteU64 writes a little-endian u64 (8-byte aligned, like mem.Store).
func (c *captureMem) WriteU64(a mem.Addr, v uint64) {
	if a%8 != 0 {
		panic("server: unaligned WriteU64 through captureMem")
	}
	img := c.dirty(mem.LineOf(a))
	off := mem.LineOffset(a)
	for b := 0; b < 8; b++ {
		img[off+b] = byte(v >> (8 * b))
	}
}

// ReadBytes reads n bytes starting at a, spanning lines.
func (c *captureMem) ReadBytes(a mem.Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		la := mem.LineOf(a)
		off := mem.LineOffset(a)
		ln := c.line(la)
		take := mem.LineSize - off
		if take > n-i {
			take = n - i
		}
		copy(out[i:i+take], ln[off:off+take])
		i += take
		a += mem.Addr(take)
	}
	return out
}

// WriteBytes writes b starting at a, spanning lines.
func (c *captureMem) WriteBytes(a mem.Addr, b []byte) {
	for len(b) > 0 {
		la := mem.LineOf(a)
		off := mem.LineOffset(a)
		img := c.dirty(la)
		n := mem.LineSize - off
		if n > len(b) {
			n = len(b)
		}
		copy(img[off:off+n], b[:n])
		a += mem.Addr(n)
		b = b[n:]
	}
}

// writes returns the buffered write set as line images in first-write
// order — the shape SubmitCross prepares and applies.
func (c *captureMem) writes() []shard.LineWrite {
	out := make([]shard.LineWrite, 0, len(c.order))
	for _, la := range c.order {
		out = append(out, shard.LineWrite{Addr: la, Img: *c.imgs[la]})
	}
	return out
}

// runCross commits one multi-shard op batch through the 2PC
// coordinator: each participant executes its ops against a captureMem
// (reads see the batch's earlier writes), the buffered images prepare
// and apply under the protocol, and the DRAM scan indexes absorb the
// new keys in the apply callback. A halt before the commit decision
// fails the request (the transaction vanished everywhere); a halt after
// it still acknowledges — recovery completes the apply on every
// participant, so the reply stays durable.
func (s *Server) runCross(req *request) {
	n := len(s.shards)
	byShard := make([][]int, n)
	for i, op := range req.ops {
		k := shard.ShardOf(op.Key, n)
		byShard[k] = append(byShard[k], i)
	}
	var parts []int
	for k := 0; k < n; k++ {
		if len(byShard[k]) > 0 {
			parts = append(parts, k)
		}
	}
	req.results = make([]OpResult, len(req.ops))
	puts := make([][]uint64, n)
	s.batches++
	s.requests++

	exec := func(k int, th *sim.Thread) []shard.LineWrite {
		st := s.stores[k]
		cm := newCaptureMem(st.m.Store())
		for _, i := range byShard[k] {
			op := req.ops[i]
			switch op.Kind {
			case OpGet:
				v, ok := st.table.Get(cm, op.Key)
				req.results[i] = OpResult{Val: v, Found: ok}
			case OpPut:
				st.table.Put(cm, op.Key, op.Val)
				puts[k] = append(puts[k], op.Key)
				req.results[i] = OpResult{Written: true}
			case OpDel:
				req.results[i] = OpResult{Found: st.table.Delete(cm, op.Key)}
			default:
				panic("server: scan routed to the cross-shard path")
			}
		}
		return cm.writes()
	}
	applied := func(k int, th *sim.Thread) {
		st := s.stores[k]
		mst := st.m.Store()
		for _, key := range puts[k] {
			st.index.Put(mst, key, nil)
		}
	}
	decided, halted := s.cluster.SubmitCross(parts, exec, applied)
	if halted {
		s.recoverAfterHalt()
		if !decided {
			req.err = errLostPower
		} else {
			req.applied = true // recovery completed the decided commit
		}
	} else {
		req.applied = true
	}
	close(req.done)
}

// runScanAll serves one SCAN on a sharded server: every shard walks its
// own index as one local read transaction (a parallel wave), and the
// per-shard slices — disjoint by key hashing — merge into one ascending
// result capped at the requested count.
func (s *Server) runScanAll(req *request) {
	op := req.ops[0]
	per := make([]OpResult, len(s.shards))
	s.batches++
	s.requests++
	halted := s.cluster.Fanout(s.shards, func(sh *shard.Shard) bool {
		st := s.stores[sh.ID()]
		return sh.Do("serve", func(th *sim.Thread) {
			c := sh.Machine().NewCtx(th, 0)
			per[sh.ID()] = st.Apply(c, []Op{op})[0]
		})
	})
	if halted {
		s.recoverAfterHalt()
		req.err = errLostPower
		close(req.done)
		return
	}
	req.results = []OpResult{mergeScans(per, op.N)}
	req.applied = true
	close(req.done)
}

// mergeScans merges per-shard scan slices (each ascending, keys
// disjoint) into one ascending result of at most n keys.
func mergeScans(per []OpResult, n int) OpResult {
	var out OpResult
	for _, r := range per {
		out.Keys = append(out.Keys, r.Keys...)
		out.Vals = append(out.Vals, r.Vals...)
	}
	sort.Sort(&scanPairs{&out})
	if len(out.Keys) > n {
		out.Keys = out.Keys[:n]
		out.Vals = out.Vals[:n]
	}
	return out
}

// scanPairs sorts a scan result's parallel key/value slices by key.
type scanPairs struct{ r *OpResult }

// Len implements sort.Interface.
func (p *scanPairs) Len() int { return len(p.r.Keys) }

// Less implements sort.Interface (ascending by key).
func (p *scanPairs) Less(i, j int) bool { return p.r.Keys[i] < p.r.Keys[j] }

// Swap implements sort.Interface.
func (p *scanPairs) Swap(i, j int) {
	p.r.Keys[i], p.r.Keys[j] = p.r.Keys[j], p.r.Keys[i]
	p.r.Vals[i], p.r.Vals[j] = p.r.Vals[j], p.r.Vals[i]
}
