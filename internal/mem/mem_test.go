package mem

import (
	"testing"
	"testing/quick"

	"uhtm/internal/sim"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Kind
	}{
		{DRAMBase, DRAM},
		{DRAMBase + DRAMSize - 1, DRAM},
		{NVMBase, NVM},
		{NVMBase + NVMSize - 1, NVM},
	}
	for _, c := range cases {
		if got := KindOf(c.a); got != c.want {
			t.Errorf("KindOf(%#x) = %v, want %v", uint64(c.a), got, c.want)
		}
	}
}

func TestKindOfPanicsOutsideRegions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KindOf outside regions did not panic")
		}
	}()
	KindOf(NVMBase + NVMSize)
}

func TestInLogArea(t *testing.T) {
	if !InLogArea(DRAMLogBase) || !InLogArea(NVMLogBase) {
		t.Error("log bases not in log area")
	}
	if InLogArea(DRAMBase) || InLogArea(NVMBase) {
		t.Error("region bases wrongly in log area")
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0x1234) != 0x1200 {
		t.Errorf("LineOf(0x1234) = %#x", uint64(LineOf(0x1234)))
	}
	if LineOffset(0x1234) != 0x34 {
		t.Errorf("LineOffset(0x1234) = %#x", LineOffset(0x1234))
	}
}

func TestDefaultConfigIsTableIII(t *testing.T) {
	c := DefaultConfig()
	if c.Cores != 16 {
		t.Errorf("Cores = %d", c.Cores)
	}
	if c.L1Size != 32<<10 || c.L1Ways != 8 {
		t.Errorf("L1 = %d/%d-way", c.L1Size, c.L1Ways)
	}
	if c.LLCSize != 16<<20 || c.LLCWays != 16 {
		t.Errorf("LLC = %d/%d-way", c.LLCSize, c.LLCWays)
	}
	if c.L1Latency != 1500*sim.Picosecond {
		t.Errorf("L1 latency = %v", c.L1Latency)
	}
	if c.LLCLatency != 15*sim.Nanosecond {
		t.Errorf("LLC latency = %v", c.LLCLatency)
	}
	if c.DRAMLatency != 82*sim.Nanosecond {
		t.Errorf("DRAM latency = %v", c.DRAMLatency)
	}
	if c.NVMReadLatency != 175*sim.Nanosecond || c.NVMWriteLatency != 94*sim.Nanosecond {
		t.Errorf("NVM latency = %v/%v", c.NVMReadLatency, c.NVMWriteLatency)
	}
}

func TestReadWriteLine(t *testing.T) {
	s := NewStore(DefaultConfig())
	var l Line
	l[0], l[63] = 0xAB, 0xCD
	s.WriteLine(DRAMBase+128, &l)
	var got Line
	s.ReadLine(DRAMBase+128, &got)
	if got != l {
		t.Error("read-back mismatch")
	}
	if s.DRAMWrites != 1 || s.DRAMReads != 1 {
		t.Errorf("counters: %d writes, %d reads", s.DRAMWrites, s.DRAMReads)
	}
}

func TestWordAccess(t *testing.T) {
	s := NewStore(DefaultConfig())
	s.WriteU64(NVMBase+8, 0xDEADBEEFCAFE0123)
	if got := s.ReadU64(NVMBase + 8); got != 0xDEADBEEFCAFE0123 {
		t.Errorf("ReadU64 = %#x", got)
	}
	// Adjacent word untouched.
	if got := s.ReadU64(NVMBase); got != 0 {
		t.Errorf("adjacent word = %#x", got)
	}
}

func TestUnalignedWordPanics(t *testing.T) {
	s := NewStore(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("unaligned ReadU64 did not panic")
		}
	}()
	s.ReadU64(DRAMBase + 4)
}

func TestLatencies(t *testing.T) {
	s := NewStore(DefaultConfig())
	if s.ReadLatency(DRAMBase) != 82*sim.Nanosecond {
		t.Error("DRAM read latency")
	}
	if s.ReadLatency(NVMBase) != 175*sim.Nanosecond {
		t.Error("NVM read latency")
	}
	if s.WriteLatency(NVMBase) != 94*sim.Nanosecond {
		t.Error("NVM write latency")
	}
}

// TestCrashDropsVolatileState is the core durability semantics test:
// live-only NVM writes and all DRAM contents vanish at a crash; only
// persisted NVM lines survive.
func TestCrashDropsVolatileState(t *testing.T) {
	s := NewStore(DefaultConfig())
	var l Line
	l[0] = 1
	s.WriteLine(DRAMBase, &l)   // DRAM, volatile
	s.WriteLine(NVMBase, &l)    // NVM live-only (still in cache/WPQ)
	s.WriteLine(NVMBase+64, &l) // NVM that the hardware persisted:
	s.PersistLine(NVMBase+64, &l)

	s.Crash()

	if got := s.PeekLine(DRAMBase); got != (Line{}) {
		t.Error("DRAM survived crash")
	}
	if got := s.PeekLine(NVMBase); got != (Line{}) {
		t.Error("unpersisted NVM write survived crash")
	}
	if got := s.PeekLine(NVMBase + 64); got != l {
		t.Error("persisted NVM line lost at crash")
	}
}

func TestPersistLinePanicsOnDRAM(t *testing.T) {
	s := NewStore(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("PersistLine on DRAM did not panic")
		}
	}()
	var l Line
	s.PersistLine(DRAMBase, &l)
}

func TestAllocator(t *testing.T) {
	al := NewAllocator(NVM)
	a := al.Alloc(100, 64)
	b := al.Alloc(8, 8)
	if a%64 != 0 {
		t.Errorf("a = %#x not 64-aligned", uint64(a))
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%#x b=%#x", uint64(a), uint64(b))
	}
	if KindOf(a) != NVM || KindOf(b) != NVM {
		t.Error("allocations outside NVM")
	}
	if al.Used() == 0 {
		t.Error("Used() = 0 after allocations")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(DRAM)
	defer func() {
		if recover() == nil {
			t.Error("exhausted allocator did not panic")
		}
	}()
	al.Alloc(int(DRAMSize), 64) // bigger than usable area (log reserved)
}

func TestAllocLinesAligned(t *testing.T) {
	al := NewAllocator(DRAM)
	al.Alloc(3, 1) // misalign the bump pointer
	a := al.AllocLines(2)
	if a%LineSize != 0 {
		t.Errorf("AllocLines returned unaligned %#x", uint64(a))
	}
}

// Property: WriteU64 then ReadU64 round-trips for arbitrary values and
// any aligned offset in a line, without disturbing neighbours.
func TestQuickWordRoundTrip(t *testing.T) {
	s := NewStore(DefaultConfig())
	f := func(v uint64, slot uint8) bool {
		off := Addr(slot%8) * 8
		a := NVMBase + 4096 + off
		s.WriteU64(a, v)
		return s.ReadU64(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the allocator never returns overlapping or misaligned
// blocks.
func TestQuickAllocatorNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		al := NewAllocator(DRAM)
		type blk struct{ a, end Addr }
		var blocks []blk
		for _, sz := range sizes {
			n := int(sz%4096) + 1
			a := al.Alloc(n, 8)
			if a%8 != 0 {
				return false
			}
			for _, b := range blocks {
				if a < b.end && b.a < a+Addr(n) {
					return false
				}
			}
			blocks = append(blocks, blk{a, a + Addr(n)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
