// Package mem models the physical memory of the simulated machine: a
// hybrid DRAM/NVM address space with the latency parameters of Table III
// of the paper, reserved log areas for the hardware logs, and — crucially
// for crash-recovery experiments — a separate *durable* NVM image that
// only advances when the simulated hardware actually persists data.
//
// The backing store holds real bytes. Transactional data structures in
// this reproduction live inside this address space (their pointers are
// mem.Addr values), so rollback and recovery are verified against real
// content rather than asserted.
package mem

import (
	"fmt"
	"math/bits"

	"uhtm/internal/sim"
	"uhtm/internal/trace"
)

// LineSize is the cache-line granularity of the simulated machine.
const LineSize = 64

// Addr is a physical address in the simulated machine.
type Addr uint64

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns a's offset within its cache line.
func LineOffset(a Addr) int { return int(a & (LineSize - 1)) }

// Kind distinguishes the two memory technologies of the hybrid system.
type Kind int

const (
	// DRAM is volatile memory: fast, lost on power failure.
	DRAM Kind = iota
	// NVM is non-volatile memory: slower, durable.
	NVM
)

// String names the memory kind ("DRAM" or "NVM").
func (k Kind) String() string {
	if k == DRAM {
		return "DRAM"
	}
	return "NVM"
}

// Region boundaries of the simulated physical address map. DRAM occupies
// a low window and NVM a high one; the top of each region is reserved
// for the hardware log area (inaccessible to software, managed by the
// memory controllers — Section IV-B of the paper).
const (
	DRAMBase Addr = 0x0000_0000_0000
	DRAMSize Addr = 1 << 30 // 1 GiB of addressable DRAM
	NVMBase  Addr = 0x100_0000_0000
	NVMSize  Addr = 1 << 30 // 1 GiB of addressable NVM

	// LogAreaSize is reserved at the top of each region for the
	// hardware undo (DRAM) and redo (NVM) logs.
	LogAreaSize Addr = 64 << 20

	DRAMLogBase Addr = DRAMBase + DRAMSize - LogAreaSize
	NVMLogBase  Addr = NVMBase + NVMSize - LogAreaSize
)

// Config carries the simulation configuration of Table III plus the
// DRAM-cache geometry from the hardware-logging substrate [28].
type Config struct {
	Cores int // simulated cores (16 in the paper)

	L1Size int // bytes, per-core (32 KB)
	L1Ways int // associativity (8)

	LLCSize int // bytes, shared (16 MB)
	LLCWays int // associativity (16)

	L1Latency  sim.Time // 1.5 ns
	LLCLatency sim.Time // 15 ns

	DRAMLatency     sim.Time // read/write, 82 ns
	NVMReadLatency  sim.Time // 175 ns
	NVMWriteLatency sim.Time // 94 ns (accepted at the write-pending queue; ADR)

	// DRAMCacheSize/Ways size the DRAM cache between the LLC and NVM
	// that buffers early-evicted persistent lines (per [28]). The paper
	// does not publish its geometry; 32 MB/16-way keeps it larger than
	// the LLC, as [28] requires.
	DRAMCacheSize int
	DRAMCacheWays int
}

// DefaultConfig returns Table III of the paper.
func DefaultConfig() Config {
	return Config{
		Cores:           16,
		L1Size:          32 << 10,
		L1Ways:          8,
		LLCSize:         16 << 20,
		LLCWays:         16,
		L1Latency:       1500 * sim.Picosecond,
		LLCLatency:      15 * sim.Nanosecond,
		DRAMLatency:     82 * sim.Nanosecond,
		NVMReadLatency:  175 * sim.Nanosecond,
		NVMWriteLatency: 94 * sim.Nanosecond,
		DRAMCacheSize:   32 << 20,
		DRAMCacheWays:   16,
	}
}

// KindOf classifies an address as DRAM or NVM. It panics on addresses
// outside both regions — always a simulator bug.
func KindOf(a Addr) Kind {
	switch {
	case a >= DRAMBase && a < DRAMBase+DRAMSize:
		return DRAM
	case a >= NVMBase && a < NVMBase+NVMSize:
		return NVM
	}
	panic(fmt.Sprintf("mem: address %#x outside DRAM and NVM regions", uint64(a)))
}

// InLogArea reports whether a falls inside a reserved hardware log area.
func InLogArea(a Addr) bool {
	return (a >= DRAMLogBase && a < DRAMBase+DRAMSize) ||
		(a >= NVMLogBase && a < NVMBase+NVMSize)
}

// Line is the unit of storage: one cache line of real bytes.
type Line [LineSize]byte

// The flat line-index space: every addressable line of the hybrid
// memory maps to one dense index — DRAM lines first, NVM lines after —
// so per-line metadata anywhere in the simulator can live in flat
// arrays instead of map[Addr] hashes. Indices are grouped into pages of
// PageLines lines; pages materialize on first touch, keeping the
// resident footprint proportional to the lines actually used.
const (
	// PageShift sets the line-table page size: 1<<PageShift lines
	// (64 KiB of data) per page.
	PageShift = 10
	// PageLines is the number of lines per line-table page.
	PageLines = 1 << PageShift

	dramLineCount = uint64(DRAMSize / LineSize)
	nvmLineCount  = uint64(NVMSize / LineSize)

	// LineCount is the total number of addressable lines (DRAM + NVM).
	LineCount = dramLineCount + nvmLineCount
	// PageCount is the number of line-table pages covering LineCount.
	PageCount = int(LineCount / PageLines)
)

// LineIndex maps an address to its dense line index. It panics for
// addresses outside both regions — always a simulator bug.
func LineIndex(a Addr) uint64 {
	if a < DRAMBase+DRAMSize {
		return uint64(a >> 6)
	}
	if a >= NVMBase && a < NVMBase+NVMSize {
		return dramLineCount + uint64((a-NVMBase)>>6)
	}
	panic(fmt.Sprintf("mem: address %#x outside DRAM and NVM regions", uint64(a)))
}

// AddrOfLineIndex inverts LineIndex, returning the line address.
func AddrOfLineIndex(idx uint64) Addr {
	if idx < dramLineCount {
		return Addr(idx * LineSize)
	}
	return NVMBase + Addr((idx-dramLineCount)*LineSize)
}

// linePage is one page of a memory image: the line contents plus a
// bitmap of which lines have materialized (been touched). The bitmap
// preserves the exact key set the old map-based image exposed through
// the snapshot functions.
type linePage struct {
	lines [PageLines]Line
	mat   [PageLines / 64]uint64
}

// image is one memory image (live or durable) as a paged flat array.
type image struct {
	pages []*linePage
}

func newImage() image { return image{pages: make([]*linePage, PageCount)} }

// line returns a pointer to the line at idx, materializing it.
func (im *image) line(idx uint64) *Line {
	p := im.pages[idx>>PageShift]
	if p == nil {
		p = new(linePage)
		im.pages[idx>>PageShift] = p
	}
	off := idx & (PageLines - 1)
	p.mat[off/64] |= 1 << (off % 64)
	return &p.lines[off]
}

// read returns the line at idx without materializing it.
func (im *image) read(idx uint64) Line {
	if p := im.pages[idx>>PageShift]; p != nil {
		return p.lines[idx&(PageLines-1)]
	}
	return Line{}
}

// forEach visits every materialized line in ascending address order.
func (im *image) forEach(fn func(idx uint64, l *Line)) {
	for pi, p := range im.pages {
		if p == nil {
			continue
		}
		for w, word := range p.mat {
			for word != 0 {
				off := uint64(w*64 + bits.TrailingZeros64(word))
				fn(uint64(pi)<<PageShift+off, &p.lines[off])
				word &= word - 1
			}
		}
	}
}

// count returns the number of materialized lines.
func (im *image) count() int {
	n := 0
	for _, p := range im.pages {
		if p == nil {
			continue
		}
		for _, word := range p.mat {
			n += bits.OnesCount64(word)
		}
	}
	return n
}

// Store is the simulated physical memory. The live image is what the
// cache hierarchy observes; the durable image is what NVM would hold
// after an instantaneous power failure (in-place NVM data that the
// hardware actually wrote back). DRAM contents exist only in the live
// image and vanish at a crash.
type Store struct {
	cfg     Config
	live    image
	durable image // NVM lines only

	// crashpoint, when set, is invoked with the injection-point name
	// immediately before each durability transition (see PointPersistLine
	// and RECOVERY.md). The crash framework arms it to kill the
	// simulation between any two durable line updates, modeling a power
	// failure that tears a multi-line structure (e.g. a log record)
	// mid-write.
	crashpoint func(point string)

	// tracer, when set, receives an EvNVMPersist event per durable line
	// update; traceNow supplies the engine world's virtual time.
	tracer   *trace.Recorder
	traceNow func() int64

	// Access counters, by kind, for bandwidth-style reporting.
	DRAMReads, DRAMWrites uint64
	NVMReads, NVMWrites   uint64
}

// PointPersistLine is the injection point fired before every durable
// line update (one PersistLine call). Crashing on the k-th visit leaves
// exactly the first k-1 persisted lines durable.
const PointPersistLine = "mem.persist.line"

// SetCrashpoint installs (or, with nil, removes) the crash-injection
// hook. The hook runs synchronously on the simulated thread performing
// the persist and may abort the simulation (sim.Engine.HaltNow); it must
// not touch store state.
func (s *Store) SetCrashpoint(f func(point string)) { s.crashpoint = f }

// SetTracer installs (or, with nil, removes) the event recorder for
// durability events. now supplies virtual timestamps (the owning
// engine's current clock).
func (s *Store) SetTracer(r *trace.Recorder, now func() int64) {
	s.tracer, s.traceNow = r, now
}

// NewStore returns an empty store (all bytes zero) for the given config.
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:     cfg,
		live:    newImage(),
		durable: newImage(),
	}
}

// Config returns the configuration the store was built with.
func (s *Store) Config() Config { return s.cfg }

// ReadLatency returns the raw-medium read latency for an address.
func (s *Store) ReadLatency(a Addr) sim.Time {
	if KindOf(a) == DRAM {
		return s.cfg.DRAMLatency
	}
	return s.cfg.NVMReadLatency
}

// WriteLatency returns the raw-medium write latency for an address.
func (s *Store) WriteLatency(a Addr) sim.Time {
	if KindOf(a) == DRAM {
		return s.cfg.DRAMLatency
	}
	return s.cfg.NVMWriteLatency
}

func (s *Store) lineLive(a Addr) *Line {
	return s.live.line(LineIndex(a))
}

// ReadLine copies the live contents of the line containing a into dst
// and bumps the read counter for the medium.
func (s *Store) ReadLine(a Addr, dst *Line) {
	*dst = *s.lineLive(a)
	if KindOf(a) == DRAM {
		s.DRAMReads++
	} else {
		s.NVMReads++
	}
}

// WriteLine stores src as the live contents of the line containing a.
// For NVM it does NOT advance the durable image: durability happens only
// via PersistLine (log writes, DRAM-cache drains).
func (s *Store) WriteLine(a Addr, src *Line) {
	*s.lineLive(a) = *src
	if KindOf(a) == DRAM {
		s.DRAMWrites++
	} else {
		s.NVMWrites++
	}
}

// PeekLine returns the live contents without charging an access; used by
// checkers and statistics, never by the simulated hardware.
func (s *Store) PeekLine(a Addr) Line { return *s.lineLive(a) }

// PokeLine sets live contents without charging an access (checker use).
func (s *Store) PokeLine(a Addr, src *Line) { *s.lineLive(a) = *src }

// ReadU64 reads the 8-byte word at a from the live image (a must be
// 8-byte aligned). Checker/convenience access: no latency accounting.
func (s *Store) ReadU64(a Addr) uint64 {
	if a%8 != 0 {
		panic("mem: unaligned ReadU64")
	}
	l := s.lineLive(a)
	off := LineOffset(a)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(l[off+i])
	}
	return v
}

// DurableU64 reads the 8-byte word at a from the durable NVM image
// (a must be 8-byte aligned). Recovery evidence must come from here —
// the live image may hold post-crash state a real power failure would
// have discarded.
func (s *Store) DurableU64(a Addr) uint64 {
	if a%8 != 0 {
		panic("mem: unaligned DurableU64")
	}
	l := s.durable.read(LineIndex(a))
	off := LineOffset(a)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(l[off+i])
	}
	return v
}

// WriteU64 writes the 8-byte word at a in the live image (checker use).
func (s *Store) WriteU64(a Addr, v uint64) {
	if a%8 != 0 {
		panic("mem: unaligned WriteU64")
	}
	l := s.lineLive(a)
	off := LineOffset(a)
	for i := 0; i < 8; i++ {
		l[off+i] = byte(v >> (8 * i))
	}
}

// ReadBytes copies n bytes starting at a from the live image (checker
// and setup use — no latency accounting).
func (s *Store) ReadBytes(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		l := s.lineLive(a + Addr(i))
		out[i] = l[LineOffset(a+Addr(i))]
	}
	return out
}

// WriteBytes copies b into the live image starting at a (checker use).
func (s *Store) WriteBytes(a Addr, b []byte) {
	for i := range b {
		l := s.lineLive(a + Addr(i))
		l[LineOffset(a+Addr(i))] = b[i]
	}
}

// PersistLine records the line containing a as durable in NVM with the
// given contents. It models an in-place NVM update that has drained past
// the ADR boundary. Panics for DRAM addresses.
func (s *Store) PersistLine(a Addr, src *Line) {
	if KindOf(a) != NVM {
		panic("mem: PersistLine on DRAM address")
	}
	if s.crashpoint != nil {
		s.crashpoint(PointPersistLine)
	}
	if s.tracer != nil {
		s.tracer.Emit(s.traceNow(), -1, trace.EvNVMPersist, 0, uint64(LineOf(a)), 0, 0)
	}
	*s.durable.line(LineIndex(a)) = *src
}

// DurableLine returns the durable NVM contents of the line containing a.
func (s *Store) DurableLine(a Addr) Line {
	return s.durable.read(LineIndex(a))
}

// PersistLiveNVM snapshots every live NVM line into the durable image —
// initialization durability, the state a formatted persistent heap has
// before any transactions run. Call it after non-transactional setup
// (prepopulation) and before crash-injection windows.
func (s *Store) PersistLiveNVM() {
	s.live.forEach(func(idx uint64, l *Line) {
		a := AddrOfLineIndex(idx)
		if KindOf(a) == NVM && !InLogArea(a) {
			*s.durable.line(idx) = *l
		}
	})
}

// Crash simulates an instantaneous power failure: the live image is
// discarded and replaced by the durable NVM image; DRAM reads as zero.
// The caller (recovery) then replays committed redo-log records.
func (s *Store) Crash() {
	s.live = newImage()
	for pi, p := range s.durable.pages {
		if p != nil {
			cp := *p
			s.live.pages[pi] = &cp
		}
	}
}

// SnapshotLive returns a deep copy of the live image, for checkers.
func (s *Store) SnapshotLive() map[Addr]Line {
	out := make(map[Addr]Line, s.live.count())
	s.live.forEach(func(idx uint64, l *Line) {
		out[AddrOfLineIndex(idx)] = *l
	})
	return out
}

// SnapshotDurable returns a deep copy of the durable NVM image, for
// checkers (the crash framework's committed-prefix oracle compares it
// against an independently computed expectation).
func (s *Store) SnapshotDurable() map[Addr]Line {
	out := make(map[Addr]Line, s.durable.count())
	s.durable.forEach(func(idx uint64, l *Line) {
		out[AddrOfLineIndex(idx)] = *l
	})
	return out
}

// Allocator is a bump allocator over one region of the address space.
// The hardware log areas are excluded from its range.
type Allocator struct {
	kind  Kind
	start Addr
	next  Addr
	end   Addr
}

// NewAllocator returns an allocator for the usable portion of a region.
func NewAllocator(kind Kind) *Allocator {
	if kind == DRAM {
		return &Allocator{kind: kind, start: DRAMBase, next: DRAMBase, end: DRAMLogBase}
	}
	return &Allocator{kind: kind, start: NVMBase, next: NVMBase, end: NVMLogBase}
}

// NewArena returns an allocator over an explicit sub-range [base, end)
// of kind's usable region. Disjoint arenas model separate processes —
// no false sharing of cache lines across conflict domains.
func NewArena(kind Kind, base, end Addr) *Allocator {
	full := NewAllocator(kind)
	if base < full.next || end > full.end || base >= end {
		panic(fmt.Sprintf("mem: arena [%#x,%#x) outside usable %v region", uint64(base), uint64(end), kind))
	}
	return &Allocator{kind: kind, start: base, next: base, end: end}
}

// SplitRegion carves n equal, line-aligned, disjoint arenas out of
// kind's usable region, optionally leaving reserve bytes free at the
// top.
func SplitRegion(kind Kind, n int, reserve Addr) []*Allocator {
	full := NewAllocator(kind)
	usable := full.end - full.next - reserve
	per := (usable / Addr(n)) &^ (LineSize - 1)
	if per < LineSize {
		panic("mem: region too small for requested arenas")
	}
	out := make([]*Allocator, n)
	for i := range out {
		base := full.next + Addr(i)*per
		out[i] = NewArena(kind, base, base+per)
	}
	return out
}

// Kind returns the region this allocator serves.
func (al *Allocator) Kind() Kind { return al.kind }

// Alloc returns the address of a fresh n-byte object aligned to align
// (which must be a power of two). It panics when the region is
// exhausted — simulated workloads are sized to fit.
func (al *Allocator) Alloc(n int, align Addr) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic("mem: alignment must be a power of two")
	}
	a := (al.next + align - 1) &^ (align - 1)
	if a+Addr(n) > al.end {
		panic(fmt.Sprintf("mem: %v region exhausted", al.kind))
	}
	al.next = a + Addr(n)
	return a
}

// AllocLines allocates n whole cache lines, line-aligned.
func (al *Allocator) AllocLines(n int) Addr {
	return al.Alloc(n*LineSize, LineSize)
}

// Used reports the number of bytes handed out so far.
func (al *Allocator) Used() Addr { return al.next - al.start }
