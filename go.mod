module uhtm

go 1.22
